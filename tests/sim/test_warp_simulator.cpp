/**
 * @file
 * Tests of the GPU-SIMD cost model: lockstep lane accounting, warp
 * efficiency, coalescing transaction counting, SM load distribution,
 * and counter aggregation.
 */
#include <gtest/gtest.h>

#include "sim/warp_simulator.hpp"

namespace tigr::sim {
namespace {

GpuConfig
smallGpu()
{
    GpuConfig config;
    config.warpSize = 4;
    config.numSms = 2;
    config.memSegmentBytes = 32;
    config.cyclesPerInstruction = 1;
    config.cyclesPerTransaction = 10;
    config.kernelLaunchCycles = 0;
    return config;
}

ThreadWork
uniformWork(std::uint32_t instructions)
{
    ThreadWork work;
    work.instructions = instructions;
    return work;
}

TEST(WarpSimulator, BalancedWarpIsFullyEfficient)
{
    WarpSimulator sim(smallGpu());
    KernelStats stats =
        sim.launch(4, [](std::uint64_t) { return uniformWork(10); });
    EXPECT_EQ(stats.warps, 1u);
    EXPECT_EQ(stats.instructions, 40u);
    EXPECT_EQ(stats.laneSlots, 40u);
    EXPECT_DOUBLE_EQ(stats.warpEfficiency(), 1.0);
}

TEST(WarpSimulator, OneHotLaneWastesTheWarp)
{
    // One lane with 100 instructions, three idle: the warp still issues
    // 100 steps on all four lanes.
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(4, [](std::uint64_t tid) {
        return uniformWork(tid == 0 ? 100 : 0);
    });
    EXPECT_EQ(stats.instructions, 100u);
    EXPECT_EQ(stats.laneSlots, 400u);
    EXPECT_DOUBLE_EQ(stats.warpEfficiency(), 0.25);
}

TEST(WarpSimulator, PartialLastWarpStillChargesFullWidth)
{
    WarpSimulator sim(smallGpu());
    KernelStats stats =
        sim.launch(5, [](std::uint64_t) { return uniformWork(8); });
    EXPECT_EQ(stats.warps, 2u);
    EXPECT_EQ(stats.threads, 5u);
    // Warp 2 has one active lane but still occupies 4 lanes.
    EXPECT_EQ(stats.laneSlots, 2u * 4u * 8u);
}

TEST(WarpSimulator, CyclesAreMaxOverSms)
{
    // Two warps of different depth land on different SMs; the kernel
    // takes as long as the slower one (inter-warp imbalance).
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(8, [](std::uint64_t tid) {
        return uniformWork(tid < 4 ? 100 : 10);
    });
    EXPECT_EQ(stats.cycles, 100u);
}

TEST(WarpSimulator, SameSmWorkloadsSerialize)
{
    // Three warps over two SMs: SM0 runs warps 0 and 2.
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(12, [](std::uint64_t tid) {
        return uniformWork(tid < 4 ? 50 : (tid < 8 ? 30 : 20));
    });
    EXPECT_EQ(stats.cycles, 70u); // 50 + 20 on SM0 vs 30 on SM1
}

TEST(WarpSimulator, LaunchOverheadCharged)
{
    GpuConfig config = smallGpu();
    config.kernelLaunchCycles = 12345;
    WarpSimulator sim(config);
    KernelStats stats =
        sim.launch(0, [](std::uint64_t) { return ThreadWork{}; });
    EXPECT_EQ(stats.cycles, 12345u);
}

TEST(Coalescing, ConsecutiveLaneAccessesMerge)
{
    // 4 lanes read slots 0..3 of an 8-byte-record array in lockstep:
    // addresses 0,8,16,24 share one 32-byte segment -> 1 transaction
    // per step.
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(4, [](std::uint64_t tid) {
        ThreadWork work;
        work.instructions = 3;
        work.edgeCount = 3;
        work.edgeStart = tid;     // lane-consecutive slots
        work.edgeStride = 4;      // family-size stride (coalesced)
        return work;
    });
    // Steps access slots {0,1,2,3}, {4,5,6,7}, {8,9,10,11}: each step's
    // 4 addresses span exactly one 32-byte segment.
    EXPECT_EQ(stats.memTransactions, 3u);
    EXPECT_EQ(stats.memAccesses, 12u);
    EXPECT_DOUBLE_EQ(stats.coalescingFactor(), 4.0);
}

TEST(Coalescing, StridedLaneAccessesDoNot)
{
    // The Figure 10 (consecutive/strided) pattern: lane t reads slots
    // t*K + j. With K=4 and 8-byte records, lanes are 32 bytes apart:
    // every lane touches its own segment -> 4 transactions per step.
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(4, [](std::uint64_t tid) {
        ThreadWork work;
        work.instructions = 3;
        work.edgeCount = 3;
        work.edgeStart = tid * 4;
        work.edgeStride = 1;
        return work;
    });
    EXPECT_EQ(stats.memTransactions, 12u);
    EXPECT_DOUBLE_EQ(stats.coalescingFactor(), 1.0);
}

TEST(Coalescing, RaggedLanesOnlyChargeActiveOnes)
{
    WarpSimulator sim(smallGpu());
    KernelStats stats = sim.launch(2, [](std::uint64_t tid) {
        ThreadWork work;
        work.instructions = static_cast<std::uint32_t>(1 + tid);
        work.edgeCount = static_cast<std::uint32_t>(1 + tid);
        work.edgeStart = tid * 100; // far apart
        return work;
    });
    // Step 0: both lanes -> 2 segments. Step 1: lane 1 only -> 1.
    EXPECT_EQ(stats.memTransactions, 3u);
}

TEST(KernelStatsAggregation, PlusEqualsSumsAllCounters)
{
    WarpSimulator sim(smallGpu());
    KernelStats total;
    KernelStats a =
        sim.launch(4, [](std::uint64_t) { return uniformWork(10); });
    KernelStats b =
        sim.launch(8, [](std::uint64_t) { return uniformWork(5); });
    total += a;
    total += b;
    EXPECT_EQ(total.launches, 2u);
    EXPECT_EQ(total.threads, 12u);
    EXPECT_EQ(total.warps, 3u);
    EXPECT_EQ(total.instructions,
              a.instructions + b.instructions);
    EXPECT_EQ(total.cycles, a.cycles + b.cycles);
}

TEST(KernelStats, EmptyStatsAreNeutral)
{
    KernelStats stats;
    EXPECT_DOUBLE_EQ(stats.warpEfficiency(), 1.0);
    EXPECT_DOUBLE_EQ(stats.coalescingFactor(), 1.0);
}

TEST(SmImbalance, ZeroWhenSmsEquallyLoaded)
{
    WarpSimulator sim(smallGpu());
    // Two warps of equal depth on the two SMs.
    KernelStats stats =
        sim.launch(8, [](std::uint64_t) { return uniformWork(10); });
    EXPECT_DOUBLE_EQ(stats.smImbalance(), 0.0);
    EXPECT_EQ(stats.busiestSmCycles, 10u);
    EXPECT_EQ(stats.totalSmCycles, 20u);
}

TEST(SmImbalance, HighWhenOneSmDoesEverything)
{
    WarpSimulator sim(smallGpu());
    // Warp 0 (SM0) heavy, warp 1 (SM1) idle.
    KernelStats stats = sim.launch(8, [](std::uint64_t tid) {
        return uniformWork(tid < 4 ? 100 : 0);
    });
    EXPECT_NEAR(stats.smImbalance(), 0.5, 1e-12);
}

TEST(SmImbalance, NeutralOnEmptyStats)
{
    KernelStats stats;
    EXPECT_DOUBLE_EQ(stats.smImbalance(), 0.0);
}

TEST(WarpSimulator, DefaultConfigMatchesP4000Shape)
{
    WarpSimulator sim;
    EXPECT_EQ(sim.config().warpSize, 32u);
    EXPECT_EQ(sim.config().numSms, 14u);
}

} // namespace
} // namespace tigr::sim
