/**
 * @file
 * Unit tests for GraphBuilder cleaning: self loops, dedup, weight
 * randomization, determinism.
 */
#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace tigr::graph {
namespace {

CooEdges
messyGraph()
{
    CooEdges coo(4);
    coo.add(0, 0, 1); // self loop
    coo.add(0, 1, 1);
    coo.add(0, 1, 2); // duplicate pair with different weight
    coo.add(1, 2, 3);
    coo.add(2, 2, 9); // self loop
    coo.add(3, 0, 4);
    return coo;
}

TEST(GraphBuilder, DropsSelfLoopsByDefault)
{
    Csr g = GraphBuilder().build(messyGraph());
    EXPECT_EQ(g.numEdges(), 4u);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (NodeId nbr : g.outNeighbors(v))
            EXPECT_NE(nbr, v);
}

TEST(GraphBuilder, KeepsSelfLoopsWhenAsked)
{
    BuildOptions options;
    options.dropSelfLoops = false;
    Csr g = GraphBuilder(options).build(messyGraph());
    EXPECT_EQ(g.numEdges(), 6u);
}

TEST(GraphBuilder, DedupKeepsFirstOccurrence)
{
    BuildOptions options;
    options.dedupEdges = true;
    Csr g = GraphBuilder(options).build(messyGraph());
    // 0->1 kept once with the first weight.
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.outWeights(0)[0], 1u);
}

TEST(GraphBuilder, RandomWeightsWithinRangeAndDeterministic)
{
    BuildOptions options;
    options.randomizeWeights = true;
    options.minWeight = 5;
    options.maxWeight = 9;
    options.weightSeed = 77;
    Csr a = GraphBuilder(options).build(messyGraph());
    Csr b = GraphBuilder(options).build(messyGraph());
    EXPECT_EQ(a, b);
    for (NodeId v = 0; v < a.numNodes(); ++v) {
        for (Weight w : a.outWeights(v)) {
            EXPECT_GE(w, 5u);
            EXPECT_LE(w, 9u);
        }
    }
}

TEST(GraphBuilder, DifferentSeedsGiveDifferentWeights)
{
    BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 1000000;
    options.weightSeed = 1;
    Csr a = GraphBuilder(options).build(messyGraph());
    options.weightSeed = 2;
    Csr b = GraphBuilder(options).build(messyGraph());
    EXPECT_NE(a, b);
}

TEST(GraphBuilder, CleanPreservesSurvivingEdgeOrder)
{
    CooEdges coo = messyGraph();
    GraphBuilder().clean(coo);
    ASSERT_EQ(coo.numEdges(), 4u);
    EXPECT_EQ(coo.edges()[0], (Edge{0, 1, 1}));
    EXPECT_EQ(coo.edges()[1], (Edge{0, 1, 2}));
    EXPECT_EQ(coo.edges()[2], (Edge{1, 2, 3}));
    EXPECT_EQ(coo.edges()[3], (Edge{3, 0, 4}));
}

TEST(CooEdges, SymmetrizeDoublesEdges)
{
    CooEdges coo(3);
    coo.add(0, 1, 4);
    coo.add(1, 2, 5);
    coo.symmetrize();
    ASSERT_EQ(coo.numEdges(), 4u);
    EXPECT_EQ(coo.edges()[2], (Edge{1, 0, 4}));
    EXPECT_EQ(coo.edges()[3], (Edge{2, 1, 5}));
}

TEST(CooEdges, AddGrowsNodeUniverse)
{
    CooEdges coo;
    coo.add(5, 2);
    EXPECT_EQ(coo.numNodes(), 6u);
    coo.add(1, 9);
    EXPECT_EQ(coo.numNodes(), 10u);
}

} // namespace
} // namespace tigr::graph
