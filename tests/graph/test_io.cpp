/**
 * @file
 * Tests for graph IO: text edge lists (SNAP style) and the binary CSR
 * container, including malformed-input handling.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace tigr::graph {
namespace {

TEST(IoText, ParsesSnapStyleEdgeList)
{
    std::istringstream in(
        "# comment line\n"
        "% another comment\n"
        "0 1\n"
        "1 2 7\n"
        "\n"
        "2 0 3\n");
    CooEdges coo = loadEdgeList(in);
    ASSERT_EQ(coo.numEdges(), 3u);
    EXPECT_EQ(coo.edges()[0], (Edge{0, 1, 1}));
    EXPECT_EQ(coo.edges()[1], (Edge{1, 2, 7}));
    EXPECT_EQ(coo.edges()[2], (Edge{2, 0, 3}));
    EXPECT_EQ(coo.numNodes(), 3u);
}

TEST(IoText, ThrowsOnMalformedLine)
{
    std::istringstream in("0 1\nnot an edge\n");
    EXPECT_THROW(loadEdgeList(in), std::runtime_error);
}

TEST(IoText, RoundTrip)
{
    CooEdges original = erdosRenyi(50, 200, 13);
    std::stringstream buffer;
    saveEdgeList(original, buffer);
    CooEdges loaded = loadEdgeList(buffer);
    EXPECT_EQ(original.edges(), loaded.edges());
}

TEST(IoBinary, RoundTripExact)
{
    Csr g = GraphBuilder().build(
        rmat({.nodes = 200, .edges = 3000, .seed = 4}));
    std::stringstream buffer;
    saveCsrBinary(g, buffer);
    Csr h = loadCsrBinary(buffer);
    EXPECT_EQ(g, h);
}

TEST(IoBinary, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOTAGRPH" << std::string(64, '\0');
    EXPECT_THROW(loadCsrBinary(buffer), std::runtime_error);
}

TEST(IoBinary, RejectsTruncatedStream)
{
    Csr g = GraphBuilder().build(erdosRenyi(40, 100, 2));
    std::stringstream buffer;
    saveCsrBinary(g, buffer);
    std::string bytes = buffer.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(loadCsrBinary(truncated), std::runtime_error);
}

TEST(IoBinary, FileRoundTrip)
{
    Csr g = GraphBuilder().build(erdosRenyi(64, 256, 8));
    auto dir = std::filesystem::temp_directory_path();
    auto file = dir / "tigr_io_test.csr";
    saveCsrBinaryFile(g, file);
    Csr h = loadCsrBinaryFile(file);
    std::filesystem::remove(file);
    EXPECT_EQ(g, h);
}

TEST(IoBinary, MissingFileThrows)
{
    EXPECT_THROW(loadCsrBinaryFile("/nonexistent/tigr.csr"),
                 std::runtime_error);
}

} // namespace
} // namespace tigr::graph
