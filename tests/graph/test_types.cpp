/**
 * @file
 * Unit tests for the fundamental scalar helpers in graph/types.hpp —
 * chiefly the saturating distance arithmetic every shortest-path
 * component relies on.
 */
#include <gtest/gtest.h>

#include "graph/types.hpp"

namespace tigr {
namespace {

TEST(Types, SaturatingAddBasics)
{
    EXPECT_EQ(saturatingAdd(0, 5), 5u);
    EXPECT_EQ(saturatingAdd(10, 0), 10u);
    EXPECT_EQ(saturatingAdd(7, 8), 15u);
}

TEST(Types, SaturatingAddFromInfinityStaysInfinite)
{
    EXPECT_EQ(saturatingAdd(kInfDist, 0), kInfDist);
    EXPECT_EQ(saturatingAdd(kInfDist, 1), kInfDist);
    EXPECT_EQ(saturatingAdd(kInfDist, kInfWeight), kInfDist);
}

TEST(Types, SaturatingAddNearTheTopClamps)
{
    EXPECT_EQ(saturatingAdd(kInfDist - 1, 1), kInfDist);
    EXPECT_EQ(saturatingAdd(kInfDist - 1, kInfWeight), kInfDist);
    EXPECT_EQ(saturatingAdd(kInfDist - 2, 1), kInfDist - 1);
}

TEST(Types, SaturatingAddIsMonotone)
{
    // a <= b implies add(a, w) <= add(b, w): the property Bellman-Ford
    // convergence rests on.
    const Dist values[] = {0, 1, 1000, kInfDist - 2, kInfDist - 1,
                           kInfDist};
    const Weight weights[] = {0, 1, 64, kInfWeight};
    for (Weight w : weights) {
        for (std::size_t i = 1; i < std::size(values); ++i) {
            EXPECT_LE(saturatingAdd(values[i - 1], w),
                      saturatingAdd(values[i], w));
        }
    }
}

TEST(Types, SentinelsAreExtremes)
{
    EXPECT_EQ(kInvalidNode, std::numeric_limits<NodeId>::max());
    EXPECT_EQ(kInfDist, std::numeric_limits<Dist>::max());
    EXPECT_EQ(kInfWeight, std::numeric_limits<Weight>::max());
    EXPECT_EQ(kZeroWeight, 0u);
}

TEST(Types, ConstexprUsable)
{
    static_assert(saturatingAdd(1, 2) == 3);
    static_assert(saturatingAdd(kInfDist, 9) == kInfDist);
}

} // namespace
} // namespace tigr
