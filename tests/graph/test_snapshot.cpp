/**
 * @file
 * Snapshot container robustness: bit-exact round-trips for graphs with
 * and without virtual sections, and typed rejection of every corruption
 * mode — truncation, foreign magic, wrong version, flipped payload
 * bytes — with no undefined behavior on the way.
 */
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/snapshot.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::service {
namespace {

namespace fs = std::filesystem;

class TempDir : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tigr_snapshot_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path path(const std::string &name) const { return dir_ / name; }

    fs::path dir_;
};

using SnapshotRoundTrip = TempDir;
using SnapshotRejection = TempDir;

graph::Csr
rmatGraph()
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 30;
    options.weightSeed = 11;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 500, .edges = 5000, .seed = 11}));
}

graph::Csr
starGraph()
{
    graph::CooEdges coo(600);
    for (NodeId v = 1; v < 600; ++v)
        coo.add(0, v, v % 9 + 1);
    coo.add(5, 0, 3);
    return graph::Csr::fromCoo(coo);
}

/** Expect @p mutate to make loading @p file fail with @p kind, via
 *  both the stream and the mmap loaders. */
void
expectRejected(const fs::path &file, SnapshotErrorKind kind)
{
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        try {
            (void)loadSnapshotFile(file, mode);
            FAIL() << "expected " << snapshotErrorKindName(kind)
                   << " rejection";
        } catch (const SnapshotError &e) {
            EXPECT_EQ(e.kind(), kind)
                << "mode " << static_cast<int>(mode) << ": "
                << e.what();
        }
    }
}

std::vector<char>
readAll(const fs::path &file)
{
    std::ifstream in(file, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const fs::path &file, const std::vector<char> &bytes)
{
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST_F(SnapshotRoundTrip, EmptyGraph)
{
    const auto file = path("empty.tgs");
    saveSnapshotFile(graph::Csr{}, file);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, graph::Csr{});
        EXPECT_FALSE(loaded.hasVirtual);
    }
}

TEST_F(SnapshotRoundTrip, StarGraphBitIdentical)
{
    const graph::Csr g = starGraph();
    const auto file = path("star.tgs");
    saveSnapshotFile(g, file);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, g);
    }
}

TEST_F(SnapshotRoundTrip, RmatWithVirtualSection)
{
    const graph::Csr g = rmatGraph();
    const transform::VirtualGraph vg(
        g, 8, transform::EdgeLayout::Coalesced);
    const auto file = path("rmat.tgs");
    saveSnapshotFile(vg, file);

    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, g);
        ASSERT_TRUE(loaded.hasVirtual);
        EXPECT_EQ(loaded.virtualDegreeBound, 8u);
        EXPECT_EQ(loaded.virtualLayout,
                  transform::EdgeLayout::Coalesced);
        ASSERT_EQ(loaded.virtualNodes.size(),
                  vg.virtualNodes().size());
        for (std::size_t i = 0; i < loaded.virtualNodes.size(); ++i) {
            const auto &a = loaded.virtualNodes[i];
            const auto &b = vg.virtualNodes()[i];
            EXPECT_EQ(a.physicalId, b.physicalId);
            EXPECT_EQ(a.start, b.start);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.count, b.count);
        }
        // The persisted array rebinds into a working VirtualGraph.
        auto rebound = transform::VirtualGraph::fromArrays(
            loaded.graph, loaded.virtualDegreeBound,
            loaded.virtualLayout, loaded.virtualNodes);
        EXPECT_EQ(rebound.numVirtualNodes(), vg.numVirtualNodes());
    }
}

TEST_F(SnapshotRoundTrip, StreamRoundTripThroughMemory)
{
    const graph::Csr g = rmatGraph();
    Snapshot snapshot;
    snapshot.graph = g;
    std::ostringstream out(std::ios::binary);
    saveSnapshot(snapshot, out);
    const std::string bytes = out.str();

    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(loadSnapshot(in).graph, g);
    EXPECT_EQ(parseSnapshot(bytes.data(), bytes.size()).graph, g);
}

TEST_F(SnapshotRoundTrip, WriteIsDeterministic)
{
    const graph::Csr g = rmatGraph();
    const auto a = path("a.tgs");
    const auto b = path("b.tgs");
    saveSnapshotFile(g, a);
    saveSnapshotFile(g, b);
    EXPECT_EQ(readAll(a), readAll(b));
}

TEST_F(SnapshotRejection, TruncatedFile)
{
    const auto file = path("t.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    ASSERT_GT(bytes.size(), 100u);

    // Cut mid-payload and mid-header.
    for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                             std::size_t{100}, std::size_t{40}}) {
        std::vector<char> cut(bytes.begin(),
                              bytes.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        writeAll(file, cut);
        expectRejected(file, SnapshotErrorKind::Truncated);
    }
}

TEST_F(SnapshotRejection, BadMagic)
{
    const auto file = path("m.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes[0] = 'X';
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::BadMagic);

    // A TIGRCSR1 binary graph is not a snapshot either.
    const auto csr = path("g.csr");
    graph::saveCsrBinaryFile(starGraph(), csr);
    expectRejected(csr, SnapshotErrorKind::BadMagic);
}

TEST_F(SnapshotRejection, WrongVersion)
{
    const auto file = path("v.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes[8] = 99; // version field follows the 8-byte magic
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::BadVersion);
}

TEST_F(SnapshotRejection, CorruptedPayloadChecksum)
{
    const auto file = path("c.tgs");
    saveSnapshotFile(rmatGraph(), file);
    auto bytes = readAll(file);
    bytes[bytes.size() - 5] ^= 0x40; // flip one payload bit
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);
}

TEST_F(SnapshotRejection, CorruptedHeaderChecksum)
{
    const auto file = path("h.tgs");
    saveSnapshotFile(rmatGraph(), file);
    auto bytes = readAll(file);
    bytes[20] ^= 0x01; // flip a bit inside the node count
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);
}

TEST_F(SnapshotRejection, TrailingBytes)
{
    const auto file = path("x.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes.push_back('z');
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::Inconsistent);
}

TEST_F(SnapshotRejection, MissingFileIsIoError)
{
    try {
        (void)loadSnapshotFile(path("nope.tgs"));
        FAIL() << "expected io error";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::Io);
    }
}

TEST(SnapshotWriter, RejectsInconsistentVirtualArray)
{
    const graph::Csr g = graph::Csr::fromCoo([] {
        graph::CooEdges coo(4);
        coo.add(0, 1, 1);
        coo.add(1, 2, 1);
        return coo;
    }());
    Snapshot snapshot;
    snapshot.graph = g;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 4;
    snapshot.virtualNodes = {
        transform::VirtualNode{99, 0, 1, 1}}; // bad physical id
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(saveSnapshot(snapshot, out), std::invalid_argument);
}

TEST(SnapshotChecksum, Fnv1a64KnownVectorsAndChaining)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(graph::fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(graph::fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(graph::fnv1a64("foobar", 6), 0x85944171f73967e8ull);
    // Chaining ranges equals hashing the concatenation.
    const std::uint64_t part = graph::fnv1a64("foo", 3);
    EXPECT_EQ(graph::fnv1a64("bar", 3, part),
              graph::fnv1a64("foobar", 6));
}

} // namespace
} // namespace tigr::service
