/**
 * @file
 * Snapshot container robustness: bit-exact round-trips for graphs with
 * and without virtual sections, and typed rejection of every corruption
 * mode — truncation, foreign magic, wrong version, flipped payload
 * bytes — with no undefined behavior on the way.
 */
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/mutation.hpp"
#include "fault/fault.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/graph_store.hpp"
#include "service/journal.hpp"
#include "service/snapshot.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::service {
namespace {

namespace fs = std::filesystem;

class TempDir : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tigr_snapshot_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path path(const std::string &name) const { return dir_ / name; }

    fs::path dir_;
};

using SnapshotRoundTrip = TempDir;
using SnapshotRejection = TempDir;

graph::Csr
rmatGraph()
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 30;
    options.weightSeed = 11;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 500, .edges = 5000, .seed = 11}));
}

graph::Csr
starGraph()
{
    graph::CooEdges coo(600);
    for (NodeId v = 1; v < 600; ++v)
        coo.add(0, v, v % 9 + 1);
    coo.add(5, 0, 3);
    return graph::Csr::fromCoo(coo);
}

/** Expect @p mutate to make loading @p file fail with @p kind, via
 *  both the stream and the mmap loaders. */
void
expectRejected(const fs::path &file, SnapshotErrorKind kind)
{
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        try {
            (void)loadSnapshotFile(file, mode);
            FAIL() << "expected " << snapshotErrorKindName(kind)
                   << " rejection";
        } catch (const SnapshotError &e) {
            EXPECT_EQ(e.kind(), kind)
                << "mode " << static_cast<int>(mode) << ": "
                << e.what();
        }
    }
}

std::vector<char>
readAll(const fs::path &file)
{
    std::ifstream in(file, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const fs::path &file, const std::vector<char> &bytes)
{
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST_F(SnapshotRoundTrip, EmptyGraph)
{
    const auto file = path("empty.tgs");
    saveSnapshotFile(graph::Csr{}, file);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, graph::Csr{});
        EXPECT_FALSE(loaded.hasVirtual);
    }
}

TEST_F(SnapshotRoundTrip, StarGraphBitIdentical)
{
    const graph::Csr g = starGraph();
    const auto file = path("star.tgs");
    saveSnapshotFile(g, file);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, g);
    }
}

TEST_F(SnapshotRoundTrip, RmatWithVirtualSection)
{
    const graph::Csr g = rmatGraph();
    const transform::VirtualGraph vg(
        g, 8, transform::EdgeLayout::Coalesced);
    const auto file = path("rmat.tgs");
    saveSnapshotFile(vg, file);

    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, g);
        ASSERT_TRUE(loaded.hasVirtual);
        EXPECT_EQ(loaded.virtualDegreeBound, 8u);
        EXPECT_EQ(loaded.virtualLayout,
                  transform::EdgeLayout::Coalesced);
        ASSERT_EQ(loaded.virtualNodes.size(),
                  vg.virtualNodes().size());
        for (std::size_t i = 0; i < loaded.virtualNodes.size(); ++i) {
            const auto &a = loaded.virtualNodes[i];
            const auto &b = vg.virtualNodes()[i];
            EXPECT_EQ(a.physicalId, b.physicalId);
            EXPECT_EQ(a.start, b.start);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.count, b.count);
        }
        // The persisted array rebinds into a working VirtualGraph.
        auto rebound = transform::VirtualGraph::fromArrays(
            loaded.graph, loaded.virtualDegreeBound,
            loaded.virtualLayout, loaded.virtualNodes);
        EXPECT_EQ(rebound.numVirtualNodes(), vg.numVirtualNodes());
    }
}

TEST_F(SnapshotRoundTrip, StreamRoundTripThroughMemory)
{
    const graph::Csr g = rmatGraph();
    Snapshot snapshot;
    snapshot.graph = g;
    std::ostringstream out(std::ios::binary);
    saveSnapshot(snapshot, out);
    const std::string bytes = out.str();

    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(loadSnapshot(in).graph, g);
    EXPECT_EQ(parseSnapshot(bytes.data(), bytes.size()).graph, g);
}

TEST_F(SnapshotRoundTrip, WriteIsDeterministic)
{
    const graph::Csr g = rmatGraph();
    const auto a = path("a.tgs");
    const auto b = path("b.tgs");
    saveSnapshotFile(g, a);
    saveSnapshotFile(g, b);
    EXPECT_EQ(readAll(a), readAll(b));
}

TEST_F(SnapshotRejection, TruncatedFile)
{
    const auto file = path("t.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    ASSERT_GT(bytes.size(), 100u);

    // Cut mid-payload and mid-header.
    for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                             std::size_t{100}, std::size_t{40}}) {
        std::vector<char> cut(bytes.begin(),
                              bytes.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        writeAll(file, cut);
        expectRejected(file, SnapshotErrorKind::Truncated);
    }
}

TEST_F(SnapshotRejection, BadMagic)
{
    const auto file = path("m.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes[0] = 'X';
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::BadMagic);

    // A TIGRCSR1 binary graph is not a snapshot either.
    const auto csr = path("g.csr");
    graph::saveCsrBinaryFile(starGraph(), csr);
    expectRejected(csr, SnapshotErrorKind::BadMagic);
}

TEST_F(SnapshotRejection, WrongVersion)
{
    const auto file = path("v.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes[8] = 99; // version field follows the 8-byte magic
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::BadVersion);
}

TEST_F(SnapshotRejection, CorruptedPayloadChecksum)
{
    const auto file = path("c.tgs");
    saveSnapshotFile(rmatGraph(), file);
    auto bytes = readAll(file);
    bytes[bytes.size() - 5] ^= 0x40; // flip one payload bit
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);
}

TEST_F(SnapshotRejection, CorruptedHeaderChecksum)
{
    const auto file = path("h.tgs");
    saveSnapshotFile(rmatGraph(), file);
    auto bytes = readAll(file);
    bytes[20] ^= 0x01; // flip a bit inside the node count
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);
}

TEST_F(SnapshotRejection, TrailingBytes)
{
    const auto file = path("x.tgs");
    saveSnapshotFile(starGraph(), file);
    auto bytes = readAll(file);
    bytes.push_back('z');
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::Inconsistent);
}

TEST_F(SnapshotRejection, MissingFileIsIoError)
{
    try {
        (void)loadSnapshotFile(path("nope.tgs"));
        FAIL() << "expected io error";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::Io);
    }
}

TEST(SnapshotWriter, RejectsInconsistentVirtualArray)
{
    const graph::Csr g = graph::Csr::fromCoo([] {
        graph::CooEdges coo(4);
        coo.add(0, 1, 1);
        coo.add(1, 2, 1);
        return coo;
    }());
    Snapshot snapshot;
    snapshot.graph = g;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 4;
    snapshot.virtualNodes = {
        transform::VirtualNode{99, 0, 1, 1}}; // bad physical id
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(saveSnapshot(snapshot, out), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Crash-consistent writes, directory audit, and hostile-byte hardening.

using SnapshotDurability = TempDir;
using SnapshotAudit = TempDir;
using SnapshotHostileBytes = TempDir;

/** A tiny graph whose node 0 splits into exactly two virtual nodes at
 *  degree bound 2 — small enough to patch by hand. */
graph::Csr
splitGraph()
{
    graph::CooEdges coo(5);
    for (NodeId v = 1; v < 5; ++v)
        coo.add(0, v, 1);
    return graph::Csr::fromCoo(coo);
}

/** Recompute both checksums after a deliberate payload patch, so the
 *  file is "what a sane-looking writer wrote" and only the structural
 *  validators can reject it. Offsets mirror the TIGRSNP2 header. */
void
rewriteChecksums(std::vector<char> &bytes)
{
    constexpr std::size_t kHeaderBytes = 88;
    constexpr std::size_t kPayloadChecksumAt = 72;
    constexpr std::size_t kHeaderChecksumAt = 80;
    ASSERT_GE(bytes.size(), kHeaderBytes);
    const std::uint64_t payload = graph::fnv1a64(
        bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
    std::memcpy(bytes.data() + kPayloadChecksumAt, &payload,
                sizeof(payload));
    const std::uint64_t header =
        graph::fnv1a64(bytes.data(), kHeaderChecksumAt);
    std::memcpy(bytes.data() + kHeaderChecksumAt, &header,
                sizeof(header));
}

/** Byte offset of the virtual-node `starts` array in a splitGraph()
 *  snapshot: header, row offsets, columns, weights, physical ids. */
std::size_t
splitGraphStartsOffset(std::size_t num_virtual)
{
    return 88 + 6 * sizeof(EdgeIndex) + 4 * sizeof(NodeId) +
           4 * sizeof(Weight) + num_virtual * sizeof(NodeId);
}

TEST_F(SnapshotDurability, NoTempFileSurvivesASuccessfulWrite)
{
    const auto file = path("g.tgs");
    saveSnapshotFile(starGraph(), file);
    EXPECT_TRUE(fs::exists(file));
    EXPECT_FALSE(fs::exists(path("g.tgs.tmp")));

    // Overwriting an existing snapshot goes through the same rename.
    const graph::Csr replacement = rmatGraph();
    saveSnapshotFile(replacement, file);
    EXPECT_FALSE(fs::exists(path("g.tgs.tmp")));
    EXPECT_EQ(loadSnapshotFile(file).graph, replacement);
}

TEST_F(SnapshotDurability, FailedWriteLeavesNoTempFile)
{
    Snapshot bad;
    bad.graph = splitGraph();
    bad.hasVirtual = true;
    bad.virtualDegreeBound = 2;
    bad.virtualNodes = {transform::VirtualNode{99, 0, 1, 2}};
    const auto file = path("bad.tgs");
    EXPECT_THROW(saveSnapshotFile(bad, file), std::invalid_argument);
    EXPECT_FALSE(fs::exists(file));
    EXPECT_FALSE(fs::exists(path("bad.tgs.tmp")));
}

TEST_F(SnapshotAudit, QuarantinesPartialAndCorruptFiles)
{
    saveSnapshotFile(starGraph(), path("good.tgs"));

    // A corrupt snapshot (as after a torn in-place write).
    saveSnapshotFile(rmatGraph(), path("torn.tgs"));
    auto bytes = readAll(path("torn.tgs"));
    bytes[bytes.size() - 9] ^= 0x10;
    writeAll(path("torn.tgs"), bytes);

    // A leftover temp file (as after a crash mid-save).
    writeAll(path("crash.tgs.tmp"), {'p', 'a', 'r', 't'});

    // An unrelated file the audit must leave alone.
    writeAll(path("notes.txt"), {'h', 'i'});

    const SnapshotAuditReport report = auditSnapshotDirectory(dir_);
    ASSERT_EQ(report.intact.size(), 1u);
    EXPECT_EQ(report.intact[0], path("good.tgs"));
    ASSERT_EQ(report.quarantined.size(), 2u);

    EXPECT_FALSE(fs::exists(path("torn.tgs")));
    EXPECT_TRUE(fs::exists(path("torn.tgs.quarantined")));
    EXPECT_FALSE(fs::exists(path("crash.tgs.tmp")));
    EXPECT_TRUE(fs::exists(path("crash.tgs.tmp.quarantined")));
    EXPECT_TRUE(fs::exists(path("notes.txt")));

    // A second audit finds a clean directory.
    const SnapshotAuditReport again = auditSnapshotDirectory(dir_);
    EXPECT_EQ(again.intact.size(), 1u);
    EXPECT_TRUE(again.quarantined.empty());
}

TEST_F(SnapshotAudit, GraphStoreRegistersOnlyIntactSnapshots)
{
    saveSnapshotFile(starGraph(), path("star.tgs"));
    saveSnapshotFile(rmatGraph(), path("rmat.tgs"));
    auto bytes = readAll(path("rmat.tgs"));
    bytes[90] ^= 0x02;
    writeAll(path("rmat.tgs"), bytes);

    GraphStore store;
    const SnapshotAuditReport report = store.addSnapshotDirectory(dir_);
    EXPECT_EQ(report.intact.size(), 1u);
    EXPECT_EQ(report.quarantined.size(), 1u);
    ASSERT_NE(store.find("star"), nullptr);
    EXPECT_EQ(store.find("star")->graph, starGraph());
    EXPECT_EQ(store.find("rmat"), nullptr);
}

TEST(MutationLogPath, SidecarPathEdgeCases)
{
    EXPECT_EQ(mutationLogPathFor("dir/g.tgs"), fs::path("dir/g.tml"));
    // Extensionless names get the extension appended, not substituted.
    EXPECT_EQ(mutationLogPathFor("g"), fs::path("g.tml"));
    // A dotfile counts as extensionless: ".hidden" is a stem, not an
    // extension, so the sidecar is ".hidden.tml" — never ".tml".
    EXPECT_EQ(mutationLogPathFor(".hidden"), fs::path(".hidden.tml"));
    // Multi-dot names replace only the final extension.
    EXPECT_EQ(mutationLogPathFor("a.b.tgs"), fs::path("a.b.tml"));
    // A trailing separator names a directory — there is no snapshot to
    // derive a sidecar from.
    EXPECT_THROW(mutationLogPathFor("dir/"), std::invalid_argument);
    EXPECT_THROW(mutationLogPathFor(""), std::invalid_argument);
}

TEST_F(SnapshotAudit, SidecarsShareTheirSnapshotsVerdict)
{
    // A valid mutation log beside an intact snapshot is admitted; the
    // same bytes under a stem with no intact snapshot are an orphan.
    saveSnapshotFile(starGraph(), path("star.tgs"));
    dynamic::MutationLog log;
    log.append({{dynamic::MutationKind::InsertEdge, 1, 2, 3}});
    {
        std::ofstream out(path("star.tml"));
        log.save(out);
    }
    {
        std::ofstream out(path("ghost.tml"));
        log.save(out);
    }
    // A journal beside an intact snapshot with a healthy header is
    // admitted even though it is empty of records.
    JournalWriter::create(path("star.twj"), 0, SyncPolicy::Unsynced);

    const SnapshotAuditReport report = auditSnapshotDirectory(dir_);
    ASSERT_EQ(report.intact.size(), 1u);
    ASSERT_EQ(report.mutationLogs.size(), 1u);
    EXPECT_EQ(report.mutationLogs[0], path("star.tml"));
    ASSERT_EQ(report.journals.size(), 1u);
    EXPECT_EQ(report.journals[0], path("star.twj"));
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_TRUE(fs::exists(path("ghost.tml.quarantined")));
    EXPECT_TRUE(fs::exists(path("star.tml")));
}

TEST_F(SnapshotRejection, EverySingleBitFlipIsCaught)
{
    const graph::Csr g = rmatGraph();
    const transform::VirtualGraph vg(
        g, 8, transform::EdgeLayout::Coalesced);
    const auto file = path("flip.tgs");
    saveSnapshotFile(vg, file);
    const std::vector<char> pristine = readAll(file);

    // Every header byte, plus a stride through the payload.
    std::vector<std::size_t> offsets;
    for (std::size_t i = 0; i < 88; ++i)
        offsets.push_back(i);
    for (std::size_t i = 88; i < pristine.size(); i += 97)
        offsets.push_back(i);

    for (std::size_t offset : offsets) {
        SCOPED_TRACE("bit flip at byte " + std::to_string(offset));
        std::vector<char> bytes = pristine;
        bytes[offset] ^= 0x08;
        writeAll(file, bytes);
        for (auto mode :
             {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
            EXPECT_THROW((void)loadSnapshotFile(file, mode),
                         SnapshotError);
        }
    }

    writeAll(file, pristine);
    EXPECT_EQ(loadSnapshotFile(file).graph, g);
}

TEST_F(SnapshotHostileBytes, OverlappingVirtualSlotsAreRejected)
{
    const graph::Csr g = splitGraph();
    const transform::VirtualGraph vg(
        g, 2, transform::EdgeLayout::Consecutive);
    // One virtual node per low-degree physical node plus the split of
    // node 0 into two.
    ASSERT_EQ(vg.numVirtualNodes(), 6u);
    ASSERT_EQ(vg.virtualNodes()[1].physicalId, 0u);
    const auto file = path("overlap.tgs");
    saveSnapshotFile(vg, file);
    auto bytes = readAll(file);

    // Point the second virtual node's start at the first one's slots.
    const std::size_t starts = splitGraphStartsOffset(6);
    const EdgeIndex zero = 0;
    std::memcpy(bytes.data() + starts + sizeof(EdgeIndex), &zero,
                sizeof(zero));
    rewriteChecksums(bytes);
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::Inconsistent);
}

TEST_F(SnapshotHostileBytes, WrappingStrideIsRejected)
{
    const graph::Csr g = splitGraph();
    const transform::VirtualGraph vg(
        g, 2, transform::EdgeLayout::Consecutive);
    const auto file = path("stride.tgs");
    saveSnapshotFile(vg, file);
    auto bytes = readAll(file);

    // A stride that wraps start + stride * (count - 1) back inside the
    // segment must not pass containment via uint64 overflow.
    const std::size_t strides =
        splitGraphStartsOffset(6) + 6 * sizeof(EdgeIndex);
    const EdgeIndex huge = std::numeric_limits<EdgeIndex>::max();
    std::memcpy(bytes.data() + strides + sizeof(EdgeIndex), &huge,
                sizeof(huge));
    rewriteChecksums(bytes);
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::Inconsistent);
}

TEST_F(SnapshotHostileBytes, FromArraysRejectsWrappingStride)
{
    const graph::Csr g = splitGraph();
    const transform::VirtualGraph vg(
        g, 2, transform::EdgeLayout::Consecutive);
    std::vector<transform::VirtualNode> nodes(
        vg.virtualNodes().begin(), vg.virtualNodes().end());
    ASSERT_EQ(nodes.size(), 6u);
    ASSERT_EQ(nodes[1].physicalId, 0u);
    ASSERT_EQ(nodes[1].count, 2u);
    nodes[1].stride = std::numeric_limits<EdgeIndex>::max();
    EXPECT_THROW((void)transform::VirtualGraph::fromArrays(
                     g, 2, transform::EdgeLayout::Consecutive, nodes),
                 std::invalid_argument);
}

TEST_F(SnapshotRejection, InjectedReadFaultsSurfaceAsIoErrors)
{
    const auto file = path("fault.tgs");
    saveSnapshotFile(starGraph(), file);

    fault::FaultPlan plan(31);
    plan.site(fault::Site::SnapshotRead, 1.0);
    plan.site(fault::Site::SnapshotMmap, 1.0);
    {
        fault::FaultScope scope(plan, /*scope=*/1);
        for (auto mode :
             {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
            try {
                (void)loadSnapshotFile(file, mode);
                FAIL() << "expected an injected io error";
            } catch (const SnapshotError &e) {
                EXPECT_EQ(e.kind(), SnapshotErrorKind::Io);
                EXPECT_NE(std::string(e.what()).find("injected"),
                          std::string::npos);
            }
        }
    }
    // Disarmed again: the same file loads cleanly.
    EXPECT_EQ(loadSnapshotFile(file).graph, starGraph());
}

// ---------------------------------------------------------------------
// Legacy-format compatibility: v2 snapshots (80-byte header, no epoch
// field) predate the dynamic subsystem and must keep loading, with
// epoch defaulting to 0.

using SnapshotLegacy = TempDir;

/** Serialize @p snapshot in the legacy v2 container format, exactly as
 *  a pre-epoch build's saveSnapshot() wrote it. */
std::vector<char>
legacyV2Bytes(const Snapshot &snapshot)
{
    struct V2Header
    {
        char magic[8];
        std::uint32_t version;
        std::uint32_t flags;
        std::uint64_t numNodes;
        std::uint64_t numEdges;
        std::uint64_t numVirtualNodes;
        std::uint32_t virtualDegreeBound;
        std::uint32_t virtualLayout;
        std::uint64_t payloadOffset;
        std::uint64_t payloadBytes;
        std::uint64_t payloadChecksum;
        std::uint64_t headerChecksum;
    };
    static_assert(sizeof(V2Header) == 80);

    const graph::Csr &g = snapshot.graph;
    const std::size_t nv =
        snapshot.hasVirtual ? snapshot.virtualNodes.size() : 0;
    std::vector<NodeId> phys(nv);
    std::vector<EdgeIndex> starts(nv);
    std::vector<EdgeIndex> strides(nv);
    std::vector<std::uint32_t> counts(nv);
    for (std::size_t i = 0; i < nv; ++i) {
        phys[i] = snapshot.virtualNodes[i].physicalId;
        starts[i] = snapshot.virtualNodes[i].start;
        strides[i] = snapshot.virtualNodes[i].stride;
        counts[i] = snapshot.virtualNodes[i].count;
    }

    V2Header h{};
    std::memcpy(h.magic, "TIGRSNP2", 8);
    h.version = 2;
    h.flags = snapshot.hasVirtual ? 1u : 0u;
    h.numNodes = g.numNodes();
    h.numEdges = g.numEdges();
    h.numVirtualNodes = nv;
    h.virtualDegreeBound = snapshot.virtualDegreeBound;
    h.virtualLayout =
        snapshot.virtualLayout == transform::EdgeLayout::Coalesced ? 1
                                                                   : 0;
    h.payloadOffset = sizeof(V2Header);
    h.payloadBytes = (h.numNodes + 1) * sizeof(EdgeIndex) +
                     h.numEdges * (sizeof(NodeId) + sizeof(Weight)) +
                     nv * (sizeof(NodeId) + 2 * sizeof(EdgeIndex) +
                           sizeof(std::uint32_t));

    auto hash = [](std::uint64_t seed, const auto &vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        return graph::fnv1a64(vec.data(), vec.size() * sizeof(T), seed);
    };
    std::uint64_t checksum = graph::kFnv1aBasis;
    checksum = hash(checksum, g.rowOffsets());
    checksum = hash(checksum, g.colIndices());
    checksum = hash(checksum, g.weights());
    if (snapshot.hasVirtual) {
        checksum = hash(checksum, phys);
        checksum = hash(checksum, starts);
        checksum = hash(checksum, strides);
        checksum = hash(checksum, counts);
    }
    h.payloadChecksum = checksum;
    h.headerChecksum =
        graph::fnv1a64(&h, sizeof(V2Header) - sizeof(std::uint64_t));

    std::vector<char> bytes;
    auto append = [&](const void *data, std::size_t n) {
        const char *p = static_cast<const char *>(data);
        bytes.insert(bytes.end(), p, p + n);
    };
    auto appendVec = [&](const auto &vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        append(vec.data(), vec.size() * sizeof(T));
    };
    append(&h, sizeof(V2Header));
    appendVec(g.rowOffsets());
    appendVec(g.colIndices());
    appendVec(g.weights());
    if (snapshot.hasVirtual) {
        appendVec(phys);
        appendVec(starts);
        appendVec(strides);
        appendVec(counts);
    }
    return bytes;
}

TEST_F(SnapshotLegacy, V2BytesLoadWithEpochZero)
{
    const graph::Csr g = rmatGraph();
    const transform::VirtualGraph vg(
        g, 8, transform::EdgeLayout::Coalesced);
    Snapshot snapshot;
    snapshot.graph = g;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 8;
    snapshot.virtualLayout = transform::EdgeLayout::Coalesced;
    snapshot.virtualNodes.assign(vg.virtualNodes().begin(),
                                 vg.virtualNodes().end());
    const std::vector<char> bytes = legacyV2Bytes(snapshot);

    const auto file = path("legacy.tgs");
    writeAll(file, bytes);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, g);
        EXPECT_EQ(loaded.epoch, 0u);
        ASSERT_TRUE(loaded.hasVirtual);
        ASSERT_EQ(loaded.virtualNodes.size(), vg.virtualNodes().size());
        for (std::size_t i = 0; i < loaded.virtualNodes.size(); ++i)
            EXPECT_TRUE(loaded.virtualNodes[i] == vg.virtualNodes()[i]);
    }
}

TEST_F(SnapshotLegacy, V2CorruptionIsStillRejected)
{
    Snapshot snapshot;
    snapshot.graph = starGraph();
    std::vector<char> bytes = legacyV2Bytes(snapshot);

    auto flipped = bytes;
    flipped[20] ^= 0x01; // node count: header checksum must catch it
    const auto file = path("l.tgs");
    writeAll(file, flipped);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);

    flipped = bytes;
    flipped[flipped.size() - 5] ^= 0x40; // payload bit
    writeAll(file, flipped);
    expectRejected(file, SnapshotErrorKind::ChecksumMismatch);

    bytes.resize(70); // mid-header cut
    writeAll(file, bytes);
    expectRejected(file, SnapshotErrorKind::Truncated);
}

TEST(SnapshotLegacyFixture, CheckedInV2FileLoads)
{
    // tests/graph/fixtures/legacy_v2.tgs holds splitGraph() plus its
    // K=2 consecutive virtual array, serialized by a pre-epoch build.
    const fs::path file =
        fs::path(TIGR_SNAPSHOT_FIXTURE_DIR) / "legacy_v2.tgs";
    ASSERT_TRUE(fs::exists(file)) << file;
    const graph::Csr expect = splitGraph();
    const transform::VirtualGraph vg(
        expect, 2, transform::EdgeLayout::Consecutive);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap}) {
        Snapshot loaded = loadSnapshotFile(file, mode);
        EXPECT_EQ(loaded.graph, expect);
        EXPECT_EQ(loaded.epoch, 0u);
        ASSERT_TRUE(loaded.hasVirtual);
        EXPECT_EQ(loaded.virtualDegreeBound, 2u);
        EXPECT_EQ(loaded.virtualLayout,
                  transform::EdgeLayout::Consecutive);
        ASSERT_EQ(loaded.virtualNodes.size(),
                  static_cast<std::size_t>(vg.numVirtualNodes()));
        for (std::size_t i = 0; i < loaded.virtualNodes.size(); ++i)
            EXPECT_TRUE(loaded.virtualNodes[i] == vg.virtualNodes()[i]);
    }
}

TEST_F(SnapshotLegacy, EpochRoundTripsThroughV3)
{
    Snapshot snapshot;
    snapshot.graph = starGraph();
    snapshot.epoch = 42;
    const auto file = path("epoch.tgs");
    saveSnapshotFile(snapshot, file);
    for (auto mode :
         {SnapshotLoadMode::Stream, SnapshotLoadMode::Mmap})
        EXPECT_EQ(loadSnapshotFile(file, mode).epoch, 42u);
}

TEST(SnapshotChecksum, Fnv1a64KnownVectorsAndChaining)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(graph::fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(graph::fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(graph::fnv1a64("foobar", 6), 0x85944171f73967e8ull);
    // Chaining ranges equals hashing the concatenation.
    const std::uint64_t part = graph::fnv1a64("foo", 3);
    EXPECT_EQ(graph::fnv1a64("bar", 3, part),
              graph::fnv1a64("foobar", 6));
}

} // namespace
} // namespace tigr::service
