/**
 * @file
 * Tests of node reordering: permutation plumbing and degree sorting
 * (the classic alternative warp-balancing mitigation the ablation
 * benchmark compares Tigr against).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "ref/oracles.hpp"

namespace tigr::graph {
namespace {

Csr
testGraph(std::uint64_t seed)
{
    BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 20;
    options.weightSeed = seed;
    return GraphBuilder(options).build(
        rmat({.nodes = 256, .edges = 3000, .seed = seed}));
}

std::vector<Edge>
sortedEdges(const Csr &g)
{
    auto edges = g.toCoo().edges();
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  return std::tie(a.src, a.dst, a.weight) <
                         std::tie(b.src, b.dst, b.weight);
              });
    return edges;
}

TEST(Reorder, PermutationMapsAreInverse)
{
    Csr g = testGraph(1);
    Reordering r = sortByDegreeDescending(g);
    ASSERT_EQ(r.newId.size(), g.numNodes());
    ASSERT_EQ(r.oldId.size(), g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EXPECT_EQ(r.oldId[r.newId[v]], v);
        EXPECT_EQ(r.newId[r.oldId[v]], v);
    }
}

TEST(Reorder, DegreesNonIncreasingAfterSort)
{
    Csr g = testGraph(2);
    Reordering r = sortByDegreeDescending(g);
    for (NodeId v = 1; v < r.graph.numNodes(); ++v)
        EXPECT_LE(r.graph.degree(v), r.graph.degree(v - 1));
}

TEST(Reorder, EdgeMultisetPreservedUpToRelabeling)
{
    Csr g = testGraph(3);
    Reordering r = sortByDegreeDescending(g);
    EXPECT_EQ(r.graph.numNodes(), g.numNodes());
    EXPECT_EQ(r.graph.numEdges(), g.numEdges());

    // Relabel the reordered graph back and compare edge multisets.
    Reordering back = applyPermutation(r.graph, r.oldId);
    EXPECT_EQ(sortedEdges(back.graph), sortedEdges(g));
}

TEST(Reorder, DegreeStatsInvariant)
{
    Csr g = testGraph(4);
    Reordering r = sortByDegreeDescending(g);
    DegreeStats before = degreeStats(g);
    DegreeStats after = degreeStats(r.graph);
    EXPECT_EQ(before.maxDegree, after.maxDegree);
    EXPECT_DOUBLE_EQ(before.meanDegree, after.meanDegree);
    EXPECT_NEAR(before.gini, after.gini, 1e-12);
}

TEST(Reorder, SortingImprovesIntraWarpBalance)
{
    // The whole point of the alternative mitigation: same graph, less
    // SIMD-lane waste once similar-degree nodes share warps.
    Csr g = GraphBuilder().build(
        rmat({.nodes = 4096, .edges = 50000, .seed = 5}));
    Reordering r = sortByDegreeDescending(g);
    EXPECT_LT(warpLoadImbalance(r.graph), warpLoadImbalance(g));
}

TEST(Reorder, SsspResultsMapThroughThePermutation)
{
    Csr g = testGraph(6);
    Reordering r = sortByDegreeDescending(g);
    auto original = ref::dijkstra(g, 7);
    auto relabeled = ref::dijkstra(r.graph, r.newId[7]);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(relabeled[r.newId[v]], original[v]) << "node " << v;
}

TEST(Reorder, IdentityPermutationIsNoop)
{
    Csr g = testGraph(7);
    std::vector<NodeId> identity(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        identity[v] = v;
    Reordering r = applyPermutation(g, identity);
    EXPECT_EQ(r.graph, g);
}

TEST(Reorder, SortIsDeterministic)
{
    Csr g = testGraph(8);
    Reordering a = sortByDegreeDescending(g);
    Reordering b = sortByDegreeDescending(g);
    EXPECT_EQ(a.graph, b.graph);
    EXPECT_EQ(a.newId, b.newId);
}

} // namespace
} // namespace tigr::graph
