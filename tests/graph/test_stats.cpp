/**
 * @file
 * Tests for degree statistics and irregularity metrics, including the
 * warp-load-imbalance estimator that motivates the whole paper.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace tigr::graph {
namespace {

TEST(Stats, EmptyGraph)
{
    DegreeStats s = degreeStats(Csr{});
    EXPECT_EQ(s.numNodes, 0u);
    EXPECT_EQ(s.gini, 0.0);
}

TEST(Stats, RegularGraphHasZeroGiniAndCv)
{
    DegreeStats s = degreeStats(Csr::fromCoo(ring(128)));
    EXPECT_EQ(s.minDegree, 1u);
    EXPECT_EQ(s.maxDegree, 1u);
    EXPECT_NEAR(s.gini, 0.0, 1e-9);
    EXPECT_NEAR(s.coefficientOfVariation, 0.0, 1e-9);
}

TEST(Stats, StarGraphGiniApproachesOne)
{
    DegreeStats s = degreeStats(Csr::fromCoo(star(1000)));
    EXPECT_GT(s.gini, 0.99);
    EXPECT_EQ(s.maxDegree, 999u);
    EXPECT_EQ(s.medianDegree, 0u);
}

TEST(Stats, MeanDegreeMatchesEdgeCount)
{
    Csr g = GraphBuilder().build(erdosRenyi(100, 700, 1));
    DegreeStats s = degreeStats(g);
    EXPECT_NEAR(s.meanDegree,
                static_cast<double>(g.numEdges()) / 100.0, 1e-12);
}

TEST(Stats, PercentilesOrdered)
{
    Csr g = GraphBuilder().build(
        rmat({.nodes = 2048, .edges = 30000, .seed = 6}));
    DegreeStats s = degreeStats(g);
    EXPECT_LE(s.minDegree, s.medianDegree);
    EXPECT_LE(s.medianDegree, s.p90Degree);
    EXPECT_LE(s.p90Degree, s.p99Degree);
    EXPECT_LE(s.p99Degree, s.maxDegree);
}

TEST(Stats, HistogramSumsToNodeCount)
{
    Csr g = GraphBuilder().build(erdosRenyi(500, 3000, 9));
    auto histogram = degreeHistogram(g);
    auto total = std::accumulate(histogram.begin(), histogram.end(),
                                 std::uint64_t{0});
    EXPECT_EQ(total, 500u);
    EXPECT_EQ(histogram.size(), g.maxOutDegree() + 1);
}

TEST(Stats, PowerLawExponentOfRmatInPlausibleRange)
{
    Csr g = GraphBuilder().build(
        rmat({.nodes = 8192, .edges = 120000, .seed = 2}));
    double alpha = powerLawExponent(g, 4);
    EXPECT_GT(alpha, 1.2);
    EXPECT_LT(alpha, 4.0);
}

TEST(Stats, DiameterOfPath)
{
    Csr g = Csr::fromCoo(path(50));
    // The directed path's longest shortest path is 49 hops.
    EXPECT_EQ(estimateDiameter(g, 16), 49u);
}

TEST(Stats, DiameterOfCompleteGraphIsOne)
{
    Csr g = Csr::fromCoo(complete(32));
    EXPECT_EQ(estimateDiameter(g), 1u);
}

TEST(Stats, WarpImbalanceZeroForRegularGraph)
{
    Csr g = Csr::fromCoo(ring(256));
    EXPECT_NEAR(warpLoadImbalance(g), 0.0, 1e-12);
}

TEST(Stats, WarpImbalanceHighForSkewedGraph)
{
    // One hub of degree 999 shares a warp with 31 degree-0 nodes.
    Csr g = Csr::fromCoo(star(1000));
    double imbalance = warpLoadImbalance(g);
    EXPECT_GT(imbalance, 0.9);
}

TEST(Stats, WarpImbalanceSkewedAboveUniform)
{
    Csr skewed = GraphBuilder().build(
        rmat({.nodes = 4096, .edges = 40000, .seed = 1}));
    Csr uniform = GraphBuilder().build(erdosRenyi(4096, 40000, 1));
    EXPECT_GT(warpLoadImbalance(skewed), warpLoadImbalance(uniform));
}

} // namespace
} // namespace tigr::graph
