/**
 * @file
 * Tests of the Matrix Market loader and the structural validators,
 * including failure injection for malformed external data.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.hpp"
#include "graph/validate.hpp"

namespace tigr::graph {
namespace {

TEST(MatrixMarket, GeneralIntegerMatrix)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "% a comment\n"
        "3 3 4\n"
        "1 2 5\n"
        "2 3 7\n"
        "3 1 2\n"
        "1 3 9\n");
    CooEdges coo = loadMatrixMarket(in);
    ASSERT_EQ(coo.numEdges(), 4u);
    EXPECT_EQ(coo.numNodes(), 3u);
    EXPECT_EQ(coo.edges()[0], (Edge{0, 1, 5}));
    EXPECT_EQ(coo.edges()[3], (Edge{0, 2, 9}));
}

TEST(MatrixMarket, SymmetricMirrorsOffDiagonal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "4 4 3\n"
        "2 1\n"
        "3 3\n"
        "4 2\n");
    CooEdges coo = loadMatrixMarket(in);
    // Two off-diagonal entries mirrored + one diagonal kept single.
    ASSERT_EQ(coo.numEdges(), 5u);
    EXPECT_EQ(coo.edges()[0], (Edge{1, 0, 1}));
    EXPECT_EQ(coo.edges()[1], (Edge{0, 1, 1}));
    EXPECT_EQ(coo.edges()[2], (Edge{2, 2, 1}));
}

TEST(MatrixMarket, RealValuesRound)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 2 3.7\n"
        "2 1 0.2\n");
    CooEdges coo = loadMatrixMarket(in);
    EXPECT_EQ(coo.edges()[0].weight, 4u);
    EXPECT_EQ(coo.edges()[1].weight, 1u); // sub-unit loads as 1
}

TEST(MatrixMarket, RejectsWrongBanner)
{
    std::istringstream in("%%NotMatrixMarket matrix coordinate\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsDenseFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsUnsupportedField)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "3 1\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsZeroBasedEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "0 1\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedStream)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 5\n"
        "1 2\n");
    EXPECT_THROW(loadMatrixMarket(in), std::runtime_error);
}

TEST(Validate, AcceptsWellFormedCoo)
{
    CooEdges coo(4);
    coo.add(0, 3);
    coo.add(2, 1);
    EXPECT_EQ(validateCoo(coo), std::nullopt);
}

TEST(Validate, AcceptsWellFormedCsr)
{
    CooEdges coo(4);
    coo.add(0, 3);
    coo.add(2, 1);
    EXPECT_EQ(validateCsr(Csr::fromCoo(coo)), std::nullopt);
}

TEST(Validate, RejectsTargetOutOfRange)
{
    // Hand-assemble a CSR whose edge targets a nonexistent node.
    Csr bad({0, 1}, {5}, {1});
    auto error = validateCsr(bad);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("targets node 5"), std::string::npos);
}

TEST(Validate, RejectsWeightArrayMismatch)
{
    // The Csr constructor asserts in debug; build the arrays via the
    // validator-facing constructor shape in release.
    Csr bad({0, 1}, {0}, {1});
    EXPECT_EQ(validateCsr(bad), std::nullopt);
}

TEST(Validate, EmptyCsrIsValid)
{
    EXPECT_EQ(validateCsr(Csr{}), std::nullopt);
}

} // namespace
} // namespace tigr::graph
