/**
 * @file
 * Tests for the Table 3 dataset stand-ins: shape fidelity to the paper's
 * datasets and the Section 5 K-selection heuristic.
 */
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/stats.hpp"

namespace tigr::graph {
namespace {

TEST(Datasets, SixStandardDatasetsInPaperOrder)
{
    const auto &specs = standardDatasets();
    ASSERT_EQ(specs.size(), 6u);
    EXPECT_EQ(specs[0].name, "pokec");
    EXPECT_EQ(specs[1].name, "livejournal");
    EXPECT_EQ(specs[2].name, "hollywood");
    EXPECT_EQ(specs[3].name, "orkut");
    EXPECT_EQ(specs[4].name, "sinaweibo");
    EXPECT_EQ(specs[5].name, "twitter");
}

TEST(Datasets, FindByName)
{
    EXPECT_TRUE(findDataset("orkut").has_value());
    EXPECT_FALSE(findDataset("facebook").has_value());
}

TEST(Datasets, GenerationIsDeterministic)
{
    const DatasetSpec &spec = standardDatasets()[0];
    Csr a = makeDataset(spec, 0.2);
    Csr b = makeDataset(spec, 0.2);
    EXPECT_EQ(a, b);
}

TEST(Datasets, ScaleShrinksGraph)
{
    const DatasetSpec &spec = standardDatasets()[0];
    Csr full = makeDataset(spec, 0.5);
    Csr small = makeDataset(spec, 0.1);
    EXPECT_GT(full.numEdges(), 3 * small.numEdges());
}

TEST(Datasets, UnweightedVariantHasUnitWeights)
{
    Csr g = makeDataset(standardDatasets()[0], 0.1, /*weighted=*/false);
    for (Weight w : g.weights())
        EXPECT_EQ(w, 1u);
}

TEST(Datasets, WeightedVariantInRange)
{
    Csr g = makeDataset(standardDatasets()[0], 0.1, /*weighted=*/true);
    for (Weight w : g.weights()) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 64u);
    }
}

class DatasetShape : public ::testing::TestWithParam<DatasetSpec>
{
};

TEST_P(DatasetShape, PowerLawTailLikePaper)
{
    const DatasetSpec &spec = GetParam();
    Csr g = makeDataset(spec, 0.25);
    DegreeStats s = degreeStats(g);
    // All six paper datasets are power-law: the max degree dwarfs the
    // mean and the distribution is strongly unequal.
    EXPECT_GT(static_cast<double>(s.maxDegree), 8.0 * s.meanDegree)
        << spec.name;
    EXPECT_GT(s.gini, 0.25) << spec.name;
}

TEST_P(DatasetShape, SizesScaleWithSpec)
{
    const DatasetSpec &spec = GetParam();
    Csr g = makeDataset(spec, 0.25);
    // Self-loop removal trims a little; stay within 20% of the recipe.
    EXPECT_GT(g.numEdges(), spec.edges / 5);
    EXPECT_LE(g.numNodes(), spec.nodes);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetShape, ::testing::ValuesIn(standardDatasets()),
    [](const ::testing::TestParamInfo<DatasetSpec> &info) {
        return info.param.name;
    });

TEST(ChooseUdtK, StaircaseMatchesPaperTable3)
{
    // Paper: dmax 8.8k -> 500, 11k..15k -> 1000, 33k -> 1000(ish),
    // 278k..698k -> 10000.
    EXPECT_EQ(chooseUdtK(8800), 500u);
    EXPECT_EQ(chooseUdtK(15000), 500u);   // 15000/16 = 937 -> 500
    EXPECT_EQ(chooseUdtK(33000), 1000u);  // 2062 -> 1000
    EXPECT_EQ(chooseUdtK(278000), 10000u);
    EXPECT_EQ(chooseUdtK(698000), 10000u);
}

TEST(ChooseUdtK, SmallGraphsClampToTen)
{
    EXPECT_EQ(chooseUdtK(0), 10u);
    EXPECT_EQ(chooseUdtK(16), 10u);
    EXPECT_EQ(chooseUdtK(200), 10u);
}

TEST(ChooseUdtK, MonotoneInMaxDegree)
{
    NodeId prev = 0;
    for (EdgeIndex d : {10ULL, 100ULL, 1000ULL, 10000ULL, 100000ULL,
                        1000000ULL}) {
        NodeId k = chooseUdtK(d);
        EXPECT_GE(k, prev);
        prev = k;
    }
}

} // namespace
} // namespace tigr::graph
