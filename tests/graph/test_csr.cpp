/**
 * @file
 * Unit tests for the CSR container: construction from COO, accessors,
 * transpose, round-trips, and size accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace tigr::graph {
namespace {

CooEdges
diamondGraph()
{
    // 0 -> 1 (w2), 0 -> 2 (w3), 1 -> 3 (w4), 2 -> 3 (w5)
    CooEdges coo(4);
    coo.add(0, 1, 2);
    coo.add(0, 2, 3);
    coo.add(1, 3, 4);
    coo.add(2, 3, 5);
    return coo;
}

TEST(Csr, EmptyGraphHasNoNodesOrEdges)
{
    Csr g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.maxOutDegree(), 0u);
}

TEST(Csr, FromCooBasicShape)
{
    Csr g = Csr::fromCoo(diamondGraph());
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.degree(3), 0u);
    EXPECT_EQ(g.maxOutDegree(), 2u);
}

TEST(Csr, FromCooPreservesEdgeOrderWithinNode)
{
    // The virtual transformation depends on stable intra-node order.
    CooEdges coo(3);
    coo.add(0, 2, 7);
    coo.add(0, 1, 9);
    Csr g = Csr::fromCoo(coo);
    auto nbrs = g.outNeighbors(0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 2u);
    EXPECT_EQ(nbrs[1], 1u);
    EXPECT_EQ(g.outWeights(0)[0], 7u);
    EXPECT_EQ(g.outWeights(0)[1], 9u);
}

TEST(Csr, WeightsParallelToNeighbors)
{
    Csr g = Csr::fromCoo(diamondGraph());
    auto nbrs = g.outNeighbors(0);
    auto weights = g.outWeights(0);
    ASSERT_EQ(nbrs.size(), weights.size());
    EXPECT_EQ(nbrs[0], 1u);
    EXPECT_EQ(weights[0], 2u);
    EXPECT_EQ(nbrs[1], 2u);
    EXPECT_EQ(weights[1], 3u);
}

TEST(Csr, EdgeLevelAccessors)
{
    Csr g = Csr::fromCoo(diamondGraph());
    EXPECT_EQ(g.edgeBegin(0), 0u);
    EXPECT_EQ(g.edgeEnd(0), 2u);
    EXPECT_EQ(g.edgeTarget(2), 3u);
    EXPECT_EQ(g.edgeWeight(2), 4u);
}

TEST(Csr, IsolatedNodesKeepZeroDegree)
{
    CooEdges coo(10);
    coo.add(0, 9, 1);
    Csr g = Csr::fromCoo(coo);
    EXPECT_EQ(g.numNodes(), 10u);
    for (NodeId v = 1; v < 9; ++v)
        EXPECT_EQ(g.degree(v), 0u) << "node " << v;
}

TEST(Csr, ReversedFlipsEveryEdge)
{
    Csr g = Csr::fromCoo(diamondGraph());
    Csr r = g.reversed();
    EXPECT_EQ(r.numNodes(), g.numNodes());
    EXPECT_EQ(r.numEdges(), g.numEdges());
    EXPECT_EQ(r.degree(3), 2u);
    EXPECT_EQ(r.degree(0), 0u);
    // 3's incoming edges 1->3 (w4), 2->3 (w5) become outgoing.
    auto nbrs = r.outNeighbors(3);
    auto weights = r.outWeights(3);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 1u);
    EXPECT_EQ(weights[0], 4u);
    EXPECT_EQ(nbrs[1], 2u);
    EXPECT_EQ(weights[1], 5u);
}

TEST(Csr, DoubleReverseIsIdentityUpToEdgeOrder)
{
    // Transposing twice may permute edges within a node, so compare the
    // sorted edge multisets, not raw storage.
    auto sorted_edges = [](const Csr &g) {
        auto edges = g.toCoo().edges();
        std::sort(edges.begin(), edges.end(),
                  [](const Edge &a, const Edge &b) {
                      return std::tie(a.src, a.dst, a.weight) <
                             std::tie(b.src, b.dst, b.weight);
                  });
        return edges;
    };
    Csr g = Csr::fromCoo(rmat({.nodes = 256, .edges = 2048, .seed = 7}));
    Csr rr = g.reversed().reversed();
    EXPECT_EQ(rr.numNodes(), g.numNodes());
    EXPECT_EQ(sorted_edges(rr), sorted_edges(g));
}

TEST(Csr, CooRoundTrip)
{
    Csr g = Csr::fromCoo(diamondGraph());
    Csr h = Csr::fromCoo(g.toCoo());
    EXPECT_EQ(g, h);
}

TEST(Csr, SizeInBytesAccountsAllThreeArrays)
{
    Csr g = Csr::fromCoo(diamondGraph());
    std::size_t expected = 5 * sizeof(EdgeIndex)  // offsets: n+1
        + 4 * sizeof(NodeId)                      // targets
        + 4 * sizeof(Weight);                     // weights
    EXPECT_EQ(g.sizeInBytes(), expected);
}

TEST(Csr, ParallelEdgesAreKept)
{
    CooEdges coo(2);
    coo.add(0, 1, 1);
    coo.add(0, 1, 2);
    Csr g = Csr::fromCoo(coo);
    EXPECT_EQ(g.degree(0), 2u);
}

TEST(Csr, RowOffsetsMonotone)
{
    Csr g = Csr::fromCoo(rmat({.nodes = 512, .edges = 4096, .seed = 3}));
    const auto &offsets = g.rowOffsets();
    for (std::size_t i = 1; i < offsets.size(); ++i)
        EXPECT_LE(offsets[i - 1], offsets[i]);
    EXPECT_EQ(offsets.back(), g.numEdges());
}

TEST(Csr, DegreeSumEqualsEdgeCount)
{
    Csr g = Csr::fromCoo(rmat({.nodes = 512, .edges = 4096, .seed = 5}));
    EdgeIndex total = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        total += g.degree(v);
    EXPECT_EQ(total, g.numEdges());
}

} // namespace
} // namespace tigr::graph
