/**
 * @file
 * Tests for the synthetic generators: shape invariants, determinism, and
 * the skew properties Tigr depends on.
 */
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace tigr::graph {
namespace {

TEST(Generators, RmatEmitsRequestedEdgeCount)
{
    CooEdges coo = rmat({.nodes = 300, .edges = 5000, .seed = 11});
    EXPECT_EQ(coo.numEdges(), 5000u);
    EXPECT_EQ(coo.numNodes(), 300u);
    for (const Edge &e : coo.edges()) {
        EXPECT_LT(e.src, 300u);
        EXPECT_LT(e.dst, 300u);
    }
}

TEST(Generators, RmatDeterministicInSeed)
{
    RmatParams params{.nodes = 256, .edges = 2000, .seed = 9};
    CooEdges a = rmat(params);
    CooEdges b = rmat(params);
    EXPECT_EQ(a.edges(), b.edges());
    params.seed = 10;
    CooEdges c = rmat(params);
    EXPECT_NE(a.edges(), c.edges());
}

TEST(Generators, RmatSkewExceedsErdosRenyi)
{
    Csr skewed = GraphBuilder().build(
        rmat({.nodes = 4096, .edges = 40000, .seed = 1}));
    Csr uniform = GraphBuilder().build(erdosRenyi(4096, 40000, 1));
    DegreeStats s = degreeStats(skewed);
    DegreeStats u = degreeStats(uniform);
    EXPECT_GT(s.gini, u.gini);
    EXPECT_GT(s.maxDegree, 4 * u.maxDegree);
}

TEST(Generators, BarabasiAlbertShape)
{
    CooEdges coo = barabasiAlbert(500, 3, 21);
    // Seed clique of 4 nodes contributes 4*3 directed edges; each of the
    // remaining 496 nodes adds 3 undirected = 6 directed edges.
    EXPECT_EQ(coo.numEdges(), 12u + 496u * 6u);
    EXPECT_EQ(coo.numNodes(), 500u);
}

TEST(Generators, BarabasiAlbertHasHeavyTail)
{
    Csr g = GraphBuilder().build(barabasiAlbert(2000, 4, 5));
    DegreeStats s = degreeStats(g);
    EXPECT_GT(static_cast<double>(s.maxDegree), 5.0 * s.meanDegree);
}

TEST(Generators, ErdosRenyiBounds)
{
    CooEdges coo = erdosRenyi(100, 1000, 3);
    EXPECT_EQ(coo.numEdges(), 1000u);
    for (const Edge &e : coo.edges()) {
        EXPECT_LT(e.src, 100u);
        EXPECT_LT(e.dst, 100u);
    }
}

TEST(Generators, RingEveryNodeDegreeOne)
{
    Csr g = Csr::fromCoo(ring(64));
    for (NodeId v = 0; v < 64; ++v) {
        EXPECT_EQ(g.degree(v), 1u);
        EXPECT_EQ(g.outNeighbors(v)[0], (v + 1) % 64);
    }
}

TEST(Generators, PathIsOpenRing)
{
    Csr g = Csr::fromCoo(path(10));
    EXPECT_EQ(g.numEdges(), 9u);
    EXPECT_EQ(g.degree(9), 0u);
}

TEST(Generators, Grid2dDegrees)
{
    Csr g = Csr::fromCoo(grid2d(4, 5));
    EXPECT_EQ(g.numNodes(), 20u);
    // Interior nodes have outdegree 4, corners 2, edges 3.
    EXPECT_EQ(g.degree(0), 2u);        // corner
    EXPECT_EQ(g.degree(1), 3u);        // top edge
    EXPECT_EQ(g.degree(6), 4u);        // interior
    EXPECT_EQ(g.numEdges(), 2u * (4u * 4u + 3u * 5u));
}

TEST(Generators, StarIsMaximallyIrregular)
{
    Csr g = Csr::fromCoo(star(100));
    EXPECT_EQ(g.degree(0), 99u);
    for (NodeId v = 1; v < 100; ++v)
        EXPECT_EQ(g.degree(v), 0u);
    EXPECT_GT(degreeStats(g).gini, 0.95);
}

TEST(Generators, WattsStrogatzShape)
{
    CooEdges coo = wattsStrogatz(500, 3, 0.1, 17);
    EXPECT_EQ(coo.numEdges(), 500u * 3u * 2u);
    EXPECT_EQ(coo.numNodes(), 500u);
}

TEST(Generators, WattsStrogatzStaysNearlyRegular)
{
    // Small-world rewiring keeps the degree distribution tight: a
    // control input without a power-law tail.
    Csr g = GraphBuilder().build(wattsStrogatz(2000, 4, 0.2, 3));
    DegreeStats s = degreeStats(g);
    EXPECT_LT(static_cast<double>(s.maxDegree), 3.0 * s.meanDegree);
    EXPECT_LT(s.gini, 0.2);
}

TEST(Generators, WattsStrogatzZeroBetaIsLattice)
{
    Csr g = Csr::fromCoo(wattsStrogatz(100, 2, 0.0, 1));
    // Pure ring lattice: every node has exactly 2*2 edges.
    for (NodeId v = 0; v < 100; ++v)
        EXPECT_EQ(g.degree(v), 4u) << "node " << v;
}

TEST(Generators, WattsStrogatzRewiringShortensDiameter)
{
    Csr lattice = GraphBuilder().build(wattsStrogatz(1024, 2, 0.0, 9));
    Csr small_world =
        GraphBuilder().build(wattsStrogatz(1024, 2, 0.3, 9));
    EXPECT_LT(estimateDiameter(small_world, 12),
              estimateDiameter(lattice, 12));
}

TEST(Generators, CompleteGraphDegrees)
{
    Csr g = Csr::fromCoo(complete(9));
    EXPECT_EQ(g.numEdges(), 72u);
    for (NodeId v = 0; v < 9; ++v)
        EXPECT_EQ(g.degree(v), 8u);
    EXPECT_NEAR(degreeStats(g).gini, 0.0, 1e-12);
}

} // namespace
} // namespace tigr::graph
