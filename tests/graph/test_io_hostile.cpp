/**
 * @file
 * Hostile-input behavior of the text loaders: truncated and malformed
 * lines must throw (never silently drop data), while duplicate edges
 * and self-loops — legal in every public dataset — must survive the
 * load and produce a CSR that still validates.
 */
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/validate.hpp"

namespace tigr::graph {
namespace {

CooEdges
edgeListFrom(const std::string &text)
{
    std::istringstream in(text);
    return loadEdgeList(in);
}

CooEdges
matrixMarketFrom(const std::string &text)
{
    std::istringstream in(text);
    return loadMatrixMarket(in);
}

TEST(EdgeListHostile, TruncatedLineThrows)
{
    // Line 2 lost its destination column (e.g. a cut-off download).
    EXPECT_THROW(edgeListFrom("0 1 5\n2\n"), std::runtime_error);
    // A file whose final line was cut mid-edge, without a newline.
    EXPECT_THROW(edgeListFrom("0 1 5\n3"), std::runtime_error);
}

TEST(EdgeListHostile, TruncationErrorNamesTheLine)
{
    try {
        edgeListFrom("0 1\n1 2\n9\n");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("line 3"),
                  std::string::npos)
            << error.what();
    }
}

TEST(EdgeListHostile, NonNumericTokensThrow)
{
    EXPECT_THROW(edgeListFrom("a b\n"), std::runtime_error);
    EXPECT_THROW(edgeListFrom("src dst weight\n"), std::runtime_error);
}

TEST(EdgeListHostile, DuplicateEdgesAreKeptInOrder)
{
    // Parallel edges are data, not noise: both instances load, in file
    // order, and the CSR keeps the multigraph.
    const CooEdges coo = edgeListFrom("0 1 5\n0 1 7\n1 0 2\n");
    ASSERT_EQ(coo.edges().size(), 3u);
    const Csr csr = Csr::fromCoo(coo);
    EXPECT_EQ(csr.numEdges(), 3u);
    ASSERT_EQ(csr.degree(0), 2u);
    EXPECT_EQ(csr.edgeTarget(csr.edgeBegin(0)), 1u);
    EXPECT_EQ(csr.edgeWeight(csr.edgeBegin(0)), 5u);
    EXPECT_EQ(csr.edgeTarget(csr.edgeBegin(0) + 1), 1u);
    EXPECT_EQ(csr.edgeWeight(csr.edgeBegin(0) + 1), 7u);
    EXPECT_EQ(validateCsr(csr), std::nullopt);
}

TEST(EdgeListHostile, SelfLoopsAreKept)
{
    const CooEdges coo = edgeListFrom("2 2 3\n0 1 1\n");
    const Csr csr = Csr::fromCoo(coo);
    EXPECT_EQ(csr.numEdges(), 2u);
    ASSERT_EQ(csr.degree(2), 1u);
    EXPECT_EQ(csr.edgeTarget(csr.edgeBegin(2)), 2u);
    EXPECT_EQ(validateCsr(csr), std::nullopt);
}

TEST(EdgeListHostile, CommentsAndBlankLinesAreSkipped)
{
    const CooEdges coo =
        edgeListFrom("# SNAP header\n\n% another comment\n0 1\n");
    ASSERT_EQ(coo.edges().size(), 1u);
    // Missing weight column defaults to 1.
    EXPECT_EQ(coo.edges()[0].weight, 1u);
}

TEST(MatrixMarketHostile, TruncatedStreamThrows)
{
    // The size line promises 3 entries; only 2 arrive.
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate integer "
                         "general\n3 3 3\n1 2 5\n2 3 4\n"),
        std::runtime_error);
}

TEST(MatrixMarketHostile, TruncatedEntryThrows)
{
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate pattern "
                         "general\n3 3 2\n1 2\nx\n"),
        std::runtime_error);
}

TEST(MatrixMarketHostile, OutOfRangeEntryThrows)
{
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate pattern "
                         "general\n2 2 1\n5 1\n"),
        std::runtime_error);
    // Matrix Market is 1-based; a 0 coordinate is malformed, not
    // "node 0".
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate pattern "
                         "general\n2 2 1\n0 1\n"),
        std::runtime_error);
}

TEST(MatrixMarketHostile, BadHeaderThrows)
{
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix array real general\n"),
        std::runtime_error);
    EXPECT_THROW(matrixMarketFrom("not a header\n1 1 0\n"),
                 std::runtime_error);
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate complex "
                         "general\n1 1 0\n"),
        std::runtime_error);
}

TEST(MatrixMarketHostile, MissingSizeLineThrows)
{
    EXPECT_THROW(
        matrixMarketFrom("%%MatrixMarket matrix coordinate pattern "
                         "general\n% only comments follow\n"),
        std::runtime_error);
}

TEST(MatrixMarketHostile, DuplicateEntriesAreKept)
{
    const CooEdges coo =
        matrixMarketFrom("%%MatrixMarket matrix coordinate integer "
                         "general\n2 2 2\n1 2 5\n1 2 9\n");
    EXPECT_EQ(coo.edges().size(), 2u);
    EXPECT_EQ(validateCsr(Csr::fromCoo(coo)), std::nullopt);
}

TEST(MatrixMarketHostile, SymmetricSelfLoopEmitsOneEdge)
{
    // Off-diagonal symmetric entries mirror; the diagonal must not.
    const CooEdges coo =
        matrixMarketFrom("%%MatrixMarket matrix coordinate pattern "
                         "symmetric\n3 3 2\n2 2\n3 1\n");
    ASSERT_EQ(coo.edges().size(), 3u);
    const Csr csr = Csr::fromCoo(coo);
    EXPECT_EQ(csr.degree(1), 1u);
    EXPECT_EQ(csr.edgeTarget(csr.edgeBegin(1)), 1u);
    EXPECT_EQ(validateCsr(csr), std::nullopt);
}

} // namespace
} // namespace tigr::graph
