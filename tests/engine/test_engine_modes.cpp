/**
 * @file
 * Tests of the engine's execution modes beyond the default push +
 * stored-schedule path: pull propagation (Section 2.1 / Theorem 3) and
 * on-the-fly mapping reasoning (Section 4.1's second virtualization
 * design), plus the guards on invalid combinations.
 */
#include <gtest/gtest.h>

#include "engine/dynamic_provider.hpp"
#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"

namespace tigr::engine {
namespace {

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 30;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 300, .edges = 3600, .seed = seed}));
}

graph::Csr
symmetricGraph(std::uint64_t seed)
{
    graph::CooEdges coo =
        graph::rmat({.nodes = 220, .edges = 1800, .seed = seed});
    coo.symmetrize();
    return graph::GraphBuilder().build(std::move(coo));
}

EngineOptions
optionsFor(Strategy strategy, Direction direction, bool dynamic)
{
    EngineOptions options;
    options.strategy = strategy;
    options.direction = direction;
    options.dynamicMapping = dynamic;
    options.degreeBound = 8;
    options.mwVirtualWarp = 4;
    return options;
}

// ---------------------------------------------------------------
// Pull propagation: every pull-capable strategy matches the oracles.
// ---------------------------------------------------------------

class PullMatrix : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(PullMatrix, SsspPullMatchesDijkstra)
{
    graph::Csr g = weightedGraph(61);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Pull,
                                     false));
    auto result = engine.sssp(0);
    auto oracle = ref::dijkstra(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(PullMatrix, BfsPullMatchesOracle)
{
    graph::Csr g = weightedGraph(62);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Pull,
                                     false));
    auto result = engine.bfs(2);
    auto oracle = ref::bfsHops(g, 2);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(PullMatrix, SswpPullMatchesOracle)
{
    graph::Csr g = weightedGraph(63);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Pull,
                                     false));
    auto result = engine.sswp(1);
    auto oracle = ref::widestPath(g, 1);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(PullMatrix, CcPullMatchesOracle)
{
    graph::Csr g = symmetricGraph(64);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Pull,
                                     false));
    auto result = engine.cc();
    auto oracle = ref::connectedComponents(g);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(
    PullCapableStrategies, PullMatrix,
    ::testing::Values(Strategy::Baseline, Strategy::TigrV,
                      Strategy::TigrVPlus, Strategy::MaximumWarp,
                      Strategy::Cusha, Strategy::Gunrock),
    [](const auto &info) {
        std::string name(strategyName(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

TEST(PullMode, PushAndPullReachTheSameFixpoint)
{
    graph::Csr g = weightedGraph(65);
    auto push = GraphEngine(g, optionsFor(Strategy::TigrVPlus,
                                          Direction::Push, false))
                    .sssp(0);
    auto pull = GraphEngine(g, optionsFor(Strategy::TigrVPlus,
                                          Direction::Pull, false))
                    .sssp(0);
    EXPECT_EQ(push.values, pull.values);
}

TEST(PullMode, PagerankPullEqualsPush)
{
    // Theorem 3: the PR vertex function is associative, so the pull
    // formulation over virtual families gives the same ranks.
    graph::Csr g = weightedGraph(66);
    PageRankOptions pull_pr;
    pull_pr.pull = true;
    auto pull = GraphEngine(g, optionsFor(Strategy::TigrVPlus,
                                          Direction::Push, false))
                    .pagerank(pull_pr);
    auto push = GraphEngine(g, optionsFor(Strategy::TigrVPlus,
                                          Direction::Push, false))
                    .pagerank({});
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(pull.values[v], push.values[v], 1e-9);
}

TEST(PullMode, RefusedUnderUdt)
{
    graph::Csr g = weightedGraph(67);
    EXPECT_THROW(GraphEngine(g, optionsFor(Strategy::TigrUdt,
                                           Direction::Pull, false)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------
// Dynamic mapping reasoning: identical results *and* identical
// simulated behavior to the stored virtual node array, with a
// smaller device footprint.
// ---------------------------------------------------------------

class DynamicMapping : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(DynamicMapping, SameResultsAndCyclesAsStoredArray)
{
    graph::Csr g = weightedGraph(68);
    auto stored = GraphEngine(g, optionsFor(GetParam(),
                                            Direction::Push, false))
                      .sssp(0);
    auto dynamic = GraphEngine(g, optionsFor(GetParam(),
                                             Direction::Push, true))
                       .sssp(0);
    EXPECT_EQ(stored.values, dynamic.values);
    // The provider enumerates the same units in the same order, so
    // the simulator sees bit-identical launches.
    EXPECT_EQ(stored.info.stats.cycles, dynamic.info.stats.cycles);
    EXPECT_EQ(stored.info.iterations, dynamic.info.iterations);
    EXPECT_EQ(stored.info.stats.instructions,
              dynamic.info.stats.instructions);
}

TEST_P(DynamicMapping, WorksForAllSemiringAnalyses)
{
    graph::Csr g = symmetricGraph(69);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Push,
                                     true));
    auto cc = engine.cc();
    auto oracle = ref::connectedComponents(g);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(cc.values[v], oracle[v]);
    auto sswp = engine.sswp(0);
    auto sswp_oracle = ref::widestPath(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(sswp.values[v], sswp_oracle[v]);
}

TEST_P(DynamicMapping, PagerankAndBcSupportDynamicMode)
{
    graph::Csr g = weightedGraph(70);
    GraphEngine engine(g, optionsFor(GetParam(), Direction::Push,
                                     true));
    auto ranks = engine.pagerank({.damping = 0.85, .iterations = 10});
    auto oracle =
        ref::pageRank(g, {.damping = 0.85, .iterations = 10});
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(ranks.values[v], oracle[v], 1e-9);

    const NodeId sources[] = {0, 5};
    auto centrality = engine.bc(sources);
    auto bc_oracle = ref::betweennessCentrality(g, sources);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(centrality.values[v], bc_oracle[v], 1e-6);
}

TEST_P(DynamicMapping, SavesDeviceMemory)
{
    graph::Csr g = weightedGraph(71);
    GraphEngine stored(g, optionsFor(GetParam(), Direction::Push,
                                     false));
    GraphEngine dynamic(g, optionsFor(GetParam(), Direction::Push,
                                      true));
    EXPECT_LT(dynamic.footprintBytes(Algorithm::Sssp),
              stored.footprintBytes(Algorithm::Sssp));
}

INSTANTIATE_TEST_SUITE_P(
    VirtualStrategies, DynamicMapping,
    ::testing::Values(Strategy::TigrV, Strategy::TigrVPlus),
    [](const auto &info) {
        return info.param == Strategy::TigrV ? "tigr_v" : "tigr_v_plus";
    });

TEST(DynamicMapping, RefusedForNonVirtualStrategies)
{
    graph::Csr g = weightedGraph(72);
    for (Strategy s : {Strategy::Baseline, Strategy::TigrUdt,
                       Strategy::MaximumWarp, Strategy::Cusha,
                       Strategy::Gunrock}) {
        EXPECT_THROW(
            GraphEngine(g, optionsFor(s, Direction::Push, true)),
            std::invalid_argument)
            << strategyName(s);
    }
}

TEST(DynamicProvider, EnumeratesExactlyTheStoredUnits)
{
    graph::Csr g = weightedGraph(73);
    for (auto layout : {transform::EdgeLayout::Consecutive,
                        transform::EdgeLayout::Coalesced}) {
        Schedule schedule = Schedule::build(
            g,
            layout == transform::EdgeLayout::Coalesced
                ? Strategy::TigrVPlus
                : Strategy::TigrV,
            8);
        DynamicVirtualProvider provider(g, 8, layout);
        std::vector<WorkUnit> streamed;
        provider.forEachUnit(
            [&](const WorkUnit &u) { streamed.push_back(u); });
        ASSERT_EQ(streamed.size(), schedule.numUnits());
        for (std::size_t i = 0; i < streamed.size(); ++i) {
            const WorkUnit &a = streamed[i];
            const WorkUnit &b = schedule.allUnits()[i];
            EXPECT_EQ(a.valueNode, b.valueNode);
            EXPECT_EQ(a.start, b.start);
            EXPECT_EQ(a.stride, b.stride);
            EXPECT_EQ(a.count, b.count);
        }
    }
}

TEST(PullMode, PullIterationsIndependentOfWorklistFlag)
{
    // Pull has no worklist; the flag must not change anything.
    graph::Csr g = weightedGraph(74);
    EngineOptions with = optionsFor(Strategy::TigrVPlus,
                                    Direction::Pull, false);
    EngineOptions without = with;
    without.worklist = false;
    auto a = GraphEngine(g, with).sssp(0);
    auto b = GraphEngine(g, without).sssp(0);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.info.stats.cycles, b.info.stats.cycles);
}

} // namespace
} // namespace tigr::engine
