/**
 * @file
 * Correctness matrix of the push engine: every (semiring x strategy x
 * iteration-mode) combination must match the sequential oracle — the
 * executable form of Theorem 2 for the virtual strategies.
 */
#include <gtest/gtest.h>

#include "algorithms/semirings.hpp"
#include "engine/push_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"

namespace tigr::engine {
namespace {

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 40;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 384, .edges = 5000, .seed = seed}));
}

graph::Csr
symmetricGraph(std::uint64_t seed)
{
    graph::CooEdges coo =
        graph::rmat({.nodes = 256, .edges = 2500, .seed = seed});
    coo.symmetrize();
    return graph::GraphBuilder().build(std::move(coo));
}

struct ModeParam
{
    bool worklist;
    bool syncRelaxation;
};

class PushMatrix
    : public ::testing::TestWithParam<std::tuple<Strategy, ModeParam>>
{
  protected:
    Strategy strategy() const { return std::get<0>(GetParam()); }

    PushOptions
    pushOptions() const
    {
        const ModeParam &mode = std::get<1>(GetParam());
        return {mode.worklist, mode.syncRelaxation, 100000};
    }
};

TEST_P(PushMatrix, SsspMatchesDijkstra)
{
    graph::Csr g = weightedGraph(31);
    Schedule schedule = Schedule::build(g, strategy(), 8, 4);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto outcome = runPush<algorithms::SsspSemiring>(schedule, sim,
                                                     pushOptions(), seeds);
    ASSERT_TRUE(outcome.converged);
    auto oracle = ref::dijkstra(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(outcome.values[v], oracle[v]) << "node " << v;
}

TEST_P(PushMatrix, SswpMatchesOracle)
{
    graph::Csr g = weightedGraph(32);
    Schedule schedule = Schedule::build(g, strategy(), 8, 4);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Weight> seeds[] = {{0, kInfWeight}};
    auto outcome = runPush<algorithms::SswpSemiring>(schedule, sim,
                                                     pushOptions(), seeds);
    ASSERT_TRUE(outcome.converged);
    auto oracle = ref::widestPath(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(outcome.values[v], oracle[v]) << "node " << v;
}

TEST_P(PushMatrix, CcMatchesUnionFind)
{
    graph::Csr g = symmetricGraph(33);
    Schedule schedule = Schedule::build(g, strategy(), 8, 4);
    sim::WarpSimulator sim;
    std::vector<std::pair<NodeId, NodeId>> seeds;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        seeds.emplace_back(v, v);
    auto outcome = runPush<algorithms::CcSemiring>(
        schedule, sim, pushOptions(), seeds, /*all_active=*/true);
    ASSERT_TRUE(outcome.converged);
    auto oracle = ref::connectedComponents(g);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(outcome.values[v], oracle[v]) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByMode, PushMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(kAllStrategies),
        ::testing::Values(ModeParam{true, true}, ModeParam{true, false},
                          ModeParam{false, true},
                          ModeParam{false, false})),
    [](const auto &info) {
        std::string name(strategyName(std::get<0>(info.param)));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        const ModeParam &mode = std::get<1>(info.param);
        name += mode.worklist ? "_wl" : "_nowl";
        name += mode.syncRelaxation ? "_relaxed" : "_bsp";
        return name;
    });

TEST(PushEngine, UnreachableNodesKeepIdentity)
{
    // Two disconnected rings; BFS from ring 1 never reaches ring 2.
    graph::CooEdges coo(8);
    for (NodeId v = 0; v < 4; ++v)
        coo.add(v, (v + 1) % 4);
    for (NodeId v = 4; v < 8; ++v)
        coo.add(v, 4 + (v + 1) % 4);
    graph::Csr g = graph::Csr::fromCoo(coo);
    Schedule schedule = Schedule::build(g, Strategy::Baseline);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto outcome = runPush<algorithms::SsspSemiring>(schedule, sim, {},
                                                     seeds);
    for (NodeId v = 4; v < 8; ++v)
        EXPECT_EQ(outcome.values[v], kInfDist);
}

TEST(PushEngine, IterationCapReported)
{
    graph::Csr g = graph::Csr::fromCoo(graph::path(100));
    Schedule schedule = Schedule::build(g, Strategy::Baseline);
    sim::WarpSimulator sim;
    PushOptions options;
    options.maxIterations = 5; // far below the 99 needed
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto outcome = runPush<algorithms::SsspSemiring>(schedule, sim,
                                                     options, seeds);
    EXPECT_FALSE(outcome.converged);
    EXPECT_EQ(outcome.iterations, 5u);
}

TEST(PushEngine, BspIterationsMatchBfsDepthOnPath)
{
    // Strict BSP SSSP is Bellman-Ford: a directed path of length L
    // needs L propagation iterations.
    graph::Csr g = graph::Csr::fromCoo(graph::path(33));
    Schedule schedule = Schedule::build(g, Strategy::Baseline);
    sim::WarpSimulator sim;
    PushOptions options;
    options.syncRelaxation = false;
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto outcome = runPush<algorithms::SsspSemiring>(schedule, sim,
                                                     options, seeds);
    EXPECT_TRUE(outcome.converged);
    // 32 propagation iterations plus the final one that processes the
    // last activated node (the sink) and finds nothing changed.
    EXPECT_EQ(outcome.iterations, 33u);
}

TEST(PushEngine, WorklistReducesInstructions)
{
    // With a worklist only active nodes are processed; without it every
    // node runs every iteration (Table 8's #instr. contrast).
    graph::Csr g = weightedGraph(34);
    Schedule schedule = Schedule::build(g, Strategy::Baseline);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};

    PushOptions with{true, true, 100000};
    PushOptions without{false, true, 100000};
    auto wl = runPush<algorithms::SsspSemiring>(schedule, sim, with,
                                                seeds);
    auto nowl = runPush<algorithms::SsspSemiring>(schedule, sim, without,
                                                  seeds);
    EXPECT_EQ(wl.values, nowl.values);
    EXPECT_LT(wl.stats.instructions, nowl.stats.instructions);
}

TEST(PushEngine, VirtualScheduleImprovesWarpEfficiency)
{
    // The headline mechanism: bounding per-thread work at K evens out
    // the warp (Table 8's warp-efficiency column).
    graph::Csr g = weightedGraph(35);
    sim::WarpSimulator sim_base;
    sim::WarpSimulator sim_virtual;
    Schedule baseline = Schedule::build(g, Strategy::Baseline);
    Schedule virt = Schedule::build(g, Strategy::TigrV, 10);
    PushOptions options{false, true, 100000};
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto base = runPush<algorithms::SsspSemiring>(baseline, sim_base,
                                                  options, seeds);
    auto tigr = runPush<algorithms::SsspSemiring>(virt, sim_virtual,
                                                  options, seeds);
    EXPECT_EQ(base.values, tigr.values);
    EXPECT_GT(tigr.stats.warpEfficiency(),
              base.stats.warpEfficiency() + 0.2);
}

TEST(PushEngine, CoalescingReducesMemoryTransactions)
{
    graph::Csr g = weightedGraph(36);
    sim::WarpSimulator sim_v;
    sim::WarpSimulator sim_vplus;
    Schedule consecutive = Schedule::build(g, Strategy::TigrV, 10);
    Schedule coalesced = Schedule::build(g, Strategy::TigrVPlus, 10);
    PushOptions options{false, true, 100000};
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};
    auto v = runPush<algorithms::SsspSemiring>(consecutive, sim_v,
                                               options, seeds);
    auto vplus = runPush<algorithms::SsspSemiring>(coalesced, sim_vplus,
                                                   options, seeds);
    EXPECT_EQ(v.values, vplus.values);
    EXPECT_LT(vplus.stats.memTransactions, v.stats.memTransactions);
}

} // namespace
} // namespace tigr::engine
