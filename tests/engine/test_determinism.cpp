/**
 * @file
 * The determinism contract, executed: every strategy × frontier mode ×
 * analysis triple must produce bit-identical values, iteration counts,
 * convergence flags, and simulator counters at 1, 2, and 8 host
 * threads — on a skewed RMAT graph and on a star-heavy graph whose hub
 * makes chunk boundaries cut through one node's units. See
 * docs/parallelism.md for why this holds by construction.
 */
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace tigr::engine {
namespace {

graph::Csr
rmatGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 24;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 600, .edges = 6000, .seed = seed}));
}

/** A few hubs of outdegree ~1000 over a sparse ring: the hub families
 *  span many work units, so fixed-grain chunks split single nodes. */
graph::Csr
starHeavyGraph()
{
    const NodeId n = 1500;
    graph::CooEdges coo(n);
    for (NodeId v = 0; v < n; ++v)
        coo.add(v, (v + 1) % n, 1 + v % 7);
    for (NodeId hub : {NodeId{0}, NodeId{7}, NodeId{800}})
        for (NodeId v = 0; v < 1000; ++v)
            if (v != hub)
                coo.add(hub, (v * 13 + 5) % n, 1 + v % 11);
    return graph::GraphBuilder(graph::BuildOptions{}).build(std::move(coo));
}

EngineOptions
optionsFor(Strategy strategy,
           FrontierMode frontier = FrontierMode::Adaptive)
{
    EngineOptions options;
    options.strategy = strategy;
    options.degreeBound = 8;
    options.udtBound = 16;
    options.mwVirtualWarp = 4;
    options.frontier = frontier;
    return options;
}

/** Run @p run at 1 thread, then insist 2 and 8 threads replay it. */
template <typename Run>
void
expectThreadCountInvariant(const graph::Csr &g, EngineOptions base,
                           Run &&run)
{
    base.threads = 1;
    GraphEngine sequential(g, base);
    const auto expected = run(sequential);
    ASSERT_EQ(sequential.hostThreads(), 1u);

    for (unsigned threads : {2u, 8u}) {
        EngineOptions options = base;
        options.threads = threads;
        GraphEngine parallel(g, options);
        EXPECT_EQ(parallel.hostThreads(), threads);
        const auto got = run(parallel);
        EXPECT_EQ(got.values, expected.values)
            << threads << " threads";
        EXPECT_EQ(got.info.iterations, expected.info.iterations)
            << threads << " threads";
        EXPECT_EQ(got.info.converged, expected.info.converged)
            << threads << " threads";
        EXPECT_TRUE(got.info.stats == expected.info.stats)
            << threads << " threads: simulator counters diverged";
    }
}

class DeterminismMatrix
    : public ::testing::TestWithParam<std::tuple<Strategy, FrontierMode>>
{
  protected:
    void
    runAll(const graph::Csr &g)
    {
        const auto [strategy, frontier] = GetParam();
        expectThreadCountInvariant(
            g, optionsFor(strategy, frontier),
            [](GraphEngine &e) { return e.bfs(0); });
        expectThreadCountInvariant(
            g, optionsFor(strategy, frontier),
            [](GraphEngine &e) { return e.sssp(0); });
        expectThreadCountInvariant(
            g, optionsFor(strategy, frontier),
            [](GraphEngine &e) { return e.sswp(0); });
        expectThreadCountInvariant(
            g, optionsFor(strategy, frontier),
            [](GraphEngine &e) { return e.cc(); });
        if (strategy != Strategy::TigrUdt) {
            expectThreadCountInvariant(
                g, optionsFor(strategy, frontier), [](GraphEngine &e) {
                    return e.pagerank({.iterations = 10});
                });
        }
    }
};

TEST_P(DeterminismMatrix, RmatGraph) { runAll(rmatGraph(77)); }

TEST_P(DeterminismMatrix, StarHeavyGraph) { runAll(starHeavyGraph()); }

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DeterminismMatrix,
    ::testing::Combine(::testing::ValuesIn(kAllStrategies),
                       ::testing::ValuesIn(kAllFrontierModes)),
    [](const ::testing::TestParamInfo<
        std::tuple<Strategy, FrontierMode>> &info) {
        std::string name{strategyName(std::get<0>(info.param))};
        for (char &c : name)
            if (c == '-' || c == '+')
                c = c == '-' ? '_' : 'p';
        name += '_';
        name += frontierModeName(std::get<1>(info.param));
        return name;
    });

TEST(Determinism, ValuesIdenticalAcrossFrontierModes)
{
    // The modes must agree not only at every thread count but with
    // each other: identical values, iteration counts, and peak
    // frontier (the sparse/dense enumeration launches the same units).
    graph::Csr g = rmatGraph(83);
    for (Strategy strategy :
         {Strategy::Baseline, Strategy::TigrVPlus, Strategy::Gunrock}) {
        EngineOptions dense = optionsFor(strategy, FrontierMode::Dense);
        GraphEngine dense_engine(g, dense);
        const auto expected_sssp = dense_engine.sssp(0);
        const auto expected_cc = dense_engine.cc();
        for (FrontierMode mode :
             {FrontierMode::Sparse, FrontierMode::Adaptive}) {
            GraphEngine engine(g, optionsFor(strategy, mode));
            const auto sssp = engine.sssp(0);
            EXPECT_EQ(sssp.values, expected_sssp.values)
                << strategyName(strategy) << " "
                << frontierModeName(mode);
            EXPECT_EQ(sssp.info.iterations,
                      expected_sssp.info.iterations);
            EXPECT_EQ(sssp.info.peakFrontier,
                      expected_sssp.info.peakFrontier);
            const auto cc = engine.cc();
            EXPECT_EQ(cc.values, expected_cc.values);
            EXPECT_EQ(cc.info.iterations, expected_cc.info.iterations);
        }
    }
}

TEST(Determinism, StrictBspMode)
{
    graph::Csr g = rmatGraph(78);
    EngineOptions options = optionsFor(Strategy::TigrVPlus);
    options.syncRelaxation = false;
    expectThreadCountInvariant(
        g, options, [](GraphEngine &e) { return e.sssp(0); });
}

TEST(Determinism, NoWorklistMode)
{
    graph::Csr g = rmatGraph(79);
    EngineOptions options = optionsFor(Strategy::TigrV);
    options.worklist = false;
    expectThreadCountInvariant(
        g, options, [](GraphEngine &e) { return e.sssp(0); });
}

TEST(Determinism, PullDirection)
{
    graph::Csr g = rmatGraph(80);
    EngineOptions options = optionsFor(Strategy::TigrVPlus);
    options.direction = Direction::Pull;
    expectThreadCountInvariant(
        g, options, [](GraphEngine &e) { return e.bfs(0); });
    expectThreadCountInvariant(
        g, options, [](GraphEngine &e) { return e.sssp(0); });
}

TEST(Determinism, DynamicMapping)
{
    graph::Csr g = starHeavyGraph();
    EngineOptions options = optionsFor(Strategy::TigrVPlus);
    options.dynamicMapping = true;
    expectThreadCountInvariant(
        g, options, [](GraphEngine &e) { return e.sssp(0); });
    expectThreadCountInvariant(g, options, [](GraphEngine &e) {
        return e.pagerank({.iterations = 6});
    });
}

TEST(Determinism, TrianglesAndBc)
{
    // Neither is in the five-algorithm matrix, but both got parallel
    // passes — pin them the same way on the symmetric-ish ring.
    graph::CooEdges coo = graph::rmat(
        {.nodes = 300, .edges = 2400, .seed = 81});
    coo.symmetrize();
    graph::Csr g = graph::GraphBuilder(graph::BuildOptions{}).build(std::move(coo));

    EngineOptions base = optionsFor(Strategy::TigrVPlus);
    base.threads = 1;
    GraphEngine sequential(g, base);
    const auto tri = sequential.triangles();
    const NodeId sources[] = {0, 3, 9};
    const auto bc = sequential.bc(sources);

    for (unsigned threads : {2u, 8u}) {
        EngineOptions options = base;
        options.threads = threads;
        GraphEngine parallel(g, options);
        const auto tri_par = parallel.triangles();
        EXPECT_EQ(tri_par.total, tri.total) << threads << " threads";
        EXPECT_EQ(tri_par.perNode, tri.perNode)
            << threads << " threads";
        EXPECT_TRUE(tri_par.info.stats == tri.info.stats);
        const auto bc_par = parallel.bc(sources);
        EXPECT_EQ(bc_par.values, bc.values) << threads << " threads";
        EXPECT_TRUE(bc_par.info.stats == bc.info.stats);
    }
}

TEST(Determinism, ZeroThreadsResolvesThroughEnv)
{
    graph::Csr g = rmatGraph(82);
    ASSERT_EQ(setenv("TIGR_THREADS", "3", 1), 0);
    {
        GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
        EXPECT_EQ(engine.hostThreads(), 3u);
    }
    ASSERT_EQ(unsetenv("TIGR_THREADS"), 0);
    EngineOptions two = optionsFor(Strategy::TigrVPlus);
    two.threads = 2;
    GraphEngine engine(g, two);
    EXPECT_EQ(engine.hostThreads(), 2u);
    // And the env-resolved engine computed the same answer.
    EngineOptions one = optionsFor(Strategy::TigrVPlus);
    one.threads = 1;
    GraphEngine seq(g, one);
    EXPECT_EQ(engine.sssp(4).values, seq.sssp(4).values);
}

} // namespace
} // namespace tigr::engine
