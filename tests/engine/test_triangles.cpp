/**
 * @file
 * Tests of triangle counting — the applicability boundary of split
 * transformations made executable: virtual strategies count exactly
 * (the physical graph is untouched), physical splitting is refused by
 * the engine and demonstrably changes the count at the oracle level.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/analytics.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"
#include "transform/udt.hpp"

namespace tigr::engine {
namespace {

graph::Csr
simpleSymmetricGraph(std::uint64_t seed)
{
    graph::CooEdges coo =
        graph::rmat({.nodes = 200, .edges = 1500, .seed = seed});
    coo.symmetrize();
    graph::BuildOptions options;
    options.dedupEdges = true;
    return graph::GraphBuilder(options).build(std::move(coo));
}

class TriangleMatrix : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(TriangleMatrix, MatchesOracle)
{
    if (GetParam() == Strategy::TigrUdt)
        GTEST_SKIP() << "physical splitting refused by design";
    graph::Csr g = simpleSymmetricGraph(81);
    EngineOptions options;
    options.strategy = GetParam();
    options.degreeBound = 8;
    options.mwVirtualWarp = 4;
    auto result = algorithms::triangles(g, options);
    EXPECT_EQ(result.total, ref::triangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, TriangleMatrix, ::testing::ValuesIn(kAllStrategies),
    [](const auto &info) {
        std::string name(strategyName(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

TEST(Triangles, KnownSmallGraphs)
{
    // Complete graph on 5 nodes: C(5,3) = 10 triangles.
    graph::Csr k5 = graph::Csr::fromCoo(graph::complete(5));
    EXPECT_EQ(ref::triangleCount(k5), 10u);
    // A ring has none.
    graph::CooEdges ring_coo = graph::ring(10);
    ring_coo.symmetrize();
    EXPECT_EQ(ref::triangleCount(
                  graph::GraphBuilder().build(std::move(ring_coo))),
              0u);
}

TEST(Triangles, PerNodeSumsToThreeTimesTotal)
{
    graph::Csr g = simpleSymmetricGraph(82);
    auto result = algorithms::triangles(g, {});
    auto sum = std::accumulate(result.perNode.begin(),
                               result.perNode.end(), std::uint64_t{0});
    EXPECT_EQ(sum, 3 * result.total);
}

TEST(Triangles, EngineRefusesPhysicalStrategy)
{
    graph::Csr g = simpleSymmetricGraph(83);
    EngineOptions options;
    options.strategy = Strategy::TigrUdt;
    GraphEngine engine(g, options);
    EXPECT_THROW(engine.triangles(), std::invalid_argument);
}

TEST(Triangles, PhysicalSplittingChangesTheCount)
{
    // The paper's applicability claim as a negative control: UDT on a
    // triangle-rich graph does not preserve the neighborhood
    // structure, so the transformed graph's count differs.
    graph::Csr g = simpleSymmetricGraph(84);
    std::uint64_t original = ref::triangleCount(g);
    ASSERT_GT(original, 0u);

    transform::UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 4});
    ASSERT_GT(result.stats.newNodes, 0u);
    EXPECT_NE(ref::triangleCount(result.graph), original);
}

TEST(Triangles, VirtualTransformationIsExactByConstruction)
{
    // Same engine, two degree bounds: the virtual layer cannot change
    // the answer because the physical graph never changes.
    graph::Csr g = simpleSymmetricGraph(85);
    EngineOptions coarse;
    coarse.strategy = Strategy::TigrVPlus;
    coarse.degreeBound = 64;
    EngineOptions fine = coarse;
    fine.degreeBound = 2;
    auto a = algorithms::triangles(g, coarse);
    auto b = algorithms::triangles(g, fine);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.perNode, b.perNode);
}

TEST(Triangles, DynamicMappingSupported)
{
    graph::Csr g = simpleSymmetricGraph(86);
    EngineOptions options;
    options.strategy = Strategy::TigrVPlus;
    options.dynamicMapping = true;
    auto result = algorithms::triangles(g, options);
    EXPECT_EQ(result.total, ref::triangleCount(g));
}

TEST(Triangles, EmptyGraphHasNone)
{
    graph::Csr g;
    EXPECT_EQ(ref::triangleCount(g), 0u);
}

} // namespace
} // namespace tigr::engine
