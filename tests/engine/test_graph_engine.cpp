/**
 * @file
 * Tests of the GraphEngine facade: all six analyses against their
 * oracles under every strategy, the physical-vs-virtual iteration
 * behavior the paper reports (Table 8), transform caching, and the
 * unsupported-combination guards.
 */
#include <gtest/gtest.h>

#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"

namespace tigr::engine {
namespace {

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 24;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 320, .edges = 4200, .seed = seed}));
}

graph::Csr
symmetricGraph(std::uint64_t seed)
{
    graph::CooEdges coo =
        graph::rmat({.nodes = 256, .edges = 2200, .seed = seed});
    coo.symmetrize();
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 24;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(std::move(coo));
}

EngineOptions
optionsFor(Strategy strategy)
{
    EngineOptions options;
    options.strategy = strategy;
    options.degreeBound = 8;
    options.udtBound = 16;
    options.mwVirtualWarp = 4;
    return options;
}

class EngineMatrix : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(EngineMatrix, BfsMatchesOracle)
{
    graph::Csr g = weightedGraph(41);
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.bfs(3);
    auto oracle = ref::bfsHops(g, 3);
    ASSERT_EQ(result.values.size(), g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(EngineMatrix, SsspMatchesOracle)
{
    graph::Csr g = weightedGraph(42);
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.sssp(5);
    auto oracle = ref::dijkstra(g, 5);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(EngineMatrix, SswpMatchesOracle)
{
    graph::Csr g = weightedGraph(43);
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.sswp(7);
    auto oracle = ref::widestPath(g, 7);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(EngineMatrix, CcMatchesOracle)
{
    graph::Csr g = symmetricGraph(44);
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.cc();
    auto oracle = ref::connectedComponents(g);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(EngineMatrix, PagerankMatchesOracle)
{
    if (GetParam() == Strategy::TigrUdt)
        GTEST_SKIP() << "PR unsupported under physical UDT";
    graph::Csr g = weightedGraph(45);
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.pagerank({.damping = 0.85, .iterations = 15});
    auto oracle =
        ref::pageRank(g, {.damping = 0.85, .iterations = 15});
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(result.values[v], oracle[v], 1e-9) << "node " << v;
}

TEST_P(EngineMatrix, BcMatchesOracle)
{
    if (GetParam() == Strategy::TigrUdt)
        GTEST_SKIP() << "BC unsupported under physical UDT";
    graph::Csr g = weightedGraph(46);
    const NodeId sources[] = {0, 11, 37};
    GraphEngine engine(g, optionsFor(GetParam()));
    auto result = engine.bc(sources);
    auto oracle = ref::betweennessCentrality(g, sources);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        ASSERT_NEAR(result.values[v], oracle[v],
                    1e-6 * (1.0 + std::abs(oracle[v])))
            << "node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EngineMatrix, ::testing::ValuesIn(kAllStrategies),
    [](const auto &info) {
        std::string name(strategyName(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

TEST(GraphEngine, UdtRefusesPagerankAndBc)
{
    graph::Csr g = weightedGraph(47);
    GraphEngine engine(g, optionsFor(Strategy::TigrUdt));
    EXPECT_THROW(engine.pagerank(), std::invalid_argument);
    const NodeId sources[] = {0};
    EXPECT_THROW(engine.bc(sources), std::invalid_argument);
}

TEST(GraphEngine, PhysicalTransformationNeedsMoreIterations)
{
    // Table 8: physical splitting lengthens propagation paths, so BSP
    // SSSP needs more iterations; the virtual transformation needs
    // exactly as many as the original.
    graph::Csr g = weightedGraph(48);
    EngineOptions base = optionsFor(Strategy::Baseline);
    base.syncRelaxation = false;
    EngineOptions udt = optionsFor(Strategy::TigrUdt);
    udt.syncRelaxation = false;
    udt.udtBound = 8;
    EngineOptions virt = optionsFor(Strategy::TigrVPlus);
    virt.syncRelaxation = false;

    auto base_run = GraphEngine(g, base).sssp(0);
    auto udt_run = GraphEngine(g, udt).sssp(0);
    auto virt_run = GraphEngine(g, virt).sssp(0);

    EXPECT_EQ(base_run.values, udt_run.values);
    EXPECT_EQ(base_run.values, virt_run.values);
    EXPECT_GT(udt_run.info.iterations, base_run.info.iterations);
    EXPECT_EQ(virt_run.info.iterations, base_run.info.iterations);
}

TEST(GraphEngine, TransformCostCachedAcrossCalls)
{
    graph::Csr g = weightedGraph(49);
    GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
    auto first = engine.sssp(0);
    auto second = engine.sssp(1);
    EXPECT_GT(first.info.transformMs, 0.0);
    EXPECT_DOUBLE_EQ(first.info.transformMs, second.info.transformMs);
    // The first call built the context, the second reused it; only the
    // reuse is flagged, so callers can avoid double-charging the build.
    EXPECT_FALSE(first.info.transformCached);
    EXPECT_TRUE(second.info.transformCached);
}

TEST(GraphEngine, TransformCachedPerContextNotPerEngine)
{
    graph::Csr g = weightedGraph(49);
    GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
    auto sssp = engine.sssp(0);   // builds WeightedZero
    auto bfs = engine.bfs(0);     // builds UnitZero — a fresh context
    auto again = engine.bfs(1);   // reuses UnitZero
    EXPECT_FALSE(sssp.info.transformCached);
    EXPECT_FALSE(bfs.info.transformCached);
    EXPECT_TRUE(again.info.transformCached);
}

TEST(GraphEngine, HostTimeReported)
{
    graph::Csr g = weightedGraph(49);
    GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
    auto result = engine.sssp(0);
    EXPECT_GT(result.info.hostMs, 0.0);
}

TEST(GraphEngine, FootprintLargestForCusha)
{
    graph::Csr g = weightedGraph(50);
    GraphEngine base(g, optionsFor(Strategy::Baseline));
    GraphEngine cusha(g, optionsFor(Strategy::Cusha));
    GraphEngine tigr(g, optionsFor(Strategy::TigrVPlus));
    EXPECT_GT(cusha.footprintBytes(Algorithm::Sssp),
              2 * base.footprintBytes(Algorithm::Sssp));
    EXPECT_LT(tigr.footprintBytes(Algorithm::Sssp),
              cusha.footprintBytes(Algorithm::Sssp) / 2);
}

TEST(GraphEngine, SimulatedCyclesAccumulateAcrossRuns)
{
    graph::Csr g = weightedGraph(51);
    GraphEngine engine(g, optionsFor(Strategy::Baseline));
    auto run = engine.sssp(0);
    EXPECT_GT(run.info.stats.cycles, 0u);
    EXPECT_GT(run.info.simulatedMs(), 0.0);
    // One main launch per iteration plus one compaction launch per
    // sparse iteration (the default adaptive frontier runs sparse on
    // this small graph's narrow BFS-like frontiers).
    EXPECT_EQ(run.info.stats.launches,
              run.info.iterations + run.info.sparseIterations);
}

TEST(GraphEngine, DeterministicAcrossEngines)
{
    graph::Csr g = weightedGraph(52);
    auto a = GraphEngine(g, optionsFor(Strategy::TigrVPlus)).sssp(0);
    auto b = GraphEngine(g, optionsFor(Strategy::TigrVPlus)).sssp(0);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.info.stats.cycles, b.info.stats.cycles);
    EXPECT_EQ(a.info.iterations, b.info.iterations);
}

TEST(GraphEngine, BfsOnWeightedGraphIgnoresWeights)
{
    graph::Csr g = weightedGraph(53);
    GraphEngine engine(g, optionsFor(Strategy::Baseline));
    auto hops = engine.bfs(0);
    auto dist = engine.sssp(0);
    // Weighted distances generally exceed hop counts (weights up to 24).
    bool any_larger = false;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (hops.values[v] != kInfDist)
            any_larger |= dist.values[v] > hops.values[v];
    }
    EXPECT_TRUE(any_larger);
}

TEST(GraphEngine, PagerankEpsilonStopsEarly)
{
    graph::Csr g = weightedGraph(55);
    GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
    PageRankOptions precise{.damping = 0.85, .iterations = 200};
    PageRankOptions early{.damping = 0.85, .iterations = 200,
                          .pull = false, .epsilon = 1e-7};
    auto exact = engine.pagerank(precise);
    auto stopped = engine.pagerank(early);
    EXPECT_LT(stopped.info.iterations, exact.info.iterations);
    EXPECT_GT(stopped.info.iterations, 1u);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(stopped.values[v], exact.values[v], 1e-6);
}

TEST(GraphEngine, PagerankEpsilonWorksInPullMode)
{
    graph::Csr g = weightedGraph(56);
    GraphEngine engine(g, optionsFor(Strategy::TigrVPlus));
    PageRankOptions early{.damping = 0.85, .iterations = 200,
                          .pull = true, .epsilon = 1e-7};
    auto stopped = engine.pagerank(early);
    EXPECT_LT(stopped.info.iterations, 200u);
}

TEST(GraphEngine, BaselineSmImbalanceExceedsVirtual)
{
    // Section 2.3's inter-warp effect: with one node per thread, the
    // SMs holding hub warps finish long after the rest; the virtual
    // transformation evens the SMs out too.
    graph::Csr g = weightedGraph(57);
    auto base = GraphEngine(g, optionsFor(Strategy::Baseline)).sssp(0);
    auto tigr = GraphEngine(g, optionsFor(Strategy::TigrVPlus)).sssp(0);
    EXPECT_GT(base.info.stats.smImbalance(),
              tigr.info.stats.smImbalance());
}

TEST(GraphEngine, EmptySourceListBcIsZero)
{
    graph::Csr g = weightedGraph(54);
    GraphEngine engine(g, optionsFor(Strategy::Baseline));
    auto result = engine.bc({});
    for (double value : result.values)
        EXPECT_EQ(value, 0.0);
}

} // namespace
} // namespace tigr::engine
