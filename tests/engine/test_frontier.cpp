/**
 * @file
 * The adaptive frontier, pinned: the Frontier container itself
 * (dedup, touched-only clearing, compaction), the sparse/dense switch
 * boundary, the engine edge cases the worklist rewrite must survive
 * (empty frontier, all-active CC start, duplicate activations, n = 0
 * and n = 1 graphs), and the cross-mode / pull-filter value identity
 * that makes the mode a pure performance knob.
 */
#include <vector>

#include <gtest/gtest.h>

#include "engine/frontier.hpp"
#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"

namespace tigr::engine {
namespace {

graph::Csr
fromCoo(graph::CooEdges coo)
{
    return graph::GraphBuilder(graph::BuildOptions{})
        .build(std::move(coo));
}

/** Directed ring 0 -> 1 -> ... -> n-1 -> 0: every BSP iteration has a
 *  frontier of exactly one node. */
graph::Csr
ring(NodeId n)
{
    graph::CooEdges coo(n);
    for (NodeId v = 0; v < n; ++v)
        coo.add(v, (v + 1) % n, 1);
    return fromCoo(std::move(coo));
}

EngineOptions
withFrontier(FrontierMode mode, double ratio = kDefaultFrontierRatio)
{
    EngineOptions options;
    options.strategy = Strategy::Baseline;
    options.frontier = mode;
    options.frontierRatio = ratio;
    options.threads = 1;
    return options;
}

TEST(Frontier, ActivateDeduplicatesAndCounts)
{
    Frontier f;
    f.reset(10, false);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.universe(), 10u);
    EXPECT_TRUE(f.activate(4));
    EXPECT_FALSE(f.activate(4)); // duplicate: bitmap filters it
    EXPECT_TRUE(f.activate(2));
    EXPECT_TRUE(f.activate(7));
    EXPECT_EQ(f.count(), 3u);
    EXPECT_TRUE(f.active(4));
    EXPECT_FALSE(f.active(5));
    // Compaction sorts the activation order 4, 2, 7 ascending.
    auto nodes = f.compacted(nullptr);
    EXPECT_EQ(std::vector<NodeId>(nodes.begin(), nodes.end()),
              (std::vector<NodeId>{2, 4, 7}));
}

TEST(Frontier, ClearIsTouchedOnlyAndReusable)
{
    Frontier f;
    f.reset(100, false);
    f.activate(3);
    f.activate(42);
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.active(3));
    EXPECT_FALSE(f.active(42));
    EXPECT_TRUE(f.compacted(nullptr).empty());
    // Still usable after the clear.
    EXPECT_TRUE(f.activate(42));
    EXPECT_EQ(f.count(), 1u);
}

TEST(Frontier, AllActiveResetCompactsFromBitmap)
{
    // An all-active reset (the CC start) invalidates the activation
    // list: compacted() must rebuild it via the parallel count-then-
    // prefix-scan, identically with and without a pool.
    Frontier serial;
    serial.reset(9000, true);
    EXPECT_EQ(serial.count(), 9000u);
    auto nodes = serial.compacted(nullptr);
    ASSERT_EQ(nodes.size(), 9000u);
    for (NodeId v = 0; v < 9000; ++v)
        EXPECT_EQ(nodes[v], v);

    par::ThreadPool pool(3);
    Frontier parallel;
    parallel.reset(9000, true);
    auto par_nodes = parallel.compacted(&pool);
    EXPECT_TRUE(std::equal(nodes.begin(), nodes.end(),
                           par_nodes.begin(), par_nodes.end()));

    // clear() after an all-active reset falls back to the O(n) fill
    // and leaves a consistent empty frontier.
    serial.clear();
    EXPECT_TRUE(serial.empty());
    EXPECT_TRUE(serial.compacted(nullptr).empty());
}

TEST(Frontier, ParseAndNameRoundTrip)
{
    for (FrontierMode mode : kAllFrontierModes)
        EXPECT_EQ(parseFrontierMode(frontierModeName(mode)), mode);
    EXPECT_FALSE(parseFrontierMode("bitmap").has_value());
    EXPECT_FALSE(parseFrontierMode("").has_value());
}

TEST(FrontierEngine, EmptyFrontierAtFirstIterationConverges)
{
    // BFS from an isolated node: under Gunrock's per-edge units a
    // degree-0 active node contributes zero units, so the very first
    // gather comes back empty and the run converges without executing
    // an iteration.
    graph::CooEdges coo(5);
    coo.add(1, 2, 1);
    coo.add(2, 3, 1);
    graph::Csr g = fromCoo(std::move(coo));
    for (FrontierMode mode : kAllFrontierModes) {
        EngineOptions options = withFrontier(mode);
        options.strategy = Strategy::Gunrock;
        GraphEngine engine(g, options);
        auto run = engine.bfs(0);
        EXPECT_TRUE(run.info.converged);
        EXPECT_EQ(run.info.iterations, 0u);
        EXPECT_EQ(run.values[0], 0u);
        for (NodeId v = 1; v < 5; ++v)
            EXPECT_EQ(run.values[v], kInfDist);
    }
}

TEST(FrontierEngine, AllActiveCcStart)
{
    graph::CooEdges coo = graph::rmat(
        {.nodes = 400, .edges = 2400, .seed = 9});
    coo.symmetrize();
    graph::Csr g = fromCoo(std::move(coo));
    const auto expected =
        GraphEngine(g, withFrontier(FrontierMode::Dense)).cc();
    for (FrontierMode mode :
         {FrontierMode::Sparse, FrontierMode::Adaptive}) {
        auto run = GraphEngine(g, withFrontier(mode)).cc();
        EXPECT_EQ(run.values, expected.values);
        EXPECT_EQ(run.info.iterations, expected.info.iterations);
        // Iteration 1 starts with every node active.
        EXPECT_EQ(run.info.peakFrontier, g.numNodes());
    }
}

TEST(FrontierEngine, DuplicateActivationsCountOnce)
{
    // Both 0 -> 2 and 1 -> 2 improve node 2 in iteration 1 (0 and 1
    // are both seeds' successors... build it so two in-edges hit node
    // 2 from the seed): frontier count must be deduplicated.
    graph::CooEdges coo(4);
    coo.add(0, 1, 1); // seed activates 1 and 2
    coo.add(0, 2, 1);
    coo.add(1, 3, 1); // both 1 -> 3 and 2 -> 3: duplicate activation
    coo.add(2, 3, 1);
    graph::Csr g = fromCoo(std::move(coo));
    for (FrontierMode mode : kAllFrontierModes) {
        auto run = GraphEngine(g, withFrontier(mode)).bfs(0);
        EXPECT_EQ(run.values,
                  (std::vector<Dist>{0, 1, 1, 2}));
        // Iterations: {1,2} relax, {3} relaxes, {} no change.
        // Peak frontier is the deduplicated 2, not 1+1+... repeats.
        EXPECT_EQ(run.info.peakFrontier, 2u);
    }
}

TEST(FrontierEngine, EmptyGraph)
{
    graph::Csr g = fromCoo(graph::CooEdges(0));
    for (FrontierMode mode : kAllFrontierModes) {
        auto run = GraphEngine(g, withFrontier(mode)).cc();
        EXPECT_TRUE(run.info.converged);
        EXPECT_TRUE(run.values.empty());
    }
}

TEST(FrontierEngine, SingleNodeGraph)
{
    graph::Csr g = fromCoo(graph::CooEdges(1));
    for (FrontierMode mode : kAllFrontierModes) {
        auto run = GraphEngine(g, withFrontier(mode)).bfs(0);
        EXPECT_TRUE(run.info.converged);
        ASSERT_EQ(run.values.size(), 1u);
        EXPECT_EQ(run.values[0], 0u);
        EXPECT_LE(run.info.iterations, 1u);
    }
}

TEST(FrontierEngine, AdaptiveSwitchThresholdBoundary)
{
    // On a 128-node directed ring every frontier is exactly one node.
    // ratio = 1/128 puts the threshold at exactly 1.0: count <=
    // threshold, so EVERY iteration must run sparse (equality goes
    // sparse). ratio = 1/256 puts it at 0.5: every iteration dense.
    graph::Csr g = ring(128);
    auto sparse_side =
        GraphEngine(g, withFrontier(FrontierMode::Adaptive, 1.0 / 128))
            .bfs(0);
    EXPECT_EQ(sparse_side.info.sparseIterations,
              sparse_side.info.iterations);
    EXPECT_GT(sparse_side.info.iterations, 100u);

    auto dense_side =
        GraphEngine(g, withFrontier(FrontierMode::Adaptive, 1.0 / 256))
            .bfs(0);
    EXPECT_EQ(dense_side.info.sparseIterations, 0u);
    EXPECT_EQ(dense_side.values, sparse_side.values);
    EXPECT_EQ(dense_side.info.iterations, sparse_side.info.iterations);

    // The forced modes bracket the adaptive behavior.
    auto forced_sparse =
        GraphEngine(g, withFrontier(FrontierMode::Sparse)).bfs(0);
    EXPECT_EQ(forced_sparse.info.sparseIterations,
              forced_sparse.info.iterations);
    auto forced_dense =
        GraphEngine(g, withFrontier(FrontierMode::Dense)).bfs(0);
    EXPECT_EQ(forced_dense.info.sparseIterations, 0u);
}

TEST(FrontierEngine, SparseChargesCompactionLaunches)
{
    graph::Csr g = ring(64);
    auto dense =
        GraphEngine(g, withFrontier(FrontierMode::Dense)).sssp(0);
    auto sparse =
        GraphEngine(g, withFrontier(FrontierMode::Sparse)).sssp(0);
    EXPECT_EQ(dense.values, sparse.values);
    EXPECT_EQ(dense.info.iterations, sparse.info.iterations);
    EXPECT_EQ(dense.info.stats.launches, dense.info.iterations);
    EXPECT_EQ(sparse.info.stats.launches,
              sparse.info.iterations + sparse.info.sparseIterations);
    EXPECT_EQ(sparse.info.sparseIterations, sparse.info.iterations);
}

TEST(FrontierEngine, PullFilterMatchesUnfilteredAndPush)
{
    graph::CooEdges coo = graph::rmat(
        {.nodes = 500, .edges = 4000, .seed = 11});
    graph::BuildOptions build;
    build.randomizeWeights = true;
    build.maxWeight = 16;
    build.weightSeed = 11;
    graph::Csr g = graph::GraphBuilder(build).build(std::move(coo));

    EngineOptions push_opts = withFrontier(FrontierMode::Adaptive);
    push_opts.strategy = Strategy::TigrVPlus;
    const auto push_sssp = GraphEngine(g, push_opts).sssp(0);
    const auto push_cc = GraphEngine(g, push_opts).cc();

    EngineOptions pull_opts = push_opts;
    pull_opts.direction = Direction::Pull;
    GraphEngine filtered(g, pull_opts);
    const auto pull_sssp = filtered.sssp(0);
    EXPECT_EQ(pull_sssp.values, push_sssp.values);
    EXPECT_GT(pull_sssp.info.sparseIterations, 0u);
    EXPECT_EQ(filtered.cc().values, push_cc.values);

    // The opt-out restores the classic all-destinations gather — same
    // values, every iteration at full width.
    EngineOptions unfiltered_opts = pull_opts;
    unfiltered_opts.pullWorklist = false;
    GraphEngine unfiltered(g, unfiltered_opts);
    const auto plain = unfiltered.sssp(0);
    EXPECT_EQ(plain.values, push_sssp.values);
    EXPECT_EQ(plain.info.sparseIterations, 0u);
    EXPECT_EQ(plain.info.peakFrontier, g.numNodes());
}

} // namespace
} // namespace tigr::engine
