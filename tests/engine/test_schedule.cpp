/**
 * @file
 * Tests of the per-strategy work-unit decompositions: thread counts,
 * grouping, exact edge coverage, and strategy metadata.
 */
#include <gtest/gtest.h>

#include "engine/schedule.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace tigr::engine {
namespace {

graph::Csr
testGraph()
{
    static graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 128, .edges = 2000, .seed = 17}));
    return g;
}

class ScheduleSweep : public ::testing::TestWithParam<Strategy>
{
};

TEST_P(ScheduleSweep, EveryEdgeCoveredExactlyOnce)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, GetParam(), 8, 4);
    std::vector<unsigned> covered(g.numEdges(), 0);
    for (const WorkUnit &unit : schedule.allUnits()) {
        for (std::uint32_t j = 0; j < unit.count; ++j) {
            EdgeIndex e = unit.start +
                static_cast<EdgeIndex>(unit.stride) * j;
            ASSERT_LT(e, g.numEdges());
            // The slot must belong to the unit's value node.
            EXPECT_GE(e, g.edgeBegin(unit.valueNode));
            EXPECT_LT(e, g.edgeEnd(unit.valueNode));
            ++covered[e];
        }
    }
    for (EdgeIndex e = 0; e < g.numEdges(); ++e)
        EXPECT_EQ(covered[e], 1u) << "edge " << e;
}

TEST_P(ScheduleSweep, UnitsGroupedByAscendingValueNode)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, GetParam(), 8, 4);
    NodeId prev = 0;
    for (const WorkUnit &unit : schedule.allUnits()) {
        EXPECT_GE(unit.valueNode, prev);
        prev = unit.valueNode;
    }
    // unitsOf(v) spans partition allUnits().
    std::uint64_t total = 0;
    for (NodeId v = 0; v < schedule.numValueNodes(); ++v) {
        for (const WorkUnit &unit : schedule.unitsOf(v))
            EXPECT_EQ(unit.valueNode, v);
        total += schedule.unitsOf(v).size();
    }
    EXPECT_EQ(total, schedule.numUnits());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ScheduleSweep, ::testing::ValuesIn(kAllStrategies),
    [](const auto &info) {
        std::string name(strategyName(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

TEST(Schedule, BaselineOneUnitPerNode)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, Strategy::Baseline);
    EXPECT_EQ(schedule.numUnits(), g.numNodes());
}

TEST(Schedule, VirtualUnitCountsMatchCeilFormula)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, Strategy::TigrV, 8);
    std::uint64_t expected = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EdgeIndex d = g.degree(v);
        expected += d == 0 ? 1 : (d + 7) / 8;
    }
    EXPECT_EQ(schedule.numUnits(), expected);
    // No unit exceeds the degree bound.
    for (const WorkUnit &unit : schedule.allUnits())
        EXPECT_LE(unit.count, 8u);
}

TEST(Schedule, CoalescedUnitsUseFamilyStride)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, Strategy::TigrVPlus, 8);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        auto units = schedule.unitsOf(v);
        for (const WorkUnit &unit : units)
            EXPECT_EQ(unit.stride, units.size());
    }
}

TEST(Schedule, MaximumWarpLaneCount)
{
    graph::Csr g = testGraph();
    Schedule schedule = Schedule::build(g, Strategy::MaximumWarp, 8, 4);
    EXPECT_EQ(schedule.numUnits(),
              static_cast<std::uint64_t>(g.numNodes()) * 4);
}

TEST(Schedule, EdgeParallelStrategiesHaveOneUnitPerEdge)
{
    graph::Csr g = testGraph();
    for (Strategy s : {Strategy::Cusha, Strategy::Gunrock}) {
        Schedule schedule = Schedule::build(g, s);
        EXPECT_EQ(schedule.numUnits(), g.numEdges());
        for (const WorkUnit &unit : schedule.allUnits())
            EXPECT_EQ(unit.count, 1u);
    }
}

TEST(Schedule, CushaAndMwIgnoreWorklist)
{
    // CuSha sweeps all shards per super-step; the MW implementation
    // the paper uses (from the CuSha repo) processes all nodes too.
    graph::Csr g = testGraph();
    for (Strategy s : kAllStrategies) {
        Schedule schedule = Schedule::build(g, s, 8, 4);
        EXPECT_EQ(schedule.ignoresWorklist(),
                  s == Strategy::Cusha || s == Strategy::MaximumWarp)
            << strategyName(s);
    }
}

TEST(Strategy, NamesRoundTrip)
{
    for (Strategy s : kAllStrategies) {
        auto parsed = parseStrategy(strategyName(s));
        ASSERT_TRUE(parsed.has_value()) << strategyName(s);
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseStrategy("nonsense").has_value());
}

TEST(Strategy, FootprintModelOrdering)
{
    graph::Csr g = testGraph();
    // CuSha's shards are the largest representation; Gunrock's BFS
    // buffers exceed its other algorithms; Tigr-V adds only the
    // virtual node array on top of the baseline.
    auto base = modeledFootprintBytes(Strategy::Baseline,
                                      Algorithm::Sssp, g);
    auto tigr = modeledFootprintBytes(Strategy::TigrV, Algorithm::Sssp,
                                      g, g.numNodes() + 100);
    auto cusha = modeledFootprintBytes(Strategy::Cusha, Algorithm::Sssp,
                                       g);
    auto gunrock_sssp = modeledFootprintBytes(Strategy::Gunrock,
                                              Algorithm::Sssp, g);
    auto gunrock_bfs = modeledFootprintBytes(Strategy::Gunrock,
                                             Algorithm::Bfs, g);
    EXPECT_LT(base, tigr);
    EXPECT_LT(tigr, gunrock_sssp);
    EXPECT_LT(gunrock_sssp, gunrock_bfs);
    EXPECT_LT(gunrock_bfs, cusha);
}

TEST(Strategy, FootprintReproducesPaperOomPattern)
{
    // At the paper's dataset sizes on the paper's 8 GB GPU, the model
    // must flag exactly the OOM cells of Table 4: CuSha on twitter and
    // sinaweibo, Gunrock (BFS) on sinaweibo, and nothing for Tigr.
    constexpr std::uint64_t kBudget = 8ULL << 30;
    struct PaperGraph
    {
        const char *name;
        std::uint64_t n, m;
        bool cushaOom, gunrockBfsOom;
    };
    const PaperGraph graphs[] = {
        {"pokec", 1'600'000, 31'000'000, false, false},
        {"livejournal", 4'000'000, 69'000'000, false, false},
        {"hollywood", 1'100'000, 114'000'000, false, false},
        {"orkut", 3'100'000, 234'000'000, false, false},
        {"sinaweibo", 59'000'000, 523'000'000, true, true},
        {"twitter", 21'000'000, 530'000'000, true, false},
    };
    for (const PaperGraph &g : graphs) {
        EXPECT_EQ(modeledFootprintBytes(Strategy::Cusha, Algorithm::Sssp,
                                        g.n, g.m) > kBudget,
                  g.cushaOom)
            << "cusha " << g.name;
        EXPECT_EQ(modeledFootprintBytes(Strategy::Gunrock,
                                        Algorithm::Bfs, g.n, g.m) >
                      kBudget,
                  g.gunrockBfsOom)
            << "gunrock bfs " << g.name;
        // Gunrock's SSSP fits everywhere (Table 4 reports numbers).
        EXPECT_LE(modeledFootprintBytes(Strategy::Gunrock,
                                        Algorithm::Sssp, g.n, g.m),
                  kBudget)
            << "gunrock sssp " << g.name;
        // Tigr-V+ never OOMs (virtual array ~ n + m/10 entries).
        EXPECT_LE(modeledFootprintBytes(Strategy::TigrVPlus,
                                        Algorithm::Sssp, g.n, g.m,
                                        g.n + g.m / 10),
                  kBudget)
            << "tigr " << g.name;
    }
}

TEST(Strategy, CyclesToMsIsLinear)
{
    EXPECT_DOUBLE_EQ(cyclesToMs(0), 0.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(1'200'000), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(2'400'000), 2.0);
}

} // namespace
} // namespace tigr::engine
