/**
 * @file
 * The durability layer end to end: write-ahead journal framing and
 * torn-tail scanning, the crash-injection file-I/O shim, sidecar-aware
 * directory audit, startup recovery, and — the centerpiece — a
 * deterministic crash-point torture sweep: the same durable workload is
 * crashed at EVERY recorded file-I/O point (writes cut at several byte
 * offsets, fsyncs and renames killed outright), recovered into a fresh
 * store, and the recovered state is required to be bit-identical — by
 * epoch and by query metricsDigest, at 1, 2, and 8 scheduler workers —
 * to a reference prefix of the uncrashed run. Recovery must never
 * throw, whatever the crash left behind.
 */
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "dynamic/mutation.hpp"
#include "fault/fault.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/fileio.hpp"
#include "service/graph_store.hpp"
#include "service/journal.hpp"
#include "service/query_scheduler.hpp"
#include "service/recovery.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {
namespace {

namespace fs = std::filesystem;

class TempDir : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("tigr_durability_" +
                std::to_string(
                    ::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path path(const std::string &name) const { return dir_ / name; }

    /** A fresh empty subdirectory (one per torture case). */
    fs::path freshDir(std::size_t index)
    {
        fs::path sub = dir_ / ("case_" + std::to_string(index));
        fs::remove_all(sub);
        fs::create_directories(sub);
        return sub;
    }

    fs::path dir_;
};

using JournalFormat = TempDir;
using CrashShim = TempDir;
using SidecarAudit = TempDir;
using Recovery = TempDir;
using DurableStore = TempDir;
using CrashTorture = TempDir;

graph::Csr
seedGraph()
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 30;
    options.weightSeed = 5;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 128, .edges = 700, .seed = 5}));
}

dynamic::MutationBatch
insertBatch(std::initializer_list<std::array<std::uint32_t, 3>> edges)
{
    dynamic::MutationBatch batch;
    for (const auto &e : edges)
        batch.push_back({dynamic::MutationKind::InsertEdge, e[0], e[1],
                         e[2]});
    return batch;
}

// ---------------------------------------------------------------------
// Journal wire format
// ---------------------------------------------------------------------

TEST_F(JournalFormat, RoundTripsRecordsThroughScan)
{
    const fs::path journal = path("g.twj");
    {
        JournalWriter writer = JournalWriter::create(
            journal, 4, SyncPolicy::EveryRecord);
        writer.append(5, insertBatch({{1, 2, 9}}));
        writer.append(6, insertBatch({{3, 4, 7}, {5, 6, 1}}));
        writer.append(7, {}); // an empty batch is still an epoch
        EXPECT_EQ(writer.records(), 3u);
        EXPECT_EQ(writer.baseEpoch(), 4u);
    }
    const JournalScan scan = scanJournal(journal);
    ASSERT_TRUE(scan.headerIntact);
    EXPECT_EQ(scan.baseEpoch, 4u);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.tornBytes(), 0u);
    EXPECT_EQ(scan.records[0].epoch, 5u);
    EXPECT_EQ(scan.records[0].seq, 0u);
    ASSERT_EQ(scan.records[1].batch.size(), 2u);
    EXPECT_EQ(scan.records[1].batch[0].src, 3u);
    EXPECT_EQ(scan.records[1].batch[0].weight, 7u);
    EXPECT_EQ(scan.records[2].batch.size(), 0u);
    // Offsets chain: each record starts where the previous ended.
    EXPECT_EQ(scan.records[0].offset, 32u);
    EXPECT_LT(scan.records[0].offset, scan.records[1].offset);
    EXPECT_EQ(scan.intactBytes, scan.fileBytes);
}

TEST_F(JournalFormat, ResumeAppendsAfterTheIntactPrefix)
{
    const fs::path journal = path("g.twj");
    {
        JournalWriter writer = JournalWriter::create(
            journal, 0, SyncPolicy::GroupCommit);
        writer.append(1, insertBatch({{1, 2, 3}}));
        writer.sync();
    }
    {
        JournalWriter writer =
            JournalWriter::resume(journal, SyncPolicy::GroupCommit);
        EXPECT_EQ(writer.records(), 1u);
        writer.append(2, insertBatch({{4, 5, 6}}));
        writer.sync();
    }
    const JournalScan scan = scanJournal(journal);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[1].epoch, 2u);
    EXPECT_EQ(scan.records[1].seq, 1u);
}

TEST_F(JournalFormat, TornTailEndsTheIntactPrefixWithoutThrowing)
{
    const fs::path journal = path("g.twj");
    std::uint64_t cleanBytes = 0;
    {
        JournalWriter writer = JournalWriter::create(
            journal, 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 3}}));
        writer.append(2, insertBatch({{4, 5, 6}}));
        cleanBytes = writer.bytes();
    }
    // Tear the last record: drop its final byte.
    fs::resize_file(journal, cleanBytes - 1);
    JournalScan scan = scanJournal(journal);
    ASSERT_TRUE(scan.headerIntact);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_GT(scan.tornBytes(), 0u);

    // A flipped payload byte (CRC failure) ends the prefix the same
    // way: hostile bytes are a boundary, never an exception.
    {
        std::fstream f(journal,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(scan.records[0].offset) + 12);
        f.put('\xff');
    }
    scan = scanJournal(journal);
    ASSERT_TRUE(scan.headerIntact);
    EXPECT_EQ(scan.records.size(), 0u);
    EXPECT_GT(scan.tornBytes(), 0u);
}

TEST_F(JournalFormat, ForeignAndTruncatedHeadersAreUntrusted)
{
    const fs::path foreign = path("foreign.twj");
    {
        std::ofstream out(foreign, std::ios::binary);
        out << "definitely not a journal, but long enough to scan";
    }
    EXPECT_FALSE(scanJournal(foreign).headerIntact);
    EXPECT_THROW(JournalWriter::resume(foreign, SyncPolicy::Unsynced),
                 JournalError);

    const fs::path stub = path("stub.twj");
    { std::ofstream out(stub, std::ios::binary); out << "TIGR"; }
    EXPECT_FALSE(scanJournal(stub).headerIntact);

    EXPECT_THROW(scanJournal(path("missing.twj")), JournalError);
}

TEST_F(JournalFormat, AbortLastRollsBackTheRejectedRecord)
{
    const fs::path journal = path("g.twj");
    JournalWriter writer =
        JournalWriter::create(journal, 0, SyncPolicy::EveryRecord);
    writer.append(1, insertBatch({{1, 2, 3}}));
    const std::uint64_t committed = writer.bytes();
    writer.append(2, insertBatch({{7, 8, 9}}));
    writer.abortLast();
    EXPECT_EQ(writer.bytes(), committed);
    EXPECT_EQ(writer.records(), 1u);
    EXPECT_THROW(writer.abortLast(), std::logic_error);
    // The freed seq is reused, keeping the chain dense.
    writer.append(2, insertBatch({{9, 9, 1}}));
    const JournalScan scan = scanJournal(journal);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[1].seq, 1u);
    EXPECT_EQ(scan.records[1].batch[0].src, 9u);
}

TEST_F(JournalFormat, SyncPolicyNamesRoundTrip)
{
    for (SyncPolicy policy :
         {SyncPolicy::EveryRecord, SyncPolicy::GroupCommit,
          SyncPolicy::Unsynced}) {
        auto parsed = parseSyncPolicy(syncPolicyName(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parseSyncPolicy("fsync-sometimes").has_value());
    EXPECT_FALSE(parseSyncPolicy("").has_value());
}

TEST_F(JournalFormat, JournalPathForSwapsTheExtension)
{
    EXPECT_EQ(journalPathFor("dir/g.tgs"), fs::path("dir/g.twj"));
    EXPECT_EQ(journalPathFor("g"), fs::path("g.twj"));
    EXPECT_THROW(journalPathFor("dir/"), std::invalid_argument);
}

TEST_F(JournalFormat, Crc32cMatchesKnownVectorsAndChains)
{
    // RFC 3720 test vector: 32 zero bytes.
    const unsigned char zeros[32] = {};
    EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
    const char *text = "123456789";
    EXPECT_EQ(crc32c(text, 9), 0xe3069283u);
    // Chaining equals one-shot over the concatenation.
    EXPECT_EQ(crc32c(text + 4, 5, crc32c(text, 4)), 0xe3069283u);
}

// ---------------------------------------------------------------------
// Crash-injection shim
// ---------------------------------------------------------------------

TEST_F(CrashShim, RecordingScopeLogsEveryOperation)
{
    io::CrashScope recorder;
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 3}}));
    }
    // create: header write + sync + dir sync; append: write + sync.
    ASSERT_EQ(recorder.log().size(), 5u);
    EXPECT_EQ(recorder.log()[0].kind, io::OpKind::Write);
    EXPECT_EQ(recorder.log()[1].kind, io::OpKind::Sync);
    EXPECT_EQ(recorder.log()[2].kind, io::OpKind::Sync);
    EXPECT_EQ(recorder.log()[3].kind, io::OpKind::Write);
    EXPECT_EQ(recorder.log()[4].kind, io::OpKind::Sync);
    EXPECT_FALSE(recorder.crashed());
}

TEST_F(CrashShim, CrashingScopeCutsTheWriteMidRecord)
{
    // Crash point 3 is the append's write (see the recording test);
    // allow 4 bytes of it to land, then die.
    io::CrashScope scope(io::CrashSpec{3, 4});
    std::uint64_t cleanHeaderBytes = 0;
    try {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        cleanHeaderBytes = writer.bytes();
        writer.append(1, insertBatch({{1, 2, 3}}));
        FAIL() << "the armed crash point did not fire";
    } catch (const fault::InjectedCrash &) {
    }
    EXPECT_TRUE(scope.crashed());
    EXPECT_EQ(fs::file_size(path("g.twj")), cleanHeaderBytes + 4);
    // The torn 4-byte tail is exactly what scanJournal truncates to.
    const JournalScan scan = scanJournal(path("g.twj"));
    ASSERT_TRUE(scan.headerIntact);
    EXPECT_EQ(scan.records.size(), 0u);
    EXPECT_EQ(scan.tornBytes(), 4u);
}

TEST_F(CrashShim, CrashingScopeKillsSyncsBeforeTheyRun)
{
    io::CrashScope scope(io::CrashSpec{1, 0}); // create's file sync
    EXPECT_THROW(JournalWriter::create(path("g.twj"), 0,
                                       SyncPolicy::EveryRecord),
                 fault::InjectedCrash);
    EXPECT_TRUE(scope.crashed());
}

TEST_F(CrashShim, SnapshotWriteCrashLeavesOnlyTheTmpLeftover)
{
    const fs::path target = path("g.tgs");
    Snapshot snapshot;
    snapshot.graph = seedGraph();
    io::CrashScope scope(io::CrashSpec{0, 100}); // cut the tmp write
    EXPECT_THROW(saveSnapshotFile(snapshot, target),
                 fault::InjectedCrash);
    EXPECT_FALSE(fs::exists(target));
    ASSERT_TRUE(fs::exists(path("g.tgs.tmp")));
    EXPECT_EQ(fs::file_size(path("g.tgs.tmp")), 100u);
}

TEST_F(CrashShim, InjectedCrashIsNotAnInjectedFault)
{
    // The retry machinery absorbs InjectedFault; a crash must never be
    // absorbable, so the types are deliberately unrelated.
    static_assert(
        !std::is_base_of_v<fault::InjectedFault, fault::InjectedCrash>);
    bool caught = false;
    try {
        throw fault::InjectedCrash("tigr: test crash");
    } catch (const fault::InjectedFault &) {
        FAIL() << "InjectedCrash was caught as InjectedFault";
    } catch (const fault::InjectedCrash &) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

TEST_F(CrashShim, JournalFaultSitesFireAsCrashes)
{
    fault::FaultPlan plan(7);
    plan.site(fault::Site::JournalAppend, 1.0);
    fault::FaultScope scope(plan, 0, 0);
    JournalWriter writer = JournalWriter::create(
        path("g.twj"), 0, SyncPolicy::Unsynced);
    EXPECT_THROW(writer.append(1, insertBatch({{1, 2, 3}})),
                 fault::InjectedCrash);
}

// ---------------------------------------------------------------------
// Sidecar-aware directory audit
// ---------------------------------------------------------------------

TEST_F(SidecarAudit, JudgesJournalsAndLogsBesideTheirSnapshots)
{
    // Intact snapshot + intact journal + intact log: all admitted.
    saveSnapshotFile(seedGraph(), path("good.tgs"));
    {
        JournalWriter writer = JournalWriter::create(
            path("good.twj"), 0, SyncPolicy::Unsynced);
        writer.append(1, insertBatch({{1, 2, 3}}));
    }
    {
        dynamic::MutationLog log;
        log.append(insertBatch({{1, 2, 3}}));
        std::ofstream out(path("good.tml"));
        log.save(out);
    }
    // Orphaned sidecars: no snapshot stem to replay onto.
    {
        JournalWriter::create(path("orphan.twj"), 0,
                              SyncPolicy::Unsynced);
        std::ofstream out(path("orphan.tml"));
        out << "batch 0 0\n";
    }
    // Corrupt sidecars beside an intact snapshot.
    saveSnapshotFile(seedGraph(), path("bad.tgs"));
    { std::ofstream out(path("bad.twj")); out << "junk journal"; }
    { std::ofstream out(path("bad.tml")); out << "not a log at all"; }
    // Rotation leftover: always quarantined.
    { std::ofstream out(path("spare.twj.tmp")); out << "partial"; }

    const SnapshotAuditReport report = auditSnapshotDirectory(dir_);
    EXPECT_EQ(report.intact.size(), 2u);
    ASSERT_EQ(report.journals.size(), 1u);
    EXPECT_EQ(report.journals[0], path("good.twj"));
    ASSERT_EQ(report.mutationLogs.size(), 1u);
    EXPECT_EQ(report.mutationLogs[0], path("good.tml"));
    EXPECT_EQ(report.quarantined.size(), 5u);
    for (const fs::path &q : report.quarantined)
        EXPECT_TRUE(q.filename().string().ends_with(".quarantined"))
            << q;
    EXPECT_FALSE(fs::exists(path("orphan.twj")));
    EXPECT_FALSE(fs::exists(path("bad.tml")));
    EXPECT_TRUE(fs::exists(path("good.twj")));

    // Idempotent: a second audit admits the same set, renames nothing.
    const SnapshotAuditReport again = auditSnapshotDirectory(dir_);
    EXPECT_EQ(again.intact.size(), 2u);
    EXPECT_EQ(again.journals.size(), 1u);
    EXPECT_EQ(again.mutationLogs.size(), 1u);
    EXPECT_TRUE(again.quarantined.empty());
}

TEST_F(SidecarAudit, TornJournalTailIsNotCorruption)
{
    saveSnapshotFile(seedGraph(), path("g.tgs"));
    std::uint64_t cleanBytes = 0;
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 3}}));
        cleanBytes = writer.bytes();
    }
    fs::resize_file(path("g.twj"), cleanBytes - 2);
    const SnapshotAuditReport report = auditSnapshotDirectory(dir_);
    ASSERT_EQ(report.journals.size(), 1u);
    EXPECT_TRUE(report.quarantined.empty());
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

TEST_F(Recovery, ReplaysIntactRecordsOnTopOfTheSnapshot)
{
    // Build the reference state: graph + 2 batches, all in memory.
    GraphStore reference;
    reference.add("g", seedGraph());
    const auto b1 = insertBatch({{1, 2, 9}, {3, 4, 7}});
    const auto b2 = insertBatch({{5, 6, 1}});
    reference.mutate("g", b1);
    reference.mutate("g", b2);

    // Durable dir: snapshot at epoch 0, journal carrying both batches.
    saveSnapshotFile(seedGraph(), path("g.tgs"));
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, b1);
        writer.append(2, b2);
    }

    GraphStore store;
    obs::MetricsRegistry metrics;
    obs::TraceSink trace;
    DurableOptions options;
    options.metrics = &metrics;
    options.trace = &trace;
    const RecoveryReport report = store.openDurable(dir_, options);

    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(report.graphs[0].name, "g");
    EXPECT_EQ(report.graphs[0].snapshotEpoch, 0u);
    EXPECT_EQ(report.graphs[0].recoveredEpoch, 2u);
    EXPECT_EQ(report.graphs[0].recordsReplayed, 2u);
    EXPECT_EQ(report.graphs[0].recordsRetired, 0u);
    EXPECT_FALSE(report.graphs[0].tornTail);
    EXPECT_EQ(report.epochsReplayed(), 2u);
    EXPECT_EQ(store.epochOf("g"), 2u);
    EXPECT_EQ(store.at("g").graph.numEdges(),
              reference.at("g").graph.numEdges());
    EXPECT_EQ(metrics.counter("recovery.replayed").value(), 2u);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.events()[0].kind, obs::EventKind::RecoverGraph);

    const std::string text = formatRecoveryReport(report);
    EXPECT_NE(text.find("graph g"), std::string::npos);
    EXPECT_NE(text.find("epoch 2"), std::string::npos);
}

TEST_F(Recovery, TruncatesAndPreservesTheTornTail)
{
    saveSnapshotFile(seedGraph(), path("g.tgs"));
    std::uint64_t cleanBytes = 0;
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 9}}));
        cleanBytes = writer.bytes();
        writer.append(2, insertBatch({{3, 4, 7}}));
    }
    const std::uint64_t fullBytes = fs::file_size(path("g.twj"));
    fs::resize_file(path("g.twj"), fullBytes - 3);

    GraphStore store;
    const RecoveryReport report = store.openDurable(dir_);
    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(report.graphs[0].recordsReplayed, 1u);
    EXPECT_TRUE(report.graphs[0].tornTail);
    EXPECT_EQ(report.graphs[0].bytesTruncated, fullBytes - 3 -
                                                   cleanBytes);
    EXPECT_EQ(store.epochOf("g"), 1u);
    // The journal is now clean; the cut bytes survive aside.
    EXPECT_EQ(fs::file_size(path("g.twj")), cleanBytes);
    EXPECT_TRUE(fs::exists(path("g.twj.torn")));
    EXPECT_EQ(report.tornTails(), 1u);

    // Idempotent: recovering the recovered directory changes nothing.
    GraphStore second;
    const RecoveryReport again = second.openDurable(dir_);
    ASSERT_EQ(again.graphs.size(), 1u);
    EXPECT_EQ(again.graphs[0].recordsReplayed, 1u);
    EXPECT_FALSE(again.graphs[0].tornTail);
    EXPECT_EQ(second.epochOf("g"), 1u);
}

TEST_F(Recovery, AnEpochGapEndsTheIntactPrefix)
{
    saveSnapshotFile(seedGraph(), path("g.tgs"));
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 9}}));
        writer.append(3, insertBatch({{3, 4, 7}})); // gap: no epoch 2
        writer.append(4, insertBatch({{5, 6, 1}}));
    }
    GraphStore store;
    const RecoveryReport report = store.openDurable(dir_);
    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(report.graphs[0].recordsReplayed, 1u);
    EXPECT_TRUE(report.graphs[0].tornTail);
    EXPECT_EQ(store.epochOf("g"), 1u);
    // Everything from the gap on was cut — the journal rescans clean.
    const JournalScan scan = scanJournal(path("g.twj"));
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.tornBytes(), 0u);
}

TEST_F(Recovery, CheckpointRetiredRecordsAreSkipped)
{
    // Snapshot at epoch 2 with a journal holding epochs 1..3: 1 and 2
    // are already inside the snapshot, only 3 replays.
    GraphStore builder;
    builder.add("g", seedGraph());
    builder.mutate("g", insertBatch({{1, 2, 9}}));
    builder.mutate("g", insertBatch({{3, 4, 7}}));
    Snapshot snapshot;
    snapshot.graph = builder.at("g").graph;
    snapshot.epoch = 2;
    saveSnapshotFile(snapshot, path("g.tgs"));
    {
        JournalWriter writer = JournalWriter::create(
            path("g.twj"), 0, SyncPolicy::EveryRecord);
        writer.append(1, insertBatch({{1, 2, 9}}));
        writer.append(2, insertBatch({{3, 4, 7}}));
        writer.append(3, insertBatch({{5, 6, 1}}));
    }
    GraphStore store;
    const RecoveryReport report = store.openDurable(dir_);
    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(report.graphs[0].recordsRetired, 2u);
    EXPECT_EQ(report.graphs[0].recordsReplayed, 1u);
    EXPECT_FALSE(report.graphs[0].tornTail);
    EXPECT_EQ(store.epochOf("g"), 3u);
}

// ---------------------------------------------------------------------
// The durable store
// ---------------------------------------------------------------------

TEST_F(DurableStore, MutationsSurviveACleanReopen)
{
    {
        GraphStore store;
        DurableOptions options;
        options.syncPolicy = SyncPolicy::EveryRecord;
        store.openDurable(dir_, options);
        EXPECT_TRUE(store.durable());
        EXPECT_EQ(store.durableDir(), dir_);
        store.add("g", seedGraph());
        store.mutate("g", insertBatch({{1, 2, 9}}));
        store.mutate("g", insertBatch({{3, 4, 7}}));
        EXPECT_TRUE(fs::exists(path("g.tgs")));
        EXPECT_TRUE(fs::exists(path("g.twj")));
        EXPECT_THROW(store.openDurable(dir_), std::logic_error);
    }
    GraphStore reopened;
    const RecoveryReport report = reopened.openDurable(dir_);
    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(reopened.epochOf("g"), 2u);
}

TEST_F(DurableStore, RejectedBatchLeavesNoJournalRecord)
{
    GraphStore store;
    store.openDurable(dir_);
    store.add("g", seedGraph());
    store.mutate("g", insertBatch({{1, 2, 9}}));
    // An out-of-range source fails typed validation after the record
    // was journaled: the append must be rolled back.
    EXPECT_THROW(store.mutate("g", insertBatch({{5000, 2, 9}})),
                 dynamic::MutationError);
    store.syncJournals();
    const JournalScan scan = scanJournal(path("g.twj"));
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.tornBytes(), 0u);
    EXPECT_EQ(store.epochOf("g"), 1u);
}

TEST_F(DurableStore, CheckpointRetiresTheJournalIntoTheSnapshot)
{
    GraphStore store;
    obs::MetricsRegistry metrics;
    DurableOptions options;
    options.metrics = &metrics;
    store.openDurable(dir_, options);
    store.add("g", seedGraph());
    store.mutate("g", insertBatch({{1, 2, 9}}));
    store.mutate("g", insertBatch({{3, 4, 7}}));
    const CheckpointResult cp = store.checkpoint("g");
    EXPECT_EQ(cp.epoch, 2u);
    EXPECT_EQ(cp.retiredRecords, 2u);
    EXPECT_EQ(metrics.counter("journal.checkpoints").value(), 1u);

    // The rotated journal is empty and based at the snapshot's epoch;
    // later mutations land in it.
    JournalScan scan = scanJournal(path("g.twj"));
    EXPECT_EQ(scan.baseEpoch, 2u);
    EXPECT_TRUE(scan.records.empty());
    store.mutate("g", insertBatch({{5, 6, 1}}));
    store.syncJournals();
    scan = scanJournal(path("g.twj"));
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].epoch, 3u);

    GraphStore reopened;
    const RecoveryReport report = reopened.openDurable(dir_);
    ASSERT_EQ(report.graphs.size(), 1u);
    EXPECT_EQ(report.graphs[0].snapshotEpoch, 2u);
    EXPECT_EQ(report.graphs[0].recordsReplayed, 1u);
    EXPECT_EQ(reopened.epochOf("g"), 3u);
}

TEST_F(DurableStore, CheckpointRequiresADurableStore)
{
    GraphStore store;
    EXPECT_THROW(store.checkpoint("g"), std::logic_error);
    store.syncJournals(); // explicitly a no-op when not durable
}

// ---------------------------------------------------------------------
// Crash-point torture sweep
// ---------------------------------------------------------------------

/** Query digests of the store's current state at a given worker
 *  count. Fresh scheduler + fresh cache per capture, so the digests
 *  depend on the store state alone. */
std::vector<std::uint64_t>
stateDigests(const GraphStore &store, unsigned workers)
{
    // Pin the current epoch's dense entry first: a freshly mutated (or
    // journal-replayed) store would otherwise serve these probes off
    // the live arena, whose simulated cycle counts differ from the
    // dense path by arena slot geometry. The digests here witness
    // *state*, so every probe must measure the same (dense) execution
    // path regardless of how the store arrived at its epoch.
    store.pin("g");
    TransformCache cache(std::size_t{8} << 20);
    SchedulerOptions options;
    options.workers = workers;
    QueryScheduler scheduler(store, cache, options);
    std::vector<QuerySpec> batch(2);
    batch[0].graph = "g";
    batch[0].algorithm = engine::Algorithm::Bfs;
    batch[1].graph = "g";
    batch[1].algorithm = engine::Algorithm::Sssp;
    const std::vector<QueryResult> results = scheduler.runBatch(batch);
    std::vector<std::uint64_t> digests;
    for (const QueryResult &r : results) {
        EXPECT_EQ(r.outcome, QueryOutcome::Completed);
        digests.push_back(r.metricsDigest);
    }
    return digests;
}

constexpr std::size_t kTortureBatches = 10;
constexpr std::size_t kCheckpointAfter = 5;
constexpr std::size_t kSyncEvery = 3;

/**
 * The durable workload every torture case replays: open, register,
 * then kTortureBatches seeded mutations with group-commit barriers
 * every kSyncEvery batches and one mid-run checkpoint. @p acked tracks
 * the highest epoch known durable so far (the WAL ack floor the
 * recovery must reach). @p capture, when set, records the reference
 * digest vector after every epoch (index = epoch).
 */
void
runWorkload(const fs::path &dir, SyncPolicy policy,
            std::uint64_t &acked,
            std::vector<std::vector<std::uint64_t>> *capture)
{
    GraphStore store;
    DurableOptions options;
    options.syncPolicy = policy;
    store.openDurable(dir, options);
    store.add("g", seedGraph());
    if (capture)
        capture->push_back(stateDigests(store, 1)); // epoch 0
    for (std::size_t round = 0; round < kTortureBatches; ++round) {
        dynamic::GeneratorSpec spec;
        spec.seed = 40 + round;
        spec.inserts = 6;
        spec.deletes = 3;
        spec.reweights = 3;
        const dynamic::MutationBatch batch =
            dynamic::generateBatch(store.at("g").graph, spec);
        store.mutate("g", batch);
        if (policy == SyncPolicy::EveryRecord)
            acked = store.epochOf("g");
        if ((round + 1) % kSyncEvery == 0) {
            store.syncJournals();
            acked = store.epochOf("g");
        }
        if (round + 1 == kCheckpointAfter) {
            store.checkpoint("g");
            acked = store.epochOf("g");
        }
        if (capture)
            capture->push_back(stateDigests(store, 1));
    }
}

struct TortureCase
{
    SyncPolicy policy;
    io::CrashSpec spec;
};

TEST_F(CrashTorture, EveryIoPointRecoversToAReferencePrefix)
{
    // Reference run: digests after every epoch. State evolution is
    // policy-independent, so one reference serves both policies.
    std::vector<std::vector<std::uint64_t>> reference;
    {
        std::uint64_t acked = 0;
        runWorkload(freshDir(0), SyncPolicy::EveryRecord, acked,
                    &reference);
        ASSERT_EQ(acked, kTortureBatches);
    }
    ASSERT_EQ(reference.size(), kTortureBatches + 1);

    // Recording runs: learn every file-I/O point of the workload, per
    // policy. Writes get cut at several offsets; syncs and renames die
    // whole — mid-record, mid-fsync, mid-rename, mid-rotation crashes
    // all fall out of the one op log.
    std::vector<TortureCase> cases;
    std::size_t policyIndex = 0;
    for (SyncPolicy policy :
         {SyncPolicy::EveryRecord, SyncPolicy::GroupCommit}) {
        io::CrashScope recorder;
        std::uint64_t acked = 0;
        runWorkload(freshDir(1 + policyIndex++), policy, acked,
                    nullptr);
        const std::vector<io::OpRecord> &log = recorder.log();
        ASSERT_FALSE(log.empty());
        for (std::size_t point = 0; point < log.size(); ++point) {
            if (log[point].kind == io::OpKind::Write) {
                std::set<std::uint64_t> cuts{0};
                if (log[point].bytes > 1) {
                    cuts.insert(1);
                    cuts.insert(log[point].bytes / 2);
                    cuts.insert(log[point].bytes - 1);
                }
                for (std::uint64_t cut : cuts)
                    cases.push_back(
                        {policy, io::CrashSpec{point, cut}});
            } else {
                cases.push_back({policy, io::CrashSpec{point, 0}});
            }
        }
    }
    // The acceptance floor: at least 100 distinct injected crashes.
    ASSERT_GE(cases.size(), 100u);

    std::size_t caseIndex = 16; // fresh subdirectory namespace
    for (const TortureCase &c : cases) {
        SCOPED_TRACE("policy=" +
                     std::string(syncPolicyName(c.policy)) +
                     " point=" + std::to_string(c.spec.point) +
                     " cut=" + std::to_string(c.spec.cutBytes));
        const fs::path dir = freshDir(caseIndex++);
        std::uint64_t acked = 0;
        bool crashed = false;
        {
            io::CrashScope scope(c.spec);
            try {
                runWorkload(dir, c.policy, acked, nullptr);
            } catch (const fault::InjectedCrash &) {
                crashed = true;
            }
            ASSERT_TRUE(scope.crashed());
        }
        ASSERT_TRUE(crashed);

        // Recovery must never throw, whatever the crash left behind.
        GraphStore store;
        RecoveryReport report;
        ASSERT_NO_THROW(report = store.openDurable(dir));

        if (!store.contains("g")) {
            // The crash predates the base snapshot being durable;
            // nothing was acknowledged yet, so the empty prefix is the
            // correct recovery.
            EXPECT_EQ(acked, 0u);
            continue;
        }
        const std::uint64_t epoch = store.epochOf("g");
        ASSERT_LE(epoch, kTortureBatches);
        // The WAL guarantee: every acknowledged epoch survives.
        EXPECT_GE(epoch, acked);
        // Bit-identity with the reference prefix, at every worker
        // count the scheduler supports.
        const std::vector<std::uint64_t> &expected = reference[epoch];
        for (unsigned workers : {1u, 2u, 8u})
            EXPECT_EQ(stateDigests(store, workers), expected)
                << "workers=" << workers << " epoch=" << epoch;
    }
}

} // namespace
} // namespace tigr::service
