/**
 * @file
 * QueryScheduler differential tests: a 50-query mixed batch (5
 * algorithms x 2 graphs, several strategies, a few tight simulated
 * deadlines) must produce bit-identical results at 1, 2, and 8
 * workers, with at least one deterministic deadline-exceeded outcome
 * and at least one transform-cache hit. Plus the admission-rejection
 * taxonomy.
 */
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {
namespace {

graph::Csr
rmatGraph()
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 24;
    options.weightSeed = 77;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 600, .edges = 6000, .seed = 77}));
}

/** Ring plus a few heavy hubs — exercises the virtual splitting. */
graph::Csr
starHeavyGraph()
{
    const NodeId n = 1200;
    graph::CooEdges coo(n);
    for (NodeId v = 0; v < n; ++v)
        coo.add(v, (v + 1) % n, v % 7 + 1);
    for (NodeId hub : {NodeId{0}, NodeId{3}, NodeId{11}})
        for (NodeId v = 0; v < n; v += 2)
            if (v != hub)
                coo.add(hub, v, (hub + v) % 11 + 1);
    return graph::Csr::fromCoo(coo);
}

GraphStore &
sharedStore()
{
    static GraphStore store;
    static const bool initialized = [] {
        store.add("rmat", rmatGraph());
        store.add("star", starHeavyGraph());
        return true;
    }();
    (void)initialized;
    return store;
}

/** The acceptance-criteria batch: 50 queries, 5 algorithms, 2 graphs,
 *  4 strategies, with two PR queries under a deadline so tight the
 *  first iteration boundary always trips it. */
std::vector<QuerySpec>
mixedBatch()
{
    const engine::Algorithm algos[] = {
        engine::Algorithm::Bfs, engine::Algorithm::Sssp,
        engine::Algorithm::Sswp, engine::Algorithm::Cc,
        engine::Algorithm::Pr};
    const engine::Strategy strategies[] = {
        engine::Strategy::TigrVPlus, engine::Strategy::TigrV,
        engine::Strategy::Baseline, engine::Strategy::MaximumWarp};

    std::vector<QuerySpec> batch;
    for (std::size_t i = 0; i < 50; ++i) {
        QuerySpec spec;
        spec.graph = (i % 2 == 0) ? "rmat" : "star";
        spec.algorithm = algos[i % 5];
        spec.strategy = strategies[(i / 5) % 4];
        spec.source = static_cast<NodeId>((i * 37) % 500);
        spec.degreeBound = 8;
        spec.prIterations = 15;
        // Simulated-time deadlines are thread-count-invariant; one
        // iteration of simulated work always exceeds 1e-7 ms.
        if (i == 14 || i == 39) {
            spec.algorithm = engine::Algorithm::Pr;
            spec.deadlineSimMs = 1e-7;
        }
        batch.push_back(spec);
    }
    return batch;
}

void
expectIdenticalResults(const std::vector<QueryResult> &a,
                       const std::vector<QueryResult> &b,
                       unsigned workers)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i) + " at " +
                     std::to_string(workers) + " workers");
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_EQ(a[i].digest, b[i].digest);
        EXPECT_EQ(a[i].values, b[i].values);
        EXPECT_EQ(a[i].cacheHit, b[i].cacheHit);
        EXPECT_EQ(a[i].info.iterations, b[i].info.iterations);
        EXPECT_EQ(a[i].info.cancelled, b[i].info.cancelled);
        EXPECT_EQ(a[i].info.stats.cycles, b[i].info.stats.cycles);
        EXPECT_EQ(a[i].message, b[i].message);
    }
}

TEST(QuerySchedulerDeterminism, MixedBatchBitIdenticalAcrossWorkers)
{
    const std::vector<QuerySpec> batch = mixedBatch();

    // Reference: strictly sequential execution with a fresh cache.
    std::vector<QueryResult> reference;
    {
        TransformCache cache(std::size_t{256} << 20);
        SchedulerOptions options;
        options.workers = 1;
        QueryScheduler scheduler(sharedStore(), cache, options);
        ASSERT_EQ(scheduler.workers(), 1u);
        reference = scheduler.runBatch(batch);
    }

    std::size_t completed = 0, deadline = 0, hits = 0;
    for (const QueryResult &r : reference) {
        switch (r.outcome) {
          case QueryOutcome::Completed: ++completed; break;
          case QueryOutcome::DeadlineExceeded: ++deadline; break;
          default:
            ADD_FAILURE() << "unexpected outcome: " << r.message;
        }
        hits += r.cacheHit ? 1u : 0u;
        if (r.outcome == QueryOutcome::Completed) {
            EXPECT_NE(r.digest, 0u);
            EXPECT_GT(r.values, 0u);
        }
    }
    EXPECT_EQ(completed + deadline, batch.size());
    EXPECT_GE(deadline, 1u)
        << "tight simulated deadlines must trip deterministically";
    EXPECT_GE(hits, 1u) << "repeated transform keys must hit the cache";

    for (unsigned workers : {2u, 8u}) {
        TransformCache cache(std::size_t{256} << 20);
        SchedulerOptions options;
        options.workers = workers;
        QueryScheduler scheduler(sharedStore(), cache, options);
        expectIdenticalResults(scheduler.runBatch(batch), reference,
                               workers);
    }
}

TEST(QuerySchedulerDeterminism, RepeatedBatchIsAllCacheHits)
{
    TransformCache cache(std::size_t{256} << 20);
    SchedulerOptions options;
    options.workers = 4;
    QueryScheduler scheduler(sharedStore(), cache, options);

    const std::vector<QuerySpec> batch = mixedBatch();
    const auto first = scheduler.runBatch(batch);
    const auto second = scheduler.runBatch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(second[i].outcome, first[i].outcome);
        EXPECT_EQ(second[i].digest, first[i].digest);
        EXPECT_TRUE(second[i].cacheHit)
            << "query " << i << " should reuse the warm cache";
    }
}

TEST(QueryScheduler, RejectionTaxonomy)
{
    TransformCache cache(std::size_t{16} << 20);
    QueryScheduler scheduler(sharedStore(), cache, {});

    std::vector<QuerySpec> batch(4);
    batch[0].graph = "missing";
    batch[1].graph = "rmat";
    batch[1].algorithm = engine::Algorithm::Pr;
    batch[1].strategy = engine::Strategy::TigrUdt;
    batch[2].graph = "rmat";
    batch[2].algorithm = engine::Algorithm::Bfs;
    batch[2].source = 600; // == numNodes, one past the end
    batch[3].graph = "rmat";
    batch[3].strategy = engine::Strategy::TigrV;
    batch[3].degreeBound = 0;

    const auto results = scheduler.runBatch(batch);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].outcome, QueryOutcome::Rejected)
            << "query " << i;
        EXPECT_FALSE(results[i].message.empty());
        EXPECT_EQ(results[i].digest, 0u);
    }
    EXPECT_NE(results[0].message.find("unknown graph"),
              std::string::npos);
    EXPECT_NE(results[2].message.find("out of range"),
              std::string::npos);
}

TEST(QueryScheduler, AdmissionBoundRejectsByBatchPosition)
{
    TransformCache cache(std::size_t{16} << 20);
    SchedulerOptions options;
    options.workers = 4;
    options.maxQueuedQueries = 3;
    QueryScheduler scheduler(sharedStore(), cache, options);

    std::vector<QuerySpec> batch(6);
    for (auto &spec : batch) {
        spec.graph = "star";
        spec.algorithm = engine::Algorithm::Bfs;
        spec.strategy = engine::Strategy::Baseline;
    }
    const auto results = scheduler.runBatch(batch);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(results[i].outcome, QueryOutcome::Completed)
            << "query " << i;
    for (std::size_t i = 3; i < 6; ++i) {
        EXPECT_EQ(results[i].outcome, QueryOutcome::Rejected)
            << "query " << i;
        EXPECT_NE(results[i].message.find("queue full"),
                  std::string::npos);
    }
}

TEST(QueryScheduler, WallClockDeadlineIsBestEffort)
{
    TransformCache cache(std::size_t{16} << 20);
    QueryScheduler scheduler(sharedStore(), cache, {});

    QuerySpec spec;
    spec.graph = "rmat";
    spec.algorithm = engine::Algorithm::Pr;
    spec.prIterations = 200;
    spec.deadlineWallMs = 1e-6; // effectively immediate
    const auto results =
        scheduler.runBatch(std::vector<QuerySpec>{spec});
    ASSERT_EQ(results.size(), 1u);
    // Wall-clock cancellation is explicitly best-effort; either the
    // deadline trips (overwhelmingly likely) or the query completes.
    EXPECT_TRUE(results[0].outcome == QueryOutcome::DeadlineExceeded ||
                results[0].outcome == QueryOutcome::Completed)
        << results[0].message;
}

TEST(QueryScheduler, UdtQueriesRunUncached)
{
    TransformCache cache(std::size_t{64} << 20);
    QueryScheduler scheduler(sharedStore(), cache, {});

    QuerySpec spec;
    spec.graph = "star";
    spec.algorithm = engine::Algorithm::Sssp;
    spec.strategy = engine::Strategy::TigrUdt;
    spec.degreeBound = 16;
    const auto results = scheduler.runBatch(
        std::vector<QuerySpec>{spec, spec});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;
        EXPECT_FALSE(r.cacheHit)
            << "UDT schedules over the transformed graph and must "
           "bypass the forward-transform cache";
    }
    EXPECT_EQ(results[0].digest, results[1].digest);
    EXPECT_EQ(cache.stats().entries, 0u);
}

/** Scheduler options wired for observability under a seeded transient
 *  fault sweep (the resilience suite's plan shape). */
SchedulerOptions
observedFaultOptions(unsigned workers, obs::MetricsRegistry *registry)
{
    SchedulerOptions options;
    options.workers = workers;
    options.metrics = registry;
    options.trace = true;
    options.faultPlan = fault::FaultPlan(0xabba);
    options.faultPlan.site(fault::Site::TransformBuild, 0.3)
        .site(fault::Site::CacheInsert, 0.2)
        .site(fault::Site::EngineIteration, 0.01);
    return options;
}

TEST(QuerySchedulerObservability,
     MetricsReconcileExactlyWithResultsUnderFaultSweep)
{
    obs::MetricsRegistry registry;
    TransformCache cache(std::size_t{256} << 20);
    QueryScheduler scheduler(sharedStore(), cache,
                             observedFaultOptions(1, &registry));
    const std::vector<QuerySpec> batch = mixedBatch();
    const std::vector<QueryResult> results = scheduler.runBatch(batch);
    // Snapshot before the assertions below: counter() lookups create
    // zero-valued instruments, which would perturb the text form.
    const std::string snapshot = registry.snapshotText();

    // Recompute every aggregate from the per-query results; each
    // registry counter must match it exactly — no drift in either
    // direction.
    std::uint64_t completed = 0, deadline = 0, rejected = 0,
                  quarantined = 0, errors = 0, retries = 0,
                  degraded = 0, faults = 0, ran = 0;
    for (const QueryResult &r : results) {
        switch (r.outcome) {
          case QueryOutcome::Completed: ++completed; break;
          case QueryOutcome::DeadlineExceeded: ++deadline; break;
          case QueryOutcome::Rejected: ++rejected; break;
          case QueryOutcome::Quarantined: ++quarantined; break;
          case QueryOutcome::Error: ++errors; break;
        }
        if (r.attempts > 1)
            retries += r.attempts - 1;
        degraded += r.degraded ? 1 : 0;
        faults += r.faultTrace.size();
        ran += r.attempts > 0 ? 1 : 0;
        EXPECT_NE(r.metricsDigest, 0u);
    }
    EXPECT_GE(retries + degraded + faults, 1u)
        << "the seeded sweep should inject at least one fault";

    EXPECT_EQ(registry.counter("scheduler.batches").value(), 1u);
    EXPECT_EQ(registry.counter("scheduler.queries").value(),
              results.size());
    EXPECT_EQ(registry.counter("scheduler.admitted").value(),
              results.size() - rejected);
    EXPECT_EQ(registry.counter("scheduler.completed").value(),
              completed);
    EXPECT_EQ(registry.counter("scheduler.deadline_exceeded").value(),
              deadline);
    EXPECT_EQ(registry.counter("scheduler.rejected").value(), rejected);
    EXPECT_EQ(registry.counter("scheduler.quarantined").value(),
              quarantined);
    EXPECT_EQ(registry.counter("scheduler.errors").value(), errors);
    EXPECT_EQ(registry.counter("scheduler.retries").value(), retries);
    EXPECT_EQ(registry.counter("scheduler.degraded").value(), degraded);
    EXPECT_EQ(registry.counter("scheduler.faults").value(), faults);
    EXPECT_EQ(registry.histogram("scheduler.query.attempts").count(),
              ran);
    EXPECT_EQ(registry.histogram("scheduler.query.iterations").count(),
              ran);

    // The whole registry — counters, histograms, and cache gauges —
    // and every per-query metricsDigest must be worker-count-invariant.
    for (unsigned workers : {2u, 4u}) {
        obs::MetricsRegistry other;
        TransformCache fresh(std::size_t{256} << 20);
        QueryScheduler concurrent(sharedStore(), fresh,
                                  observedFaultOptions(workers,
                                                       &other));
        const std::vector<QueryResult> again =
            concurrent.runBatch(batch);
        ASSERT_EQ(again.size(), results.size());
        for (std::size_t i = 0; i < results.size(); ++i)
            EXPECT_EQ(again[i].metricsDigest, results[i].metricsDigest)
                << "query " << i << " at " << workers << " workers";
        EXPECT_EQ(other.snapshotText(), snapshot)
            << "registry drift at " << workers << " workers";
    }
}

TEST(QuerySchedulerObservability, QueryTracesCarryBeginOutcomeDigest)
{
    obs::MetricsRegistry registry;
    TransformCache cache(std::size_t{256} << 20);
    QueryScheduler scheduler(sharedStore(), cache,
                             observedFaultOptions(4, &registry));
    const std::vector<QuerySpec> batch = mixedBatch();
    const std::vector<QueryResult> results = scheduler.runBatch(batch);

    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        const QueryResult &r = results[i];
        const auto &events = r.trace.events();
        ASSERT_GE(events.size(), 2u);
        EXPECT_EQ(events.front().kind, obs::EventKind::QueryBegin);
        EXPECT_EQ(events.front().arg[0], i);
        const obs::TraceEvent &end = events.back();
        EXPECT_EQ(end.kind, obs::EventKind::QueryEnd);
        EXPECT_EQ(end.label[0], queryOutcomeName(r.outcome));
        EXPECT_EQ(end.arg[0], r.attempts);
        EXPECT_EQ(end.arg[3], r.digest);
        // Every recorded fault must surface as a trace event.
        std::size_t fault_events = 0;
        for (const obs::TraceEvent &event : events)
            fault_events += event.kind == obs::EventKind::Fault;
        EXPECT_EQ(fault_events, r.faultTrace.size());
    }
}

TEST(QuerySchedulerObservability, EngineReuseKeepsSecondRunInfoClean)
{
    // Regression: the warm-up MISS query pays the schedule build, but
    // the engine's shared-schedule path used to stamp its RunInfo with
    // transformCached=true anyway — so a cold query reported a cached
    // transform while cacheHit said otherwise.
    obs::MetricsRegistry registry;
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 2;
    options.metrics = &registry;
    options.trace = true;
    QueryScheduler scheduler(sharedStore(), cache, options);

    QuerySpec spec;
    spec.graph = "star";
    spec.algorithm = engine::Algorithm::Sssp;
    spec.strategy = engine::Strategy::TigrVPlus;
    spec.degreeBound = 8;

    const auto first =
        scheduler.runBatch(std::vector<QuerySpec>{spec});
    const auto second =
        scheduler.runBatch(std::vector<QuerySpec>{spec});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    ASSERT_EQ(first[0].outcome, QueryOutcome::Completed)
        << first[0].message;
    ASSERT_EQ(second[0].outcome, QueryOutcome::Completed)
        << second[0].message;

    // Cold run: built the transform, must say so consistently.
    EXPECT_FALSE(first[0].cacheHit);
    EXPECT_FALSE(first[0].info.transformCached);
    // Warm run: clean RunInfo, consistent cache flags, same values.
    EXPECT_TRUE(second[0].cacheHit);
    EXPECT_TRUE(second[0].info.transformCached);
    EXPECT_EQ(second[0].digest, first[0].digest);
    EXPECT_EQ(second[0].info.iterations, first[0].info.iterations);
    EXPECT_EQ(second[0].info.stats.cycles, first[0].info.stats.cycles);
    EXPECT_EQ(second[0].attempts, 1u);
    EXPECT_FALSE(second[0].degraded);
    EXPECT_TRUE(second[0].faultTrace.empty());
    EXPECT_FALSE(second[0].error.has_value());

    // Same property within one batch: the pair shares the build, only
    // the second query is a hit — and only the first reports a build.
    TransformCache pair_cache(std::size_t{64} << 20);
    QueryScheduler pair_scheduler(sharedStore(), pair_cache, options);
    const auto pair =
        pair_scheduler.runBatch(std::vector<QuerySpec>{spec, spec});
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_FALSE(pair[0].cacheHit);
    EXPECT_FALSE(pair[0].info.transformCached);
    EXPECT_TRUE(pair[1].cacheHit);
    EXPECT_TRUE(pair[1].info.transformCached);
    EXPECT_EQ(pair[0].digest, pair[1].digest);
}

} // namespace
} // namespace tigr::service
