/**
 * @file
 * Resilience suite (ctest label `fault`): deterministic fault
 * injection, retry/backoff, graceful degradation, and the per-graph
 * circuit breaker.
 *
 * The load-bearing properties pinned here:
 *
 *  - A seeded fault plan over a fixed batch produces bit-identical
 *    failure traces, outcomes, attempt counts, and digests at any
 *    worker count (the repo's determinism contract extended to
 *    failures).
 *  - A 10%-fault-rate batch never crashes the scheduler: every query
 *    ends in a terminal typed state, and every query that completes
 *    computes values bit-identical to a fault-free run.
 *  - Degraded results (dynamic-mapping fallback after cache pressure
 *    or injected cache faults) are value-identical to non-degraded
 *    ones.
 *  - The circuit breaker trips after N consecutive faults, quarantines
 *    the graph for the cooldown, half-opens, and recovers on success.
 */
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/resilience.hpp"
#include "service/script.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {
namespace {

graph::Csr
rmatGraph()
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 24;
    options.weightSeed = 19;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 400, .edges = 4000, .seed = 19}));
}

graph::Csr
ringGraph()
{
    const NodeId n = 300;
    graph::CooEdges coo(n);
    for (NodeId v = 0; v < n; ++v)
        coo.add(v, (v + 1) % n, v % 5 + 1);
    for (NodeId v = 0; v < n; v += 3)
        coo.add(0, v == 0 ? 1 : v, v % 7 + 1);
    return graph::Csr::fromCoo(coo);
}

GraphStore &
sharedStore()
{
    static GraphStore store;
    static const bool initialized = [] {
        store.add("rmat", rmatGraph());
        store.add("ring", ringGraph());
        return true;
    }();
    (void)initialized;
    return store;
}

/** A mixed batch exercising every retryable fault site. */
std::vector<QuerySpec>
faultBatch(std::size_t size = 60)
{
    const engine::Algorithm algos[] = {
        engine::Algorithm::Bfs, engine::Algorithm::Sssp,
        engine::Algorithm::Sswp, engine::Algorithm::Cc,
        engine::Algorithm::Pr};
    const engine::Strategy strategies[] = {
        engine::Strategy::TigrVPlus, engine::Strategy::TigrV,
        engine::Strategy::Baseline};
    std::vector<QuerySpec> batch;
    for (std::size_t i = 0; i < size; ++i) {
        QuerySpec spec;
        spec.graph = (i % 2 == 0) ? "rmat" : "ring";
        spec.algorithm = algos[i % 5];
        spec.strategy = strategies[(i / 5) % 3];
        spec.source = static_cast<NodeId>((i * 31) % 300);
        spec.degreeBound = 6;
        spec.prIterations = 10;
        batch.push_back(spec);
    }
    return batch;
}

void
expectIdenticalOutcomes(const std::vector<QueryResult> &a,
                        const std::vector<QueryResult> &b,
                        const std::string &label)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(label + ": query " + std::to_string(i));
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_EQ(a[i].digest, b[i].digest);
        EXPECT_EQ(a[i].values, b[i].values);
        EXPECT_EQ(a[i].cacheHit, b[i].cacheHit);
        EXPECT_EQ(a[i].degraded, b[i].degraded);
        EXPECT_EQ(a[i].attempts, b[i].attempts);
        EXPECT_EQ(a[i].backoffSimMs, b[i].backoffSimMs);
        EXPECT_EQ(a[i].message, b[i].message);
        EXPECT_EQ(a[i].faultTrace, b[i].faultTrace)
            << "trace A:\n" << fault::formatTrace(a[i].faultTrace)
            << "trace B:\n" << fault::formatTrace(b[i].faultTrace);
        ASSERT_EQ(a[i].error.has_value(), b[i].error.has_value());
        if (a[i].error) {
            EXPECT_EQ(a[i].error->kind, b[i].error->kind);
        }
    }
}

// ---------------------------------------------------------------------
// Fault library.

TEST(FaultPlan, SiteNamesRoundTrip)
{
    for (fault::Site site : fault::kAllSites) {
        const auto parsed = fault::parseSite(fault::siteName(site));
        ASSERT_TRUE(parsed.has_value()) << fault::siteName(site);
        EXPECT_EQ(*parsed, site);
    }
    EXPECT_FALSE(fault::parseSite("no.such.site").has_value());
}

TEST(FaultPlan, RejectsRatesOutsideUnitInterval)
{
    fault::FaultPlan plan(1);
    EXPECT_THROW(plan.site(fault::Site::Alloc, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(plan.site(fault::Site::Alloc, 1.5),
                 std::invalid_argument);
    EXPECT_TRUE(fault::FaultPlan(7).inert());
    EXPECT_FALSE(
        fault::FaultPlan(7).site(fault::Site::Alloc, 0.5).inert());
}

TEST(FaultScope, DecisionsArePureFunctionsOfTheKey)
{
    fault::FaultPlan plan(42);
    plan.site(fault::Site::EngineIteration, 0.5);

    auto sample = [&](std::uint64_t scope, unsigned attempt) {
        fault::FaultTrace trace;
        fault::FaultScope armed(plan, scope, attempt, &trace);
        std::string fired;
        for (int i = 0; i < 32; ++i)
            fired += fault::fired(fault::Site::EngineIteration) ? '1'
                                                                : '0';
        return fired;
    };

    const std::string base = sample(3, 0);
    EXPECT_EQ(base, sample(3, 0)) << "same key, same decisions";
    EXPECT_NE(base, sample(4, 0)) << "scope key must matter";
    EXPECT_NE(base, sample(3, 1)) << "attempt index must matter";
    EXPECT_NE(base.find('1'), std::string::npos);
    EXPECT_NE(base.find('0'), std::string::npos);
}

TEST(FaultScope, DisarmedHooksNeverFire)
{
    EXPECT_FALSE(fault::armed());
    EXPECT_FALSE(fault::fired(fault::Site::Alloc));
    // The macro compiles into plain statement position.
    TIGR_FAULT_POINT(fault::Site::Alloc);

    fault::FaultPlan inert(9); // no sites configured
    fault::FaultScope scope(inert, 0);
    EXPECT_FALSE(fault::armed()) << "inert plans must not arm";
}

TEST(FaultScope, AllocSiteRaisesBadAlloc)
{
    fault::FaultPlan plan(5);
    plan.site(fault::Site::Alloc, 1.0);
    plan.site(fault::Site::EngineIteration, 1.0);
    fault::FaultTrace trace;
    fault::FaultScope scope(plan, 0, 0, &trace);
    EXPECT_THROW(fault::check(fault::Site::Alloc), std::bad_alloc);
    EXPECT_THROW(fault::check(fault::Site::EngineIteration),
                 fault::InjectedFault);
    // A rate-0 site never fires or records.
    EXPECT_FALSE(fault::fired(fault::Site::SnapshotRead));
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].site, fault::Site::Alloc);
    EXPECT_EQ(trace[1].site, fault::Site::EngineIteration);
}

// ---------------------------------------------------------------------
// Error taxonomy and retry policy.

TEST(ServiceErrorTaxonomy, ClassifiesExceptionsByTypeAndSite)
{
    const fault::InjectedFault iter(fault::Site::EngineIteration, "x");
    EXPECT_EQ(classifyFailure(iter).kind, ServiceErrorKind::Engine);
    const fault::InjectedFault build(fault::Site::TransformBuild, "x");
    EXPECT_EQ(classifyFailure(build).kind,
              ServiceErrorKind::TransformBuild);
    const SnapshotError snap(SnapshotErrorKind::Io, "x");
    EXPECT_EQ(classifyFailure(snap).kind, ServiceErrorKind::Snapshot);
    const std::bad_alloc oom;
    EXPECT_EQ(classifyFailure(oom).kind, ServiceErrorKind::Resource);
    const std::runtime_error other("x");
    EXPECT_EQ(classifyFailure(other).kind, ServiceErrorKind::Engine);

    auto retryable = [](ServiceErrorKind kind) {
        ServiceError error;
        error.kind = kind;
        return error.retryable();
    };
    EXPECT_FALSE(retryable(ServiceErrorKind::InvalidQuery));
    EXPECT_FALSE(retryable(ServiceErrorKind::Quarantined));
    EXPECT_TRUE(retryable(ServiceErrorKind::Resource));
    EXPECT_TRUE(retryable(ServiceErrorKind::Engine));
}

TEST(RetryPolicyTest, BackoffIsExponentialInSimulatedTime)
{
    RetryPolicy policy;
    policy.backoffBaseSimMs = 1.5;
    policy.backoffFactor = 2.0;
    EXPECT_DOUBLE_EQ(policy.backoffSimMs(0), 1.5);
    EXPECT_DOUBLE_EQ(policy.backoffSimMs(1), 3.0);
    EXPECT_DOUBLE_EQ(policy.backoffSimMs(2), 6.0);
}

// ---------------------------------------------------------------------
// Circuit breaker unit behavior.

TEST(CircuitBreakerTest, TripsHalfOpensAndRecovers)
{
    BreakerOptions options;
    options.threshold = 3;
    options.cooldownBatches = 1;
    CircuitBreaker breaker(options);

    breaker.beginBatch();
    EXPECT_TRUE(breaker.admits("g"));
    breaker.recordFault("g");
    breaker.recordFault("g");
    EXPECT_EQ(breaker.state("g"), BreakerState::Closed);
    breaker.recordFault("g");
    EXPECT_EQ(breaker.state("g"), BreakerState::Open);
    EXPECT_FALSE(breaker.admits("g"));

    breaker.beginBatch(); // still cooling down
    EXPECT_EQ(breaker.state("g"), BreakerState::Open);

    breaker.beginBatch(); // cooldown elapsed
    EXPECT_EQ(breaker.state("g"), BreakerState::HalfOpen);
    EXPECT_TRUE(breaker.admits("g"));

    breaker.recordSuccess("g");
    EXPECT_EQ(breaker.state("g"), BreakerState::Closed);
    EXPECT_EQ(breaker.consecutiveFaults("g"), 0u);
}

TEST(CircuitBreakerTest, HalfOpenReopensOnOneMoreFault)
{
    BreakerOptions options;
    options.threshold = 2;
    options.cooldownBatches = 1;
    CircuitBreaker breaker(options);
    breaker.beginBatch();
    breaker.recordFault("g");
    breaker.recordFault("g");
    breaker.beginBatch();
    breaker.beginBatch();
    ASSERT_EQ(breaker.state("g"), BreakerState::HalfOpen);
    breaker.recordFault("g");
    EXPECT_EQ(breaker.state("g"), BreakerState::Open);
}

TEST(CircuitBreakerTest, ManualResetCloses)
{
    CircuitBreaker breaker({.threshold = 1, .cooldownBatches = 100});
    breaker.beginBatch();
    breaker.recordFault("g");
    ASSERT_FALSE(breaker.admits("g"));
    breaker.reset("g");
    EXPECT_TRUE(breaker.admits("g"));
    EXPECT_EQ(breaker.state("g"), BreakerState::Closed);
}

// ---------------------------------------------------------------------
// Scheduler integration.

TEST(Resilience, SeededFaultSweepIsBitIdenticalAcrossWorkers)
{
    std::vector<QuerySpec> batch = faultBatch();

    SchedulerOptions base;
    base.faultPlan = fault::FaultPlan(0xfeedULL);
    base.faultPlan.site(fault::Site::TransformBuild, 0.3)
        .site(fault::Site::CacheInsert, 0.2)
        .site(fault::Site::Alloc, 0.1)
        .site(fault::Site::EngineIteration, 0.01);
    base.retry.maxRetries = 2;

    std::vector<QueryResult> reference;
    {
        TransformCache cache(std::size_t{64} << 20);
        SchedulerOptions options = base;
        options.workers = 1;
        QueryScheduler scheduler(sharedStore(), cache, options);
        reference = scheduler.runBatch(batch);
    }

    std::size_t faults = 0;
    for (const QueryResult &r : reference)
        faults += r.faultTrace.size();
    EXPECT_GT(faults, 0u) << "the plan must actually inject faults";

    for (unsigned workers : {2u, 8u}) {
        TransformCache cache(std::size_t{64} << 20);
        SchedulerOptions options = base;
        options.workers = workers;
        QueryScheduler scheduler(sharedStore(), cache, options);
        expectIdenticalOutcomes(
            scheduler.runBatch(batch), reference,
            "workers=" + std::to_string(workers));
    }
}

TEST(Resilience, TenPercentFaultBatchAlwaysTerminatesTyped)
{
    std::vector<QuerySpec> batch = faultBatch();

    // Fault-free reference digests.
    std::vector<QueryResult> clean;
    {
        TransformCache cache(std::size_t{64} << 20);
        SchedulerOptions options;
        options.workers = 4;
        QueryScheduler scheduler(sharedStore(), cache, options);
        clean = scheduler.runBatch(batch);
    }

    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 4;
    // Execution-path sites fire at ~10%; the warm-up sites get only a
    // handful of rolls (one per distinct cache key), so they need a
    // higher rate to participate at all.
    options.faultPlan = fault::FaultPlan(2026);
    options.faultPlan.site(fault::Site::TransformBuild, 0.4)
        .site(fault::Site::CacheInsert, 0.5)
        .site(fault::Site::Alloc, 0.1)
        .site(fault::Site::EngineIteration, 0.01);
    QueryScheduler scheduler(sharedStore(), cache, options);
    const auto results = scheduler.runBatch(batch);

    std::size_t completed = 0, errors = 0, degraded = 0, retried = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const QueryResult &r = results[i];
        SCOPED_TRACE("query " + std::to_string(i));
        // Terminal typed state, never a crash or an undecided query.
        ASSERT_TRUE(r.outcome == QueryOutcome::Completed ||
                    r.outcome == QueryOutcome::Error)
            << queryOutcomeName(r.outcome);
        if (r.outcome == QueryOutcome::Completed) {
            ++completed;
            // Faults never corrupt values: anything that completes is
            // bit-identical to the fault-free run.
            EXPECT_EQ(r.digest, clean[i].digest);
            EXPECT_EQ(r.values, clean[i].values);
        } else {
            ++errors;
            ASSERT_TRUE(r.error.has_value());
            EXPECT_FALSE(r.message.empty());
            EXPECT_EQ(r.digest, 0u);
        }
        degraded += r.degraded ? 1 : 0;
        retried += r.attempts > 1 ? 1 : 0;
    }
    EXPECT_GT(completed, 0u);
    EXPECT_GT(degraded, 0u) << "cache faults should degrade someone";
    EXPECT_GT(retried, 0u) << "alloc faults should retry someone";

    // Same seed, fresh scheduler: bit-identical replay.
    TransformCache cache2(std::size_t{64} << 20);
    QueryScheduler scheduler2(sharedStore(), cache2, options);
    expectIdenticalOutcomes(scheduler2.runBatch(batch), results,
                            "replay");
}

TEST(Resilience, TransientFaultIsOutlastedByRetry)
{
    QuerySpec spec;
    spec.graph = "ring";
    spec.algorithm = engine::Algorithm::Bfs;
    spec.source = 0;
    const std::vector<QuerySpec> batch{spec};

    std::uint64_t clean_digest = 0;
    {
        TransformCache cache(std::size_t{16} << 20);
        QueryScheduler scheduler(sharedStore(), cache, {});
        const auto clean = scheduler.runBatch(batch);
        ASSERT_EQ(clean[0].outcome, QueryOutcome::Completed);
        clean_digest = clean[0].digest;
    }

    TransformCache cache(std::size_t{16} << 20);
    SchedulerOptions options;
    options.faultPlan = fault::FaultPlan(11);
    // Fail every iteration hook of attempts 0 and 1; attempt 2 runs
    // clean — a transient fault the retry budget outlasts.
    options.faultPlan.site(fault::Site::EngineIteration, 1.0,
                           /*attempts_below=*/2);
    options.retry.maxRetries = 3;
    options.retry.backoffBaseSimMs = 1.0;
    options.retry.backoffFactor = 2.0;
    QueryScheduler scheduler(sharedStore(), cache, options);
    const auto results = scheduler.runBatch(batch);

    ASSERT_EQ(results[0].outcome, QueryOutcome::Completed)
        << results[0].message;
    EXPECT_EQ(results[0].attempts, 3u);
    // Backoff charged after attempts 0 and 1: 1.0 + 2.0 sim-ms.
    EXPECT_DOUBLE_EQ(results[0].backoffSimMs, 3.0);
    EXPECT_EQ(results[0].digest, clean_digest)
        << "a retried success must be value-identical";
    EXPECT_GE(results[0].faultTrace.size(), 2u);

    // With too small a budget the same plan is terminal.
    TransformCache cache2(std::size_t{16} << 20);
    options.retry.maxRetries = 1;
    QueryScheduler scheduler2(sharedStore(), cache2, options);
    const auto failed = scheduler2.runBatch(batch);
    EXPECT_EQ(failed[0].outcome, QueryOutcome::Error);
    ASSERT_TRUE(failed[0].error.has_value());
    EXPECT_EQ(failed[0].error->kind, ServiceErrorKind::Engine);
    EXPECT_EQ(failed[0].attempts, 2u);
}

TEST(Resilience, RetryBackoffIsChargedAgainstSimDeadline)
{
    QuerySpec spec;
    spec.graph = "ring";
    spec.algorithm = engine::Algorithm::Pr;
    spec.prIterations = 50;
    spec.deadlineSimMs = 2.5; // generous for the clean run
    const std::vector<QuerySpec> batch{spec};

    {
        TransformCache cache(std::size_t{16} << 20);
        QueryScheduler scheduler(sharedStore(), cache, {});
        const auto clean = scheduler.runBatch(batch);
        ASSERT_EQ(clean[0].outcome, QueryOutcome::Completed)
            << "deadline must be generous without faults: "
            << clean[0].message;
    }

    TransformCache cache(std::size_t{16} << 20);
    SchedulerOptions options;
    options.faultPlan = fault::FaultPlan(3);
    options.faultPlan.site(fault::Site::Alloc, 1.0,
                           /*attempts_below=*/1);
    options.retry.maxRetries = 2;
    options.retry.backoffBaseSimMs = 10.0; // exceeds the deadline
    QueryScheduler scheduler(sharedStore(), cache, options);
    const auto results = scheduler.runBatch(batch);
    // Attempt 0 faults; 10 sim-ms of backoff eats the whole 2.5 sim-ms
    // budget, so attempt 1 is cancelled at its first poll.
    ASSERT_EQ(results[0].outcome, QueryOutcome::DeadlineExceeded)
        << results[0].message;
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_DOUBLE_EQ(results[0].backoffSimMs, 10.0);
}

TEST(Resilience, CacheFaultsDegradeToValueIdenticalDynamicRuns)
{
    std::vector<QuerySpec> batch;
    for (NodeId s : {NodeId{0}, NodeId{5}, NodeId{9}}) {
        QuerySpec spec;
        spec.graph = "rmat";
        spec.algorithm = engine::Algorithm::Sssp;
        spec.strategy = engine::Strategy::TigrVPlus;
        spec.source = s;
        batch.push_back(spec);
    }

    std::vector<QueryResult> clean;
    {
        TransformCache cache(std::size_t{64} << 20);
        QueryScheduler scheduler(sharedStore(), cache, {});
        clean = scheduler.runBatch(batch);
    }

    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.faultPlan = fault::FaultPlan(77);
    options.faultPlan.site(fault::Site::CacheInsert, 1.0);
    QueryScheduler scheduler(sharedStore(), cache, options);
    const auto results = scheduler.runBatch(batch);

    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        ASSERT_EQ(results[i].outcome, QueryOutcome::Completed)
            << results[i].message;
        EXPECT_TRUE(results[i].degraded);
        EXPECT_TRUE(results[i].info.degraded);
        EXPECT_FALSE(results[i].cacheHit);
        EXPECT_EQ(results[i].digest, clean[i].digest)
            << "degraded values must be bit-identical";
        ASSERT_TRUE(results[i].error.has_value());
        EXPECT_EQ(results[i].error->kind,
                  ServiceErrorKind::CacheInsert);
    }
    EXPECT_EQ(cache.stats().entries, 0u)
        << "every insert was injected to fail";
}

TEST(Resilience, BudgetExhaustionDegradesWithoutAnyFaultPlan)
{
    QuerySpec spec;
    spec.graph = "rmat";
    spec.algorithm = engine::Algorithm::Bfs;
    spec.strategy = engine::Strategy::TigrVPlus;
    const std::vector<QuerySpec> batch{spec};

    std::vector<QueryResult> clean;
    {
        TransformCache cache(std::size_t{64} << 20);
        QueryScheduler scheduler(sharedStore(), cache, {});
        clean = scheduler.runBatch(batch);
        ASSERT_EQ(clean[0].outcome, QueryOutcome::Completed);
        ASSERT_FALSE(clean[0].degraded);
    }

    // A 1-byte budget can retain nothing: the schedule is built but
    // not cached, and the query degrades to the dynamic mapping.
    TransformCache cache(1);
    QueryScheduler scheduler(sharedStore(), cache, {});
    const auto results = scheduler.runBatch(batch);
    ASSERT_EQ(results[0].outcome, QueryOutcome::Completed)
        << results[0].message;
    EXPECT_TRUE(results[0].degraded);
    EXPECT_EQ(results[0].digest, clean[0].digest);

    // Opting out of the ladder keeps the uncached schedule instead.
    SchedulerOptions keep;
    keep.degradeOnCachePressure = false;
    TransformCache cache2(1);
    QueryScheduler scheduler2(sharedStore(), cache2, keep);
    const auto kept = scheduler2.runBatch(batch);
    ASSERT_EQ(kept[0].outcome, QueryOutcome::Completed);
    EXPECT_FALSE(kept[0].degraded);
    EXPECT_EQ(kept[0].digest, clean[0].digest);
}

TEST(Resilience, BreakerQuarantinesAndRecoversAcrossBatches)
{
    std::vector<QuerySpec> batch;
    for (int i = 0; i < 3; ++i) {
        QuerySpec spec;
        spec.graph = "ring";
        spec.algorithm = engine::Algorithm::Bfs;
        spec.source = static_cast<NodeId>(i);
        batch.push_back(spec);
    }

    TransformCache cache(std::size_t{16} << 20);
    SchedulerOptions options;
    options.faultPlan = fault::FaultPlan(123);
    // Alloc faults only in batch 0 (scope keys there are < 2^32).
    options.faultPlan.site(fault::Site::Alloc, 1.0,
                           std::numeric_limits<unsigned>::max(),
                           /*scopes_below=*/std::uint64_t{1} << 32);
    options.retry.maxRetries = 0;
    options.breaker.threshold = 3;
    options.breaker.cooldownBatches = 1;
    QueryScheduler scheduler(sharedStore(), cache, options);

    // Batch 0: three consecutive terminal faults trip the breaker.
    const auto first = scheduler.runBatch(batch);
    for (const QueryResult &r : first) {
        EXPECT_EQ(r.outcome, QueryOutcome::Error);
        ASSERT_TRUE(r.error.has_value());
        EXPECT_EQ(r.error->kind, ServiceErrorKind::Resource);
    }
    EXPECT_EQ(scheduler.breaker().state("ring"), BreakerState::Open);

    // Batch 1: quarantined at admission — no retries burned.
    const auto second = scheduler.runBatch(batch);
    for (const QueryResult &r : second) {
        EXPECT_EQ(r.outcome, QueryOutcome::Quarantined);
        EXPECT_EQ(r.attempts, 0u);
        ASSERT_TRUE(r.error.has_value());
        EXPECT_EQ(r.error->kind, ServiceErrorKind::Quarantined);
        EXPECT_NE(r.message.find("quarantined"), std::string::npos);
    }

    // Batch 2: cooldown elapsed, the probes run clean and close it.
    const auto third = scheduler.runBatch(batch);
    for (const QueryResult &r : third)
        EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;
    EXPECT_EQ(scheduler.breaker().state("ring"), BreakerState::Closed);

    // A healthy graph in the same batches is never quarantined.
    QuerySpec healthy;
    healthy.graph = "rmat";
    healthy.algorithm = engine::Algorithm::Cc;
    EXPECT_TRUE(scheduler.breaker().admits("rmat"));
    const auto other =
        scheduler.runBatch(std::vector<QuerySpec>{healthy});
    EXPECT_EQ(other[0].outcome, QueryOutcome::Completed);
}

TEST(Resilience, ValidationRejectsWithTypedErrors)
{
    static GraphStore store; // local: needs a zero-node graph
    static const bool initialized = [] {
        store.add("ok", ringGraph());
        store.add("empty", graph::Csr::fromCoo(graph::CooEdges(0)));
        return true;
    }();
    (void)initialized;

    std::vector<QuerySpec> batch(4);
    batch[0].graph = "empty";
    batch[0].algorithm = engine::Algorithm::Cc;
    batch[1].graph = "ok";
    batch[1].strategy = engine::Strategy::MaximumWarp;
    batch[1].mwVirtualWarp = 0;
    batch[2].graph = "ok";
    batch[2].frontierRatio = 1.5;
    batch[3].graph = "ok";
    batch[3].frontierRatio =
        std::numeric_limits<double>::quiet_NaN();

    TransformCache cache(std::size_t{16} << 20);
    QueryScheduler scheduler(store, cache, {});
    const auto results = scheduler.runBatch(batch);
    for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        EXPECT_EQ(results[i].outcome, QueryOutcome::Rejected);
        ASSERT_TRUE(results[i].error.has_value());
        EXPECT_EQ(results[i].error->kind,
                  ServiceErrorKind::InvalidQuery);
        EXPECT_FALSE(results[i].message.empty());
    }
    EXPECT_NE(results[0].message.find("no nodes"), std::string::npos);
    EXPECT_NE(results[1].message.find("warp"), std::string::npos);
    EXPECT_NE(results[2].message.find("frontier ratio"),
              std::string::npos);
}

TEST(Resilience, FailFastStopsAScriptAtTheFirstTerminalFailure)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("tigr_resilience_" +
         std::to_string(
             ::testing::UnitTest::GetInstance()->random_seed()));
    fs::create_directories(dir);
    const fs::path graph_path = dir / "g.csr";
    graph::saveCsrBinaryFile(ringGraph(), graph_path);

    const std::string script = "load g " + graph_path.string() +
                               "\n"
                               "query g bfs source=0\n"
                               "run\n"
                               "query g cc\n"
                               "run\n";

    ScriptOptions options;
    options.maxRetries = 0;
    options.faultPlan = fault::FaultPlan(8);
    options.faultPlan.site(fault::Site::Alloc, 1.0);

    // Without fail-fast the script runs to the end, reporting every
    // batch's typed errors.
    {
        std::istringstream in(script);
        std::ostringstream out;
        EXPECT_EQ(runScript(in, out, options), 0);
        EXPECT_NE(out.str().find("outcome=error"), std::string::npos);
        EXPECT_NE(out.str().find("error=resource"), std::string::npos);
        EXPECT_NE(out.str().find("g CC outcome="), std::string::npos)
            << out.str();
    }

    // With fail-fast the second batch never runs and the exit code is
    // nonzero.
    options.failFast = true;
    {
        std::istringstream in(script);
        std::ostringstream out;
        EXPECT_EQ(runScript(in, out, options), 1);
        EXPECT_NE(out.str().find("fail-fast: stopping"),
                  std::string::npos);
        EXPECT_EQ(out.str().find("g CC outcome="), std::string::npos)
            << out.str();
    }

    fs::remove_all(dir);
}

} // namespace
} // namespace tigr::service
