/**
 * @file
 * GraphStore, TransformCache, and script-runner behavior: stable
 * addresses, LRU eviction under a byte budget, hit/miss accounting,
 * and deterministic script output.
 */
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "service/graph_store.hpp"
#include "service/script.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {
namespace {

namespace fs = std::filesystem;

graph::Csr
ringGraph(NodeId n)
{
    graph::CooEdges coo(n);
    for (NodeId v = 0; v < n; ++v)
        coo.add(v, (v + 1) % n, 1 + v % 5);
    return graph::Csr::fromCoo(coo);
}

graph::Csr
rmatGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 400, .edges = 4000, .seed = seed}));
}

TEST(GraphStore, AddFindRemove)
{
    GraphStore store;
    const StoredGraph &a = store.add("ring", ringGraph(64));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.contains("ring"));
    EXPECT_EQ(store.find("ring"), &a);
    EXPECT_EQ(store.find("nope"), nullptr);
    EXPECT_THROW(store.at("nope"), std::out_of_range);

    EXPECT_THROW(store.add("ring", ringGraph(8)),
                 std::invalid_argument);
    EXPECT_THROW(store.add("", ringGraph(8)), std::invalid_argument);

    EXPECT_TRUE(store.remove("ring"));
    EXPECT_FALSE(store.remove("ring"));
    EXPECT_EQ(store.size(), 0u);
}

TEST(GraphStore, AddressesStayStableAcrossInsertions)
{
    GraphStore store;
    const graph::Csr *first = &store.add("a", ringGraph(32)).graph;
    for (int i = 0; i < 64; ++i)
        store.add("g" + std::to_string(i), ringGraph(16));
    EXPECT_EQ(&store.at("a").graph, first);
    EXPECT_EQ(store.names().front(), "a"); // sorted order
}

TEST(GraphStore, SnapshotEntryKeepsVirtualSection)
{
    const fs::path file =
        fs::temp_directory_path() / "tigr_store_virtual.tgs";
    const graph::Csr g = rmatGraph(5);
    transform::VirtualGraph vg(g, 6,
                               transform::EdgeLayout::Consecutive);
    saveSnapshotFile(vg, file);

    GraphStore store;
    const StoredGraph &entry = store.addSnapshot("r", file);
    EXPECT_EQ(entry.graph, g);
    ASSERT_TRUE(entry.hasVirtual);
    auto rebound = entry.virtualGraph();
    ASSERT_TRUE(rebound.has_value());
    EXPECT_EQ(rebound->numVirtualNodes(), vg.numVirtualNodes());
    EXPECT_EQ(rebound->degreeBound(), 6u);
    fs::remove(file);
}

TEST(TransformCache, HitMissAndSharedPointers)
{
    GraphStore store;
    const graph::Csr &g = store.add("r", rmatGraph(3)).graph;
    TransformCache cache(std::size_t{16} << 20);

    const TransformKey key{"r", &g, engine::Strategy::TigrVPlus, 8, 8};
    EXPECT_EQ(cache.get(key), nullptr);

    bool hit = true;
    auto built = cache.getOrBuild(key, nullptr, &hit);
    ASSERT_NE(built, nullptr);
    EXPECT_FALSE(hit);
    EXPECT_GT(built->schedule.numUnits(), 0u);

    auto again = cache.getOrBuild(key, nullptr, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(again.get(), built.get()); // same shared schedule

    // A different K is a different decomposition.
    auto other = cache.getOrBuild(
        TransformKey{"r", &g, engine::Strategy::TigrVPlus, 4, 8},
        nullptr, &hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(other.get(), built.get());

    const TransformCacheStats stats = cache.stats();
    // One hit (the repeated getOrBuild); the initial empty get() and
    // both builds are misses.
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes, built->schedule.sizeInBytes() +
                               other->schedule.sizeInBytes());
}

TEST(TransformCache, EvictsLeastRecentlyUsedUnderByteBudget)
{
    GraphStore store;
    const graph::Csr &g = store.add("r", rmatGraph(4)).graph;

    // Budget sized to hold roughly two schedules.
    const TransformKey k1{"r", &g, engine::Strategy::TigrVPlus, 8, 8};
    TransformCache probe(std::size_t{1} << 30);
    const std::size_t one =
        probe.getOrBuild(k1)->schedule.sizeInBytes();

    TransformCache cache(2 * one + one / 2);
    cache.getOrBuild(k1);
    const TransformKey k2{"r", &g, engine::Strategy::TigrV, 8, 8};
    cache.getOrBuild(k2);
    // Touch k1 so k2 is the LRU victim when k3 arrives.
    EXPECT_NE(cache.get(k1), nullptr);
    const TransformKey k3{"r", &g, engine::Strategy::Baseline, 8, 8};
    cache.getOrBuild(k3);

    EXPECT_NE(cache.get(k1), nullptr);
    EXPECT_NE(cache.get(k3), nullptr);
    EXPECT_EQ(cache.get(k2), nullptr) << "LRU entry not evicted";
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(TransformCache, OversizedEntryIsReturnedButNotRetained)
{
    GraphStore store;
    const graph::Csr &g = store.add("r", rmatGraph(6)).graph;
    TransformCache cache(16); // absurdly small budget
    const TransformKey key{"r", &g, engine::Strategy::TigrVPlus, 8, 8};
    auto built = cache.getOrBuild(key);
    ASSERT_NE(built, nullptr);
    EXPECT_GT(built->schedule.numUnits(), 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.get(key), nullptr);
}

TEST(TransformCache, InvalidateGraphDropsOnlyThatGraph)
{
    GraphStore store;
    const graph::Csr &a = store.add("a", rmatGraph(7)).graph;
    const graph::Csr &b = store.add("b", rmatGraph(8)).graph;
    TransformCache cache(std::size_t{64} << 20);
    const TransformKey ka{"a", &a, engine::Strategy::TigrVPlus, 8, 8};
    const TransformKey kb{"b", &b, engine::Strategy::TigrVPlus, 8, 8};
    cache.getOrBuild(ka);
    cache.getOrBuild(kb);
    cache.invalidateGraph(&a);
    EXPECT_EQ(cache.get(ka), nullptr);
    EXPECT_NE(cache.get(kb), nullptr);
}

TEST(ScriptRunner, LoadQueryStatsDeterministicOutput)
{
    const fs::path file =
        fs::temp_directory_path() / "tigr_script_ring.tgs";
    saveSnapshotFile(ringGraph(128), file);

    const std::string script = "# demo\n"
                               "load ring " +
                               file.string() +
                               "\n"
                               "query ring bfs source=0\n"
                               "query ring bfs source=0\n"
                               "run\n"
                               "stats\n";

    std::string first;
    for (unsigned workers : {1u, 4u}) {
        std::istringstream in(script);
        std::ostringstream out;
        ScriptOptions options;
        options.workers = workers;
        EXPECT_EQ(runScript(in, out, options), 0);
        std::string text = out.str();
        EXPECT_NE(text.find("loaded ring nodes=128 edges=128"),
                  std::string::npos)
            << text;
        EXPECT_NE(text.find("outcome=completed"), std::string::npos);
        EXPECT_NE(text.find("cached=1"), std::string::npos)
            << "second identical query must hit the cache: " << text;
        // Strip the stats workers= suffix (differs by config) before
        // comparing runs.
        text.resize(text.rfind(" workers="));
        if (first.empty())
            first = text;
        else
            EXPECT_EQ(text, first) << "script output must not depend "
                                      "on the worker count";
    }
    fs::remove(file);
}

TEST(ScriptRunner, MalformedCommandsThrowWithLineNumbers)
{
    for (const char *bad :
         {"bogus\n", "load onlyname\n", "query g\n",
          "query g nosuchalgo\n", "run extra\n"}) {
        std::istringstream in(bad);
        std::ostringstream out;
        EXPECT_THROW(runScript(in, out), std::runtime_error) << bad;
    }
}

TEST(ScriptRunner, FrontierKeysParseAndMatchDenseResults)
{
    const fs::path file =
        fs::temp_directory_path() / "tigr_script_frontier.tgs";
    saveSnapshotFile(ringGraph(96), file);

    // The representation is a pure perf knob: digests must match the
    // dense run exactly.
    std::string digests[2];
    int i = 0;
    for (const char *keys :
         {"frontier=dense", "frontier=sparse frontier-ratio=0.5"}) {
        std::istringstream in("load ring " + file.string() +
                              "\nquery ring bfs source=0 " + keys +
                              "\nrun\n");
        std::ostringstream out;
        ASSERT_EQ(runScript(in, out), 0) << keys;
        const std::string text = out.str();
        EXPECT_NE(text.find("outcome=completed"), std::string::npos)
            << text;
        const auto pos = text.find("digest=");
        ASSERT_NE(pos, std::string::npos) << text;
        digests[i++] = text.substr(pos, text.find(' ', pos) - pos);
    }
    EXPECT_EQ(digests[0], digests[1]);

    for (const char *bad :
         {"query g bfs frontier=bitmap\n",
          "query g bfs frontier-ratio=1.5\n",
          "query g bfs frontier-ratio=abc\n"}) {
        std::istringstream in(bad);
        std::ostringstream out;
        EXPECT_THROW(runScript(in, out), std::runtime_error) << bad;
    }
    fs::remove(file);
}

} // namespace
} // namespace tigr::service
