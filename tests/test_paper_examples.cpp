/**
 * @file
 * The paper's worked examples, transcribed as tests: the Figure 2
 * vertex-centric SSSP trace, the Figure 8 dumb-weight distance
 * preservation example, and the Figure 1 irregularity-reduction
 * claim. (Figures 6, 10, and 12 are covered in the transform test
 * suites.)
 */
#include <gtest/gtest.h>

#include "algorithms/semirings.hpp"
#include "engine/push_engine.hpp"
#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "ref/oracles.hpp"
#include "transform/udt.hpp"

namespace tigr {
namespace {

/**
 * Figure 2's example graph: source A pushes distances to B, C, D over
 * two BSP iterations. Edge weights as drawn: A-2->B, A-4->D, B-2->C,
 * B-1->D.
 */
graph::Csr
figure2Graph()
{
    graph::CooEdges coo(4); // 0=A, 1=B, 2=C, 3=D
    coo.add(0, 1, 2);
    coo.add(0, 3, 4);
    coo.add(1, 2, 2);
    coo.add(1, 3, 1);
    return graph::Csr::fromCoo(coo);
}

TEST(PaperFigure2, SsspTraceMatchesTheFigure)
{
    graph::Csr g = figure2Graph();
    engine::Schedule schedule =
        engine::Schedule::build(g, engine::Strategy::Baseline);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Dist> seeds[] = {{0, 0}};

    // After the 1st iteration: dist = {0, 2, inf, 4}.
    engine::PushOptions one;
    one.syncRelaxation = false;
    one.maxIterations = 1;
    auto after1 = engine::runPush<algorithms::SsspSemiring>(
        schedule, sim, one, seeds);
    EXPECT_EQ(after1.values,
              (std::vector<Dist>{0, 2, kInfDist, 4}));

    // After the 2nd iteration: dist = {0, 2, 4, 3} — D improves via
    // the shorter path through B.
    engine::PushOptions two = one;
    two.maxIterations = 2;
    auto after2 = engine::runPush<algorithms::SsspSemiring>(
        schedule, sim, two, seeds);
    EXPECT_EQ(after2.values, (std::vector<Dist>{0, 2, 4, 3}));

    // And the algorithm converges there.
    engine::PushOptions full = one;
    full.maxIterations = 100;
    auto converged = engine::runPush<algorithms::SsspSemiring>(
        schedule, sim, full, seeds);
    EXPECT_TRUE(converged.converged);
    EXPECT_EQ(converged.values, after2.values);
}

TEST(PaperFigure8, DumbWeightsKeepTheSixHopDistance)
{
    // A high-degree node A whose shortest route to B costs 6; after
    // UDT with zero dumb weights the distance must remain exactly 6.
    graph::CooEdges coo(8);
    const NodeId a = 0, b = 7;
    // A's five outgoing edges (degree 5 > K = 3 -> A gets split).
    coo.add(a, 1, 3);
    coo.add(a, 2, 4);
    coo.add(a, 3, 9);
    coo.add(a, 4, 8);
    coo.add(a, 5, 7);
    // Second hops toward B.
    coo.add(1, b, 3); // 3 + 3 = 6, the winner
    coo.add(2, b, 4); // 4 + 4 = 8
    coo.add(5, b, 2); // 7 + 2 = 9
    graph::Csr g = graph::Csr::fromCoo(coo);
    ASSERT_EQ(ref::dijkstra(g, a)[b], 6u);

    transform::UdtTransform udt;
    transform::SplitOptions options;
    options.degreeBound = 3;
    options.weightPolicy = transform::DumbWeightPolicy::Zero;
    auto result = udt.apply(g, options);
    ASSERT_GT(result.stats.newNodes, 0u); // A actually split
    EXPECT_EQ(ref::dijkstra(result.graph, a)[b], 6u);
}

TEST(PaperFigure1, TransformationReducesIrregularity)
{
    // Figure 1's promise, measured: G' = trans(G) has a visibly more
    // regular degree distribution than G.
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 1024, .edges = 16000, .seed = 1}));
    transform::UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 16});

    graph::DegreeStats before = graph::degreeStats(g);
    graph::DegreeStats after = graph::degreeStats(result.graph);
    EXPECT_LT(after.maxDegree, before.maxDegree / 4);
    EXPECT_LT(after.coefficientOfVariation,
              before.coefficientOfVariation);
    EXPECT_LT(graph::warpLoadImbalance(result.graph),
              graph::warpLoadImbalance(g));
}

TEST(PaperSection23, RealWorldSkewCharacterization)
{
    // "over 90% of nodes have degrees less than 20 while less than 2%
    // of nodes have degrees around 1000" — check the sinaweibo
    // stand-in reproduces the shape.
    auto spec = graph::findDataset("sinaweibo");
    graph::Csr g = graph::makeDataset(*spec, 0.5, false);
    graph::DegreeStats stats = graph::degreeStats(g);
    EXPECT_GT(stats.fractionBelow20, 0.85);
    std::uint64_t heavy = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        heavy += g.degree(v) >= 1000;
    EXPECT_LT(static_cast<double>(heavy), 0.02 * g.numNodes());
    EXPECT_GT(heavy, 0u);
}

} // namespace
} // namespace tigr
