/**
 * @file
 * Golden structured-trace suite: BFS/SSSP/PageRank on the two paper
 * example graphs, across push/pull × dense/sparse/adaptive × TigrV+
 * and Baseline, must format byte-identically to the blessed traces in
 * tests/obs/golden/ — and byte-identically at 1, 2, and 8 host
 * threads (the determinism contract of docs/observability.md).
 *
 * Bless new goldens with:  TIGR_UPDATE_GOLDEN=1 ./test_golden_trace
 */
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dynamic/mutation.hpp"
#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "obs/trace.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr {
namespace {

/** Figure 2's example graph (A-2->B, A-4->D, B-2->C, B-1->D). */
graph::Csr
figure2Graph()
{
    graph::CooEdges coo(4); // 0=A, 1=B, 2=C, 3=D
    coo.add(0, 1, 2);
    coo.add(0, 3, 4);
    coo.add(1, 2, 2);
    coo.add(1, 3, 1);
    return graph::Csr::fromCoo(coo);
}

/** Figure 8's example graph: high-degree A (node 0), target B
 *  (node 7), shortest A..B distance 6 via node 1. */
graph::Csr
figure8Graph()
{
    graph::CooEdges coo(8);
    coo.add(0, 1, 3);
    coo.add(0, 2, 4);
    coo.add(0, 3, 9);
    coo.add(0, 4, 8);
    coo.add(0, 5, 7);
    coo.add(1, 7, 3);
    coo.add(2, 7, 4);
    coo.add(5, 7, 2);
    return graph::Csr::fromCoo(coo);
}

constexpr const char *kAlgos[] = {"bfs", "sssp", "pr"};
constexpr engine::Direction kDirections[] = {engine::Direction::Push,
                                             engine::Direction::Pull};
constexpr engine::FrontierMode kFrontiers[] = {
    engine::FrontierMode::Dense, engine::FrontierMode::Sparse,
    engine::FrontierMode::Adaptive};
constexpr engine::Strategy kStrategies[] = {
    engine::Strategy::TigrVPlus, engine::Strategy::Baseline};

/**
 * Run every combo on @p g with @p threads host threads (fresh engine
 * per combo, so every section's ticks start at 0) and concatenate the
 * formatted traces under "=== algo direction frontier strategy ==="
 * section headers.
 */
std::string
traceAllCombos(const graph::Csr &g, unsigned threads)
{
    std::ostringstream out;
    for (engine::Strategy strategy : kStrategies) {
        for (engine::Direction direction : kDirections) {
            for (engine::FrontierMode frontier : kFrontiers) {
                for (const char *algo : kAlgos) {
                    engine::EngineOptions options;
                    options.strategy = strategy;
                    options.degreeBound = 2;
                    options.direction = direction;
                    options.frontier = frontier;
                    options.threads = threads;
                    obs::TraceSink sink;
                    options.trace = &sink;
                    engine::GraphEngine engine(g, options);
                    if (std::string_view(algo) == "bfs")
                        engine.bfs(0);
                    else if (std::string_view(algo) == "sssp")
                        engine.sssp(0);
                    else
                        engine.pagerank(
                            {.damping = 0.85, .iterations = 5});
                    out << "=== " << algo << ' '
                        << (direction == engine::Direction::Push
                                ? "push"
                                : "pull")
                        << ' ' << engine::frontierModeName(frontier)
                        << ' ' << engine::strategyName(strategy)
                        << " ===\n"
                        << obs::formatTrace(sink);
                }
            }
        }
    }
    return out.str();
}

/**
 * The golden check: render the trace at 1/2/8 threads via @p render,
 * require the three to be byte-identical, then compare thread-1
 * against the blessed file — or rewrite the blessed file when
 * TIGR_UPDATE_GOLDEN is set.
 */
template <typename Render>
void
checkGoldenRendered(const char *file, Render render)
{
    const std::string actual = render(1u);
    for (unsigned threads : {2u, 8u}) {
        const obs::TraceDiff diff =
            obs::diffTraces(actual, render(threads));
        ASSERT_TRUE(diff.identical)
            << "trace differs between 1 and " << threads
            << " host threads — a wall-clock or scheduling-order "
               "value leaked into an event.\n"
            << diff.describe();
    }

    const std::filesystem::path path =
        std::filesystem::path(TIGR_GOLDEN_DIR) / file;
    if (std::getenv("TIGR_UPDATE_GOLDEN") != nullptr) {
        std::filesystem::create_directories(path.parent_path());
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot bless " << path;
        out << actual;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — bless it with TIGR_UPDATE_GOLDEN=1";
    std::ostringstream expected;
    expected << in.rdbuf();
    const obs::TraceDiff diff =
        obs::diffTraces(expected.str(), actual);
    EXPECT_TRUE(diff.identical)
        << diff.describe()
        << "\nIf the change is intentional, re-bless with "
           "TIGR_UPDATE_GOLDEN=1 (see docs/observability.md).";
}

void
checkGolden(const char *file, const graph::Csr &g)
{
    checkGoldenRendered(file, [&](unsigned threads) {
        return traceAllCombos(g, threads);
    });
}

TEST(GoldenTrace, Figure2AllCombosMatchBlessedTrace)
{
    checkGolden("figure2.trace.txt", figure2Graph());
}

TEST(GoldenTrace, Figure8AllCombosMatchBlessedTrace)
{
    checkGolden("figure8.trace.txt", figure8Graph());
}

/**
 * Scheduler trace of a mutate-then-query batch on Figure 8 with @p
 * workers query workers: the mutation's resplit event (forward AND
 * reverse repair counters) followed by every query's `arena.serve` +
 * engine events, concatenated in batch order. The store entry carries
 * a virtual section (K=2, coalesced), so both arena virtualizers are
 * maintained and the arena-served queries reuse them.
 */
std::string
traceSchedulerArena(unsigned workers)
{
    const graph::Csr base = figure8Graph();
    const auto path =
        std::filesystem::temp_directory_path() /
        ("tigr_golden_arena_" + std::to_string(workers) + ".tgs");
    service::Snapshot snapshot;
    snapshot.graph = base;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 2;
    snapshot.virtualLayout = transform::EdgeLayout::Coalesced;
    {
        const transform::VirtualGraph vg(
            base, 2, transform::EdgeLayout::Coalesced);
        snapshot.virtualNodes.assign(vg.virtualNodes().begin(),
                                     vg.virtualNodes().end());
    }
    service::saveSnapshotFile(snapshot, path);
    service::GraphStore store;
    store.addSnapshot("g", path);
    std::filesystem::remove(path);

    service::TransformCache cache(std::size_t{16} << 20);
    service::SchedulerOptions options;
    options.workers = workers;
    options.trace = true;
    service::QueryScheduler scheduler(store, cache, options);

    service::MutationSpec mutation;
    mutation.graph = "g";
    mutation.mutations = {
        {dynamic::MutationKind::InsertEdge, 3, 7, 2},
        {dynamic::MutationKind::InsertEdge, 4, 6, 1},
        {dynamic::MutationKind::DeleteEdge, 0, 3, 0},
        {dynamic::MutationKind::UpdateWeight, 0, 2, 9},
    };

    std::vector<service::QuerySpec> queries;
    for (engine::Direction direction : kDirections) {
        for (const char *algo : kAlgos) {
            service::QuerySpec spec;
            spec.graph = "g";
            spec.algorithm =
                std::string_view(algo) == "bfs" ? engine::Algorithm::Bfs
                : std::string_view(algo) == "sssp"
                    ? engine::Algorithm::Sssp
                    : engine::Algorithm::Pr;
            spec.source = 0;
            spec.strategy = engine::Strategy::TigrVPlus;
            spec.direction = direction;
            spec.degreeBound = 2;
            spec.prIterations = 5;
            queries.push_back(spec);
        }
    }
    const service::MutationBatchResult result =
        scheduler.runBatch(std::vector{mutation}, queries);

    std::ostringstream out;
    out << "=== mutation g ===\n"
        << obs::formatTrace(result.mutations[0].trace);
    std::size_t i = 0;
    for (engine::Direction direction : kDirections) {
        for (const char *algo : kAlgos) {
            out << "=== query " << algo << ' '
                << (direction == engine::Direction::Push ? "push"
                                                         : "pull")
                << " tigr-v+ ===\n"
                << obs::formatTrace(result.queries[i++].trace);
        }
    }
    return out.str();
}

TEST(GoldenTrace, SchedulerArenaServedCombosMatchBlessedTrace)
{
    // The new events must actually be in the gated text: one resplit
    // with reverse counters, one arena.serve per query.
    const std::string rendered = traceSchedulerArena(1);
    EXPECT_NE(rendered.find("mutation.resplit"), std::string::npos);
    EXPECT_NE(rendered.find("reverse_repaired="), std::string::npos);
    std::size_t serves = 0;
    for (std::size_t at = rendered.find("arena.serve");
         at != std::string::npos;
         at = rendered.find("arena.serve", at + 1))
        ++serves;
    EXPECT_EQ(serves, 6u);

    checkGoldenRendered("scheduler_arena.trace.txt",
                        traceSchedulerArena);
}

TEST(GoldenTrace, TickBaseMakesMultiRunTracesMonotonic)
{
    // Two runs on ONE engine share a sink; the second run's ticks must
    // continue after the first run's cycles, never restart at 0.
    graph::Csr g = figure8Graph();
    engine::EngineOptions options;
    options.threads = 1;
    obs::TraceSink sink;
    options.trace = &sink;
    engine::GraphEngine engine(g, options);
    engine.bfs(0);
    engine.sssp(0);
    std::uint64_t last = 0;
    for (const obs::TraceEvent &event : sink.events()) {
        EXPECT_GE(event.tick, last) << obs::formatEvent(event);
        last = event.tick;
    }
}

TEST(TraceDiff, ReportsFirstDivergingLineFieldAndIteration)
{
    const std::string expected =
        "[0] run.begin algo=BFS n=8\n"
        "[10] iter i=1 frontier=1 cycles=10\n"
        "[25] iter i=2 frontier=3 cycles=15\n"
        "[25] run.end iterations=2 converged=1\n";
    std::string actual = expected;
    const std::size_t at = actual.find("frontier=3");
    actual.replace(at, 10, "frontier=4");

    const obs::TraceDiff diff = obs::diffTraces(expected, actual);
    ASSERT_FALSE(diff.identical);
    EXPECT_EQ(diff.line, 2u);
    EXPECT_EQ(diff.field, 3u); // [25] iter i=2 | frontier=...
    EXPECT_EQ(diff.iteration, "2");
    EXPECT_NE(diff.describe().find("iteration 2"), std::string::npos)
        << diff.describe();
    EXPECT_NE(diff.describe().find("frontier=4"), std::string::npos);
}

TEST(TraceDiff, LengthMismatchIsADivergence)
{
    const std::string expected = "[0] run.begin n=4\n[5] iter i=1\n";
    const std::string truncated = "[0] run.begin n=4\n";
    EXPECT_FALSE(obs::diffTraces(expected, truncated).identical);
    EXPECT_FALSE(obs::diffTraces(truncated, expected).identical);
    EXPECT_TRUE(obs::diffTraces(expected, expected).identical);
}

} // namespace
} // namespace tigr
