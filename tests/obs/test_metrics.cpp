/**
 * @file
 * MetricsRegistry unit suite: counter monotonicity and saturation,
 * log2 histogram bucket edges, stable (registration-order-independent)
 * serialization, and the disabled-mode zero-allocation pin.
 */
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

// ---------------------------------------------------------------------
// Global allocation counter. Every operator new in the process bumps
// it, which lets DisabledMode.ZeroAllocations assert that updating the
// disabled registry performs no heap allocation at all.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tigr::obs {
namespace {

TEST(Counter, MonotonicAdds)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    EXPECT_EQ(c.value(), 1u);
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.add(0);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SaturatesAtMax)
{
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    Counter c;
    c.add(kMax - 1);
    c.add(10); // would wrap; must pin instead
    EXPECT_EQ(c.value(), kMax);
    c.add(1);
    EXPECT_EQ(c.value(), kMax);
    c.add(kMax);
    EXPECT_EQ(c.value(), kMax);
}

TEST(Counter, ConcurrentAddsAreExact)
{
    Counter c;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kAdds = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (unsigned i = 0; i < kAdds; ++i)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kAdds);
}

TEST(Gauge, LastValueWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0u);
    g.set(100);
    g.set(7);
    EXPECT_EQ(g.value(), 7u);
}

TEST(Histogram, BucketOfIsBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);
    // Every power of two opens a new bucket; the value below it closes
    // the previous one.
    for (unsigned i = 1; i < 64; ++i) {
        const std::uint64_t pow2 = std::uint64_t{1} << i;
        EXPECT_EQ(Histogram::bucketOf(pow2), i + 1) << "2^" << i;
        EXPECT_EQ(Histogram::bucketOf(pow2 - 1), i) << "2^" << i
                                                    << " - 1";
    }
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    EXPECT_EQ(Histogram::bucketFloor(0), 0u);
    EXPECT_EQ(Histogram::bucketCeil(0), 0u);
    EXPECT_EQ(Histogram::bucketFloor(1), 0u);
    EXPECT_EQ(Histogram::bucketCeil(1), 1u);
    EXPECT_EQ(Histogram::bucketFloor(2), 2u);
    EXPECT_EQ(Histogram::bucketCeil(2), 3u);
    EXPECT_EQ(Histogram::bucketCeil(64), ~std::uint64_t{0});
    for (std::size_t i = 2; i < Histogram::kBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketFloor(i)), i);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketCeil(i)), i);
    }
}

TEST(Histogram, ObserveFillsBucketsCountAndSum)
{
    Histogram h;
    h.observe(0);
    h.observe(1);
    h.observe(2);
    h.observe(3);
    h.observe(1024);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1030u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(11), 1u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, SumSaturatesAtMax)
{
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    Histogram h;
    h.observe(kMax);
    h.observe(kMax);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), kMax);
    EXPECT_EQ(h.bucket(64), 2u);
}

TEST(Registry, SnapshotTextFormat)
{
    MetricsRegistry r;
    r.counter("b.count").add(3);
    r.counter("a.count").add(1);
    r.gauge("cache.bytes").set(4096);
    r.histogram("iters").observe(0);
    r.histogram("iters").observe(5);
    r.histogram("iters").observe(6);
    EXPECT_EQ(r.snapshotText(), "counter a.count 1\n"
                                "counter b.count 3\n"
                                "gauge cache.bytes 4096\n"
                                "hist iters count=3 sum=11 b0=1 b3=2\n");
}

TEST(Registry, SerializationIgnoresRegistrationOrder)
{
    MetricsRegistry forward;
    forward.counter("alpha").add(1);
    forward.counter("beta").add(2);
    forward.histogram("h1").observe(4);
    forward.histogram("h2").observe(9);
    forward.gauge("g").set(5);

    MetricsRegistry reversed;
    reversed.gauge("g").set(5);
    reversed.histogram("h2").observe(9);
    reversed.histogram("h1").observe(4);
    reversed.counter("beta").add(2);
    reversed.counter("alpha").add(1);

    EXPECT_EQ(forward.snapshotText(), reversed.snapshotText());
    EXPECT_EQ(forward.snapshotJson(), reversed.snapshotJson());
    EXPECT_EQ(forward.digest(), reversed.digest());
}

TEST(Registry, InstrumentsAreCreatedOnceAndShared)
{
    MetricsRegistry r;
    Counter &first = r.counter("same");
    Counter &second = r.counter("same");
    EXPECT_EQ(&first, &second);
    first.add(2);
    second.add(3);
    EXPECT_EQ(r.snapshotText(), "counter same 5\n");
}

TEST(DisabledMode, AcceptsUpdatesAndSnapshotsEmpty)
{
    MetricsRegistry &off = MetricsRegistry::disabled();
    EXPECT_FALSE(off.enabled());
    EXPECT_TRUE(MetricsRegistry().enabled());
    off.counter("ignored").add(7);
    off.gauge("ignored").set(7);
    off.histogram("ignored").observe(7);
    EXPECT_EQ(off.snapshotText(), "");
    EXPECT_EQ(off.snapshotJson(),
              "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(DisabledMode, ZeroAllocations)
{
    // Touch the singleton first so its one-time construction is not
    // charged to the measured region.
    MetricsRegistry &off = MetricsRegistry::disabled();
    const std::uint64_t before =
        g_allocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        off.counter("scheduler.queries").add();
        off.gauge("cache.bytes").set(static_cast<std::uint64_t>(i));
        off.histogram("query.iterations")
            .observe(static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

} // namespace
} // namespace tigr::obs
