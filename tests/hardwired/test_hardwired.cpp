/**
 * @file
 * Tests of the hardwired specialized implementations: each must agree
 * exactly with its sequential oracle across randomized power-law
 * graphs, be deterministic, and exhibit its published cost signature.
 */
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "hardwired/hardwired.hpp"
#include "ref/oracles.hpp"

namespace tigr::hardwired {
namespace {

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 30;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 400, .edges = 4800, .seed = seed}));
}

graph::Csr
symmetricGraph(std::uint64_t seed)
{
    graph::CooEdges coo =
        graph::rmat({.nodes = 300, .edges = 2400, .seed = seed});
    coo.symmetrize();
    return graph::GraphBuilder().build(std::move(coo));
}

class HardwiredSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HardwiredSeeds, DeltaSteppingMatchesDijkstra)
{
    graph::Csr g = weightedGraph(GetParam());
    sim::WarpSimulator sim;
    auto result = deltaSteppingSssp(g, 0, 0, sim);
    auto oracle = ref::dijkstra(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(HardwiredSeeds, MerrillBfsMatchesOracle)
{
    graph::Csr g = weightedGraph(GetParam());
    sim::WarpSimulator sim;
    auto result = merrillBfs(g, 0, sim);
    auto oracle = ref::bfsHops(g, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(HardwiredSeeds, EclCcMatchesUnionFind)
{
    graph::Csr g = symmetricGraph(GetParam());
    sim::WarpSimulator sim;
    auto result = eclCc(g, sim);
    auto oracle = ref::connectedComponents(g);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(result.values[v], oracle[v]) << "node " << v;
}

TEST_P(HardwiredSeeds, ElsenPagerankMatchesPowerIteration)
{
    graph::Csr g = weightedGraph(GetParam());
    sim::WarpSimulator sim;
    auto result = elsenPagerank(
        g, {.damping = 0.85, .iterations = 15}, sim);
    auto oracle =
        ref::pageRank(g, {.damping = 0.85, .iterations = 15});
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(result.values[v], oracle[v], 1e-9) << "node " << v;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, HardwiredSeeds,
                         ::testing::Values(11, 22, 33, 44, 55),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

TEST(DeltaStepping, ExplicitDeltaSweepStaysCorrect)
{
    graph::Csr g = weightedGraph(9);
    auto oracle = ref::dijkstra(g, 3);
    for (Weight delta : {1u, 5u, 20u, 1000u}) {
        sim::WarpSimulator sim;
        auto result = deltaSteppingSssp(g, 3, delta, sim);
        for (NodeId v = 0; v < g.numNodes(); ++v)
            ASSERT_EQ(result.values[v], oracle[v])
                << "delta " << delta << " node " << v;
    }
}

TEST(DeltaStepping, SmallerDeltaMeansMorePhases)
{
    graph::Csr g = weightedGraph(10);
    sim::WarpSimulator sim_fine;
    sim::WarpSimulator sim_coarse;
    auto fine = deltaSteppingSssp(g, 0, 1, sim_fine);
    auto coarse = deltaSteppingSssp(g, 0, 1000, sim_coarse);
    EXPECT_GT(fine.iterations, coarse.iterations);
}

TEST(MerrillBfs, LevelCountMatchesEccentricity)
{
    graph::Csr g = graph::Csr::fromCoo(graph::path(20));
    sim::WarpSimulator sim;
    auto result = merrillBfs(g, 0, sim);
    // 19 expansion levels (the last frontier has no out-edges).
    EXPECT_EQ(result.iterations, 20u);
    EXPECT_EQ(result.values[19], 19u);
}

TEST(EclCc, ConvergesInFewRounds)
{
    graph::Csr g = symmetricGraph(12);
    sim::WarpSimulator sim;
    auto result = eclCc(g, sim);
    // Min-id hooking with immediate compression settles fast — the
    // property that makes ECL-CC the fastest CC on GPUs.
    EXPECT_LE(result.iterations, 4u);
}

TEST(EclCc, HandlesIsolatedNodesAndSelfComponents)
{
    graph::CooEdges coo(6);
    coo.add(4, 5);
    coo.add(5, 4);
    graph::Csr g = graph::Csr::fromCoo(coo);
    sim::WarpSimulator sim;
    auto result = eclCc(g, sim);
    for (NodeId v = 0; v < 4; ++v)
        EXPECT_EQ(result.values[v], v);
    EXPECT_EQ(result.values[4], 4u);
    EXPECT_EQ(result.values[5], 4u);
}

TEST(ElsenPr, SequentialApplyPhaseIsCoalesced)
{
    graph::Csr g = weightedGraph(13);
    sim::WarpSimulator sim;
    auto result = elsenPagerank(g, {.iterations = 5}, sim);
    // Two kernels per round.
    EXPECT_EQ(result.stats.launches, 10u);
    EXPECT_GT(result.stats.coalescingFactor(), 1.5);
}

TEST(Hardwired, Deterministic)
{
    graph::Csr g = weightedGraph(14);
    sim::WarpSimulator sim_a;
    sim::WarpSimulator sim_b;
    auto a = deltaSteppingSssp(g, 0, 0, sim_a);
    auto b = deltaSteppingSssp(g, 0, 0, sim_b);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

} // namespace
} // namespace tigr::hardwired
