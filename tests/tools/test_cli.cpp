/**
 * @file
 * Tests of the `tigr` command-line tool: argument parsing, file-format
 * dispatch, and end-to-end command execution through temp files.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "cli.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace tigr::cli {
namespace {

namespace fs = std::filesystem;

/** RAII temp directory for command round-trips. */
class TempDir
{
  public:
    // The name must be unique across processes, not just within one:
    // ctest runs every discovered test as its own process in parallel,
    // so a static counter alone collides and ~TempDir would delete a
    // sibling's files mid-test.
    TempDir()
        : path_(fs::temp_directory_path() /
                ("tigr_cli_test_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++)))
    {
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    fs::path operator/(const std::string &name) const
    {
        return path_ / name;
    }

  private:
    static inline int counter_ = 0;
    fs::path path_;
};

TEST(CliParse, SplitsPositionalAndFlags)
{
    CommandLine cmd = parse({"run", "graph.el", "--algo", "bfs",
                             "--pull", "--source", "7"});
    EXPECT_EQ(cmd.command, "run");
    ASSERT_EQ(cmd.positional.size(), 1u);
    EXPECT_EQ(cmd.positional[0], "graph.el");
    EXPECT_EQ(cmd.option("algo"), "bfs");
    EXPECT_TRUE(cmd.has("pull"));
    EXPECT_EQ(cmd.optionU64("source", 0), 7u);
}

TEST(CliParse, FlagFollowedByFlagHasEmptyValue)
{
    CommandLine cmd = parse({"run", "--pull", "--dynamic"});
    EXPECT_TRUE(cmd.has("pull"));
    EXPECT_TRUE(cmd.has("dynamic"));
    EXPECT_EQ(*cmd.option("pull"), "");
}

TEST(CliParse, MissingCommandThrows)
{
    EXPECT_THROW(parse({}), std::invalid_argument);
}

TEST(CliParse, DefaultsApplyWhenOptionAbsent)
{
    CommandLine cmd = parse({"run"});
    EXPECT_EQ(cmd.optionU64("k", 10), 10u);
    EXPECT_FALSE(cmd.option("algo").has_value());
}

TEST(CliFiles, EdgeListRoundTrip)
{
    TempDir dir;
    auto path = dir / "g.el";
    graph::Csr g = graph::GraphBuilder().build(
        graph::erdosRenyi(64, 400, 3));
    saveGraphFile(g, path.string());
    graph::Csr loaded = loadGraphFile(path.string());
    EXPECT_EQ(loaded, g);
}

TEST(CliFiles, BinaryRoundTrip)
{
    TempDir dir;
    auto path = dir / "g.csr";
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 64, .edges = 500, .seed = 2}));
    saveGraphFile(g, path.string());
    EXPECT_EQ(loadGraphFile(path.string()), g);
}

TEST(CliFiles, MatrixMarketLoads)
{
    TempDir dir;
    auto path = dir / "g.mtx";
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "3 3 2\n"
        << "1 2\n"
        << "2 3\n";
    out.close();
    graph::Csr g = loadGraphFile(path.string());
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 2u);
}

TEST(CliFiles, UnknownExtensionThrows)
{
    EXPECT_THROW(loadGraphFile("graph.gexf"), std::runtime_error);
    graph::Csr g;
    EXPECT_THROW(saveGraphFile(g, "graph.gexf"), std::runtime_error);
}

TEST(CliCommands, GenerateThenStats)
{
    TempDir dir;
    auto path = dir / "g.csr";
    std::ostringstream out;
    int code = runCommand(
        parse({"generate", "--type", "rmat", "--nodes", "256",
               "--edges", "4096", "--seed", "5", "--out",
               path.string()}),
        out);
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.str().find("generated rmat graph"),
              std::string::npos);

    std::ostringstream stats;
    code = runCommand(parse({"stats", path.string()}), stats);
    EXPECT_EQ(code, 0);
    EXPECT_NE(stats.str().find("gini:"), std::string::npos);
    EXPECT_NE(stats.str().find("suggested K(udt):"),
              std::string::npos);
}

TEST(CliCommands, TransformBoundsDegrees)
{
    TempDir dir;
    auto input = dir / "in.csr";
    auto output = dir / "out.csr";
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 256, .edges = 4000, .seed = 6}));
    graph::saveCsrBinaryFile(g, input);

    std::ostringstream out;
    int code = runCommand(
        parse({"transform", input.string(), "--out", output.string(),
               "--k", "8", "--topology", "udt"}),
        out);
    EXPECT_EQ(code, 0);
    graph::Csr transformed = graph::loadCsrBinaryFile(output);
    EXPECT_LE(transformed.maxOutDegree(), 8u);
    EXPECT_GT(transformed.numNodes(), g.numNodes());
}

TEST(CliCommands, RunAllAlgorithms)
{
    TempDir dir;
    auto path = dir / "g.csr";
    graph::CooEdges coo =
        graph::rmat({.nodes = 200, .edges = 2500, .seed = 7});
    coo.symmetrize();
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(std::move(coo)), path);

    for (const char *algo : {"bfs", "sssp", "sswp", "cc", "pr", "bc"}) {
        std::ostringstream out;
        int code = runCommand(
            parse({"run", path.string(), "--algo", algo, "--strategy",
                   "tigr-v+"}),
            out);
        EXPECT_EQ(code, 0) << algo;
        EXPECT_NE(out.str().find("warp efficiency"),
                  std::string::npos)
            << algo;
    }
}

TEST(CliCommands, RunWithPullAndDynamicFlags)
{
    TempDir dir;
    auto path = dir / "g.csr";
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(
            graph::rmat({.nodes = 128, .edges = 1500, .seed = 8})),
        path);
    std::ostringstream out;
    int code = runCommand(parse({"run", path.string(), "--algo",
                                 "sssp", "--pull"}),
                          out);
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.str().find("(pull)"), std::string::npos);

    std::ostringstream dynamic_out;
    code = runCommand(parse({"run", path.string(), "--algo", "sssp",
                             "--dynamic"}),
                      dynamic_out);
    EXPECT_EQ(code, 0);
    EXPECT_NE(dynamic_out.str().find("(dynamic mapping)"),
              std::string::npos);
}

TEST(CliCommands, RunFrontierFlags)
{
    TempDir dir;
    auto path = dir / "g.csr";
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(
            graph::rmat({.nodes = 128, .edges = 1500, .seed = 9})),
        path);

    // Every mode runs and is echoed; dense reports zero sparse iters.
    for (const char *mode : {"dense", "sparse", "adaptive"}) {
        std::ostringstream out;
        int code = runCommand(parse({"run", path.string(), "--algo",
                                     "bfs", "--frontier", mode}),
                              out);
        EXPECT_EQ(code, 0) << mode;
        EXPECT_NE(out.str().find(std::string("frontier:        ") +
                                 mode),
                  std::string::npos)
            << mode;
    }
    std::ostringstream dense_out;
    ASSERT_EQ(runCommand(parse({"run", path.string(), "--algo", "bfs",
                                "--frontier", "dense"}),
                         dense_out),
              0);
    EXPECT_NE(dense_out.str().find("sparse iters:    0"),
              std::string::npos);

    // Strict parsing, matching the --threads conventions.
    std::ostringstream out;
    EXPECT_THROW(runCommand(parse({"run", path.string(), "--frontier",
                                   "bitmap"}),
                            out),
                 std::runtime_error);
    for (const char *bad : {"1.5", "-0.1", "+0.3", "0.05x", "nan", ""}) {
        EXPECT_THROW(runCommand(parse({"run", path.string(),
                                       "--frontier-ratio", bad}),
                                out),
                     std::runtime_error)
            << '\'' << bad << '\'';
    }
    std::ostringstream ok;
    EXPECT_EQ(runCommand(parse({"run", path.string(), "--algo", "bfs",
                                "--frontier-ratio", "0.25"}),
                         ok),
              0);
}

TEST(CliCommands, ErrorsAreReported)
{
    std::ostringstream out;
    EXPECT_THROW(runCommand(parse({"bogus"}), out),
                 std::runtime_error);
    EXPECT_THROW(runCommand(parse({"stats"}), out),
                 std::runtime_error);
    EXPECT_THROW(runCommand(parse({"run", "nonexistent.el"}), out),
                 std::runtime_error);
}

TEST(CliCommands, HelpPrintsUsage)
{
    std::ostringstream out;
    EXPECT_EQ(runCommand(parse({"help"}), out), 0);
    EXPECT_NE(out.str().find("tigr run"), std::string::npos);
}

TEST(CliCommands, RunRejectsBadStrategyAndSource)
{
    TempDir dir;
    auto path = dir / "g.csr";
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(
            graph::erdosRenyi(32, 100, 1)),
        path);
    std::ostringstream out;
    EXPECT_THROW(runCommand(parse({"run", path.string(), "--strategy",
                                   "warpspeed"}),
                            out),
                 std::runtime_error);
    EXPECT_THROW(runCommand(parse({"run", path.string(), "--source",
                                   "99999"}),
                            out),
                 std::runtime_error);
}

TEST(CliCommands, ServeAcceptsResilienceFlags)
{
    TempDir dir;
    auto graphPath = dir / "g.csr";
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(graph::erdosRenyi(64, 300, 2)),
        graphPath);
    auto scriptPath = dir / "s.txt";
    {
        std::ofstream script(scriptPath);
        script << "load g " << graphPath.string() << "\n"
               << "query g bfs source=0\n"
               << "run\n";
    }
    std::ostringstream out;
    int code = runCommand(
        parse({"serve", "--script", scriptPath.string(),
               "--max-retries", "4", "--fail-fast"}),
        out);
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.str().find("outcome=completed"), std::string::npos);
}

TEST(CliCommands, ServeRejectsMalformedResilienceFlags)
{
    TempDir dir;
    auto scriptPath = dir / "s.txt";
    {
        std::ofstream script(scriptPath);
        script << "# nothing to do\n";
    }
    std::ostringstream out;
    // --max-retries must be a plain decimal integer.
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--max-retries", "many"}),
                   out),
        std::runtime_error);
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--max-retries", "4x"}),
                   out),
        std::runtime_error);
    // --fail-fast is strictly a flag: an attached value would have
    // swallowed the next script token silently.
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--fail-fast", "1"}),
                   out),
        std::runtime_error);
}

TEST(CliCommands, HelpDocumentsResilienceFlags)
{
    std::ostringstream out;
    ASSERT_EQ(runCommand(parse({"help"}), out), 0);
    EXPECT_NE(out.str().find("--max-retries"), std::string::npos);
    EXPECT_NE(out.str().find("--fail-fast"), std::string::npos);
}

TEST(CliCommands, ServeDurableRunsMutationsThroughTheJournal)
{
    TempDir dir;
    auto graphPath = dir / "g.csr";
    graph::saveCsrBinaryFile(
        graph::GraphBuilder().build(graph::erdosRenyi(64, 300, 2)),
        graphPath);
    auto durableDir = dir / "state";
    auto scriptPath = dir / "s.txt";
    {
        std::ofstream script(scriptPath);
        script << "load g " << graphPath.string() << "\n"
               << "mutate g inserts=4 deletes=2 seed=3\n"
               << "run\n"
               << "checkpoint g\n";
    }
    std::ostringstream out;
    int code = runCommand(
        parse({"serve", "--script", scriptPath.string(), "--durable",
               durableDir.string(), "--sync-policy", "every-record"}),
        out);
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.str().find("recovered 0 graph(s)"),
              std::string::npos);
    EXPECT_NE(out.str().find("checkpoint g epoch=1"),
              std::string::npos);
    EXPECT_TRUE(fs::exists(durableDir / "g.tgs"));
    EXPECT_TRUE(fs::exists(durableDir / "g.twj"));

    // `tigr recover` over the directory the script left behind.
    std::ostringstream recoverOut;
    EXPECT_EQ(runCommand(parse({"recover", durableDir.string()}),
                         recoverOut),
              0);
    EXPECT_NE(recoverOut.str().find("recovered 1 graph(s)"),
              std::string::npos);
}

TEST(CliCommands, ServeRejectsMalformedDurabilityFlags)
{
    TempDir dir;
    auto scriptPath = dir / "s.txt";
    {
        std::ofstream script(scriptPath);
        script << "# nothing to do\n";
    }
    std::ostringstream out;
    // --durable needs a directory value.
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--durable"}),
                   out),
        std::runtime_error);
    // --sync-policy is meaningless without --durable...
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--sync-policy", "group-commit"}),
                   out),
        std::runtime_error);
    // ...and its value is strictly one of the three policy names.
    EXPECT_THROW(
        runCommand(parse({"serve", "--script", scriptPath.string(),
                          "--durable", (dir / "state").string(),
                          "--sync-policy", "sometimes"}),
                   out),
        std::runtime_error);
}

TEST(CliCommands, RecoverValidatesItsArguments)
{
    TempDir dir;
    std::ostringstream out;
    // Exactly one positional, and it must be an existing directory.
    EXPECT_THROW(runCommand(parse({"recover"}), out),
                 std::runtime_error);
    EXPECT_THROW(
        runCommand(parse({"recover", (dir / "missing").string()}), out),
        std::runtime_error);

    // An empty directory recovers to an empty report, exit 0.
    auto stateDir = dir / "state";
    fs::create_directories(stateDir);
    EXPECT_EQ(runCommand(parse({"recover", stateDir.string()}), out),
              0);
    EXPECT_NE(out.str().find("recovered 0 graph(s)"),
              std::string::npos);
}

TEST(CliCommands, HelpDocumentsDurabilityFlags)
{
    std::ostringstream out;
    ASSERT_EQ(runCommand(parse({"help"}), out), 0);
    EXPECT_NE(out.str().find("--durable"), std::string::npos);
    EXPECT_NE(out.str().find("--sync-policy"), std::string::npos);
    EXPECT_NE(out.str().find("recover"), std::string::npos);
}

} // namespace
} // namespace tigr::cli
