/**
 * @file
 * Regression tests for thread-count parsing: `parseThreadCount` must
 * reject 0, negatives, garbage, trailing text, and overflow with a
 * clear error naming the offending setting, and the TIGR_THREADS
 * environment resolution must go through the same strict parser
 * instead of silently falling back to the hardware default.
 */
#include <cstdlib>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "par/thread_pool.hpp"

namespace tigr::par {
namespace {

/** Restores TIGR_THREADS to unset after each test. */
class ThreadCountEnv : public ::testing::Test
{
  protected:
    void TearDown() override { unsetenv("TIGR_THREADS"); }
};

TEST(ParseThreadCount, AcceptsPlainPositiveIntegers)
{
    EXPECT_EQ(parseThreadCount("1", "--threads"), 1u);
    EXPECT_EQ(parseThreadCount("8", "--threads"), 8u);
    EXPECT_EQ(parseThreadCount("1024", "--threads"), kMaxThreads);
}

TEST(ParseThreadCount, RejectsZero)
{
    EXPECT_THROW(parseThreadCount("0", "--threads"),
                 std::invalid_argument);
    EXPECT_THROW(parseThreadCount("000", "--threads"),
                 std::invalid_argument);
}

TEST(ParseThreadCount, RejectsNegatives)
{
    EXPECT_THROW(parseThreadCount("-1", "--threads"),
                 std::invalid_argument);
    EXPECT_THROW(parseThreadCount("-8", "TIGR_THREADS"),
                 std::invalid_argument);
}

TEST(ParseThreadCount, RejectsGarbage)
{
    for (const char *bad : {"", " ", "abc", "4x", "x4", "4 ", " 4",
                            "+4", "0x10", "3.5", "1e3"}) {
        EXPECT_THROW(parseThreadCount(bad, "--threads"),
                     std::invalid_argument)
            << "accepted '" << bad << "'";
    }
}

TEST(ParseThreadCount, RejectsOverflow)
{
    EXPECT_THROW(parseThreadCount("1025", "--threads"),
                 std::invalid_argument);
    EXPECT_THROW(parseThreadCount("99999999999999999999", "--threads"),
                 std::invalid_argument);
}

TEST(ParseThreadCount, ErrorNamesTheSetting)
{
    try {
        parseThreadCount("0", "TIGR_THREADS");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("TIGR_THREADS"), std::string::npos) << what;
        EXPECT_NE(what.find("'0'"), std::string::npos) << what;
    }
}

TEST_F(ThreadCountEnv, ValidEnvWins)
{
    ASSERT_EQ(setenv("TIGR_THREADS", "6", 1), 0);
    EXPECT_EQ(defaultThreads(), 6u);
    EXPECT_EQ(resolveThreads(0), 6u);
}

TEST_F(ThreadCountEnv, EmptyEnvActsAsUnset)
{
    ASSERT_EQ(setenv("TIGR_THREADS", "", 1), 0);
    EXPECT_GE(defaultThreads(), 1u);
}

TEST_F(ThreadCountEnv, InvalidEnvFailsLoudly)
{
    for (const char *bad : {"0", "-3", "garbage", "4q", "1025"}) {
        ASSERT_EQ(setenv("TIGR_THREADS", bad, 1), 0);
        EXPECT_THROW(defaultThreads(), std::invalid_argument)
            << "TIGR_THREADS=" << bad;
        EXPECT_THROW(resolveThreads(0), std::invalid_argument)
            << "TIGR_THREADS=" << bad;
        // An explicit request never consults the environment.
        EXPECT_EQ(resolveThreads(3), 3u);
    }
}

} // namespace
} // namespace tigr::par
