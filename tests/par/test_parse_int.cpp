/**
 * @file
 * parsePositiveInt: the shared strict numeric-flag grammar. Every CLI
 * flag and environment knob that routes through it inherits exactly
 * these acceptances and rejections, so the table here is the single
 * spec: plain decimal digits, value in [1, max], nothing else.
 */
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "par/parse_int.hpp"

namespace tigr::par {
namespace {

TEST(ParsePositiveInt, AcceptsPlainDecimals)
{
    EXPECT_EQ(parsePositiveInt("1", "test"), 1u);
    EXPECT_EQ(parsePositiveInt("42", "test"), 42u);
    EXPECT_EQ(parsePositiveInt("007", "test"), 7u);
    EXPECT_EQ(parsePositiveInt("18446744073709551615", "test"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParsePositiveInt, RejectsZero)
{
    EXPECT_THROW(parsePositiveInt("0", "test"), std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("00", "test"), std::invalid_argument);
}

TEST(ParsePositiveInt, RejectsSigns)
{
    EXPECT_THROW(parsePositiveInt("-1", "test"), std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("-42", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("+5", "test"), std::invalid_argument);
}

TEST(ParsePositiveInt, RejectsTrailingOrEmbeddedText)
{
    EXPECT_THROW(parsePositiveInt("1x", "test"), std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("12 ", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt(" 12", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("1_000", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("0x10", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("ten", "test"),
                 std::invalid_argument);
}

TEST(ParsePositiveInt, RejectsEmpty)
{
    EXPECT_THROW(parsePositiveInt("", "test"), std::invalid_argument);
}

TEST(ParsePositiveInt, RejectsOverflow)
{
    // One past UINT64_MAX, and a value that overflows mid-accumulate.
    EXPECT_THROW(parsePositiveInt("18446744073709551616", "test"),
                 std::invalid_argument);
    EXPECT_THROW(parsePositiveInt("99999999999999999999", "test"),
                 std::invalid_argument);
    EXPECT_THROW(
        parsePositiveInt("340282366920938463463374607431768211456",
                         "test"),
        std::invalid_argument);
}

TEST(ParsePositiveInt, EnforcesCallerMax)
{
    EXPECT_EQ(parsePositiveInt("1024", "test", 1024), 1024u);
    EXPECT_THROW(parsePositiveInt("1025", "test", 1024),
                 std::invalid_argument);
}

TEST(ParsePositiveInt, MessageNamesOriginAndValue)
{
    try {
        parsePositiveInt("1x", "--queue");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("--queue"), std::string::npos)
            << message;
        EXPECT_NE(message.find("'1x'"), std::string::npos) << message;
    }
}

} // namespace
} // namespace tigr::par
