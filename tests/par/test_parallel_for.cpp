/**
 * @file
 * Tests of the host execution backend: pool lifecycle, exception
 * propagation, the nested-run guard, the TIGR_THREADS resolution
 * rules, and the chunk-structure determinism contract the engines
 * build on (see docs/parallelism.md).
 */
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "par/parallel_for.hpp"
#include "par/thread_pool.hpp"

namespace tigr::par {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<unsigned> seen;
    pool.run([&](unsigned worker) { seen.push_back(worker); });
    EXPECT_EQ(seen, std::vector<unsigned>{0u});
}

TEST(ThreadPool, EveryWorkerRunsExactlyOnce)
{
    ThreadPool pool(4);
    ASSERT_EQ(pool.threads(), 4u);
    std::mutex mutex;
    std::multiset<unsigned> seen;
    pool.run([&](unsigned worker) {
        std::lock_guard lock(mutex);
        seen.insert(worker);
    });
    EXPECT_EQ(seen, (std::multiset<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, SurvivesManyConsecutiveRuns)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int round = 0; round < 200; ++round)
        pool.run([&](unsigned) { ++total; });
    EXPECT_EQ(total.load(), 200 * 3);
}

TEST(ThreadPool, DestructionWithoutAnyRunIsClean)
{
    ThreadPool pool(4);
    // No run(): the destructor alone must join the idle workers.
}

TEST(ThreadPool, CallerExceptionPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.run([](unsigned worker) {
            if (worker == 0)
                throw std::runtime_error("caller boom");
        }),
        std::runtime_error);
    // The pool stays usable after a failed run.
    std::atomic<int> ran{0};
    pool.run([&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, BackgroundWorkerExceptionPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.run([](unsigned worker) {
            if (worker == 1)
                throw std::runtime_error("worker boom");
        }),
        std::runtime_error);
}

TEST(ThreadPool, LowestWorkerIndexExceptionWins)
{
    ThreadPool pool(4);
    try {
        pool.run([](unsigned worker) {
            if (worker >= 1)
                throw std::runtime_error("worker " +
                                         std::to_string(worker));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker 1");
    }
}

TEST(ThreadPool, NestedRunOnSamePoolThrows)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.inParallelRegion());
    EXPECT_THROW(pool.run([&](unsigned worker) {
        EXPECT_TRUE(pool.inParallelRegion());
        if (worker == 0)
            pool.run([](unsigned) {});
    }),
                 std::logic_error);
    EXPECT_FALSE(pool.inParallelRegion());
}

TEST(ThreadPool, RunOnDifferentPoolInsideJobIsAllowed)
{
    ThreadPool outer(2);
    ThreadPool inner(1); // 1-thread pools run inline: no deadlock.
    std::atomic<int> total{0};
    outer.run([&](unsigned worker) {
        if (worker == 0)
            inner.run([&](unsigned) { ++total; });
    });
    EXPECT_EQ(total.load(), 1);
}

// ------------------------------------------------------ thread counts

TEST(ResolveThreads, PositiveRequestWinsVerbatim)
{
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(7), 7u);
}

TEST(ResolveThreads, ZeroDefersToTigrThreadsEnv)
{
    ASSERT_EQ(setenv("TIGR_THREADS", "5", 1), 0);
    EXPECT_EQ(resolveThreads(0), 5u);
    EXPECT_EQ(defaultThreads(), 5u);
    // Garbage no longer falls back silently — see
    // tests/par/test_thread_count.cpp for the full rejection matrix.
    ASSERT_EQ(setenv("TIGR_THREADS", "not-a-number", 1), 0);
    EXPECT_THROW(resolveThreads(0), std::invalid_argument);
    ASSERT_EQ(unsetenv("TIGR_THREADS"), 0);
    EXPECT_GE(resolveThreads(0), 1u);
}

TEST(ResolveThreads, EnvOverrideDoesNotBeatExplicitRequest)
{
    ASSERT_EQ(setenv("TIGR_THREADS", "5", 1), 0);
    EXPECT_EQ(resolveThreads(2), 2u);
    ASSERT_EQ(unsetenv("TIGR_THREADS"), 0);
}

// ------------------------------------------------------------- chunks

TEST(ForEachChunk, EmptyRangeInvokesNothing)
{
    ThreadPool pool(2);
    int calls = 0;
    forEachChunk(&pool, 0, kDefaultGrain,
                 [&](std::uint64_t, std::uint64_t, std::uint64_t,
                     unsigned) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(&pool, 0, kDefaultGrain,
                [&](std::uint64_t, unsigned) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ForEachChunk, SingleElementRange)
{
    ThreadPool pool(4);
    std::vector<std::uint64_t> indices;
    parallelFor(&pool, 1, kDefaultGrain,
                [&](std::uint64_t i, unsigned worker) {
                    EXPECT_EQ(worker, 0u); // one chunk runs inline
                    indices.push_back(i);
                });
    EXPECT_EQ(indices, std::vector<std::uint64_t>{0});
}

TEST(ForEachChunk, ChunkStructureIndependentOfThreadCount)
{
    // The determinism contract: chunk boundaries depend only on
    // (count, grain), never on the pool.
    const std::uint64_t count = 10'000;
    const std::uint64_t grain = 128;
    auto boundaries = [&](ThreadPool *pool) {
        std::mutex mutex;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> spans(
            chunkCount(count, grain));
        forEachChunk(pool, count, grain,
                     [&](std::uint64_t chunk, std::uint64_t begin,
                         std::uint64_t end, unsigned) {
                         std::lock_guard lock(mutex);
                         spans[chunk] = {begin, end};
                     });
        return spans;
    };
    ThreadPool two(2), eight(8);
    auto serial = boundaries(nullptr);
    EXPECT_EQ(serial, boundaries(&two));
    EXPECT_EQ(serial, boundaries(&eight));
    // Chunks tile [0, count) exactly.
    std::uint64_t expected_begin = 0;
    for (auto [begin, end] : serial) {
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LT(begin, end);
        expected_begin = end;
    }
    EXPECT_EQ(expected_begin, count);
}

TEST(ForEachChunk, EveryIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    const std::uint64_t count = 50'000;
    std::vector<std::atomic<int>> visits(count);
    parallelFor(&pool, count, 64,
                [&](std::uint64_t i, unsigned) { ++visits[i]; });
    for (std::uint64_t i = 0; i < count; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ForEachChunk, WorkerIdsStayInRange)
{
    ThreadPool pool(3);
    std::atomic<bool> ok{true};
    parallelFor(&pool, 10'000, 16, [&](std::uint64_t, unsigned worker) {
        if (worker >= pool.threads())
            ok = false;
    });
    EXPECT_TRUE(ok.load());
}

TEST(PerWorker, OneSlotPerWorkerAndOneForNullPool)
{
    ThreadPool pool(4);
    PerWorker<std::uint64_t> per_pool(&pool);
    EXPECT_EQ(per_pool.size(), 4u);
    PerWorker<std::uint64_t> per_null(nullptr);
    EXPECT_EQ(per_null.size(), 1u);

    parallelFor(&pool, 100'000, 64, [&](std::uint64_t i, unsigned w) {
        per_pool[w] += i;
    });
    std::uint64_t total = 0;
    for (unsigned w = 0; w < per_pool.size(); ++w)
        total += per_pool[w];
    EXPECT_EQ(total, 100'000ull * 99'999ull / 2);
}

TEST(ChunkedExclusiveScan, MatchesSerialScanAtAnyThreadCount)
{
    std::vector<std::uint64_t> input(12'345);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = (i * 2654435761u) % 97;

    std::vector<std::uint64_t> expected(input.size());
    std::exclusive_scan(input.begin(), input.end(), expected.begin(),
                        std::uint64_t{0});

    for (unsigned threads : {0u, 2u, 8u}) {
        ThreadPool pool(threads == 0 ? 1 : threads);
        std::vector<std::uint64_t> values = input;
        chunkedExclusiveScan(threads == 0 ? nullptr : &pool, values,
                             100);
        EXPECT_EQ(values, expected) << threads << " threads";
    }
}

TEST(ChunkedExclusiveScan, EmptyAndTinyVectors)
{
    ThreadPool pool(2);
    std::vector<std::uint64_t> empty;
    chunkedExclusiveScan(&pool, empty);
    EXPECT_TRUE(empty.empty());

    std::vector<std::uint64_t> one{41};
    chunkedExclusiveScan(&pool, one);
    EXPECT_EQ(one, std::vector<std::uint64_t>{0});
}

} // namespace
} // namespace tigr::par
