/**
 * @file
 * Tests of the sequential oracles themselves — cross-checks between
 * algorithms, hand-computed examples, and the weighted-Brandes
 * BC-preservation property of UDT (the executable form of the paper's
 * "UDT preserves BC" claim).
 */
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"
#include "transform/udt.hpp"

namespace tigr::ref {
namespace {

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 25;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 300, .edges = 3500, .seed = seed}));
}

TEST(Oracles, DijkstraEqualsBfsOnUnitWeights)
{
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 256, .edges = 2500, .seed = 21}));
    EXPECT_EQ(dijkstra(g, 0), bfsHops(g, 0));
}

TEST(Oracles, DijkstraHandExample)
{
    // 0 -2-> 1 -3-> 3, 0 -7-> 2 -1-> 3: shortest to 3 is 5.
    graph::CooEdges coo(4);
    coo.add(0, 1, 2);
    coo.add(1, 3, 3);
    coo.add(0, 2, 7);
    coo.add(2, 3, 1);
    auto dist = dijkstra(graph::Csr::fromCoo(coo), 0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 2u);
    EXPECT_EQ(dist[2], 7u);
    EXPECT_EQ(dist[3], 5u);
}

TEST(Oracles, WidestPathHandExample)
{
    // Two routes to 2: width min(10, 3) = 3 vs min(5, 5) = 5.
    graph::CooEdges coo(4);
    coo.add(0, 1, 10);
    coo.add(1, 2, 3);
    coo.add(0, 3, 5);
    coo.add(3, 2, 5);
    auto width = widestPath(graph::Csr::fromCoo(coo), 0);
    EXPECT_EQ(width[0], kInfWeight);
    EXPECT_EQ(width[2], 5u);
}

TEST(Oracles, PageRankMassStaysBounded)
{
    graph::Csr g = weightedGraph(22);
    auto ranks = pageRank(g);
    double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
    // Dangling nodes leak mass, so total is at most 1 and at least
    // the teleport share.
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GE(total, 0.15 - 1e-9);
}

TEST(Oracles, BcOnPathIsInterior)
{
    // On a directed path, every interior node lies on all paths
    // between its ancestors and descendants.
    graph::Csr g = graph::Csr::fromCoo(graph::path(5));
    std::vector<NodeId> sources(5);
    std::iota(sources.begin(), sources.end(), NodeId{0});
    auto bc = betweennessCentrality(g, sources);
    // Node 2 carries pairs (0,3),(0,4),(1,3),(1,4),(1? ...): from
    // source 0: deps over 3 descendants beyond 2... check symmetry:
    EXPECT_DOUBLE_EQ(bc[0], 0.0);
    EXPECT_DOUBLE_EQ(bc[4], 0.0);
    EXPECT_GT(bc[2], bc[1] - 1e12);
    // Exact values: bc[i] = (#ancestors)*(#descendants).
    EXPECT_DOUBLE_EQ(bc[1], 1.0 * 3.0);
    EXPECT_DOUBLE_EQ(bc[2], 2.0 * 2.0);
    EXPECT_DOUBLE_EQ(bc[3], 3.0 * 1.0);
}

TEST(Oracles, WeightedBcEqualsHopBcOnUnitWeights)
{
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 200, .edges = 1800, .seed = 23}));
    const NodeId sources[] = {0, 3, 17, 42};
    auto hop = betweennessCentrality(g, sources);
    auto weighted = weightedBetweennessCentrality(g, sources);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_NEAR(weighted[v], hop[v], 1e-9) << "node " << v;
}

TEST(Oracles, WeightedBcHandExample)
{
    // 0 -1-> 1 -1-> 2 and a heavy bypass 0 -5-> 2: all shortest paths
    // to 2 run through 1.
    graph::CooEdges coo(3);
    coo.add(0, 1, 1);
    coo.add(1, 2, 1);
    coo.add(0, 2, 5);
    graph::Csr g = graph::Csr::fromCoo(coo);
    const NodeId sources[] = {0, 1, 2};
    auto bc = weightedBetweennessCentrality(g, sources);
    EXPECT_DOUBLE_EQ(bc[1], 1.0);
    EXPECT_DOUBLE_EQ(bc[0], 0.0);
    EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(Oracles, WeightedBcSplitsOverEqualPaths)
{
    // Diamond with equal path weights: node 1 and 2 each carry half
    // of the 0 -> 3 dependency.
    graph::CooEdges coo(4);
    coo.add(0, 1, 2);
    coo.add(0, 2, 2);
    coo.add(1, 3, 2);
    coo.add(2, 3, 2);
    const NodeId sources[] = {0};
    auto bc = weightedBetweennessCentrality(
        graph::Csr::fromCoo(coo), sources);
    EXPECT_DOUBLE_EQ(bc[1], 0.5);
    EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(Oracles, UdtPreservesWeightedBcOfOriginalNodes)
{
    // The paper's BC claim, executable: zero dumb weights preserve
    // both distances (Corollary 2) and path multiplicities (P2), so
    // every original node keeps its exact weighted centrality.
    graph::Csr g = weightedGraph(24);
    const NodeId sources[] = {0, 7, 99};
    auto original = weightedBetweennessCentrality(g, sources);

    transform::UdtTransform udt;
    transform::SplitOptions options;
    options.degreeBound = 8;
    options.weightPolicy = transform::DumbWeightPolicy::Zero;
    auto result = udt.apply(g, options);
    ASSERT_GT(result.stats.newNodes, 0u);

    // Split nodes are intermediates, never endpoints: restrict the
    // endpoint universe to the original node ids.
    auto transformed = weightedBetweennessCentrality(
        result.graph, sources, g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        ASSERT_NEAR(transformed[v], original[v],
                    1e-6 * (1.0 + std::abs(original[v])))
            << "node " << v;
    }
}

TEST(Oracles, ConnectedComponentsLabelIsComponentMinimum)
{
    graph::CooEdges coo(7);
    coo.add(5, 3);
    coo.add(3, 5);
    coo.add(2, 6);
    graph::Csr g = graph::Csr::fromCoo(coo);
    auto labels = connectedComponents(g);
    EXPECT_EQ(labels[5], 3u);
    EXPECT_EQ(labels[3], 3u);
    EXPECT_EQ(labels[2], 2u);
    EXPECT_EQ(labels[6], 2u);
    EXPECT_EQ(labels[0], 0u);
}

} // namespace
} // namespace tigr::ref
