/**
 * @file
 * Tests of the UDT transformation (Algorithm 1) and its paper-stated
 * properties: uniform member degrees, at most one residual node,
 * logarithmic tree height, unique ownership of original edges.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "transform/udt.hpp"

namespace tigr::transform {
namespace {

/** Outdegree of each plan member: owned edges + internal out-edges. */
std::vector<EdgeIndex>
memberDegrees(const SplitPlan &plan)
{
    std::vector<EdgeIndex> degree(plan.memberCount, 0);
    for (std::uint32_t owner : plan.ownerOfEdge)
        ++degree[owner];
    for (auto [from, to] : plan.internalEdges) {
        (void)to;
        ++degree[from];
    }
    return degree;
}

TEST(Udt, Figure6Example)
{
    // Degree-5 node with K=3: one new node, no residual members
    // (the star transformation leaves two — Figure 6 of the paper).
    UdtTransform udt;
    SplitPlan plan = udt.plan(5, 3);
    EXPECT_EQ(plan.memberCount, 2u);
    auto degree = memberDegrees(plan);
    EXPECT_EQ(degree[0], 3u); // root: 2 edges + link to new node
    EXPECT_EQ(degree[1], 3u); // new node: 3 edges
}

TEST(Udt, EntryStaysAtRoot)
{
    EXPECT_TRUE(UdtTransform{}.entryAtRoot());
}

class UdtPlanSweep
    : public ::testing::TestWithParam<std::tuple<EdgeIndex, NodeId>>
{
  protected:
    void
    SetUp() override
    {
        if (degree() <= bound())
            GTEST_SKIP() << "node not high-degree; nothing to split";
    }

    EdgeIndex degree() const { return std::get<0>(GetParam()); }
    NodeId bound() const { return std::get<1>(GetParam()); }
};

TEST_P(UdtPlanSweep, EveryEdgeOwnedExactlyOnce)
{
    SplitPlan plan = UdtTransform{}.plan(degree(), bound());
    ASSERT_EQ(plan.ownerOfEdge.size(), degree());
    for (std::uint32_t owner : plan.ownerOfEdge)
        EXPECT_LT(owner, plan.memberCount);
}

TEST_P(UdtPlanSweep, NonRootMembersHaveDegreeExactlyK)
{
    SplitPlan plan = UdtTransform{}.plan(degree(), bound());
    auto member_degree = memberDegrees(plan);
    for (std::uint32_t m = 1; m < plan.memberCount; ++m)
        EXPECT_EQ(member_degree[m], bound()) << "member " << m;
    EXPECT_GE(member_degree[0], 1u);
    EXPECT_LE(member_degree[0], bound());
}

TEST_P(UdtPlanSweep, NewNodeCountMatchesClosedForm)
{
    SplitPlan plan = UdtTransform{}.plan(degree(), bound());
    std::uint64_t expected =
        (degree() - bound() + bound() - 2) / (bound() - 1);
    EXPECT_EQ(plan.memberCount - 1, expected);
    // Each new member is adopted exactly once -> one internal edge each.
    EXPECT_EQ(plan.internalEdges.size(), expected);
}

TEST_P(UdtPlanSweep, EveryMemberAdoptedExactlyOnce)
{
    SplitPlan plan = UdtTransform{}.plan(degree(), bound());
    std::vector<unsigned> adopted(plan.memberCount, 0);
    for (auto [from, to] : plan.internalEdges) {
        (void)from;
        ++adopted[to];
    }
    EXPECT_EQ(adopted[0], 0u); // nothing points at the root
    for (std::uint32_t m = 1; m < plan.memberCount; ++m)
        EXPECT_EQ(adopted[m], 1u) << "member " << m;
}

TEST_P(UdtPlanSweep, TreeHeightLogarithmic)
{
    unsigned height = UdtTransform::treeHeight(degree(), bound());
    // P3: height grows as O(log_K d); pin it to ceil(log_K d) + 1.
    double log_bound = std::log(static_cast<double>(degree())) /
                       std::log(static_cast<double>(bound()));
    EXPECT_LE(height, static_cast<unsigned>(std::ceil(log_bound)) + 1)
        << "d=" << degree() << " K=" << bound();
    EXPECT_GE(height, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    DegreeByBound, UdtPlanSweep,
    ::testing::Combine(
        ::testing::Values<EdgeIndex>(5, 7, 16, 33, 100, 1000, 4097,
                                     100000),
        ::testing::Values<NodeId>(2, 3, 4, 8, 10, 32)),
    [](const auto &info) {
        return "d" + std::to_string(std::get<0>(info.param)) + "_K" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Udt, HeightOneWhenSingleSplitSuffices)
{
    // d = K+1 .. needs exactly one new node; height 1.
    EXPECT_EQ(UdtTransform::treeHeight(5, 4), 1u);
    EXPECT_EQ(UdtTransform::treeHeight(8, 4), 1u);
}

TEST(Udt, HeightZeroWhenNotSplit)
{
    EXPECT_EQ(UdtTransform::treeHeight(4, 4), 0u);
    EXPECT_EQ(UdtTransform::treeHeight(1, 4), 0u);
}

TEST(Udt, HeightGrowsWithDegree)
{
    unsigned prev = 0;
    for (EdgeIndex d : {10ULL, 100ULL, 1000ULL, 10000ULL, 100000ULL}) {
        unsigned h = UdtTransform::treeHeight(d, 8);
        EXPECT_GE(h, prev);
        prev = h;
    }
    // log_8(100000) ~ 5.5; expect height in a tight band around it.
    EXPECT_GE(prev, 5u);
    EXPECT_LE(prev, 7u);
}

} // namespace
} // namespace tigr::transform
