/**
 * @file
 * Tests of the clique/circular/star topologies against the Table 1
 * closed forms, and of the analytic-vs-measured property calculators.
 */
#include <gtest/gtest.h>

#include "transform/basic_topologies.hpp"
#include "transform/properties.hpp"

namespace tigr::transform {
namespace {

class TopologySweep
    : public ::testing::TestWithParam<
          std::tuple<Topology, EdgeIndex, NodeId>>
{
  protected:
    Topology topology() const { return std::get<0>(GetParam()); }
    EdgeIndex degree() const { return std::get<1>(GetParam()); }
    NodeId bound() const { return std::get<2>(GetParam()); }
};

TEST_P(TopologySweep, MeasuredMatchesAnalytic)
{
    if (degree() <= bound())
        GTEST_SKIP() << "node not high-degree; nothing to split";
    auto transform = makeTransform(topology());
    TopologyProperties analytic =
        analyticProperties(topology(), degree(), bound());
    TopologyProperties measured =
        measuredProperties(*transform, degree(), bound());
    EXPECT_EQ(measured.newNodes, analytic.newNodes);
    EXPECT_EQ(measured.newEdges, analytic.newEdges);
    EXPECT_EQ(measured.newDegree, analytic.newDegree);
    EXPECT_EQ(measured.maxHops, analytic.maxHops);
}

TEST_P(TopologySweep, EveryEdgeOwned)
{
    if (degree() <= bound())
        GTEST_SKIP() << "node not high-degree; nothing to split";
    auto transform = makeTransform(topology());
    SplitPlan plan = transform->plan(degree(), bound());
    ASSERT_EQ(plan.ownerOfEdge.size(), degree());
    for (std::uint32_t owner : plan.ownerOfEdge)
        EXPECT_LT(owner, plan.memberCount);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologySweep,
    ::testing::Combine(
        ::testing::Values(Topology::Clique, Topology::Circular,
                          Topology::Star, Topology::Udt),
        ::testing::Values<EdgeIndex>(5, 12, 100, 1000, 12345),
        ::testing::Values<NodeId>(3, 4, 10, 32)),
    [](const auto &info) {
        return std::string(topologyName(std::get<0>(info.param))) + "_d" +
               std::to_string(std::get<1>(info.param)) + "_K" +
               std::to_string(std::get<2>(info.param));
    });

TEST(Table1, CliqueQuadraticEdges)
{
    // d=1000, K=10 -> p=100 members; clique wires 100*99 new edges.
    auto props = analyticProperties(Topology::Clique, 1000, 10);
    EXPECT_EQ(props.newNodes, 99u);
    EXPECT_EQ(props.newEdges, 9900u);
    EXPECT_EQ(props.newDegree, 109u);
    EXPECT_EQ(props.maxHops, 1u);
}

TEST(Table1, CircularBestDegreeWorstHops)
{
    auto props = analyticProperties(Topology::Circular, 1000, 10);
    EXPECT_EQ(props.newDegree, 11u); // K + 1: best irregularity
    EXPECT_EQ(props.maxHops, 99u);   // p - 1: worst propagation
}

TEST(Table1, StarHubDegreeIssue)
{
    // The hub's degree ceil(d/K) = 100 still dwarfs K = 10: the "hub
    // node issue" that motivates UDT.
    auto props = analyticProperties(Topology::Star, 1000, 10);
    EXPECT_EQ(props.newDegree, 100u);
    EXPECT_EQ(props.maxHops, 1u);
}

TEST(Table1, UdtBalancesAllThreeAxes)
{
    auto udt = analyticProperties(Topology::Udt, 1000, 10);
    auto circ = analyticProperties(Topology::Circular, 1000, 10);
    auto cliq = analyticProperties(Topology::Clique, 1000, 10);
    // Degree as good as K (better than clique and star)...
    EXPECT_EQ(udt.newDegree, 10u);
    // ...space linear, far below clique...
    EXPECT_LT(udt.newEdges, cliq.newEdges / 10);
    // ...and hops logarithmic, far below circular.
    EXPECT_LT(udt.maxHops, circ.maxHops / 10);
}

TEST(Table1, StarResidualsVsUdt)
{
    // Figure 6: star on d=5, K=3 leaves satellite(s) below K while UDT
    // leaves none.
    StarTransform star;
    SplitPlan plan = star.plan(5, 3);
    std::vector<EdgeIndex> degree(plan.memberCount, 0);
    for (std::uint32_t owner : plan.ownerOfEdge)
        ++degree[owner];
    for (auto [from, to] : plan.internalEdges) {
        (void)to;
        ++degree[from];
    }
    unsigned residual = 0;
    for (std::uint32_t m = 1; m < plan.memberCount; ++m)
        if (degree[m] < 3)
            ++residual;
    EXPECT_GE(residual, 1u);
}

TEST(Properties, MakeTransformRoundTrip)
{
    for (Topology t : {Topology::Clique, Topology::Circular,
                       Topology::Star, Topology::Udt}) {
        auto transform = makeTransform(t);
        ASSERT_NE(transform, nullptr);
        EXPECT_EQ(transform->name(), topologyName(t));
    }
}

} // namespace
} // namespace tigr::transform
