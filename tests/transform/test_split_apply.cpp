/**
 * @file
 * Whole-graph physical transformation tests: Definition 2 conditions,
 * Theorem 1 path preservation, and Corollaries 1-4 checked against the
 * sequential oracles on randomized power-law graphs.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"
#include "transform/basic_topologies.hpp"
#include "transform/properties.hpp"
#include "transform/udt.hpp"

namespace tigr::transform {
namespace {

graph::Csr
testGraph(std::uint64_t seed, bool weighted = true)
{
    graph::BuildOptions options;
    options.randomizeWeights = weighted;
    options.maxWeight = 32;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 512, .edges = 6000, .seed = seed}));
}

class ApplySweep : public ::testing::TestWithParam<Topology>
{
  protected:
    std::unique_ptr<SplitTransform> transform() const
    {
        return makeTransform(GetParam());
    }
};

TEST_P(ApplySweep, NoHighDegreeNodeSurvives)
{
    graph::Csr g = testGraph(1);
    SplitOptions options{.degreeBound = 8};
    auto result = transform()->apply(g, options);
    TopologyProperties worst = analyticProperties(
        GetParam(), g.maxOutDegree(), options.degreeBound);
    // Every node's degree is bounded by the family degree formula.
    EXPECT_LE(result.graph.maxOutDegree(), worst.newDegree);
    EXPECT_LT(result.graph.maxOutDegree(), g.maxOutDegree());
}

TEST_P(ApplySweep, RootOfIdentityForOriginalNodes)
{
    graph::Csr g = testGraph(2);
    auto result = transform()->apply(g, {.degreeBound = 8});
    ASSERT_EQ(result.originalNodes, g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(result.rootOf[v], v);
    for (NodeId v = g.numNodes(); v < result.graph.numNodes(); ++v)
        EXPECT_LT(result.rootOf[v], g.numNodes());
}

TEST_P(ApplySweep, FamiliesAreDisjointAndCoverSplitNodes)
{
    graph::Csr g = testGraph(3);
    auto result = transform()->apply(g, {.degreeBound = 8});
    std::set<NodeId> seen;
    for (const FamilyInfo &family : result.families) {
        EXPECT_EQ(family.members[0], family.root);
        for (NodeId member : family.members)
            EXPECT_TRUE(seen.insert(member).second)
                << "member in two families";
    }
    // Every split node (id >= n) belongs to exactly one family.
    std::uint64_t split_nodes = result.graph.numNodes() - g.numNodes();
    std::uint64_t family_members = 0;
    for (const FamilyInfo &family : result.families)
        family_members += family.members.size() - 1;
    EXPECT_EQ(family_members, split_nodes);
    EXPECT_EQ(split_nodes, result.stats.newNodes);
}

TEST_P(ApplySweep, StatsConsistent)
{
    graph::Csr g = testGraph(4);
    auto result = transform()->apply(g, {.degreeBound = 8});
    EXPECT_EQ(result.stats.maxDegreeBefore, g.maxOutDegree());
    EXPECT_EQ(result.stats.maxDegreeAfter, result.graph.maxOutDegree());
    EXPECT_EQ(result.graph.numEdges(),
              g.numEdges() + result.stats.newEdges);
    std::uint64_t high_degree = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        if (g.degree(v) > 8)
            ++high_degree;
    EXPECT_EQ(result.stats.highDegreeNodes, high_degree);
}

TEST_P(ApplySweep, Deterministic)
{
    graph::Csr g = testGraph(5);
    SplitOptions options{.degreeBound = 6};
    auto a = transform()->apply(g, options);
    auto b = transform()->apply(g, options);
    EXPECT_EQ(a.graph, b.graph);
    EXPECT_EQ(a.rootOf, b.rootOf);
}

TEST_P(ApplySweep, ParallelPlanningBitIdenticalToSerial)
{
    graph::Csr g = testGraph(14);
    SplitOptions serial{.degreeBound = 6};
    SplitOptions parallel = serial;
    parallel.threads = 4;
    auto a = transform()->apply(g, serial);
    auto b = transform()->apply(g, parallel);
    EXPECT_EQ(a.graph, b.graph);
    EXPECT_EQ(a.rootOf, b.rootOf);
    EXPECT_EQ(a.stats.newNodes, b.stats.newNodes);
}

TEST_P(ApplySweep, Corollary1ConnectivityPreserved)
{
    graph::Csr g = testGraph(6);
    auto result = transform()->apply(g, {.degreeBound = 8});
    auto original = ref::connectedComponents(g);
    auto transformed = ref::connectedComponents(result.graph);
    // Split-node ids are all >= n, so component min-labels restricted
    // to original nodes must be identical.
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(transformed[v], original[v]) << "node " << v;
}

TEST_P(ApplySweep, Corollary2DistancesPreservedWithZeroWeights)
{
    graph::Csr g = testGraph(7);
    SplitOptions options{.degreeBound = 8,
                         .weightPolicy = DumbWeightPolicy::Zero};
    auto result = transform()->apply(g, options);
    auto original = ref::dijkstra(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(transformed[v], original[v]) << "node " << v;
}

TEST_P(ApplySweep, BfsEquivalenceViaUnitWeightsAndZeroDumbWeights)
{
    // BFS is SSSP on unit weights (the paper's reduction); dumb zero
    // weights keep hop counts over *original* edges intact.
    graph::Csr g = testGraph(8, /*weighted=*/false);
    SplitOptions options{.degreeBound = 8,
                         .weightPolicy = DumbWeightPolicy::Zero};
    auto result = transform()->apply(g, options);
    auto original = ref::bfsHops(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(transformed[v], original[v]) << "node " << v;
}

TEST_P(ApplySweep, Corollary3WidestPathPreservedWithInfinityWeights)
{
    graph::Csr g = testGraph(9);
    SplitOptions options{.degreeBound = 8,
                         .weightPolicy = DumbWeightPolicy::Infinity};
    auto result = transform()->apply(g, options);
    auto original = ref::widestPath(g, 0);
    auto transformed = ref::widestPath(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(transformed[v], original[v]) << "node " << v;
}

TEST_P(ApplySweep, WrongDumbWeightBreaksDistances)
{
    // Negative control: weight One on internal edges must corrupt some
    // shortest path through a split family — this is exactly why the
    // paper needs "dumb" weights.
    graph::Csr g = testGraph(10);
    SplitOptions options{.degreeBound = 4,
                         .weightPolicy = DumbWeightPolicy::One};
    auto result = transform()->apply(g, options);
    auto original = ref::dijkstra(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    bool any_difference = false;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        any_difference |= (transformed[v] != original[v]);
    EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, ApplySweep,
    ::testing::Values(Topology::Clique, Topology::Circular,
                      Topology::Star, Topology::Udt),
    [](const auto &info) {
        return std::string(topologyName(info.param));
    });

TEST(UdtApply, Corollary4IndegreePreservedAtRoots)
{
    // Push-based scheme: UDT keeps all incoming edges on the root, so
    // every original node's indegree is unchanged.
    graph::Csr g = testGraph(11);
    UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 8});
    graph::Csr rg = g.reversed();
    graph::Csr rt = result.graph.reversed();
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(rt.degree(v), rg.degree(v)) << "node " << v;
}

TEST(UdtApply, AllDegreesBoundedByK)
{
    graph::Csr g = testGraph(12);
    UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 8});
    EXPECT_LE(result.graph.maxOutDegree(), 8u);
}

TEST(UdtApply, AlreadyRegularGraphUntouched)
{
    graph::Csr g = graph::Csr::fromCoo(graph::ring(128));
    UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 8});
    EXPECT_EQ(result.graph, g);
    EXPECT_EQ(result.stats.newNodes, 0u);
    EXPECT_TRUE(result.families.empty());
}

TEST(UdtApply, StarGraphBecomesUniformTree)
{
    // The most extreme input: one hub of degree 999.
    graph::Csr g = graph::Csr::fromCoo(graph::star(1000));
    UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 10});
    EXPECT_LE(result.graph.maxOutDegree(), 10u);
    // Hub reaches every original leaf at distance 0 through the
    // zero-weight tree (all original edges had weight 1).
    auto dist = ref::dijkstra(result.graph, 0);
    for (NodeId v = 1; v < 1000; ++v)
        EXPECT_EQ(dist[v], 1u);
}

TEST(UdtApply, SpaceGrowsOnlyLinearly)
{
    graph::Csr g = testGraph(13);
    UdtTransform udt;
    auto result = udt.apply(g, {.degreeBound = 8});
    // Section 3.2: node/edge growth is O(d/K) per split node; overall
    // the edge count can grow by at most a factor of ~1/(K-1).
    EXPECT_LE(result.graph.numEdges(),
              g.numEdges() + g.numEdges() / 7 + 1);
}

} // namespace
} // namespace tigr::transform
