/**
 * @file
 * Tests of the recursive star transformation — Section 3.2's design
 * foil: degrees are bounded like UDT, but residual members accumulate
 * at every grouping level, which is exactly why the paper prefers UDT.
 */
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"
#include "transform/basic_topologies.hpp"
#include "transform/udt.hpp"

namespace tigr::transform {
namespace {

std::vector<EdgeIndex>
memberDegrees(const SplitPlan &plan)
{
    std::vector<EdgeIndex> degree(plan.memberCount, 0);
    for (std::uint32_t owner : plan.ownerOfEdge)
        ++degree[owner];
    for (auto [from, to] : plan.internalEdges) {
        (void)to;
        ++degree[from];
    }
    return degree;
}

unsigned
residualMembers(const SplitPlan &plan, NodeId k)
{
    auto degree = memberDegrees(plan);
    unsigned residual = 0;
    for (std::uint32_t m = 1; m < plan.memberCount; ++m)
        if (degree[m] < k)
            ++residual;
    return residual;
}

class RecursiveStarSweep
    : public ::testing::TestWithParam<std::tuple<EdgeIndex, NodeId>>
{
  protected:
    void
    SetUp() override
    {
        if (degree() <= bound())
            GTEST_SKIP() << "node not high-degree";
    }
    EdgeIndex degree() const { return std::get<0>(GetParam()); }
    NodeId bound() const { return std::get<1>(GetParam()); }
};

TEST_P(RecursiveStarSweep, AllDegreesBounded)
{
    SplitPlan plan = RecursiveStarTransform{}.plan(degree(), bound());
    auto member_degree = memberDegrees(plan);
    for (std::uint32_t m = 0; m < plan.memberCount; ++m)
        EXPECT_LE(member_degree[m], bound()) << "member " << m;
}

TEST_P(RecursiveStarSweep, EveryEdgeOwnedExactlyOnce)
{
    SplitPlan plan = RecursiveStarTransform{}.plan(degree(), bound());
    ASSERT_EQ(plan.ownerOfEdge.size(), degree());
    for (std::uint32_t owner : plan.ownerOfEdge)
        EXPECT_LT(owner, plan.memberCount);
}

TEST_P(RecursiveStarSweep, EveryMemberAdoptedExactlyOnce)
{
    SplitPlan plan = RecursiveStarTransform{}.plan(degree(), bound());
    std::vector<unsigned> adopted(plan.memberCount, 0);
    for (auto [from, to] : plan.internalEdges) {
        (void)from;
        ++adopted[to];
    }
    EXPECT_EQ(adopted[0], 0u);
    for (std::uint32_t m = 1; m < plan.memberCount; ++m)
        EXPECT_EQ(adopted[m], 1u) << "member " << m;
}

TEST_P(RecursiveStarSweep, NeverFewerResidualsThanUdt)
{
    SplitPlan star = RecursiveStarTransform{}.plan(degree(), bound());
    SplitPlan udt = UdtTransform{}.plan(degree(), bound());
    EXPECT_GE(residualMembers(star, bound()),
              residualMembers(udt, bound()));
    // UDT's defining guarantee, for contrast: zero residual members.
    EXPECT_EQ(residualMembers(udt, bound()), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DegreeByBound, RecursiveStarSweep,
    ::testing::Combine(
        ::testing::Values<EdgeIndex>(5, 14, 100, 1000, 10007),
        ::testing::Values<NodeId>(3, 4, 10, 32)),
    [](const auto &info) {
        return "d" + std::to_string(std::get<0>(info.param)) + "_K" +
               std::to_string(std::get<1>(info.param));
    });

TEST(RecursiveStar, Figure6CaseLeavesResiduals)
{
    // d = 5, K = 3: satellites own 3 and 2 edges — one residual, where
    // UDT has none (Figure 6 of the paper).
    SplitPlan plan = RecursiveStarTransform{}.plan(5, 3);
    EXPECT_GE(residualMembers(plan, 3), 1u);
}

TEST(RecursiveStar, WholeGraphCorollariesStillHold)
{
    // It is still a valid split transformation: connectivity and
    // distances survive (Theorem 1 applies — unique root-to-edge
    // paths through the hub hierarchy).
    graph::BuildOptions build;
    build.randomizeWeights = true;
    build.maxWeight = 20;
    build.weightSeed = 5;
    graph::Csr g = graph::GraphBuilder(build).build(
        graph::rmat({.nodes = 400, .edges = 5000, .seed = 5}));

    RecursiveStarTransform rstar;
    SplitOptions options{.degreeBound = 6,
                         .weightPolicy = DumbWeightPolicy::Zero};
    auto result = rstar.apply(g, options);
    EXPECT_LE(result.graph.maxOutDegree(), 6u);

    auto original = ref::dijkstra(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(transformed[v], original[v]) << "node " << v;

    auto cc_orig = ref::connectedComponents(g);
    auto cc_new = ref::connectedComponents(result.graph);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(cc_new[v], cc_orig[v]) << "node " << v;
}

TEST(RecursiveStar, MoreNodesThanUdtOnLargeFanouts)
{
    // The residual waste compounds: across a whole power-law graph the
    // recursive star never creates fewer split nodes than UDT.
    graph::Csr g = graph::GraphBuilder().build(
        graph::rmat({.nodes = 1024, .edges = 20000, .seed = 9}));
    auto rstar = RecursiveStarTransform{}.apply(g, {.degreeBound = 4});
    auto udt = UdtTransform{}.apply(g, {.degreeBound = 4});
    EXPECT_GE(rstar.stats.newNodes, udt.stats.newNodes);
}

} // namespace
} // namespace tigr::transform
