/**
 * @file
 * Randomized property sweeps ("fuzz" tests) over the transformation
 * stack: many (generator, seed, K, topology) combinations, each
 * checked against the invariants the paper's theorems promise. These
 * are the broad-coverage complement to the targeted unit tests.
 */
#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "engine/graph_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"
#include "ref/oracles.hpp"
#include "transform/properties.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::transform {
namespace {

enum class GenKind
{
    Rmat,
    Ba,
    Er,
    Ws,
    Star,
};

struct FuzzCase
{
    GenKind generator;
    std::uint64_t seed;
    NodeId degreeBound;
    Topology topology;
};

std::string
caseName(const FuzzCase &fuzz)
{
    const char *gen = nullptr;
    switch (fuzz.generator) {
      case GenKind::Rmat: gen = "rmat"; break;
      case GenKind::Ba: gen = "ba"; break;
      case GenKind::Er: gen = "er"; break;
      case GenKind::Ws: gen = "ws"; break;
      case GenKind::Star: gen = "star"; break;
    }
    return std::string(gen) + "_s" + std::to_string(fuzz.seed) + "_K" +
           std::to_string(fuzz.degreeBound) + "_" +
           std::string(topologyName(fuzz.topology));
}

graph::Csr
makeGraph(GenKind kind, std::uint64_t seed)
{
    graph::CooEdges coo;
    switch (kind) {
      case GenKind::Rmat:
        coo = graph::rmat({.nodes = 200, .edges = 2400, .seed = seed});
        break;
      case GenKind::Ba:
        coo = graph::barabasiAlbert(200, 5, seed);
        break;
      case GenKind::Er:
        coo = graph::erdosRenyi(200, 2400, seed);
        break;
      case GenKind::Ws:
        coo = graph::wattsStrogatz(200, 4, 0.3, seed);
        break;
      case GenKind::Star:
        coo = graph::star(150);
        break;
    }
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 16;
    options.weightSeed = seed * 3 + 1;
    return graph::GraphBuilder(options).build(std::move(coo));
}

class TransformFuzz : public ::testing::TestWithParam<FuzzCase>
{
  protected:
    graph::Csr input() const
    {
        return makeGraph(GetParam().generator, GetParam().seed);
    }
};

TEST_P(TransformFuzz, EdgeConservation)
{
    graph::Csr g = input();
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound});
    // Original edges survive exactly; only internal edges are added.
    EXPECT_EQ(result.graph.numEdges(),
              g.numEdges() + result.stats.newEdges);
    EXPECT_EQ(result.graph.numNodes(),
              g.numNodes() + result.stats.newNodes);
}

TEST_P(TransformFuzz, DegreeBoundRespected)
{
    graph::Csr g = input();
    if (g.maxOutDegree() <= GetParam().degreeBound)
        GTEST_SKIP() << "nothing to split";
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound});
    TopologyProperties worst = analyticProperties(
        GetParam().topology, g.maxOutDegree(),
        GetParam().degreeBound);
    EXPECT_LE(result.graph.maxOutDegree(),
              std::max<EdgeIndex>(worst.newDegree,
                                  GetParam().degreeBound));
}

TEST_P(TransformFuzz, DistancePreservation)
{
    graph::Csr g = input();
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound,
            .weightPolicy = DumbWeightPolicy::Zero});
    auto original = ref::dijkstra(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(transformed[v], original[v])
            << caseName(GetParam()) << " node " << v;
}

TEST_P(TransformFuzz, VirtualArrayPartitionsEdges)
{
    graph::Csr g = input();
    VirtualGraph vg(g, GetParam().degreeBound);
    std::vector<unsigned> owned(g.numEdges(), 0);
    for (const VirtualNode &node : vg.virtualNodes())
        for (std::uint32_t j = 0; j < node.count; ++j)
            ++owned[node.start + node.stride * j];
    for (EdgeIndex e = 0; e < g.numEdges(); ++e)
        ASSERT_EQ(owned[e], 1u) << caseName(GetParam());
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    const GenKind generators[] = {GenKind::Rmat, GenKind::Ba,
                                  GenKind::Er, GenKind::Ws,
                                  GenKind::Star};
    const Topology topologies[] = {Topology::Clique, Topology::Circular,
                                   Topology::Star, Topology::Udt};
    std::uint64_t seed = 100;
    for (GenKind gen : generators)
        for (Topology topology : topologies)
            cases.push_back(
                {gen, ++seed,
                 static_cast<NodeId>(3 + (seed * 7) % 14), topology});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformFuzz,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return caseName(info.param);
                         });

// ------------------------------------------------- differential fuzz
//
// Seeded end-to-end differential fuzzer: a random graph per seed, the
// multi-threaded engine under every strategy vs. the sequential
// oracles (and the parallel oracle paths vs. their serial ones).
// Every assertion carries the seed, so a failure reproduces with a
// single-case --gtest_filter. The default seed range is a ~2 s smoke
// shard; widen it with TIGR_FUZZ_SEEDS=<count> for a deep soak.

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static GenKind
    generatorOf(std::uint64_t seed)
    {
        constexpr GenKind kinds[] = {GenKind::Rmat, GenKind::Ba,
                                     GenKind::Er, GenKind::Ws};
        return kinds[seed % 4];
    }

    graph::Csr
    directedGraph() const
    {
        return makeGraph(generatorOf(GetParam()), GetParam());
    }

    graph::Csr
    symmetricGraph() const
    {
        graph::CooEdges coo =
            graph::rmat({.nodes = 180,
                         .edges = 1700,
                         .seed = GetParam() * 5 + 3});
        coo.symmetrize();
        return graph::GraphBuilder(graph::BuildOptions{})
            .build(std::move(coo));
    }

    engine::EngineOptions
    optionsFor(engine::Strategy strategy) const
    {
        engine::EngineOptions options;
        options.strategy = strategy;
        options.degreeBound =
            static_cast<NodeId>(3 + GetParam() % 12);
        options.udtBound = 16;
        options.mwVirtualWarp = 2 + GetParam() % 6;
        // Multi-threaded on purpose: the whole point is that the
        // parallel engine still matches the sequential oracles.
        options.threads = 2 + GetParam() % 7;
        return options;
    }

    std::string
    where(engine::Strategy strategy) const
    {
        return "seed " + std::to_string(GetParam()) + " strategy " +
               std::string(engine::strategyName(strategy));
    }
};

TEST_P(DifferentialFuzz, TraversalsMatchOracles)
{
    graph::Csr g = directedGraph();
    const NodeId source = GetParam() % g.numNodes();
    const auto hops = ref::bfsHops(g, source);
    const auto dist = ref::dijkstra(g, source);
    const auto width = ref::widestPath(g, source);
    for (engine::Strategy strategy : engine::kAllStrategies) {
        engine::GraphEngine engine(g, optionsFor(strategy));
        EXPECT_EQ(engine.bfs(source).values, hops) << where(strategy);
        EXPECT_EQ(engine.sssp(source).values, dist)
            << where(strategy);
        EXPECT_EQ(engine.sswp(source).values, width)
            << where(strategy);
    }
}

TEST_P(DifferentialFuzz, CcMatchesOracle)
{
    graph::Csr g = symmetricGraph();
    const auto labels = ref::connectedComponents(g);
    for (engine::Strategy strategy : engine::kAllStrategies) {
        engine::GraphEngine engine(g, optionsFor(strategy));
        EXPECT_EQ(engine.cc().values, labels) << where(strategy);
    }
}

TEST_P(DifferentialFuzz, PagerankMatchesOracle)
{
    graph::Csr g = directedGraph();
    const auto ranks = ref::pageRank(g, {.iterations = 12});
    for (engine::Strategy strategy : engine::kAllStrategies) {
        if (strategy == engine::Strategy::TigrUdt)
            continue; // PR is unsupported under the UDT transform
        engine::GraphEngine engine(g, optionsFor(strategy));
        const auto got = engine.pagerank({.iterations = 12});
        ASSERT_EQ(got.values.size(), ranks.size());
        for (NodeId v = 0; v < g.numNodes(); ++v)
            ASSERT_NEAR(got.values[v], ranks[v], 1e-9)
                << where(strategy) << " node " << v;
    }
}

TEST_P(DifferentialFuzz, ParallelOraclesMatchSerialOracles)
{
    graph::Csr g = directedGraph();
    const NodeId source = (GetParam() * 3) % g.numNodes();
    par::ThreadPool pool(2 + GetParam() % 7);
    EXPECT_EQ(ref::bfsHops(g, source, &pool),
              ref::bfsHops(g, source))
        << "seed " << GetParam();
    EXPECT_EQ(ref::shortestPaths(g, source, &pool),
              ref::dijkstra(g, source))
        << "seed " << GetParam();
    // The parallel PageRank path replays the serial addition order —
    // bit-exact, no tolerance needed.
    EXPECT_EQ(ref::pageRank(g, {.iterations = 12}, &pool),
              ref::pageRank(g, {.iterations = 12}))
        << "seed " << GetParam();
}

std::vector<std::uint64_t>
fuzzSeeds()
{
    std::uint64_t count = 3; // ~2 s smoke shard for ctest
    if (const char *env = std::getenv("TIGR_FUZZ_SEEDS")) {
        long parsed = std::atol(env);
        if (parsed > 0)
            count = static_cast<std::uint64_t>(parsed);
    }
    std::vector<std::uint64_t> seeds(count);
    for (std::uint64_t i = 0; i < count; ++i)
        seeds[i] = 1000 + i;
    return seeds;
}

INSTANTIATE_TEST_SUITE_P(SmokeShard, DifferentialFuzz,
                         ::testing::ValuesIn(fuzzSeeds()),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace tigr::transform
