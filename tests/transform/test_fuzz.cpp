/**
 * @file
 * Randomized property sweeps ("fuzz" tests) over the transformation
 * stack: many (generator, seed, K, topology) combinations, each
 * checked against the invariants the paper's theorems promise. These
 * are the broad-coverage complement to the targeted unit tests.
 */
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "ref/oracles.hpp"
#include "transform/properties.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::transform {
namespace {

enum class GenKind
{
    Rmat,
    Ba,
    Er,
    Ws,
    Star,
};

struct FuzzCase
{
    GenKind generator;
    std::uint64_t seed;
    NodeId degreeBound;
    Topology topology;
};

std::string
caseName(const FuzzCase &fuzz)
{
    const char *gen = nullptr;
    switch (fuzz.generator) {
      case GenKind::Rmat: gen = "rmat"; break;
      case GenKind::Ba: gen = "ba"; break;
      case GenKind::Er: gen = "er"; break;
      case GenKind::Ws: gen = "ws"; break;
      case GenKind::Star: gen = "star"; break;
    }
    return std::string(gen) + "_s" + std::to_string(fuzz.seed) + "_K" +
           std::to_string(fuzz.degreeBound) + "_" +
           std::string(topologyName(fuzz.topology));
}

graph::Csr
makeGraph(GenKind kind, std::uint64_t seed)
{
    graph::CooEdges coo;
    switch (kind) {
      case GenKind::Rmat:
        coo = graph::rmat({.nodes = 200, .edges = 2400, .seed = seed});
        break;
      case GenKind::Ba:
        coo = graph::barabasiAlbert(200, 5, seed);
        break;
      case GenKind::Er:
        coo = graph::erdosRenyi(200, 2400, seed);
        break;
      case GenKind::Ws:
        coo = graph::wattsStrogatz(200, 4, 0.3, seed);
        break;
      case GenKind::Star:
        coo = graph::star(150);
        break;
    }
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 16;
    options.weightSeed = seed * 3 + 1;
    return graph::GraphBuilder(options).build(std::move(coo));
}

class TransformFuzz : public ::testing::TestWithParam<FuzzCase>
{
  protected:
    graph::Csr input() const
    {
        return makeGraph(GetParam().generator, GetParam().seed);
    }
};

TEST_P(TransformFuzz, EdgeConservation)
{
    graph::Csr g = input();
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound});
    // Original edges survive exactly; only internal edges are added.
    EXPECT_EQ(result.graph.numEdges(),
              g.numEdges() + result.stats.newEdges);
    EXPECT_EQ(result.graph.numNodes(),
              g.numNodes() + result.stats.newNodes);
}

TEST_P(TransformFuzz, DegreeBoundRespected)
{
    graph::Csr g = input();
    if (g.maxOutDegree() <= GetParam().degreeBound)
        GTEST_SKIP() << "nothing to split";
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound});
    TopologyProperties worst = analyticProperties(
        GetParam().topology, g.maxOutDegree(),
        GetParam().degreeBound);
    EXPECT_LE(result.graph.maxOutDegree(),
              std::max<EdgeIndex>(worst.newDegree,
                                  GetParam().degreeBound));
}

TEST_P(TransformFuzz, DistancePreservation)
{
    graph::Csr g = input();
    auto transform = makeTransform(GetParam().topology);
    auto result = transform->apply(
        g, {.degreeBound = GetParam().degreeBound,
            .weightPolicy = DumbWeightPolicy::Zero});
    auto original = ref::dijkstra(g, 0);
    auto transformed = ref::dijkstra(result.graph, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(transformed[v], original[v])
            << caseName(GetParam()) << " node " << v;
}

TEST_P(TransformFuzz, VirtualArrayPartitionsEdges)
{
    graph::Csr g = input();
    VirtualGraph vg(g, GetParam().degreeBound);
    std::vector<unsigned> owned(g.numEdges(), 0);
    for (const VirtualNode &node : vg.virtualNodes())
        for (std::uint32_t j = 0; j < node.count; ++j)
            ++owned[node.start + node.stride * j];
    for (EdgeIndex e = 0; e < g.numEdges(); ++e)
        ASSERT_EQ(owned[e], 1u) << caseName(GetParam());
}

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    const GenKind generators[] = {GenKind::Rmat, GenKind::Ba,
                                  GenKind::Er, GenKind::Ws,
                                  GenKind::Star};
    const Topology topologies[] = {Topology::Clique, Topology::Circular,
                                   Topology::Star, Topology::Udt};
    std::uint64_t seed = 100;
    for (GenKind gen : generators)
        for (Topology topology : topologies)
            cases.push_back(
                {gen, ++seed,
                 static_cast<NodeId>(3 + (seed * 7) % 14), topology});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransformFuzz,
                         ::testing::ValuesIn(fuzzCases()),
                         [](const auto &info) {
                             return caseName(info.param);
                         });

} // namespace
} // namespace tigr::transform
