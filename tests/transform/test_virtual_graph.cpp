/**
 * @file
 * Tests of the virtual split transformation: virtual node array
 * construction (Figure 10), edge-array coalescing assignment
 * (Figure 12), on-the-fly mapping reasoning, and space accounting.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::transform {
namespace {

graph::Csr
testGraph(std::uint64_t seed)
{
    return graph::GraphBuilder().build(
        graph::rmat({.nodes = 256, .edges = 4000, .seed = seed}));
}

class LayoutSweep : public ::testing::TestWithParam<EdgeLayout>
{
};

TEST_P(LayoutSweep, VirtualNodeCountMatchesFormula)
{
    graph::Csr g = testGraph(1);
    VirtualGraph vg(g, 8, GetParam());
    std::size_t expected = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EdgeIndex d = g.degree(v);
        expected += d == 0 ? 1 : (d + 7) / 8;
    }
    EXPECT_EQ(vg.numVirtualNodes(), expected);
}

TEST_P(LayoutSweep, EveryEdgeSlotOwnedExactlyOnce)
{
    graph::Csr g = testGraph(2);
    VirtualGraph vg(g, 8, GetParam());
    std::vector<unsigned> owned(g.numEdges(), 0);
    for (const VirtualNode &node : vg.virtualNodes()) {
        for (std::uint32_t j = 0; j < node.count; ++j) {
            EdgeIndex slot = node.start + node.stride * j;
            ASSERT_LT(slot, g.numEdges());
            // Slot must belong to the virtual node's physical segment.
            EXPECT_GE(slot, g.edgeBegin(node.physicalId));
            EXPECT_LT(slot, g.edgeEnd(node.physicalId));
            ++owned[slot];
        }
    }
    for (EdgeIndex e = 0; e < g.numEdges(); ++e)
        EXPECT_EQ(owned[e], 1u) << "slot " << e;
}

TEST_P(LayoutSweep, NoVirtualNodeExceedsDegreeBound)
{
    graph::Csr g = testGraph(3);
    VirtualGraph vg(g, 10, GetParam());
    for (const VirtualNode &node : vg.virtualNodes())
        EXPECT_LE(node.count, 10u);
}

TEST_P(LayoutSweep, PhysicalGraphUntouched)
{
    graph::Csr g = testGraph(4);
    graph::Csr copy = g;
    VirtualGraph vg(g, 4, GetParam());
    EXPECT_EQ(g, copy);
    EXPECT_EQ(&vg.physical(), &g);
}

TEST_P(LayoutSweep, ZeroDegreeNodesGetOneEmptyVirtualNode)
{
    graph::CooEdges coo(5);
    coo.add(0, 1);
    graph::Csr g = graph::Csr::fromCoo(coo);
    VirtualGraph vg(g, 4, GetParam());
    EXPECT_EQ(vg.numVirtualNodes(), 5u);
    unsigned empty = 0;
    for (const VirtualNode &node : vg.virtualNodes())
        if (node.count == 0)
            ++empty;
    EXPECT_EQ(empty, 4u);
}

TEST_P(LayoutSweep, VirtualNodesOrderedByPhysicalId)
{
    // Families occupy consecutive virtual ids — this is what lets warps
    // schedule whole families together (Section 4.4).
    graph::Csr g = testGraph(5);
    VirtualGraph vg(g, 8, GetParam());
    NodeId prev = 0;
    for (const VirtualNode &node : vg.virtualNodes()) {
        EXPECT_GE(node.physicalId, prev);
        prev = node.physicalId;
    }
}

TEST_P(LayoutSweep, StreamingMapperMatchesStoredArray)
{
    graph::Csr g = testGraph(6);
    VirtualGraph vg(g, 6, GetParam());
    std::vector<VirtualNode> streamed;
    forEachVirtualNode(g, 6, GetParam(),
                       [&](const VirtualNode &node) {
                           streamed.push_back(node);
                       });
    ASSERT_EQ(streamed.size(), vg.numVirtualNodes());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_EQ(streamed[i].physicalId, vg.virtualNode(i).physicalId);
        EXPECT_EQ(streamed[i].start, vg.virtualNode(i).start);
        EXPECT_EQ(streamed[i].stride, vg.virtualNode(i).stride);
        EXPECT_EQ(streamed[i].count, vg.virtualNode(i).count);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothLayouts, LayoutSweep,
    ::testing::Values(EdgeLayout::Consecutive, EdgeLayout::Coalesced),
    [](const auto &info) {
        return info.param == EdgeLayout::Consecutive ? "consecutive"
                                                     : "coalesced";
    });

TEST(VirtualGraphFigure10, ConsecutiveAssignment)
{
    // Figure 10: node v2 with 6 edges under K=3 becomes two virtual
    // nodes owning edge slots {0,1,2} and {3,4,5} of its segment.
    graph::CooEdges coo(3);
    for (int i = 0; i < 6; ++i)
        coo.add(0, 1);
    graph::Csr g = graph::Csr::fromCoo(coo);
    VirtualGraph vg(g, 3, EdgeLayout::Consecutive);
    // Node 0 -> 2 virtual nodes; nodes 1, 2 -> one empty each.
    ASSERT_EQ(vg.numVirtualNodes(), 4u);
    EXPECT_EQ(vg.virtualNode(0).start, 0u);
    EXPECT_EQ(vg.virtualNode(0).stride, 1u);
    EXPECT_EQ(vg.virtualNode(0).count, 3u);
    EXPECT_EQ(vg.virtualNode(1).start, 3u);
    EXPECT_EQ(vg.virtualNode(1).count, 3u);
}

TEST(VirtualGraphFigure12, CoalescedAssignment)
{
    // Figure 12: the second virtual node of a 6-edge family (K=3) gets
    // slots 1, 3, 5 — offset 1, stride 2.
    graph::CooEdges coo(3);
    for (int i = 0; i < 6; ++i)
        coo.add(0, 1);
    graph::Csr g = graph::Csr::fromCoo(coo);
    VirtualGraph vg(g, 3, EdgeLayout::Coalesced);
    EXPECT_EQ(vg.virtualNode(0).start, 0u);
    EXPECT_EQ(vg.virtualNode(0).stride, 2u);
    EXPECT_EQ(vg.virtualNode(0).count, 3u);
    EXPECT_EQ(vg.virtualNode(1).start, 1u);
    EXPECT_EQ(vg.virtualNode(1).stride, 2u);
    EXPECT_EQ(vg.virtualNode(1).count, 3u);
}

TEST(VirtualGraphFigure12, UnevenFamilyCounts)
{
    // 7 edges, K=3 -> family of 3 virtual nodes with counts 3, 2, 2
    // under the coalesced layout (slots 0/3/6, 1/4, 2/5).
    graph::CooEdges coo(2);
    for (int i = 0; i < 7; ++i)
        coo.add(0, 1);
    graph::Csr g = graph::Csr::fromCoo(coo);
    VirtualGraph vg(g, 3, EdgeLayout::Coalesced);
    EXPECT_EQ(vg.virtualNode(0).count, 3u);
    EXPECT_EQ(vg.virtualNode(1).count, 2u);
    EXPECT_EQ(vg.virtualNode(2).count, 2u);
    EXPECT_EQ(vg.virtualNode(2).start, 2u);
    EXPECT_EQ(vg.virtualNode(2).stride, 3u);
}

TEST(VirtualGraphParallel, AnyThreadCountBuildsIdenticalArray)
{
    graph::Csr g = testGraph(9);
    for (auto layout : {EdgeLayout::Consecutive, EdgeLayout::Coalesced}) {
        VirtualGraph serial(g, 7, layout, 1);
        for (unsigned threads : {2u, 4u, 8u}) {
            VirtualGraph parallel(g, 7, layout, threads);
            ASSERT_EQ(parallel.numVirtualNodes(),
                      serial.numVirtualNodes());
            for (NodeId i = 0; i < serial.numVirtualNodes(); ++i) {
                EXPECT_EQ(parallel.virtualNode(i).physicalId,
                          serial.virtualNode(i).physicalId);
                EXPECT_EQ(parallel.virtualNode(i).start,
                          serial.virtualNode(i).start);
                EXPECT_EQ(parallel.virtualNode(i).stride,
                          serial.virtualNode(i).stride);
                EXPECT_EQ(parallel.virtualNode(i).count,
                          serial.virtualNode(i).count);
            }
        }
    }
}

TEST(VirtualGraphSpace, OverheadShrinksWithK)
{
    graph::Csr g = testGraph(7);
    double prev_ratio = 10.0;
    for (NodeId k : {4u, 8u, 16u, 32u, 100u}) {
        VirtualGraph vg(g, k);
        double ratio = static_cast<double>(vg.paperBytes()) /
                       static_cast<double>(
                           VirtualGraph::paperBytesOriginal(g));
        EXPECT_GT(ratio, 1.0);
        EXPECT_LT(ratio, prev_ratio);
        prev_ratio = ratio;
    }
}

TEST(VirtualGraphSpace, Table6BallparkAtK8)
{
    // The paper reports ~125% total size at K=8 on power-law graphs.
    graph::Csr g = testGraph(8);
    VirtualGraph vg(g, 8);
    double ratio = static_cast<double>(vg.paperBytes()) /
                   static_cast<double>(VirtualGraph::paperBytesOriginal(g));
    EXPECT_GT(ratio, 1.05);
    EXPECT_LT(ratio, 1.6);
}

} // namespace
} // namespace tigr::transform
