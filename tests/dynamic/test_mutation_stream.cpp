/**
 * @file
 * Mutation-log streaming, compaction, and persistence: the streaming
 * reader must parse exactly what MutationLog::load parses (batches,
 * typed Parse errors, line numbers); compactLog must replay to a
 * byte-identical DynamicGraph state at every epoch while actually
 * shrinking the log; and a .tgs snapshot plus its ".tml" sidecar log
 * must restore a GraphStore to any recorded epoch byte-identically,
 * with query metricsDigests equal to the never-persisted original.
 */
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"

namespace tigr::dynamic {
namespace {

graph::Csr
baseGraph(std::uint64_t seed = 77)
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 300, .edges = 3000, .seed = seed}));
}

std::filesystem::path
tempPath(const std::string &name)
{
    return std::filesystem::temp_directory_path() /
           ("tigr_stream_test_" + name);
}

/** A long mixed log generated against the evolving graph state, so
 *  every batch is valid at its own epoch. */
MutationLog
longLog(DynamicGraph &dg, std::size_t batches)
{
    MutationLog log;
    for (std::size_t i = 0; i < batches; ++i) {
        GeneratorSpec spec{.seed = 1000 + i,
                           .inserts = 14,
                           .deletes = 8,
                           .reweights = 10};
        MutationBatch batch = generateBatch(dg.toCsr(), spec);
        dg.apply(batch);
        log.append(std::move(batch));
    }
    return log;
}

TEST(MutationStream, ReaderMatchesWholeLogLoad)
{
    DynamicGraph dg(baseGraph());
    const MutationLog log = longLog(dg, 24);
    ASSERT_EQ(log.size(), 24u);

    std::ostringstream text;
    log.save(text);

    std::istringstream whole(text.str());
    const MutationLog loaded = MutationLog::load(whole);

    std::istringstream stream(text.str());
    MutationLogReader reader(stream);
    std::vector<MutationBatch> streamed;
    while (auto batch = reader.next())
        streamed.push_back(std::move(*batch));

    EXPECT_EQ(reader.batchesRead(), log.size());
    ASSERT_EQ(streamed.size(), loaded.batches().size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], loaded.batches()[i]) << "batch " << i;
    ASSERT_EQ(streamed.size(), log.batches().size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
        ASSERT_EQ(streamed[i], log.batches()[i]) << "batch " << i;
}

TEST(MutationStream, ReaderAppliesWhileParsing)
{
    // Streaming ingest: apply each batch as it parses — no whole-log
    // buffer — and land on the same state as load-then-apply.
    DynamicGraph original(baseGraph(79));
    const MutationLog log = longLog(original, 16);
    std::ostringstream text;
    log.save(text);

    DynamicGraph replayed(baseGraph(79));
    std::istringstream stream(text.str());
    MutationLogReader reader(stream);
    while (auto batch = reader.next())
        replayed.apply(*batch);

    EXPECT_EQ(replayed.epoch(), original.epoch());
    EXPECT_EQ(replayed.toCsr(), original.toCsr());
}

TEST(MutationStream, ReaderErrorsMatchLoadErrors)
{
    const std::string_view cases[] = {
        "batch 0 1\n? 1 2 3\n",       // unknown op
        "+ 1 2 3\n",                  // mutation before any header
        "batch 1 0\n",                // wrong first batch index
        "batch 0 2\n+ 1 2 3\n",       // declared count never arrives
        "batch 0 1\n+ 1 2\n",         // insert missing weight
        "batch 0 1\n- 1\n",           // delete missing dst
        "batch 0 one\n",              // non-numeric count
    };
    for (const std::string_view text : cases) {
        SCOPED_TRACE(text);
        std::optional<MutationError> fromLoad;
        try {
            std::istringstream in{std::string(text)};
            (void)MutationLog::load(in);
        } catch (const MutationError &e) {
            fromLoad = e;
        }
        ASSERT_TRUE(fromLoad.has_value());
        EXPECT_EQ(fromLoad->kind(), MutationErrorKind::Parse);

        std::optional<MutationError> fromReader;
        try {
            std::istringstream in{std::string(text)};
            MutationLogReader reader(in);
            while (reader.next())
                ;
        } catch (const MutationError &e) {
            fromReader = e;
        }
        ASSERT_TRUE(fromReader.has_value());
        EXPECT_EQ(fromReader->kind(), fromLoad->kind());
        EXPECT_EQ(fromReader->index(), fromLoad->index());
        EXPECT_STREQ(fromReader->what(), fromLoad->what());
    }
}

TEST(MutationStream, CompactedLogReplaysByteIdenticallyAtEveryEpoch)
{
    // Batches stuffed with dead reweights: repeated same-pair
    // reweights and reweight-then-delete, on top of a generated mix.
    DynamicGraph dg(baseGraph(83));
    MutationLog log;
    for (std::size_t i = 0; i < 10; ++i) {
        MutationBatch batch = generateBatch(
            dg.toCsr(), {.seed = 2000 + i, .inserts = 10,
                         .deletes = 4, .reweights = 6});
        // Superseded reweights of an edge every batch owns.
        const graph::Csr csr = dg.toCsr();
        for (NodeId v = 0; v < csr.numNodes(); ++v) {
            if (csr.degree(v) == 0)
                continue;
            const NodeId dst = csr.outNeighbors(v)[0];
            const Weight w = static_cast<Weight>(1 + i);
            batch.push_back({MutationKind::UpdateWeight, v, dst, w});
            batch.push_back({MutationKind::UpdateWeight, v, dst,
                             static_cast<Weight>(w + 1)});
            batch.push_back({MutationKind::UpdateWeight, v, dst,
                             static_cast<Weight>(w + 2)});
            break;
        }
        dg.apply(batch);
        log.append(std::move(batch));
    }

    const MutationLog compacted = compactLog(log);
    ASSERT_EQ(compacted.size(), log.size());
    EXPECT_LT(compacted.totalMutations(), log.totalMutations());

    DynamicGraph full(baseGraph(83));
    DynamicGraph lean(baseGraph(83));
    for (std::size_t i = 0; i < log.size(); ++i) {
        full.apply(log.batches()[i]);
        lean.apply(compacted.batches()[i]);
        ASSERT_EQ(lean.epoch(), full.epoch());
        ASSERT_EQ(lean.toCsr(), full.toCsr()) << "epoch " << i + 1;
    }
}

TEST(MutationStream, CompactedLogSurvivesTextRoundTrip)
{
    DynamicGraph dg(baseGraph(89));
    const MutationLog log = longLog(dg, 8);
    const MutationLog compacted = compactLog(log);

    std::ostringstream text;
    compacted.save(text);
    std::istringstream in(text.str());
    const MutationLog reloaded = MutationLog::load(in);
    ASSERT_EQ(reloaded.size(), compacted.size());
    for (std::size_t i = 0; i < compacted.size(); ++i)
        ASSERT_EQ(reloaded.batches()[i], compacted.batches()[i]);
}

TEST(MutationStream, PersistedLogReplaysStoreToAnyEpoch)
{
    const auto tgs = tempPath("replay.tgs");
    const auto tml = service::mutationLogPathFor(tgs);
    ASSERT_EQ(tml.extension(), ".tml");

    // Live store: two batches, snapshot, six more batches to the log.
    service::GraphStore live;
    live.add("g", baseGraph(97));
    for (std::uint64_t e = 0; e < 2; ++e)
        live.mutate("g",
                    generateBatch(live.at("g").graph,
                                  {.seed = 40 + e, .inserts = 12,
                                   .deletes = 6, .reweights = 4}));
    ASSERT_EQ(live.epochOf("g"), 2u);

    service::Snapshot snapshot;
    snapshot.graph = live.at("g").graph;
    snapshot.epoch = live.at("g").epoch;
    service::saveSnapshotFile(snapshot, tgs);

    MutationLog sidecar;
    std::vector<graph::Csr> state_at; // state_at[i] = epoch 3 + i
    for (std::uint64_t e = 0; e < 6; ++e) {
        MutationBatch batch = generateBatch(
            live.at("g").graph, {.seed = 50 + e, .inserts = 16,
                                 .deletes = 8, .reweights = 6});
        live.mutate("g", batch);
        sidecar.append(std::move(batch));
        state_at.push_back(live.at("g").graph);
    }
    ASSERT_EQ(live.epochOf("g"), 8u);
    {
        std::ofstream out(tml);
        ASSERT_TRUE(out.good());
        compactLog(sidecar).save(out);
    }

    // Any recorded epoch is reachable from the snapshot + sidecar.
    for (std::uint64_t target = 3; target <= 8; ++target) {
        service::GraphStore restored;
        restored.addSnapshot("g", tgs);
        ASSERT_EQ(restored.epochOf("g"), 2u);
        std::ifstream in(tml);
        ASSERT_TRUE(in.good());
        const std::size_t applied =
            restored.replayLog("g", in, target);
        EXPECT_EQ(applied, target - 2);
        EXPECT_EQ(restored.epochOf("g"), target);
        EXPECT_EQ(restored.at("g").graph, state_at[target - 3])
            << "epoch " << target;
    }

    // Full replay (no target) drains the log.
    service::GraphStore restored;
    restored.addSnapshot("g", tgs);
    {
        std::ifstream in(tml);
        EXPECT_EQ(restored.replayLog("g", in), 6u);
    }
    EXPECT_EQ(restored.epochOf("g"), 8u);
    EXPECT_EQ(restored.at("g").graph, live.at("g").graph);

    // A query batch over the replayed store produces the same
    // metricsDigests as the store that never left memory.
    const auto digests = [](service::GraphStore &store) {
        service::TransformCache cache(std::size_t{64} << 20);
        service::SchedulerOptions options;
        options.workers = 1;
        service::QueryScheduler scheduler(store, cache, options);
        std::vector<service::QuerySpec> queries;
        const engine::Algorithm algos[] = {
            engine::Algorithm::Bfs, engine::Algorithm::Sssp,
            engine::Algorithm::Sswp, engine::Algorithm::Cc};
        for (std::size_t i = 0; i < 8; ++i) {
            service::QuerySpec spec;
            spec.graph = "g";
            spec.algorithm = algos[i % 4];
            spec.source = static_cast<NodeId>((i * 37) % 300);
            spec.degreeBound = 8;
            queries.push_back(spec);
        }
        const auto result = scheduler.runBatch({}, queries);
        std::vector<std::uint64_t> out;
        for (const service::QueryResult &r : result.queries) {
            EXPECT_EQ(r.outcome, service::QueryOutcome::Completed)
                << r.message;
            out.push_back(r.metricsDigest);
        }
        return out;
    };
    EXPECT_EQ(digests(restored), digests(live));

    std::filesystem::remove(tgs);
    std::filesystem::remove(tml);
}

TEST(MutationStream, ReplayLogStopsCleanlyAtLogEnd)
{
    service::GraphStore store;
    store.add("g", baseGraph(101));
    DynamicGraph shadow(baseGraph(101));
    const MutationLog log = longLog(shadow, 3);
    std::ostringstream text;
    log.save(text);

    // A target past the end applies everything and stops — no throw.
    std::istringstream in(text.str());
    EXPECT_EQ(store.replayLog("g", in, 999), 3u);
    EXPECT_EQ(store.epochOf("g"), 3u);
    EXPECT_EQ(store.at("g").graph, shadow.toCsr());

    // An already-reached target applies nothing.
    std::istringstream again(text.str());
    EXPECT_EQ(store.replayLog("g", again, 3), 0u);
    EXPECT_EQ(store.epochOf("g"), 3u);
}

} // namespace
} // namespace tigr::dynamic
