/**
 * @file
 * Reverse (in-neighbor) arena suite: the In-side arena-addressed
 * virtualizer must canonicalize byte-identically to a from-scratch
 * VirtualGraph over the reversed dense CSR after every batch, repair
 * strictly O(touched in-families), survive graph compaction through
 * rebase(), and keep toReversedCsr() bit-identical to
 * toCsr().reversed() at every epoch — the invariant the whole
 * pull-after-mutate path rests on.
 */
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_virtualizer.hpp"
#include "dynamic/mutation.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::dynamic {
namespace {

graph::Csr
skewedGraph(std::uint64_t seed)
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 500, .edges = 5000, .seed = seed}));
}

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 40;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 384, .edges = 5000, .seed = seed}));
}

const GeneratorSpec kSweeps[] = {
    {.seed = 0, .inserts = 48, .deletes = 6, .reweights = 6},
    {.seed = 0, .inserts = 6, .deletes = 48, .reweights = 6},
    {.seed = 0, .inserts = 0, .deletes = 0, .reweights = 40},
    {.seed = 0, .inserts = 20, .deletes = 20, .reweights = 20},
};

IncrementalVirtualizer
inSideVirtualizer(const DynamicGraph &dg, NodeId k,
                  transform::EdgeLayout layout,
                  par::ThreadPool *pool = nullptr)
{
    return IncrementalVirtualizer(dg, k, layout,
                                  StartAddressing::Arena, pool,
                                  GraphSide::In);
}

class ReverseArenaDifferential
    : public ::testing::TestWithParam<
          std::tuple<NodeId, transform::EdgeLayout>>
{
};

TEST_P(ReverseArenaDifferential, MatchesRebuildAfterEveryBatch)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(17));
    IncrementalVirtualizer virt = inSideVirtualizer(dg, k, layout);
    ASSERT_EQ(virt.side(), GraphSide::In);
    ASSERT_EQ(virt.addressing(), StartAddressing::Arena);
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);

    std::uint64_t round = 0;
    for (const GeneratorSpec &sweep : kSweeps) {
        for (std::uint64_t i = 0; i < 3; ++i) {
            GeneratorSpec spec = sweep;
            spec.seed = 100 + round++;
            const EpochDelta delta =
                dg.apply(generateBatch(dg.toCsr(), spec));
            const RepairStats stats = virt.applyDelta(delta);
            EXPECT_EQ(stats.epoch, delta.epoch);
            // Arena addressing never shifts untouched entries.
            EXPECT_EQ(stats.shiftedEntries, 0u);
            // The maintained reverse arena is the mirror of the dense
            // reversal at every epoch, weights and slot order
            // included.
            ASSERT_EQ(dg.toReversedCsr(), dg.toCsr().reversed())
                << "epoch " << delta.epoch;
            ASSERT_EQ(differentialCheck(dg, virt), std::nullopt)
                << "epoch " << delta.epoch;
            if (virt.shouldCompactEntries()) {
                virt.rebase();
                ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
            }
        }
    }
}

TEST_P(ReverseArenaDifferential, SurvivesGraphCompactionThroughRebase)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(23));
    IncrementalVirtualizer virt = inSideVirtualizer(dg, k, layout);

    // Delete-heavy batches until the slack threshold fires.
    GeneratorSpec spec{.seed = 5, .inserts = 2, .deletes = 120,
                       .reweights = 0};
    bool compacted = false;
    for (std::uint64_t round = 0; round < 30 && !compacted; ++round) {
        spec.seed = 500 + round;
        virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec)));
        if (dg.shouldCompact()) {
            dg.compact();
            compacted = true;
        }
    }
    ASSERT_TRUE(compacted) << "slack threshold never fired";

    // Compaction renumbered every reverse-arena slot too: stale-slot
    // reads and repairs must be refused until rebase().
    EXPECT_THROW((void)virt.canonicalNodes(), std::logic_error);
    EXPECT_THROW(
        virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec))),
        std::logic_error);

    const RepairStats stats = virt.rebase();
    EXPECT_EQ(stats.repairedVertices, dg.numNodes());
    ASSERT_EQ(dg.toReversedCsr(), dg.toCsr().reversed());
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);

    // And the repair loop continues cleanly afterwards.
    spec.seed = 997;
    virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec)));
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(
    ReverseArena, ReverseArenaDifferential,
    ::testing::Combine(
        ::testing::Values(NodeId{2}, NodeId{8}, NodeId{32}),
        ::testing::Values(transform::EdgeLayout::Consecutive,
                          transform::EdgeLayout::Coalesced)),
    [](const auto &info) {
        return "K" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ==
                        transform::EdgeLayout::Coalesced
                    ? "_coalesced"
                    : "_consecutive");
    });

TEST(ReverseArena, UntouchedInFamiliesKeepTheirBytes)
{
    // Grow only vertex 3's in-degree (every insert targets 3 from a
    // distinct source); every other in-family's raw arena entries —
    // position and bytes — must be exactly what they were. The
    // O(touched) property of the reverse repair, stated as memory.
    DynamicGraph dg(skewedGraph(41));
    IncrementalVirtualizer virt = inSideVirtualizer(
        dg, 8, transform::EdgeLayout::Coalesced);

    struct Saved
    {
        NodeId v;
        std::vector<transform::VirtualNode> entries;
    };
    std::vector<Saved> before;
    for (NodeId v = 0; v < dg.numNodes(); ++v) {
        if (v == 3)
            continue;
        const auto fam = virt.familyOf(v);
        before.push_back({v, {fam.begin(), fam.end()}});
    }

    MutationBatch batch;
    for (std::size_t i = 0; i < 24; ++i)
        batch.push_back({MutationKind::InsertEdge,
                         static_cast<NodeId>(7 + i), 3, 5});
    const RepairStats stats = virt.applyDelta(dg.apply(batch));
    EXPECT_EQ(stats.repairedVertices, 1u);
    EXPECT_EQ(stats.shiftedEntries, 0u);

    for (const Saved &saved : before) {
        const auto fam = virt.familyOf(saved.v);
        ASSERT_EQ(fam.size(), saved.entries.size())
            << "node " << saved.v;
        for (std::size_t i = 0; i < fam.size(); ++i)
            ASSERT_EQ(fam[i], saved.entries[i])
                << "node " << saved.v << " entry " << i;
    }
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(ReverseArena, ReweightOnlyBatchesShortCircuit)
{
    // Reweights change no in-degree and relocate no in-segment: the
    // whole touchedIn set short-circuits through the staleness test,
    // but the reversed weights themselves must still round-trip.
    DynamicGraph dg(weightedGraph(31));
    IncrementalVirtualizer virt = inSideVirtualizer(
        dg, 8, transform::EdgeLayout::Coalesced);
    GeneratorSpec spec{.seed = 11, .inserts = 0, .deletes = 0,
                       .reweights = 30};
    const EpochDelta delta = dg.apply(generateBatch(dg.toCsr(), spec));
    ASSERT_FALSE(delta.touched.empty());
    const RepairStats stats = virt.applyDelta(delta);
    EXPECT_EQ(stats.repairedVertices, 0u);
    EXPECT_EQ(stats.resplitFamilies, 0u);
    EXPECT_EQ(stats.relocatedFamilies, 0u);
    ASSERT_EQ(dg.toReversedCsr(), dg.toCsr().reversed());
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(ReverseArena, ParallelBuildRebaseAndCanonicalizeBitIdentical)
{
    // The pool parallelizes the In-side build and canonicalization;
    // every product must be bit-identical at 1, 2, and 8 workers to
    // the serial run.
    DynamicGraph dg(skewedGraph(47));
    GeneratorSpec spec{.seed = 3, .inserts = 40, .deletes = 25,
                       .reweights = 10};
    for (std::uint64_t round = 0; round < 4; ++round) {
        spec.seed = 300 + round;
        dg.apply(generateBatch(dg.toCsr(), spec));
    }

    IncrementalVirtualizer serial = inSideVirtualizer(
        dg, 8, transform::EdgeLayout::Coalesced);
    const std::vector<transform::VirtualNode> serial_raw(
        serial.virtualNodes().begin(), serial.virtualNodes().end());
    const std::vector<transform::VirtualNode> serial_canon =
        serial.nodesCopy();

    for (const unsigned workers : {1u, 2u, 8u}) {
        par::ThreadPool pool(workers);
        IncrementalVirtualizer virt = inSideVirtualizer(
            dg, 8, transform::EdgeLayout::Coalesced, &pool);
        const auto raw = virt.virtualNodes();
        ASSERT_EQ(raw.size(), serial_raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i)
            ASSERT_EQ(raw[i], serial_raw[i])
                << workers << " workers, entry " << i;
        const std::vector<transform::VirtualNode> canon =
            virt.canonicalNodes(&pool);
        ASSERT_EQ(canon.size(), serial_canon.size());
        for (std::size_t i = 0; i < canon.size(); ++i)
            ASSERT_EQ(canon[i], serial_canon[i])
                << workers << " workers, entry " << i;
    }
}

} // namespace
} // namespace tigr::dynamic
