/**
 * @file
 * The dynamic subsystem wired through the service layer: GraphStore
 * copy-on-write epochs and pins, snapshot epoch round-trips, epoch-
 * keyed TransformCache invalidation, the QueryScheduler's epoch-
 * consistent mutate-then-query batches (bit-identical at 1/2/8
 * workers), fault injection at both mutation sites, and the script
 * driver's `mutate` command.
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation.hpp"
#include "fault/fault.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/script.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::service {
namespace {

graph::Csr
rmatGraph(std::uint64_t seed = 51)
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 400, .edges = 3600, .seed = seed}));
}

/** A hub with 200 out-edges: deleting 150 leaves > 50% slack and
 *  >= 64 dead slots, so the compaction threshold trips. */
graph::Csr
hubGraph()
{
    graph::CooEdges coo(256);
    for (NodeId i = 0; i < 200; ++i)
        coo.add(0, i + 1, (i % 9) + 1);
    return graph::Csr::fromCoo(coo);
}

dynamic::MutationBatch
hubDeletes(NodeId count)
{
    dynamic::MutationBatch batch;
    for (NodeId i = 0; i < count; ++i)
        batch.push_back(
            {dynamic::MutationKind::DeleteEdge, 0, i + 1, 0});
    return batch;
}

std::filesystem::path
tempPath(const std::string &name)
{
    return std::filesystem::temp_directory_path() /
           ("tigr_dyn_test_" + name);
}

TEST(GraphStoreMutation, PublishesNewEpochsAndKeepsPinsAlive)
{
    GraphStore store;
    store.add("g", rmatGraph());
    EXPECT_EQ(store.epochOf("g"), 0u);

    const auto pinned = store.pin("g");
    const EdgeIndex edges_before = pinned->graph.numEdges();

    const MutateResult first = store.mutate(
        "g", dynamic::generateBatch(
                 store.at("g").graph,
                 {.seed = 5, .inserts = 20, .deletes = 8}));
    EXPECT_EQ(first.epoch, 1u);
    EXPECT_EQ(store.epochOf("g"), 1u);
    EXPECT_EQ(first.delta.inserts, 20u);
    EXPECT_EQ(first.delta.deletes, 8u);
    EXPECT_EQ(first.liveEdges, edges_before + 20 - 8);
    EXPECT_EQ(store.at("g").graph.numEdges(), edges_before + 20 - 8);

    // The pinned version still sees the pre-mutation graph.
    EXPECT_EQ(pinned->epoch, 0u);
    EXPECT_EQ(pinned->graph.numEdges(), edges_before);

    const MutateResult second = store.mutate(
        "g", {{dynamic::MutationKind::InsertEdge, 1, 2, 3}});
    EXPECT_EQ(second.epoch, 2u);

    // Pins survive removal, too.
    store.remove("g");
    EXPECT_EQ(pinned->graph.numEdges(), edges_before);
}

TEST(GraphStoreMutation, RejectedBatchLeavesTheEntryUntouched)
{
    GraphStore store;
    store.add("g", rmatGraph());
    const graph::Csr before = store.at("g").graph;
    EXPECT_THROW(
        store.mutate("g", {{dynamic::MutationKind::InsertEdge,
                            9999, 0, 1}}), // src out of range
        dynamic::MutationError);
    EXPECT_EQ(store.epochOf("g"), 0u);
    EXPECT_EQ(store.at("g").graph, before);
    EXPECT_THROW(store.mutate("missing", {}), std::out_of_range);
}

TEST(GraphStoreMutation, SnapshotRoundTripRestoresTheEpoch)
{
    const auto path = tempPath("epoch.tgs");
    GraphStore store;
    store.add("g", rmatGraph());
    store.mutate("g", dynamic::generateBatch(store.at("g").graph,
                                             {.seed = 2, .inserts = 6}));
    store.mutate("g", dynamic::generateBatch(store.at("g").graph,
                                             {.seed = 3, .inserts = 6}));
    ASSERT_EQ(store.epochOf("g"), 2u);

    Snapshot snapshot;
    snapshot.graph = store.at("g").graph;
    snapshot.epoch = store.at("g").epoch;
    saveSnapshotFile(snapshot, path);

    GraphStore restored;
    restored.addSnapshot("g", path);
    EXPECT_EQ(restored.epochOf("g"), 2u);
    EXPECT_EQ(restored.at("g").graph, store.at("g").graph);

    // Mutations continue from the restored base, not from zero.
    restored.mutate("g",
                    {{dynamic::MutationKind::InsertEdge, 0, 1, 1}});
    EXPECT_EQ(restored.epochOf("g"), 3u);
    std::filesystem::remove(path);
}

TEST(GraphStoreMutation, RepairsThePersistedVirtualArray)
{
    const auto path = tempPath("virtual.tgs");
    const graph::Csr csr = rmatGraph(63);
    Snapshot snapshot;
    snapshot.graph = csr;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 8;
    snapshot.virtualLayout = transform::EdgeLayout::Coalesced;
    {
        const transform::VirtualGraph vg(
            csr, 8, transform::EdgeLayout::Coalesced);
        snapshot.virtualNodes.assign(vg.virtualNodes().begin(),
                                     vg.virtualNodes().end());
    }
    saveSnapshotFile(snapshot, path);

    GraphStore store;
    store.addSnapshot("g", path);
    ASSERT_TRUE(store.at("g").hasVirtual);

    const MutateResult result = store.mutate(
        "g", dynamic::generateBatch(
                 store.at("g").graph,
                 {.seed = 9, .inserts = 24, .deletes = 12}));
    EXPECT_TRUE(result.virtualRepaired);
    EXPECT_GT(result.repair.repairedVertices, 0u);

    // The repaired entry array equals a from-scratch rebuild over the
    // published graph.
    const StoredGraph &entry = store.at("g");
    const transform::VirtualGraph rebuilt(
        entry.graph, 8, transform::EdgeLayout::Coalesced);
    ASSERT_EQ(entry.virtualNodes.size(),
              rebuilt.virtualNodes().size());
    for (std::size_t i = 0; i < entry.virtualNodes.size(); ++i) {
        SCOPED_TRACE(i);
        const transform::VirtualNode &a = entry.virtualNodes[i];
        const transform::VirtualNode &b = rebuilt.virtualNodes()[i];
        EXPECT_EQ(a.physicalId, b.physicalId);
        EXPECT_EQ(a.start, b.start);
        EXPECT_EQ(a.stride, b.stride);
        EXPECT_EQ(a.count, b.count);
    }
    std::filesystem::remove(path);
}

TEST(SchedulerMutation, InvalidatesStaleCacheEntriesByEpoch)
{
    GraphStore store;
    store.add("g", rmatGraph());
    obs::MetricsRegistry registry;
    TransformCache cache(std::size_t{64} << 20, &registry);
    SchedulerOptions options;
    options.workers = 1;
    QueryScheduler scheduler(store, cache, options);

    QuerySpec query;
    query.graph = "g";
    query.algorithm = engine::Algorithm::Bfs;
    query.source = 1;
    const std::vector<QuerySpec> queries{query};

    const auto cold = scheduler.runBatch({}, queries);
    ASSERT_EQ(cold.queries.size(), 1u);
    EXPECT_FALSE(cold.queries[0].cacheHit);
    const auto warm = scheduler.runBatch({}, queries);
    EXPECT_TRUE(warm.queries[0].cacheHit);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Mutating bumps the epoch: the old schedule is unreachable (its
    // key holds epoch 0) and invalidateStale() has dropped it. The
    // post-mutation query is served straight off the live arena — no
    // dense rebuild, no cache involvement — so the cache is empty.
    MutationSpec mutation;
    mutation.graph = "g";
    mutation.generate =
        dynamic::GeneratorSpec{.seed = 4, .inserts = 12, .deletes = 4};
    const auto mutated =
        scheduler.runBatch(std::vector{mutation}, queries);
    ASSERT_EQ(mutated.mutations.size(), 1u);
    EXPECT_TRUE(mutated.mutations[0].applied);
    EXPECT_EQ(mutated.mutations[0].epoch, 1u);
    EXPECT_FALSE(mutated.queries[0].cacheHit);
    EXPECT_TRUE(mutated.queries[0].arenaServed);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_GE(cache.stats().evictions, 1u);

    // The arena keeps serving while the dense entry stays stale.
    const auto still = scheduler.runBatch({}, queries);
    EXPECT_TRUE(still.queries[0].arenaServed);
    EXPECT_EQ(still.queries[0].digest, mutated.queries[0].digest);

    // A direct-CSR consumer (UDT cannot run off the arena) forces the
    // dense epoch to materialize; afterwards the original query
    // returns to the cache path — with values bit-identical to what
    // the arena served — and the cache re-warms at the new epoch.
    QuerySpec direct = query;
    direct.strategy = engine::Strategy::TigrUdt;
    const auto dense =
        scheduler.runBatch({}, std::vector<QuerySpec>{direct});
    EXPECT_EQ(dense.queries[0].outcome, QueryOutcome::Completed);
    EXPECT_FALSE(dense.queries[0].arenaServed);

    const auto rewarm = scheduler.runBatch({}, queries);
    EXPECT_FALSE(rewarm.queries[0].arenaServed);
    EXPECT_FALSE(rewarm.queries[0].cacheHit);
    EXPECT_EQ(rewarm.queries[0].digest, mutated.queries[0].digest);
    EXPECT_EQ(cache.stats().entries, 1u);

    const auto hot = scheduler.runBatch({}, queries);
    EXPECT_TRUE(hot.queries[0].cacheHit);
}

TEST(SchedulerMutation, ReadOnlySchedulerRejectsMutations)
{
    GraphStore store;
    store.add("g", rmatGraph());
    TransformCache cache(std::size_t{64} << 20);
    const GraphStore &read_only = store;
    SchedulerOptions options;
    options.workers = 1;
    QueryScheduler scheduler(read_only, cache, options);

    MutationSpec mutation;
    mutation.graph = "g";
    mutation.generate = dynamic::GeneratorSpec{.seed = 1, .inserts = 4};
    QuerySpec query;
    query.graph = "g";
    const auto result = scheduler.runBatch(
        std::vector{mutation}, std::vector{query});
    ASSERT_EQ(result.mutations.size(), 1u);
    EXPECT_FALSE(result.mutations[0].applied);
    ASSERT_TRUE(result.mutations[0].error.has_value());
    EXPECT_EQ(result.mutations[0].error->kind,
              ServiceErrorKind::InvalidQuery);
    EXPECT_EQ(store.epochOf("g"), 0u);
    // The queries still ran.
    ASSERT_EQ(result.queries.size(), 1u);
    EXPECT_EQ(result.queries[0].outcome, QueryOutcome::Completed);
}

TEST(SchedulerMutation, UnknownGraphIsATypedRejection)
{
    GraphStore store;
    store.add("g", rmatGraph());
    TransformCache cache(std::size_t{64} << 20);
    QueryScheduler scheduler(store, cache, {});
    MutationSpec mutation;
    mutation.graph = "nope";
    mutation.mutations = {{dynamic::MutationKind::InsertEdge, 0, 1, 1}};
    const auto result =
        scheduler.runBatch(std::vector{mutation},
                           std::span<const QuerySpec>{});
    ASSERT_EQ(result.mutations.size(), 1u);
    EXPECT_FALSE(result.mutations[0].applied);
    ASSERT_TRUE(result.mutations[0].error.has_value());
    EXPECT_EQ(result.mutations[0].error->kind,
              ServiceErrorKind::InvalidQuery);
}

/** The acceptance batch: explicit + generated mutations on two graphs,
 *  then a query mix over both, at 1/2/8 workers. */
TEST(SchedulerMutation, MutateThenQueryBatchesAreWorkerInvariant)
{
    const auto run = [](unsigned workers) {
        GraphStore store;
        store.add("a", rmatGraph(71));
        store.add("b", rmatGraph(72));
        TransformCache cache(std::size_t{64} << 20);
        SchedulerOptions options;
        options.workers = workers;
        QueryScheduler scheduler(store, cache, options);

        std::vector<MutationSpec> mutations;
        {
            MutationSpec explicit_batch;
            explicit_batch.graph = "a";
            explicit_batch.mutations = {
                {dynamic::MutationKind::InsertEdge, 3, 4, 9},
                {dynamic::MutationKind::InsertEdge, 4, 3, 9},
            };
            mutations.push_back(explicit_batch);
            MutationSpec generated;
            generated.graph = "a";
            generated.generate = dynamic::GeneratorSpec{
                .seed = 11, .inserts = 18, .deletes = 9, .reweights = 6};
            mutations.push_back(generated);
            MutationSpec other;
            other.graph = "b";
            other.generate = dynamic::GeneratorSpec{
                .seed = 12, .inserts = 10, .deletes = 10};
            mutations.push_back(other);
        }

        std::vector<QuerySpec> queries;
        const engine::Algorithm algos[] = {
            engine::Algorithm::Bfs, engine::Algorithm::Sssp,
            engine::Algorithm::Sswp, engine::Algorithm::Cc,
            engine::Algorithm::Pr, engine::Algorithm::Bc};
        for (std::size_t i = 0; i < 12; ++i) {
            QuerySpec spec;
            spec.graph = (i % 2 == 0) ? "a" : "b";
            spec.algorithm = algos[i % 6];
            spec.source = static_cast<NodeId>((i * 13) % 300);
            spec.degreeBound = 8;
            spec.prIterations = 10;
            queries.push_back(spec);
        }
        return scheduler.runBatch(mutations, queries);
    };

    const MutationBatchResult reference = run(1);
    ASSERT_EQ(reference.mutations.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(reference.mutations[i].applied) << i;
        EXPECT_FALSE(reference.mutations[i].error.has_value()) << i;
    }
    EXPECT_EQ(reference.mutations[0].epoch, 1u);
    EXPECT_EQ(reference.mutations[1].epoch, 2u);
    EXPECT_EQ(reference.mutations[2].epoch, 1u);
    for (const QueryResult &r : reference.queries)
        EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;

    for (unsigned workers : {2u, 8u}) {
        const MutationBatchResult other = run(workers);
        SCOPED_TRACE(workers);
        ASSERT_EQ(other.mutations.size(), reference.mutations.size());
        for (std::size_t i = 0; i < reference.mutations.size(); ++i) {
            const MutationResult &a = reference.mutations[i];
            const MutationResult &b = other.mutations[i];
            EXPECT_EQ(a.epoch, b.epoch);
            EXPECT_EQ(a.inserts, b.inserts);
            EXPECT_EQ(a.deletes, b.deletes);
            EXPECT_EQ(a.reweights, b.reweights);
            EXPECT_EQ(a.touched, b.touched);
            EXPECT_EQ(a.repaired, b.repaired);
            EXPECT_EQ(a.resplits, b.resplits);
        }
        ASSERT_EQ(other.queries.size(), reference.queries.size());
        for (std::size_t i = 0; i < reference.queries.size(); ++i) {
            EXPECT_EQ(other.queries[i].outcome,
                      reference.queries[i].outcome);
            EXPECT_EQ(other.queries[i].digest,
                      reference.queries[i].digest);
            EXPECT_EQ(other.queries[i].values,
                      reference.queries[i].values);
        }
    }
}

TEST(SchedulerMutation, QueriesAfterMutationMatchARebuiltStore)
{
    // Mutate a store, then rebuild a second store from the final
    // materialized graph: the same queries must digest-match — the
    // incremental path introduces no drift. Swept across frontier
    // modes.
    GraphStore mutated;
    mutated.add("g", rmatGraph(81));
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        mutated.mutate(
            "g", dynamic::generateBatch(
                     mutated.at("g").graph,
                     {.seed = seed, .inserts = 20, .deletes = 10}));
    GraphStore rebuilt;
    rebuilt.add("g", mutated.at("g").graph);

    std::vector<QuerySpec> queries;
    const engine::Algorithm algos[] = {
        engine::Algorithm::Bfs, engine::Algorithm::Sssp,
        engine::Algorithm::Sswp, engine::Algorithm::Cc,
        engine::Algorithm::Pr, engine::Algorithm::Bc};
    const engine::FrontierMode modes[] = {
        engine::FrontierMode::Dense, engine::FrontierMode::Sparse,
        engine::FrontierMode::Adaptive};
    for (const engine::Algorithm algo : algos)
        for (const engine::FrontierMode mode : modes) {
            QuerySpec spec;
            spec.graph = "g";
            spec.algorithm = algo;
            spec.frontier = mode;
            spec.source = 2;
            spec.degreeBound = 8;
            spec.prIterations = 10;
            queries.push_back(spec);
        }

    const auto digestsOf = [&](const GraphStore &store) {
        TransformCache cache(std::size_t{64} << 20);
        SchedulerOptions options;
        options.workers = 2;
        QueryScheduler scheduler(store, cache, options);
        return scheduler.runBatch(queries);
    };
    const auto a = digestsOf(mutated);
    const auto b = digestsOf(rebuilt);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a[i].outcome, QueryOutcome::Completed);
        EXPECT_EQ(a[i].digest, b[i].digest);
        EXPECT_EQ(a[i].values, b[i].values);
    }
}

TEST(SchedulerMutation, ApplyFaultLeavesTheEntryUnchanged)
{
    GraphStore store;
    store.add("g", rmatGraph());
    const graph::Csr before = store.at("g").graph;
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 1;
    options.faultPlan = fault::FaultPlan(404).site(
        fault::Site::MutationApply, 1.0);
    QueryScheduler scheduler(store, cache, options);

    MutationSpec mutation;
    mutation.graph = "g";
    mutation.generate = dynamic::GeneratorSpec{.seed = 8, .inserts = 6};
    const auto result =
        scheduler.runBatch(std::vector{mutation},
                           std::span<const QuerySpec>{});
    ASSERT_EQ(result.mutations.size(), 1u);
    const MutationResult &r = result.mutations[0];
    EXPECT_FALSE(r.applied);
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->kind, ServiceErrorKind::Mutation);
    EXPECT_TRUE(r.error->retryable());
    ASSERT_FALSE(r.faultTrace.empty());
    EXPECT_EQ(r.faultTrace.front().site, fault::Site::MutationApply);
    EXPECT_EQ(store.epochOf("g"), 0u);
    EXPECT_EQ(store.at("g").graph, before);
}

TEST(SchedulerMutation, CompactFaultLandsTheMutationWithoutCompaction)
{
    GraphStore store;
    store.add("g", hubGraph());
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 1;
    options.faultPlan = fault::FaultPlan(505).site(
        fault::Site::MutationCompact, 1.0);
    QueryScheduler scheduler(store, cache, options);

    MutationSpec mutation;
    mutation.graph = "g";
    mutation.mutations = hubDeletes(150); // trips the slack threshold
    const auto result =
        scheduler.runBatch(std::vector{mutation},
                           std::span<const QuerySpec>{});
    ASSERT_EQ(result.mutations.size(), 1u);
    const MutationResult &r = result.mutations[0];
    // The batch landed — only slack reclamation was interrupted.
    EXPECT_TRUE(r.applied);
    EXPECT_EQ(r.epoch, 1u);
    EXPECT_FALSE(r.compacted);
    ASSERT_TRUE(r.error.has_value());
    EXPECT_EQ(r.error->kind, ServiceErrorKind::Mutation);
    EXPECT_EQ(store.epochOf("g"), 1u);
    EXPECT_EQ(store.at("g").graph.numEdges(), 50u);

    // Without the plan, the same batch compacts cleanly.
    GraphStore clean_store;
    clean_store.add("g", hubGraph());
    const MutateResult clean =
        clean_store.mutate("g", hubDeletes(150));
    EXPECT_TRUE(clean.compacted);
    EXPECT_GT(clean.reclaimed, 0u);
    EXPECT_EQ(clean.slackSlots, 0u);
}

TEST(ScriptMutate, RunsEndToEnd)
{
    const auto graph_path = tempPath("script.el");
    {
        std::ofstream out(graph_path);
        const graph::Csr csr = rmatGraph(91);
        graph::saveEdgeList(csr.toCoo(), out);
    }

    std::istringstream script(
        "load g " + graph_path.string() + "\n"
        "mutate g inserts=8 deletes=4 reweights=2 seed=6\n"
        "query g bfs source=1\n"
        "run\n");
    std::ostringstream out;
    ScriptOptions options;
    options.workers = 1;
    EXPECT_EQ(runScript(script, out, options), 0);
    const std::string text = out.str();
    EXPECT_NE(text.find("mutation 0 g applied=1 epoch=1 inserts=8 "
                        "deletes=4 reweights=2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("query 0 g BFS outcome=completed"),
              std::string::npos)
        << text;
    std::filesystem::remove(graph_path);
}

TEST(ScriptMutate, RejectsMalformedCommands)
{
    const auto fails = [](const std::string &line) {
        std::istringstream script(line);
        std::ostringstream out;
        EXPECT_THROW(runScript(script, out, {}), std::runtime_error)
            << line;
    };
    fails("mutate\n");
    fails("mutate g inserts\n");
    fails("mutate g bogus=1\n");
    fails("mutate g max-weight=0\n");
}

} // namespace
} // namespace tigr::service
