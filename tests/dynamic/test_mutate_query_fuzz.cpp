/**
 * @file
 * Differential mutate→query fuzz shard: seeded random interleavings of
 * mutation batches and query batches where every arena-served result —
 * pull queries off the reverse arena included — must bit-match a
 * dense-rebuild oracle (a second store that applies the same mutations
 * and materializes the dense CSR before every query), at 1/2/8 workers
 * and across all frontier modes. The mutated store is never pinned, so
 * its dense copy stays stale for the whole run and every virtual-
 * strategy query after the first mutation exercises the arena path.
 */
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/mutation.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::service {
namespace {

graph::Csr
rmatGraph(std::uint64_t seed)
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 400, .edges = 3600, .seed = seed}));
}

/** ctest runs each test case as its own process: key the scratch file
 *  on the pid so parallel cases never race on one path. */
std::filesystem::path
tempPath(const std::string &name)
{
    return std::filesystem::temp_directory_path() /
           ("tigr_fuzz_test_" +
            std::to_string(static_cast<std::uint64_t>(::getpid())) +
            "_" + name);
}

/** Store entry with a persisted virtual section (degree bound 8,
 *  coalesced), so mutations maintain the forward AND reverse arena
 *  virtualizers. */
void
addVirtualEntry(GraphStore &store, const std::string &name,
                const graph::Csr &csr)
{
    const auto path = tempPath(name + ".tgs");
    Snapshot snapshot;
    snapshot.graph = csr;
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = 8;
    snapshot.virtualLayout = transform::EdgeLayout::Coalesced;
    {
        const transform::VirtualGraph vg(
            csr, 8, transform::EdgeLayout::Coalesced);
        snapshot.virtualNodes.assign(vg.virtualNodes().begin(),
                                     vg.virtualNodes().end());
    }
    saveSnapshotFile(snapshot, path);
    store.addSnapshot(name, path);
    std::filesystem::remove(path);
}

/** One mutate→query round of the interleaving. */
struct Round
{
    std::vector<MutationSpec> mutations;
    std::vector<QuerySpec> queries;
};

/** The interleaving is a pure function of the fuzz seed, so every
 *  store (arena path, dense oracle) and every worker count replays the
 *  exact same sequence. */
std::vector<Round>
generateRounds(std::uint64_t fuzz_seed, std::size_t rounds)
{
    std::mt19937_64 rng(fuzz_seed);
    const engine::Algorithm algos[] = {
        engine::Algorithm::Bfs, engine::Algorithm::Sssp,
        engine::Algorithm::Sswp, engine::Algorithm::Cc,
        engine::Algorithm::Pr,  engine::Algorithm::Bc};
    const engine::FrontierMode modes[] = {
        engine::FrontierMode::Dense, engine::FrontierMode::Sparse,
        engine::FrontierMode::Adaptive};

    std::vector<Round> plan(rounds);
    for (Round &round : plan) {
        for (const char *name : {"g", "p"}) {
            MutationSpec mutation;
            mutation.graph = name;
            mutation.generate = dynamic::GeneratorSpec{
                .seed = rng() % 10000,
                .inserts = 5 + rng() % 25,
                .deletes = rng() % 15,
                .reweights = rng() % 10};
            round.mutations.push_back(std::move(mutation));
        }
        for (std::size_t i = 0; i < 12; ++i) {
            QuerySpec spec;
            spec.graph = (i % 2 == 0) ? "g" : "p";
            spec.algorithm = algos[rng() % 6];
            spec.source = static_cast<NodeId>(rng() % 400);
            spec.strategy = (rng() % 2 == 0)
                                ? engine::Strategy::TigrVPlus
                                : engine::Strategy::TigrV;
            spec.direction = (rng() % 2 == 0)
                                 ? engine::Direction::Pull
                                 : engine::Direction::Push;
            spec.frontier = modes[rng() % 3];
            spec.degreeBound = 8;
            spec.prIterations = 10;
            round.queries.push_back(std::move(spec));
        }
    }
    return plan;
}

/** Flat per-query record: the bit-identity witness the differential
 *  and worker-invariance passes compare. */
struct Record
{
    QueryOutcome outcome;
    std::uint64_t digest;
    std::size_t values;
    unsigned iterations;
    bool converged;
    bool arenaServed;
};

/** Replay the interleaving against a never-pinned store: after the
 *  first mutation every virtual-strategy query is arena-served. */
std::vector<Record>
runArenaPath(const std::vector<Round> &plan, unsigned workers,
             std::uint64_t *arena_counter = nullptr)
{
    GraphStore store;
    addVirtualEntry(store, "g", rmatGraph(131));
    store.add("p", rmatGraph(132)); // no virtual section: on-the-fly
    obs::MetricsRegistry registry;
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = workers;
    options.metrics = &registry;
    QueryScheduler scheduler(store, cache, options);

    std::vector<Record> records;
    for (const Round &round : plan) {
        const MutationBatchResult result =
            scheduler.runBatch(round.mutations, round.queries);
        for (const MutationResult &m : result.mutations) {
            EXPECT_TRUE(m.applied) << m.message;
            EXPECT_FALSE(m.error.has_value());
        }
        for (const QueryResult &r : result.queries) {
            EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;
            // The dense copy is stale from the round's own mutation
            // and nothing here re-warms it.
            EXPECT_TRUE(r.arenaServed);
            EXPECT_FALSE(r.cacheHit);
            records.push_back({r.outcome, r.digest, r.values,
                               r.info.iterations, r.info.converged,
                               r.arenaServed});
        }
    }
    // Arena serving is observable: one counter tick per served query.
    EXPECT_EQ(registry.counter("scheduler.arena_served").value(),
              records.size());
    if (arena_counter)
        *arena_counter =
            registry.counter("scheduler.arena_served").value();
    return records;
}

/** Replay the same interleaving against the oracle: apply each round's
 *  mutations, pin both graphs (materializing the dense CSR and its
 *  reversal), then run the round's queries on the dense path. */
std::vector<Record>
runDenseOracle(const std::vector<Round> &plan, unsigned workers)
{
    GraphStore store;
    addVirtualEntry(store, "g", rmatGraph(131));
    store.add("p", rmatGraph(132));
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = workers;
    QueryScheduler scheduler(store, cache, options);

    std::vector<Record> records;
    for (const Round &round : plan) {
        const MutationBatchResult applied = scheduler.runBatch(
            round.mutations, std::span<const QuerySpec>{});
        for (const MutationResult &m : applied.mutations)
            EXPECT_TRUE(m.applied) << m.message;
        store.pin("g");
        store.pin("p");
        const std::vector<QueryResult> results =
            scheduler.runBatch(round.queries);
        for (const QueryResult &r : results) {
            EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;
            EXPECT_FALSE(r.arenaServed);
            records.push_back({r.outcome, r.digest, r.values,
                               r.info.iterations, r.info.converged,
                               r.arenaServed});
        }
    }
    return records;
}

void
expectValueIdentical(const std::vector<Record> &got,
                     const std::vector<Record> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        EXPECT_EQ(got[i].outcome, want[i].outcome);
        EXPECT_EQ(got[i].digest, want[i].digest);
        EXPECT_EQ(got[i].values, want[i].values);
        EXPECT_EQ(got[i].iterations, want[i].iterations);
        EXPECT_EQ(got[i].converged, want[i].converged);
    }
}

class MutateQueryFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MutateQueryFuzz, ArenaServedResultsBitMatchTheDenseOracle)
{
    const std::vector<Round> plan = generateRounds(GetParam(), 4);

    const std::vector<Record> arena = runArenaPath(plan, 1);
    const std::vector<Record> oracle = runDenseOracle(plan, 2);
    expectValueIdentical(arena, oracle);

    // And the arena path itself is worker-count-invariant.
    for (const unsigned workers : {2u, 8u}) {
        SCOPED_TRACE(std::to_string(workers) + " workers");
        const std::vector<Record> again = runArenaPath(plan, workers);
        ASSERT_EQ(again.size(), arena.size());
        for (std::size_t i = 0; i < arena.size(); ++i) {
            EXPECT_EQ(again[i].digest, arena[i].digest) << i;
            EXPECT_EQ(again[i].iterations, arena[i].iterations) << i;
            EXPECT_EQ(again[i].arenaServed, arena[i].arenaServed) << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutateQueryFuzz,
                         ::testing::Values(std::uint64_t{1},
                                           std::uint64_t{2},
                                           std::uint64_t{3}),
                         [](const auto &info) {
                             return "seed" +
                                    std::to_string(info.param);
                         });

TEST(MutateQueryFuzz, PullUnderUdtIsRejectedAtAdmission)
{
    GraphStore store;
    store.add("g", rmatGraph(131));
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 1;
    QueryScheduler scheduler(store, cache, options);

    QuerySpec spec;
    spec.graph = "g";
    spec.algorithm = engine::Algorithm::Bfs;
    spec.strategy = engine::Strategy::TigrUdt;
    spec.direction = engine::Direction::Pull;
    const auto results =
        scheduler.runBatch(std::vector<QuerySpec>{spec});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, QueryOutcome::Rejected);
    ASSERT_TRUE(results[0].error.has_value());
    EXPECT_EQ(results[0].error->kind, ServiceErrorKind::InvalidQuery);
}

TEST(MutateQueryFuzz, MidBurstAdmissionNeverMaterializesTheDenseCopy)
{
    // The mid-burst regression the issue pins: a query admitted while
    // the dense copy is stale (arena fresh) must neither materialize
    // the dense entry eagerly nor misreport transformCached.
    GraphStore store;
    addVirtualEntry(store, "g", rmatGraph(131));
    store.add("p", rmatGraph(132));
    TransformCache cache(std::size_t{64} << 20);
    SchedulerOptions options;
    options.workers = 2;
    QueryScheduler scheduler(store, cache, options);

    MutationSpec mutate_g;
    mutate_g.graph = "g";
    mutate_g.generate = dynamic::GeneratorSpec{.seed = 7,
                                               .inserts = 16,
                                               .deletes = 6};
    MutationSpec mutate_p = mutate_g;
    mutate_p.graph = "p";
    const std::vector<MutationSpec> mutations{mutate_g, mutate_p};

    QuerySpec pull;
    pull.graph = "g";
    pull.algorithm = engine::Algorithm::Sssp;
    pull.direction = engine::Direction::Pull;
    pull.strategy = engine::Strategy::TigrVPlus;
    pull.degreeBound = 8;
    QuerySpec push_plain = pull;
    push_plain.graph = "p";
    push_plain.direction = engine::Direction::Push;
    const std::vector<QuerySpec> queries{pull, push_plain};

    const MutationBatchResult result =
        scheduler.runBatch(mutations, queries);
    ASSERT_EQ(result.queries.size(), 2u);
    for (const QueryResult &r : result.queries) {
        EXPECT_EQ(r.outcome, QueryOutcome::Completed) << r.message;
        EXPECT_TRUE(r.arenaServed);
        EXPECT_FALSE(r.cacheHit);
    }
    // "g" carries maintained arena virtualizers matched to the spec
    // (K=8, coalesced = TigrV+): the run reuses them, and says so.
    EXPECT_TRUE(result.queries[0].info.transformCached);
    // "p" has no virtual section: the provider enumerates on the fly.
    EXPECT_FALSE(result.queries[1].info.transformCached);

    // The burst is over and neither dense copy materialized: both
    // views still flag the dense entry stale, and the peeked stored
    // entry still carries the pre-mutation epoch — the direct witness
    // that no eager rebuild happened — while the live epoch advanced.
    EXPECT_TRUE(store.arenaView("g").staleDense);
    EXPECT_TRUE(store.arenaView("p").staleDense);
    ASSERT_NE(store.peek("g"), nullptr);
    EXPECT_EQ(store.peek("g")->epoch, 0u);
    EXPECT_EQ(store.epochOf("g"), 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
}

} // namespace
} // namespace tigr::service
