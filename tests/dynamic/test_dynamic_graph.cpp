/**
 * @file
 * DynamicGraph: the slack-arena mutable CSR. Pins the strong exception
 * guarantee of apply(), projected-state validation, slack accounting,
 * compaction, and the bit-identity of toCsr() against a reference
 * adjacency-list model of the same mutation semantics.
 */
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace tigr::dynamic {
namespace {

/** 0->1, 0->2, 1->2, 2->0, weights 10/20/30/40. */
graph::Csr
smallGraph()
{
    graph::CooEdges coo(3);
    coo.add(0, 1, 10);
    coo.add(0, 2, 20);
    coo.add(1, 2, 30);
    coo.add(2, 0, 40);
    return graph::Csr::fromCoo(coo);
}

/** Reference model: per-vertex (dst, weight) lists with the documented
 *  mutation semantics — insert appends, delete/reweight hit the first
 *  (src, dst) occurrence. */
class ReferenceGraph
{
  public:
    explicit ReferenceGraph(const graph::Csr &csr) : adj_(csr.numNodes())
    {
        for (NodeId v = 0; v < csr.numNodes(); ++v)
            for (EdgeIndex e = csr.edgeBegin(v); e < csr.edgeEnd(v); ++e)
                adj_[v].emplace_back(csr.edgeTarget(e),
                                     csr.edgeWeight(e));
    }

    void
    apply(const MutationBatch &batch)
    {
        for (const Mutation &m : batch) {
            auto &edges = adj_[m.src];
            switch (m.kind) {
              case MutationKind::InsertEdge:
                edges.emplace_back(m.dst, m.weight);
                break;
              case MutationKind::DeleteEdge:
                for (auto it = edges.begin(); it != edges.end(); ++it)
                    if (it->first == m.dst) {
                        edges.erase(it);
                        break;
                    }
                break;
              case MutationKind::UpdateWeight:
                for (auto &edge : edges)
                    if (edge.first == m.dst) {
                        edge.second = m.weight;
                        break;
                    }
                break;
            }
        }
    }

    graph::Csr
    toCsr() const
    {
        graph::CooEdges coo(static_cast<NodeId>(adj_.size()));
        for (NodeId v = 0; v < static_cast<NodeId>(adj_.size()); ++v)
            for (const auto &[dst, weight] : adj_[v])
                coo.add(v, dst, weight);
        return graph::Csr::fromCoo(coo);
    }

  private:
    std::vector<std::vector<std::pair<NodeId, Weight>>> adj_;
};

TEST(DynamicGraph, ConstructionAdoptsTheSourceTightly)
{
    const graph::Csr csr = smallGraph();
    const DynamicGraph dg(csr);
    EXPECT_EQ(dg.numNodes(), 3u);
    EXPECT_EQ(dg.numEdges(), 4u);
    EXPECT_EQ(dg.epoch(), 0u);
    EXPECT_EQ(dg.slackSlots(), 0u);
    EXPECT_EQ(dg.toCsr(), csr);
    for (NodeId v = 0; v < 3; ++v) {
        EXPECT_EQ(dg.degree(v), csr.degree(v));
        EXPECT_EQ(dg.capacity(v), csr.degree(v));
    }
}

TEST(DynamicGraph, AppliesOneBatchAsOneEpoch)
{
    DynamicGraph dg(smallGraph());
    const MutationBatch batch{
        {MutationKind::InsertEdge, 1, 0, 7},
        {MutationKind::DeleteEdge, 0, 2, 0},
        {MutationKind::UpdateWeight, 2, 0, 99},
    };
    const EpochDelta delta = dg.apply(batch);
    EXPECT_EQ(delta.epoch, 1u);
    EXPECT_EQ(dg.epoch(), 1u);
    EXPECT_EQ(delta.inserts, 1u);
    EXPECT_EQ(delta.deletes, 1u);
    EXPECT_EQ(delta.reweights, 1u);
    EXPECT_EQ(dg.numEdges(), 4u);

    // touched: sorted, unique, with correct degree deltas. Vertex 2 is
    // reweight-only (oldDegree == newDegree).
    ASSERT_EQ(delta.touched.size(), 3u);
    EXPECT_EQ(delta.touched[0], (TouchedVertex{0, 2, 1}));
    EXPECT_EQ(delta.touched[1], (TouchedVertex{1, 1, 2}));
    EXPECT_EQ(delta.touched[2], (TouchedVertex{2, 1, 1}));

    // 0's surviving edge, 1's appended edge, 2's new weight.
    ASSERT_EQ(dg.degree(0), 1u);
    EXPECT_EQ(dg.outNeighbors(0)[0], 1u);
    ASSERT_EQ(dg.degree(1), 2u);
    EXPECT_EQ(dg.outNeighbors(1)[1], 0u);
    EXPECT_EQ(dg.outWeights(1)[1], 7u);
    EXPECT_EQ(dg.outWeights(2)[0], 99u);
}

TEST(DynamicGraph, RejectedBatchLeavesTheGraphBitIdentical)
{
    DynamicGraph dg(smallGraph());
    const graph::Csr before = dg.toCsr();
    // Valid inserts around an invalid delete: nothing may land.
    const MutationBatch batch{
        {MutationKind::InsertEdge, 0, 0, 5},
        {MutationKind::DeleteEdge, 1, 1, 0}, // (1, 1) does not exist
        {MutationKind::InsertEdge, 2, 2, 5},
    };
    try {
        dg.apply(batch);
        FAIL() << "expected MutationError";
    } catch (const MutationError &error) {
        EXPECT_EQ(error.kind(), MutationErrorKind::MissingEdge);
        EXPECT_EQ(error.index(), 1u);
    }
    EXPECT_EQ(dg.epoch(), 0u);
    EXPECT_EQ(dg.toCsr(), before);
    EXPECT_EQ(dg.slackSlots(), 0u);
}

TEST(DynamicGraph, ValidatesAgainstTheProjectedState)
{
    // Deleting an edge inserted earlier in the same batch is legal...
    {
        DynamicGraph dg(smallGraph());
        const MutationBatch batch{
            {MutationKind::InsertEdge, 1, 1, 3},
            {MutationKind::DeleteEdge, 1, 1, 0},
        };
        EXPECT_NO_THROW(dg.apply(batch));
        EXPECT_EQ(dg.degree(1), 1u);
    }
    // ...but a second delete of the same pair is not.
    {
        DynamicGraph dg(smallGraph());
        const MutationBatch batch{
            {MutationKind::DeleteEdge, 0, 1, 0},
            {MutationKind::DeleteEdge, 0, 1, 0},
        };
        try {
            dg.apply(batch);
            FAIL() << "expected MutationError";
        } catch (const MutationError &error) {
            EXPECT_EQ(error.kind(), MutationErrorKind::MissingEdge);
            EXPECT_EQ(error.index(), 1u);
        }
    }
    // Reweighting a pair the batch already deleted fails too.
    {
        DynamicGraph dg(smallGraph());
        const MutationBatch batch{
            {MutationKind::DeleteEdge, 0, 1, 0},
            {MutationKind::UpdateWeight, 0, 1, 9},
        };
        EXPECT_THROW(dg.apply(batch), MutationError);
    }
}

TEST(DynamicGraph, RejectsOutOfRangeNodes)
{
    DynamicGraph dg(smallGraph());
    try {
        dg.apply({{MutationKind::InsertEdge, 9, 0, 1}});
        FAIL() << "expected MutationError";
    } catch (const MutationError &error) {
        EXPECT_EQ(error.kind(), MutationErrorKind::SourceOutOfRange);
    }
    try {
        dg.apply({{MutationKind::InsertEdge, 0, 9, 1}});
        FAIL() << "expected MutationError";
    } catch (const MutationError &error) {
        EXPECT_EQ(error.kind(), MutationErrorKind::TargetOutOfRange);
    }
    EXPECT_EQ(dg.epoch(), 0u);
}

TEST(DynamicGraph, InsertIntoFullSegmentRelocatesWithSlack)
{
    DynamicGraph dg(smallGraph());
    const EdgeIndex cap_before = dg.capacity(0);
    dg.apply({{MutationKind::InsertEdge, 0, 0, 1}});
    EXPECT_GT(dg.capacity(0), cap_before);
    EXPECT_GT(dg.slackSlots(), 0u); // the abandoned block is dead slack
    ASSERT_EQ(dg.degree(0), 3u);
    EXPECT_EQ(dg.outNeighbors(0)[2], 0u);
    // Neighbor segments are untouched.
    EXPECT_EQ(dg.outNeighbors(2)[0], 0u);
    EXPECT_EQ(dg.outWeights(2)[0], 40u);
}

TEST(DynamicGraph, CompactRebuildsATightArena)
{
    DynamicGraph dg(graph::Csr::fromCoo(
        graph::rmat({.nodes = 200, .edges = 1600, .seed = 5})));
    // Churn until there is real slack.
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        dg.apply(generateBatch(
            dg.toCsr(),
            {.seed = seed, .inserts = 40, .deletes = 30, .reweights = 10}));
    ASSERT_GT(dg.slackSlots(), 0u);

    const graph::Csr before = dg.toCsr();
    const std::uint64_t epoch = dg.epoch();
    const EdgeIndex slack = dg.slackSlots();
    const EdgeIndex reclaimed = dg.compact();
    EXPECT_EQ(reclaimed, slack);
    EXPECT_EQ(dg.slackSlots(), 0u);
    EXPECT_EQ(dg.epoch(), epoch); // compaction is not an epoch
    EXPECT_EQ(dg.compactions(), 1u);
    EXPECT_EQ(dg.toCsr(), before); // no live edge moved logically
}

TEST(DynamicGraph, ShouldCompactTracksTheSlackThreshold)
{
    // 200 edges out of one hub; deleting 150 leaves 150 dead slots of
    // a 200-slot arena: > 50% slack and >= 64 slots.
    graph::CooEdges coo(300);
    for (NodeId i = 0; i < 200; ++i)
        coo.add(0, i + 1, 1);
    DynamicGraph dg(graph::Csr::fromCoo(coo));
    EXPECT_FALSE(dg.shouldCompact());

    MutationBatch batch;
    for (NodeId i = 0; i < 150; ++i)
        batch.push_back({MutationKind::DeleteEdge, 0, i + 1, 0});
    dg.apply(batch);
    EXPECT_TRUE(dg.shouldCompact());
    dg.compact();
    EXPECT_FALSE(dg.shouldCompact());
}

TEST(DynamicGraph, MatchesTheReferenceModelOverGeneratedChurn)
{
    const graph::Csr start = graph::Csr::fromCoo(
        graph::rmat({.nodes = 400, .edges = 3200, .seed = 23}));
    DynamicGraph dg(start);
    ReferenceGraph ref(start);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const MutationBatch batch = generateBatch(
            dg.toCsr(), {.seed = seed * 31,
                         .inserts = 25,
                         .deletes = 20,
                         .reweights = 15});
        dg.apply(batch);
        ref.apply(batch);
        ASSERT_EQ(dg.toCsr(), ref.toCsr()) << "epoch " << seed;
        if (dg.shouldCompact()) {
            dg.compact();
            ASSERT_EQ(dg.toCsr(), ref.toCsr())
                << "after compaction at epoch " << seed;
        }
    }
    EXPECT_EQ(dg.epoch(), 6u);
}

} // namespace
} // namespace tigr::dynamic
