/**
 * @file
 * Arena-addressed virtualizer suite: entries that point straight into
 * the DynamicGraph slack arena must canonicalize byte-identically to a
 * from-scratch dense rebuild after every batch, repair strictly
 * O(touched families) (untouched families never move), survive graph
 * and entry-arena compaction through rebase(), and drive the push
 * engine (ArenaVirtualProvider) to values bit-identical to a Schedule
 * over the dense CSR at every pool size and frontier mode.
 */
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algorithms/semirings.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_virtualizer.hpp"
#include "dynamic/mutation.hpp"
#include "engine/arena_provider.hpp"
#include "engine/push_engine.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "par/thread_pool.hpp"
#include "ref/oracles.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::dynamic {
namespace {

graph::Csr
skewedGraph(std::uint64_t seed)
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 500, .edges = 5000, .seed = seed}));
}

graph::Csr
weightedGraph(std::uint64_t seed)
{
    graph::BuildOptions options;
    options.randomizeWeights = true;
    options.maxWeight = 40;
    options.weightSeed = seed;
    return graph::GraphBuilder(options).build(
        graph::rmat({.nodes = 384, .edges = 5000, .seed = seed}));
}

const GeneratorSpec kSweeps[] = {
    {.seed = 0, .inserts = 48, .deletes = 6, .reweights = 6},
    {.seed = 0, .inserts = 6, .deletes = 48, .reweights = 6},
    {.seed = 0, .inserts = 0, .deletes = 0, .reweights = 40},
    {.seed = 0, .inserts = 20, .deletes = 20, .reweights = 20},
};

class ArenaDifferential
    : public ::testing::TestWithParam<
          std::tuple<NodeId, transform::EdgeLayout>>
{
};

TEST_P(ArenaDifferential, MatchesRebuildAfterEveryBatch)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(17));
    IncrementalVirtualizer virt(dg, k, layout,
                                StartAddressing::Arena);
    ASSERT_EQ(virt.addressing(), StartAddressing::Arena);
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);

    std::uint64_t round = 0;
    for (const GeneratorSpec &sweep : kSweeps) {
        for (std::uint64_t i = 0; i < 3; ++i) {
            GeneratorSpec spec = sweep;
            spec.seed = 100 + round++;
            const EpochDelta delta =
                dg.apply(generateBatch(dg.toCsr(), spec));
            const RepairStats stats = virt.applyDelta(delta);
            EXPECT_EQ(stats.epoch, delta.epoch);
            // Arena addressing never shifts untouched entries.
            EXPECT_EQ(stats.shiftedEntries, 0u);
            ASSERT_EQ(differentialCheck(dg, virt), std::nullopt)
                << "epoch " << delta.epoch;
            if (virt.shouldCompactEntries()) {
                virt.rebase();
                ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
            }
        }
    }
}

TEST_P(ArenaDifferential, SurvivesGraphCompactionThroughRebase)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(23));
    IncrementalVirtualizer virt(dg, k, layout,
                                StartAddressing::Arena);

    // Delete-heavy batches until the slack threshold fires.
    GeneratorSpec spec{.seed = 5, .inserts = 2, .deletes = 120,
                       .reweights = 0};
    bool compacted = false;
    for (std::uint64_t round = 0; round < 30 && !compacted; ++round) {
        spec.seed = 500 + round;
        virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec)));
        if (dg.shouldCompact()) {
            dg.compact();
            compacted = true;
        }
    }
    ASSERT_TRUE(compacted) << "slack threshold never fired";

    // Compaction renumbered every arena slot: stale-slot reads and
    // repairs must be refused until rebase().
    EXPECT_THROW((void)virt.canonicalNodes(), std::logic_error);
    EXPECT_THROW(
        virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec))),
        std::logic_error);

    const RepairStats stats = virt.rebase();
    EXPECT_EQ(stats.repairedVertices, dg.numNodes());
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);

    // And the repair loop continues cleanly afterwards.
    spec.seed = 997;
    virt.applyDelta(dg.apply(generateBatch(dg.toCsr(), spec)));
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST_P(ArenaDifferential, CanonicalizationMatchesDenseVirtualizer)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(29));
    IncrementalVirtualizer arena(dg, k, layout,
                                 StartAddressing::Arena);
    IncrementalVirtualizer dense(dg, k, layout);

    GeneratorSpec spec{.seed = 0, .inserts = 30, .deletes = 20,
                       .reweights = 10};
    for (std::uint64_t round = 0; round < 6; ++round) {
        spec.seed = 700 + round;
        const EpochDelta delta =
            dg.apply(generateBatch(dg.toCsr(), spec));
        arena.applyDelta(delta);
        dense.applyDelta(delta);

        const std::vector<transform::VirtualNode> canon =
            arena.nodesCopy();
        const auto want = dense.virtualNodes();
        ASSERT_EQ(canon.size(), want.size());
        for (std::size_t i = 0; i < canon.size(); ++i)
            ASSERT_EQ(canon[i], want[i]) << "entry " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Arena, ArenaDifferential,
    ::testing::Combine(
        ::testing::Values(NodeId{2}, NodeId{8}, NodeId{32}),
        ::testing::Values(transform::EdgeLayout::Consecutive,
                          transform::EdgeLayout::Coalesced)),
    [](const auto &info) {
        return "K" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ==
                        transform::EdgeLayout::Coalesced
                    ? "_coalesced"
                    : "_consecutive");
    });

TEST(ArenaVirtualizer, UntouchedFamiliesKeepTheirBytes)
{
    // Grow only vertex 3; every other family's raw arena entries —
    // position and bytes — must be exactly what they were. This is the
    // O(touched) property stated as memory, not time.
    DynamicGraph dg(skewedGraph(41));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced,
                                StartAddressing::Arena);

    struct Saved
    {
        NodeId v;
        std::vector<transform::VirtualNode> entries;
    };
    std::vector<Saved> before;
    for (NodeId v = 0; v < dg.numNodes(); ++v) {
        if (v == 3)
            continue;
        const auto fam = virt.familyOf(v);
        before.push_back({v, {fam.begin(), fam.end()}});
    }

    MutationBatch batch;
    for (std::size_t i = 0; i < 24; ++i)
        batch.push_back({MutationKind::InsertEdge, 3,
                         static_cast<NodeId>(7 + i), 5});
    const RepairStats stats = virt.applyDelta(dg.apply(batch));
    EXPECT_EQ(stats.repairedVertices, 1u);
    EXPECT_EQ(stats.shiftedEntries, 0u);

    for (const Saved &saved : before) {
        const auto fam = virt.familyOf(saved.v);
        ASSERT_EQ(fam.size(), saved.entries.size())
            << "node " << saved.v;
        for (std::size_t i = 0; i < fam.size(); ++i)
            ASSERT_EQ(fam[i], saved.entries[i])
                << "node " << saved.v << " entry " << i;
    }
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(ArenaVirtualizer, RelocationWithUnchangedDegreeStillRepairs)
{
    // One batch that inserts into a full segment (relocating it to the
    // arena tail) and deletes another edge of the same vertex: the
    // degree round-trips, but the segment moved, so skipping the
    // repair would leave entries pointing at dead slots. The anchor
    // test (entry 0's start == segment begin) must catch it.
    graph::CooEdges coo(8);
    for (NodeId v = 0; v < 8; ++v)
        for (NodeId j = 1; j <= 4; ++j)
            coo.add(v, (v + j) % 8, 1 + j);
    DynamicGraph dg(graph::Csr::fromCoo(coo));
    IncrementalVirtualizer virt(dg, 2,
                                transform::EdgeLayout::Consecutive,
                                StartAddressing::Arena);
    const EdgeIndex begin_before = dg.edgeBegin(2);

    MutationBatch batch;
    batch.push_back({MutationKind::InsertEdge, 2, 7, 9});
    batch.push_back({MutationKind::DeleteEdge, 2, 3, 0});
    const EpochDelta delta = dg.apply(batch);
    ASSERT_EQ(delta.touched.size(), 1u);
    EXPECT_EQ(delta.touched[0].oldDegree, delta.touched[0].newDegree);
    ASSERT_NE(dg.edgeBegin(2), begin_before)
        << "segment was expected to relocate";

    const RepairStats stats = virt.applyDelta(delta);
    EXPECT_EQ(stats.repairedVertices, 1u);
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(ArenaVirtualizer, SkipsUntouchedDegreePreservingFamilies)
{
    // A reweight-only batch relocates nothing and changes no degree:
    // the whole touched set short-circuits through the staleness test.
    DynamicGraph dg(skewedGraph(43));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced,
                                StartAddressing::Arena);
    GeneratorSpec spec{.seed = 11, .inserts = 0, .deletes = 0,
                       .reweights = 30};
    const EpochDelta delta =
        dg.apply(generateBatch(dg.toCsr(), spec));
    ASSERT_FALSE(delta.touched.empty());
    const RepairStats stats = virt.applyDelta(delta);
    EXPECT_EQ(stats.repairedVertices, 0u);
    EXPECT_EQ(stats.resplitFamilies, 0u);
    EXPECT_EQ(stats.relocatedFamilies, 0u);
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(ArenaVirtualizer, ParallelBuildRebaseAndCanonicalizeBitIdentical)
{
    // The pool parallelizes the build, the rebase sweep, and
    // canonicalization; every product must be bit-identical at 1, 2,
    // and 8 workers to the serial run.
    DynamicGraph dg(skewedGraph(47));
    GeneratorSpec spec{.seed = 3, .inserts = 40, .deletes = 25,
                       .reweights = 10};
    for (std::uint64_t round = 0; round < 4; ++round) {
        spec.seed = 300 + round;
        dg.apply(generateBatch(dg.toCsr(), spec));
    }

    IncrementalVirtualizer serial(dg, 8,
                                  transform::EdgeLayout::Coalesced,
                                  StartAddressing::Arena);
    const std::vector<transform::VirtualNode> serial_raw(
        serial.virtualNodes().begin(), serial.virtualNodes().end());
    const std::vector<transform::VirtualNode> serial_canon =
        serial.nodesCopy();

    for (const unsigned workers : {1u, 2u, 8u}) {
        par::ThreadPool pool(workers);
        IncrementalVirtualizer virt(
            dg, 8, transform::EdgeLayout::Coalesced,
            StartAddressing::Arena, &pool);
        const auto raw = virt.virtualNodes();
        ASSERT_EQ(raw.size(), serial_raw.size());
        for (std::size_t i = 0; i < raw.size(); ++i)
            ASSERT_EQ(raw[i], serial_raw[i])
                << workers << " workers, entry " << i;
        const std::vector<transform::VirtualNode> canon =
            virt.canonicalNodes(&pool);
        ASSERT_EQ(canon.size(), serial_canon.size());
        for (std::size_t i = 0; i < canon.size(); ++i)
            ASSERT_EQ(canon[i], serial_canon[i])
                << workers << " workers, canonical entry " << i;

        const RepairStats stats = virt.rebase(&pool);
        EXPECT_EQ(stats.repairedVertices, dg.numNodes());
        ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);
    }
}

TEST(ArenaVirtualizer, RejectsOutOfOrderDeltas)
{
    DynamicGraph dg(skewedGraph(53));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced,
                                StartAddressing::Arena);
    GeneratorSpec spec{.seed = 1, .inserts = 5, .deletes = 0,
                       .reweights = 0};
    const EpochDelta delta =
        dg.apply(generateBatch(dg.toCsr(), spec));
    virt.applyDelta(delta);
    EXPECT_THROW(virt.applyDelta(delta), std::invalid_argument);
}

TEST(ArenaVirtualizer, DenseAddressingRefusesArenaOperations)
{
    DynamicGraph dg(skewedGraph(59));
    IncrementalVirtualizer dense(dg, 8,
                                 transform::EdgeLayout::Coalesced);
    EXPECT_THROW(dense.rebase(), std::logic_error);
}

// ---------------------------------------------------------------------
// Engine over the arena: queries with no dense materialization.

class ArenaEngine
    : public ::testing::TestWithParam<engine::FrontierMode>
{
  protected:
    /** Mutated graph + arena virtualizer + dense schedule reference
     *  over the same state. */
    struct Fixture
    {
        DynamicGraph dg;
        IncrementalVirtualizer virt;
        graph::Csr dense;

        explicit Fixture(transform::EdgeLayout layout)
            : dg(weightedGraph(61)),
              virt(dg, 8, layout, StartAddressing::Arena)
        {
            GeneratorSpec spec{.seed = 0, .inserts = 60,
                               .deletes = 30, .reweights = 20};
            for (std::uint64_t round = 0; round < 3; ++round) {
                spec.seed = 900 + round;
                virt.applyDelta(
                    dg.apply(generateBatch(dg.toCsr(), spec)));
            }
            dense = dg.toCsr();
        }
    };

    engine::PushOptions
    pushOptions(par::ThreadPool *pool) const
    {
        engine::PushOptions options;
        options.pool = pool;
        options.frontier = GetParam();
        return options;
    }
};

TEST_P(ArenaEngine, SsspMatchesDenseScheduleAndOracle)
{
    for (const transform::EdgeLayout layout :
         {transform::EdgeLayout::Consecutive,
          transform::EdgeLayout::Coalesced}) {
        Fixture fx(layout);
        const engine::Strategy strategy =
            layout == transform::EdgeLayout::Coalesced
                ? engine::Strategy::TigrVPlus
                : engine::Strategy::TigrV;
        engine::Schedule schedule =
            engine::Schedule::build(fx.dense, strategy, 8, 4);
        engine::ArenaVirtualProvider arena(fx.dg, fx.virt);
        sim::WarpSimulator sim;
        const std::pair<NodeId, Dist> seeds[] = {{0, 0}};

        // Serial arena run: the bit-identity baseline for the pools.
        const auto base = engine::runPush<algorithms::SsspSemiring>(
            arena, sim, pushOptions(nullptr), seeds);
        ASSERT_TRUE(base.converged);

        // Same fixed point as the dense schedule and the oracle.
        const auto dense = engine::runPush<algorithms::SsspSemiring>(
            schedule, sim, pushOptions(nullptr), seeds);
        ASSERT_TRUE(dense.converged);
        const auto oracle = ref::dijkstra(fx.dense, 0);
        for (NodeId v = 0; v < fx.dense.numNodes(); ++v) {
            ASSERT_EQ(base.values[v], dense.values[v]) << "node " << v;
            ASSERT_EQ(base.values[v], oracle[v]) << "node " << v;
        }

        for (const unsigned workers : {1u, 2u, 8u}) {
            par::ThreadPool pool(workers);
            const auto got =
                engine::runPush<algorithms::SsspSemiring>(
                    arena, sim, pushOptions(&pool), seeds);
            ASSERT_TRUE(got.converged);
            EXPECT_EQ(got.iterations, base.iterations)
                << workers << " workers";
            ASSERT_EQ(got.values.size(), base.values.size());
            for (NodeId v = 0; v < fx.dense.numNodes(); ++v)
                ASSERT_EQ(got.values[v], base.values[v])
                    << workers << " workers, node " << v;
        }
    }
}

TEST_P(ArenaEngine, SswpMatchesDenseScheduleAndOracle)
{
    Fixture fx(transform::EdgeLayout::Coalesced);
    engine::Schedule schedule = engine::Schedule::build(
        fx.dense, engine::Strategy::TigrVPlus, 8, 4);
    engine::ArenaVirtualProvider arena(fx.dg, fx.virt);
    sim::WarpSimulator sim;
    const std::pair<NodeId, Weight> seeds[] = {{0, kInfWeight}};

    const auto base = engine::runPush<algorithms::SswpSemiring>(
        arena, sim, pushOptions(nullptr), seeds);
    ASSERT_TRUE(base.converged);
    const auto dense = engine::runPush<algorithms::SswpSemiring>(
        schedule, sim, pushOptions(nullptr), seeds);
    ASSERT_TRUE(dense.converged);
    const auto oracle = ref::widestPath(fx.dense, 0);
    for (NodeId v = 0; v < fx.dense.numNodes(); ++v) {
        ASSERT_EQ(base.values[v], dense.values[v]) << "node " << v;
        ASSERT_EQ(base.values[v], oracle[v]) << "node " << v;
    }

    for (const unsigned workers : {1u, 2u, 8u}) {
        par::ThreadPool pool(workers);
        const auto got = engine::runPush<algorithms::SswpSemiring>(
            arena, sim, pushOptions(&pool), seeds);
        ASSERT_TRUE(got.converged);
        EXPECT_EQ(got.iterations, base.iterations)
            << workers << " workers";
        for (NodeId v = 0; v < fx.dense.numNodes(); ++v)
            ASSERT_EQ(got.values[v], base.values[v])
                << workers << " workers, node " << v;
    }
}

TEST_P(ArenaEngine, CcMatchesDenseScheduleAcrossPools)
{
    // Label propagation over whatever directed state the mutations
    // left: min-label fixed points are unique per edge set, so both
    // providers must land on the same labels.
    Fixture fx(transform::EdgeLayout::Coalesced);
    engine::Schedule schedule = engine::Schedule::build(
        fx.dense, engine::Strategy::TigrVPlus, 8, 4);
    engine::ArenaVirtualProvider arena(fx.dg, fx.virt);
    sim::WarpSimulator sim;
    std::vector<std::pair<NodeId, NodeId>> seeds;
    for (NodeId v = 0; v < fx.dense.numNodes(); ++v)
        seeds.emplace_back(v, v);

    const auto base = engine::runPush<algorithms::CcSemiring>(
        arena, sim, pushOptions(nullptr), seeds,
        /*all_active=*/true);
    ASSERT_TRUE(base.converged);
    const auto dense = engine::runPush<algorithms::CcSemiring>(
        schedule, sim, pushOptions(nullptr), seeds,
        /*all_active=*/true);
    ASSERT_TRUE(dense.converged);
    for (NodeId v = 0; v < fx.dense.numNodes(); ++v)
        ASSERT_EQ(base.values[v], dense.values[v]) << "node " << v;

    for (const unsigned workers : {1u, 2u, 8u}) {
        par::ThreadPool pool(workers);
        const auto got = engine::runPush<algorithms::CcSemiring>(
            arena, sim, pushOptions(&pool), seeds,
            /*all_active=*/true);
        ASSERT_TRUE(got.converged);
        EXPECT_EQ(got.iterations, base.iterations)
            << workers << " workers";
        for (NodeId v = 0; v < fx.dense.numNodes(); ++v)
            ASSERT_EQ(got.values[v], base.values[v])
                << workers << " workers, node " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFrontiers, ArenaEngine,
    ::testing::Values(engine::FrontierMode::Dense,
                      engine::FrontierMode::Sparse,
                      engine::FrontierMode::Adaptive),
    [](const auto &info) {
        switch (info.param) {
          case engine::FrontierMode::Dense: return "dense";
          case engine::FrontierMode::Sparse: return "sparse";
          default: return "adaptive";
        }
    });

} // namespace
} // namespace tigr::dynamic
