/**
 * @file
 * IncrementalVirtualizer differential suite: after every mutation
 * batch, the incrementally repaired virtual node array must be
 * element-for-element identical to a from-scratch VirtualGraph rebuild
 * — across K in {2, 8, 32}, both edge layouts, and insert-heavy /
 * delete-heavy / reweight-only / mixed mutation sweeps. Also pins that
 * repair really is incremental (touched vertices only) and that
 * out-of-order deltas are rejected.
 */
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_virtualizer.hpp"
#include "dynamic/mutation.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::dynamic {
namespace {

graph::Csr
skewedGraph(std::uint64_t seed)
{
    // RMAT is heavy-tailed: plenty of families larger than K, so
    // degree changes regularly cross family-size boundaries.
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 500, .edges = 5000, .seed = seed}));
}

/** The named mutation sweeps of the acceptance criteria. */
const GeneratorSpec kSweeps[] = {
    {.seed = 0, .inserts = 48, .deletes = 6, .reweights = 6},  // insert
    {.seed = 0, .inserts = 6, .deletes = 48, .reweights = 6},  // delete
    {.seed = 0, .inserts = 0, .deletes = 0, .reweights = 40},  // reweight
    {.seed = 0, .inserts = 20, .deletes = 20, .reweights = 20}, // mixed
};

class IncrementalDifferential
    : public ::testing::TestWithParam<
          std::tuple<NodeId, transform::EdgeLayout>>
{
};

TEST_P(IncrementalDifferential, MatchesRebuildAfterEveryBatch)
{
    const auto [k, layout] = GetParam();
    DynamicGraph dg(skewedGraph(17));
    IncrementalVirtualizer virt(dg, k, layout);
    ASSERT_EQ(differentialCheck(dg, virt), std::nullopt);

    std::uint64_t round = 0;
    for (const GeneratorSpec &sweep : kSweeps) {
        for (std::uint64_t i = 0; i < 3; ++i) {
            ++round;
            GeneratorSpec spec = sweep;
            spec.seed = round * 97 + 13;
            const MutationBatch batch = generateBatch(dg.toCsr(), spec);
            const EpochDelta delta = dg.apply(batch);
            const RepairStats stats = virt.applyDelta(delta);
            EXPECT_EQ(stats.epoch, delta.epoch);
            EXPECT_LE(stats.repairedVertices, delta.touched.size());
            const std::optional<std::string> divergence =
                differentialCheck(dg, virt);
            EXPECT_EQ(divergence, std::nullopt)
                << "round " << round << ": " << divergence.value_or("");
            // The repaired array must also drop straight into a
            // VirtualGraph over the materialized CSR.
            const graph::Csr dense = dg.toCsr();
            const transform::VirtualGraph rebuilt(dense, k, layout);
            ASSERT_EQ(virt.virtualNodes().size(),
                      rebuilt.virtualNodes().size());
        }
        // Compaction must be invisible to the virtual array (entry
        // starts address the dense CSR, not the arena).
        if (dg.shouldCompact()) {
            dg.compact();
            EXPECT_EQ(differentialCheck(dg, virt), std::nullopt);
        }
    }
    EXPECT_EQ(dg.epoch(), 12u);
    EXPECT_EQ(virt.epoch(), 12u);
}

std::string
sweepName(const ::testing::TestParamInfo<
          std::tuple<NodeId, transform::EdgeLayout>> &info)
{
    return "K" + std::to_string(std::get<0>(info.param)) +
           (std::get<1>(info.param) == transform::EdgeLayout::Coalesced
                ? "Coalesced"
                : "Consecutive");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalDifferential,
    ::testing::Combine(
        ::testing::Values(NodeId{2}, NodeId{8}, NodeId{32}),
        ::testing::Values(transform::EdgeLayout::Consecutive,
                          transform::EdgeLayout::Coalesced)),
    sweepName);

TEST(IncrementalVirtualizer, RepairTouchesOnlyChangedFamilies)
{
    DynamicGraph dg(skewedGraph(29));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced);
    // One insert touches one vertex: exactly one family repairs.
    const EpochDelta delta =
        dg.apply({{MutationKind::InsertEdge, 7, 3, 2}});
    const RepairStats stats = virt.applyDelta(delta);
    EXPECT_EQ(stats.repairedVertices, 1u);
    EXPECT_EQ(differentialCheck(dg, virt), std::nullopt);

    // A reweight-only batch changes no degree: zero repairs.
    const EpochDelta delta2 =
        dg.apply({{MutationKind::UpdateWeight, 7, 3, 9}});
    const RepairStats stats2 = virt.applyDelta(delta2);
    EXPECT_EQ(stats2.repairedVertices, 0u);
    EXPECT_EQ(stats2.resplitFamilies, 0u);
    EXPECT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(IncrementalVirtualizer, ResplitOnlyWhenDegreeCrossesAMultipleOfK)
{
    // Vertex 0 has degree 8 with K=4 (2 entries); one insert makes it
    // 9 (3 entries) — a resplit. A second insert to 10 keeps 3 entries
    // — repaired but not resplit.
    graph::CooEdges coo(16);
    for (NodeId i = 0; i < 8; ++i)
        coo.add(0, i + 1, 1);
    coo.add(15, 0, 1);
    DynamicGraph dg(graph::Csr::fromCoo(coo));
    IncrementalVirtualizer virt(dg, 4,
                                transform::EdgeLayout::Consecutive);

    const RepairStats grow = virt.applyDelta(
        dg.apply({{MutationKind::InsertEdge, 0, 9, 1}}));
    EXPECT_EQ(grow.repairedVertices, 1u);
    EXPECT_EQ(grow.resplitFamilies, 1u);
    EXPECT_EQ(grow.entriesAfter, grow.entriesBefore + 1);

    const RepairStats same = virt.applyDelta(
        dg.apply({{MutationKind::InsertEdge, 0, 10, 1}}));
    EXPECT_EQ(same.repairedVertices, 1u);
    EXPECT_EQ(same.resplitFamilies, 0u);
    EXPECT_EQ(same.entriesAfter, same.entriesBefore);
    EXPECT_EQ(differentialCheck(dg, virt), std::nullopt);
}

TEST(IncrementalVirtualizer, RejectsOutOfOrderDeltas)
{
    DynamicGraph dg(skewedGraph(31));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced);
    const EpochDelta delta =
        dg.apply({{MutationKind::InsertEdge, 1, 2, 3}});
    virt.applyDelta(delta);
    EXPECT_THROW(virt.applyDelta(delta), std::invalid_argument);

    EpochDelta future = delta;
    future.epoch = 5; // skips epochs 2..4
    EXPECT_THROW(virt.applyDelta(future), std::invalid_argument);
}

TEST(IncrementalVirtualizer, EntryOffsetsBracketEveryFamily)
{
    DynamicGraph dg(skewedGraph(37));
    IncrementalVirtualizer virt(dg, 8,
                                transform::EdgeLayout::Coalesced);
    virt.applyDelta(dg.apply(generateBatch(
        dg.toCsr(), {.seed = 3, .inserts = 30, .deletes = 10})));

    const auto offsets = virt.entryOffsets();
    ASSERT_EQ(offsets.size(),
              static_cast<std::size_t>(dg.numNodes()) + 1);
    EXPECT_EQ(offsets[0], 0u);
    EXPECT_EQ(offsets[dg.numNodes()], virt.virtualNodes().size());
    for (NodeId v = 0; v < dg.numNodes(); ++v) {
        SCOPED_TRACE(v);
        ASSERT_LE(offsets[v], offsets[v + 1]);
        const EdgeIndex family = offsets[v + 1] - offsets[v];
        const EdgeIndex d = dg.degree(v);
        const EdgeIndex expected = d == 0 ? 1 : (d + 8 - 1) / 8;
        EXPECT_EQ(family, expected);
        for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e)
            EXPECT_EQ(virt.virtualNodes()[e].physicalId, v);
    }
}

} // namespace
} // namespace tigr::dynamic
