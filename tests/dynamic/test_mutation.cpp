/**
 * @file
 * The mutation vocabulary: seeded batch generation (a pure function of
 * graph and spec), and the MutationLog text round-trip with its typed
 * parse failures.
 */
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/mutation.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace tigr::dynamic {
namespace {

graph::Csr
testGraph()
{
    return graph::Csr::fromCoo(
        graph::rmat({.nodes = 300, .edges = 2400, .seed = 11}));
}

TEST(MutationKinds, Names)
{
    EXPECT_EQ(mutationKindName(MutationKind::InsertEdge), "insert");
    EXPECT_EQ(mutationKindName(MutationKind::DeleteEdge), "delete");
    EXPECT_EQ(mutationKindName(MutationKind::UpdateWeight), "reweight");
}

TEST(GenerateBatch, IsAPureFunctionOfGraphAndSpec)
{
    const graph::Csr csr = testGraph();
    const GeneratorSpec spec{.seed = 42,
                             .inserts = 20,
                             .deletes = 10,
                             .reweights = 10,
                             .maxWeight = 32};
    const MutationBatch a = generateBatch(csr, spec);
    const MutationBatch b = generateBatch(csr, spec);
    EXPECT_EQ(a, b);

    GeneratorSpec other = spec;
    other.seed = 43;
    EXPECT_NE(generateBatch(csr, other), a);
}

TEST(GenerateBatch, ProducesRequestedKindCounts)
{
    const graph::Csr csr = testGraph();
    const GeneratorSpec spec{
        .seed = 7, .inserts = 12, .deletes = 6, .reweights = 5};
    const MutationBatch batch = generateBatch(csr, spec);
    std::size_t inserts = 0, deletes = 0, reweights = 0;
    for (const Mutation &m : batch) {
        switch (m.kind) {
          case MutationKind::InsertEdge: ++inserts; break;
          case MutationKind::DeleteEdge: ++deletes; break;
          case MutationKind::UpdateWeight: ++reweights; break;
        }
        EXPECT_LT(m.src, csr.numNodes());
        EXPECT_LT(m.dst, csr.numNodes());
        if (m.kind != MutationKind::DeleteEdge) {
            EXPECT_GE(m.weight, 1u);
            EXPECT_LE(m.weight, spec.maxWeight);
        }
    }
    EXPECT_EQ(inserts, 12u);
    EXPECT_EQ(deletes, 6u);
    EXPECT_EQ(reweights, 5u);
}

TEST(GenerateBatch, AlwaysPassesValidation)
{
    const graph::Csr csr = testGraph();
    DynamicGraph dg(csr);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const GeneratorSpec spec{
            .seed = seed, .inserts = 16, .deletes = 12, .reweights = 9};
        EXPECT_NO_THROW(dg.apply(generateBatch(dg.toCsr(), spec)))
            << "seed " << seed;
    }
    EXPECT_EQ(dg.epoch(), 8u);
}

TEST(GenerateBatch, ClampsDeletesOnSparseGraphs)
{
    graph::CooEdges coo(4);
    coo.add(0, 1, 1);
    coo.add(1, 2, 1);
    const graph::Csr csr = graph::Csr::fromCoo(coo);
    const GeneratorSpec spec{.seed = 3, .deletes = 10};
    const MutationBatch batch = generateBatch(csr, spec);
    EXPECT_LE(batch.size(), 2u);
    DynamicGraph dg(csr);
    EXPECT_NO_THROW(dg.apply(batch));
}

TEST(MutationLog, RoundTripsThroughText)
{
    MutationLog log;
    // Deletes carry no weight in the text form; keep the in-memory
    // default (1) so the round trip compares equal field-for-field.
    log.append({{MutationKind::InsertEdge, 0, 5, 9},
                {MutationKind::DeleteEdge, 3, 1, 1},
                {MutationKind::UpdateWeight, 2, 2, 44}});
    log.append({}); // an epoch with no changes is still an epoch
    log.append(generateBatch(testGraph(),
                             {.seed = 9, .inserts = 8, .deletes = 4}));

    std::stringstream text;
    log.save(text);
    const MutationLog loaded = MutationLog::load(text);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.batches(), log.batches());
    EXPECT_EQ(loaded.totalMutations(), log.totalMutations());
}

TEST(MutationLog, LoadSkipsComments)
{
    std::istringstream in("# recorded stream\nbatch 0 1\n+ 1 2 7\n");
    const MutationLog log = MutationLog::load(in);
    ASSERT_EQ(log.size(), 1u);
    const MutationBatch expected{{MutationKind::InsertEdge, 1, 2, 7}};
    EXPECT_EQ(log.batches()[0], expected);
}

TEST(MutationLog, ParseErrorsAreTypedAndNameTheLine)
{
    const std::string bad_inputs[] = {
        "garbage\n",
        "batch 0 1\n+ 1\n",          // truncated insert
        "batch 0 1\n? 1 2 3\n",      // unknown opcode
        "batch 0 2\n+ 1 2 3\n",      // fewer mutations than promised
        "+ 1 2 3\n",                 // mutation before any batch header
    };
    for (const std::string &text : bad_inputs) {
        SCOPED_TRACE(text);
        std::istringstream in(text);
        try {
            MutationLog::load(in);
            ADD_FAILURE() << "expected MutationError";
        } catch (const MutationError &error) {
            EXPECT_EQ(error.kind(), MutationErrorKind::Parse);
            EXPECT_GE(error.index(), 1u);
        }
    }
}

TEST(MutationErrors, KindNames)
{
    EXPECT_EQ(mutationErrorKindName(MutationErrorKind::SourceOutOfRange),
              "source-out-of-range");
    EXPECT_EQ(mutationErrorKindName(MutationErrorKind::MissingEdge),
              "missing-edge");
    EXPECT_EQ(mutationErrorKindName(MutationErrorKind::Parse), "parse");
}

} // namespace
} // namespace tigr::dynamic
