/**
 * @file
 * Crash recovery: audit a durable directory's snapshots + journals
 * together and replay every graph to its last intact acknowledged
 * epoch (docs/durability.md).
 *
 * The recovery contract, enforced by tests/service/test_durability.cpp
 * at every injectable crash point of a workload:
 *
 *  - Recovery never throws on hostile bytes. Corrupt snapshots,
 *    foreign journals, and orphaned sidecars are quarantined by the
 *    directory audit; a journal's torn tail is preserved aside
 *    ("<name>.twj.torn") and truncated; a record that decodes but does
 *    not apply (the append-then-reject crash window) ends the intact
 *    prefix the same way.
 *  - The recovered state is always a *prefix* of the acknowledged
 *    history: snapshot at epoch S plus consecutively applicable
 *    journal records replayed in seq order. Under the EveryRecord
 *    policy every acknowledged epoch survives; under GroupCommit every
 *    epoch acknowledged at a sync() barrier does.
 *  - Recovery is deterministic: the same directory bytes produce the
 *    same RecoveryReport and a store whose query metricsDigest is
 *    bit-identical to a reference run of the same prefix, at any
 *    scheduler worker count.
 */
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "service/journal.hpp"
#include "service/snapshot.hpp"

namespace tigr::obs {
class MetricsRegistry;
class TraceSink;
} // namespace tigr::obs

namespace tigr::service {

class GraphStore;

/** Knobs shared by RecoveryManager and GraphStore::openDurable. */
struct DurableOptions
{
    /** Ack-vs-disk ordering for journal appends after open. */
    SyncPolicy syncPolicy = SyncPolicy::GroupCommit;
    /** How recovered snapshots are loaded. */
    SnapshotLoadMode loadMode = SnapshotLoadMode::Auto;
    /** Observability sinks (either may be null). Counters:
     *  journal.* / recovery.*; trace: journal.append,
     *  journal.checkpoint, recover.graph. */
    obs::MetricsRegistry *metrics = nullptr;
    obs::TraceSink *trace = nullptr;
};

/** How one graph came back. */
struct GraphRecovery
{
    std::string name;
    /** Epoch of the snapshot the journal extends. */
    std::uint64_t snapshotEpoch = 0;
    /** Epoch the store serves after replay. */
    std::uint64_t recoveredEpoch = 0;
    /** Journal records applied on top of the snapshot. */
    std::uint64_t recordsReplayed = 0;
    /** Records skipped because the snapshot already contains them
     *  (epoch <= snapshotEpoch: checkpoint-retired history). */
    std::uint64_t recordsRetired = 0;
    /** Journal bytes cut: the torn tail plus any decodable-but-
     *  inapplicable suffix. 0 for a clean journal (or none). */
    std::uint64_t bytesTruncated = 0;
    /** True when anything was cut (bytesTruncated > 0). */
    bool tornTail = false;
    /** The journal file, empty when the graph had none. */
    std::filesystem::path journal;
};

/** What a recovery pass did, in registration (name) order. */
struct RecoveryReport
{
    std::vector<GraphRecovery> graphs;
    /** Intact snapshots the audit admitted. */
    std::vector<std::filesystem::path> intactSnapshots;
    /** Everything the audit quarantined (corrupt/partial snapshots,
     *  orphaned or corrupt sidecars) plus preserved torn tails. */
    std::vector<std::filesystem::path> quarantined;

    /** Total records replayed across graphs. */
    std::uint64_t epochsReplayed() const;
    /** Total journal bytes truncated across graphs. */
    std::uint64_t bytesTruncated() const;
    /** Graphs whose journal had a torn tail. */
    std::uint64_t tornTails() const;
};

/**
 * Startup recovery over one durable directory. recover() composes the
 * sidecar-aware directory audit (quarantining everything untrusted)
 * with per-graph journal replay into @p store:
 *
 *   1. store.addSnapshotDirectory(dir): intact ".tgs" snapshots
 *      register under their stem; corrupt files and orphaned/corrupt
 *      ".tml"/".twj" sidecars are quarantined.
 *   2. For each registered graph with an intact journal: records with
 *      epoch <= the entry's epoch are retired (the snapshot already
 *      holds them); each record with epoch == entry epoch + 1 is
 *      applied through GraphStore::mutate. The first record that is
 *      neither — an epoch gap, or a batch the graph rejects — ends the
 *      intact prefix: the journal is truncated there, the cut bytes
 *      preserved as "<journal>.torn".
 *
 * recover() is idempotent: running it again over the recovered
 * directory replays nothing and truncates nothing.
 */
class RecoveryManager
{
  public:
    explicit RecoveryManager(std::filesystem::path dir,
                             DurableOptions options = {});

    /** Run the audit + replay pass into @p store.
     *  @throws SnapshotError (Io) only when the directory itself is
     *          unreadable. */
    RecoveryReport recover(GraphStore &store);

    const std::filesystem::path &dir() const { return dir_; }

  private:
    std::filesystem::path dir_;
    DurableOptions options_;
};

/** Render @p report as the human-readable text `tigr recover` prints
 *  (one summary block, then one line per graph, then quarantined
 *  paths; deterministic order). */
std::string formatRecoveryReport(const RecoveryReport &report);

} // namespace tigr::service
