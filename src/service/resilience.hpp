/**
 * @file
 * Resilient query execution: the typed error taxonomy, deterministic
 * retry/backoff policy, and per-graph circuit breaker the
 * QueryScheduler uses to keep a long-lived service alive through
 * faults that would crash a single-run framework.
 *
 * Everything here is deterministic by construction:
 *
 *  - ServiceError classification is a pure function of the thrown
 *    exception's type (and, for injected faults, its site).
 *  - Backoff is charged in *simulated* milliseconds against the
 *    query's deadlineSimMs budget — no thread ever sleeps, and a
 *    retried query times out identically at any worker count.
 *  - The circuit breaker advances only at batch boundaries and from a
 *    batch-ordered post-pass over terminal outcomes, so its state is a
 *    function of the batch history alone, never of worker
 *    interleaving.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "fault/fault.hpp"

namespace tigr::service {

/** Unified failure taxonomy of the service layer. */
enum class ServiceErrorKind
{
    InvalidQuery,   ///< Rejected at admission (bad spec, queue full).
    Quarantined,    ///< Circuit breaker open for the target graph.
    Snapshot,       ///< Snapshot load/store failure (SnapshotError).
    TransformBuild, ///< Building the work-unit schedule failed.
    CacheInsert,    ///< Retaining a built schedule in the cache failed.
    Engine,         ///< The engine threw mid-run.
    Resource,       ///< Allocation failure (std::bad_alloc).
    Mutation,       ///< Applying or compacting a mutation batch failed.
};

/** Display name ("invalid-query", "transform-build", ...). */
std::string_view serviceErrorKindName(ServiceErrorKind kind);

/** One typed failure, attached to a QueryResult. */
struct ServiceError
{
    ServiceErrorKind kind = ServiceErrorKind::Engine;
    /** The fault site, when the failure was injected. */
    std::optional<fault::Site> site;
    std::string message;

    /** True when a retry could plausibly succeed (transient faults);
     *  admission-time rejections and quarantines are terminal. */
    bool retryable() const;
};

/** Map a caught exception to the taxonomy: InjectedFault by site,
 *  SnapshotError -> Snapshot, bad_alloc -> Resource, anything else ->
 *  Engine. */
ServiceError classifyFailure(const std::exception &e);

/**
 * Retry budget with deterministic exponential backoff. Backoff is
 * expressed in simulated milliseconds and charged against the query's
 * deadlineSimMs budget (when one is set), reusing the engine's
 * simulated-time cancellation machinery: a query that retries twice
 * has that much less simulated time to finish, identically at any
 * worker count. No wall-clock sleeping ever happens.
 */
struct RetryPolicy
{
    /** Re-executions after the first attempt (0 = fail fast). */
    unsigned maxRetries = 2;
    /** Simulated-ms backoff charged before the first retry. */
    double backoffBaseSimMs = 1.0;
    /** Multiplier per subsequent retry. */
    double backoffFactor = 2.0;

    /** Backoff charged after failed attempt @p attempt (0-based). */
    double
    backoffSimMs(unsigned attempt) const
    {
        double backoff = backoffBaseSimMs;
        for (unsigned i = 0; i < attempt; ++i)
            backoff *= backoffFactor;
        return backoff;
    }
};

/** Circuit breaker tuning. */
struct BreakerOptions
{
    /** Consecutive terminal faults that open the breaker. */
    unsigned threshold = 3;
    /** Batches the breaker stays open before probing again. */
    unsigned cooldownBatches = 1;
};

/** Observable breaker state for one graph. */
enum class BreakerState
{
    Closed,   ///< Healthy: queries run normally.
    Open,     ///< Quarantined: queries are refused at admission.
    HalfOpen, ///< Cooldown elapsed: queries run; one more fault
              ///< re-opens, one success closes.
};

/** Display name ("closed", "open", "half-open"). */
std::string_view breakerStateName(BreakerState state);

/**
 * Per-graph circuit breaker: after `threshold` consecutive terminal
 * faults a graph is quarantined — its queries are refused at admission
 * instead of burning retry budget on (and potentially poisoning) every
 * batch. After `cooldownBatches` batches the breaker half-opens: the
 * next batch's queries run as probes, one success closes the breaker,
 * one more fault re-opens it.
 *
 * NOT internally synchronized: the scheduler drives it only from the
 * serial phases of runBatch (admission pre-pass, batch-ordered
 * post-pass), which is what makes its state deterministic.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerOptions options = {})
        : options_(options)
    {
    }

    /** Advance the batch clock; Open entries past their cooldown
     *  become HalfOpen. Call once at the start of every batch. */
    void beginBatch();

    /** False while @p graph is quarantined (Open). */
    bool admits(std::string_view graph) const;

    /** Record a terminal fault for @p graph (batch-ordered). */
    void recordFault(std::string_view graph);

    /** Record a successful terminal outcome for @p graph. */
    void recordSuccess(std::string_view graph);

    /** Current state of @p graph (Closed when never seen). */
    BreakerState state(std::string_view graph) const;

    /** Consecutive-fault count for @p graph. */
    unsigned consecutiveFaults(std::string_view graph) const;

    /** Manually close the breaker for @p graph (operator override). */
    void reset(std::string_view graph);

    /** Close every breaker. */
    void resetAll();

  private:
    struct Entry
    {
        unsigned consecutive = 0;
        BreakerState state = BreakerState::Closed;
        /** Batch index at which the breaker opened. */
        std::uint64_t openedAt = 0;
    };

    BreakerOptions options_;
    std::uint64_t batch_ = 0;
    std::map<std::string, Entry, std::less<>> entries_;
};

} // namespace tigr::service
