/**
 * @file
 * GraphStore: the service's registry of named graphs, versioned by
 * mutation epoch.
 *
 * Each entry is heap-pinned, so the `const graph::Csr &` a lookup
 * returns stays valid until the entry is removed or mutated — engines,
 * schedules, and cache entries all hold pointers into it. Entries
 * loaded from snapshots keep the persisted virtual node array around
 * so callers can rebind it with VirtualGraph::fromArrays instead of
 * rebuilding.
 *
 * Mutation is copy-on-write: mutate() applies a batch to the entry's
 * DynamicGraph and incrementally repairs its arena-addressed virtual
 * array — O(touched) work, no dense materialization. The dense
 * StoredGraph for the new epoch is built lazily, on the first
 * find/at/pin after a mutation (double-checked against an atomic
 * staleness flag, so the concurrent query phase may race on the first
 * read safely), and swapped in whole. The previous version stays alive
 * for exactly as long as someone pin()ned it, so a reader holding a
 * pinned snapshot never observes a mutation. Cache entries keyed by
 * (graph id, epoch) go stale rather than wrong — see
 * TransformCache::invalidateStale.
 */
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_virtualizer.hpp"
#include "dynamic/mutation.hpp"
#include "graph/csr.hpp"
#include "service/journal.hpp"
#include "service/recovery.hpp"
#include "service/snapshot.hpp"

namespace tigr::service {

/** One registered graph and where it came from. */
struct StoredGraph
{
    /** Registry name (unique within the store). */
    std::string name;
    /** The graph itself; address is stable until the entry is mutated
     *  or removed (pin() extends that across mutations). */
    graph::Csr graph;
    /** True when the source snapshot carried a virtual node array. */
    bool hasVirtual = false;
    /** Degree bound / layout the persisted array was built with. */
    NodeId virtualDegreeBound = 0;
    transform::EdgeLayout virtualLayout =
        transform::EdgeLayout::Coalesced;
    /** The persisted virtual node array (empty without one). */
    std::vector<transform::VirtualNode> virtualNodes;
    /** Provenance string for stats output ("memory", a file path). */
    std::string source = "memory";
    /** Host milliseconds spent loading/registering. */
    double loadMs = 0.0;
    /** Mutation epoch this version reflects (0 = as registered; a
     *  snapshot restores the epoch it was saved at). */
    std::uint64_t epoch = 0;

    /** Rebind the persisted virtual array to this entry's graph; empty
     *  when the entry has none. The result references `graph`. */
    std::optional<transform::VirtualGraph> virtualGraph() const;
};

/** What one GraphStore::mutate() call did. */
struct MutateResult
{
    /** The applied batch's delta (epoch is store-relative). */
    dynamic::EpochDelta delta;
    /** Incremental virtual-array repair stats (zero-initialized when
     *  the entry has no virtual section). */
    dynamic::RepairStats repair;
    /** Repair stats of the mirrored In-side virtual array (zero when
     *  the entry has no virtual section). */
    dynamic::RepairStats reverseRepair;
    /** Wall-clock microseconds the reverse-side repair took (metrics
     *  only — never folded into deterministic traces). */
    double reverseRepairUs = 0.0;
    /** True when the entry carries a virtual array that was repaired. */
    bool virtualRepaired = false;
    /** The entry's epoch after the mutation. */
    std::uint64_t epoch = 0;
    /** Live edges after the mutation. */
    EdgeIndex liveEdges = 0;
    /** Dead arena slots after the mutation (and compaction, if any). */
    EdgeIndex slackSlots = 0;
    /** True when the slack threshold triggered a compaction. */
    bool compacted = false;
    /** Arena slots the compaction reclaimed. */
    EdgeIndex reclaimed = 0;
};

/**
 * Borrowed view of a mutated entry's live arena state, for serving
 * queries with no dense materialization (see
 * docs/service.md, arena-served queries). `graph` is null when the
 * entry has never been mutated — there is no arena to serve from, and
 * the dense StoredGraph is current by definition. The pointers borrow
 * the entry's DynamicState and stay valid until the next mutate() or
 * remove() of that entry; like find/at, valid to read only while no
 * mutation is running.
 */
struct ArenaView
{
    /** The slack-arena graph, or null (entry never mutated). */
    const dynamic::DynamicGraph *graph = nullptr;
    /** Maintained Out-side virtualizer (null without a virtual
     *  section). */
    const dynamic::IncrementalVirtualizer *forward = nullptr;
    /** Maintained In-side virtualizer over the reverse arena (null
     *  without a virtual section). */
    const dynamic::IncrementalVirtualizer *reverse = nullptr;
    /** Absolute epoch the arena reflects. */
    std::uint64_t epoch = 0;
    /** True while the entry's dense StoredGraph lags the arena. */
    bool staleDense = false;
};

/** What one GraphStore::checkpoint() call did. */
struct CheckpointResult
{
    /** Epoch the snapshot persisted. */
    std::uint64_t epoch = 0;
    /** Journal records the snapshot folded in (now retired). */
    std::uint64_t retiredRecords = 0;
    std::filesystem::path snapshot;
    std::filesystem::path journal;
};

/**
 * Name -> graph registry. Not internally synchronized: the service
 * mutates it only between query batches (the scheduler reads it
 * concurrently but never during add/remove).
 */
class GraphStore
{
  public:
    GraphStore() = default;
    GraphStore(const GraphStore &) = delete;
    GraphStore &operator=(const GraphStore &) = delete;

    /**
     * Register @p graph under @p name.
     * @throws std::invalid_argument if the name is taken or empty.
     */
    const StoredGraph &add(std::string name, graph::Csr graph,
                           std::string source = "memory");

    /**
     * Load the snapshot at @p path and register it under @p name,
     * keeping any persisted virtual section.
     * @throws SnapshotError on load failure, std::invalid_argument on
     *         a duplicate name.
     */
    const StoredGraph &
    addSnapshot(std::string name, const std::filesystem::path &path,
                SnapshotLoadMode mode = SnapshotLoadMode::Auto);

    /**
     * Audit @p dir (see auditSnapshotDirectory: partial "*.tgs.tmp"
     * leftovers and corrupt ".tgs" files are quarantined aside) and
     * register every intact snapshot under its file stem. A service
     * opening its snapshot directory through this never trips over a
     * half-written file from a crashed writer. A stem that collides
     * with an already-registered name is not re-registered (the store
     * keeps its existing entry); the file still counts as intact.
     * @throws SnapshotError (Io) only when @p dir is unreadable.
     */
    SnapshotAuditReport
    addSnapshotDirectory(const std::filesystem::path &dir,
                         SnapshotLoadMode mode = SnapshotLoadMode::Auto);

    /** Entry for @p name, or null. */
    const StoredGraph *find(std::string_view name) const;

    /** Entry for @p name. @throws std::out_of_range with the name. */
    const StoredGraph &at(std::string_view name) const;

    /**
     * Entry for @p name WITHOUT materializing a stale dense version,
     * or null. The returned StoredGraph may lag the entry's epoch
     * after a mutation (compare `epoch` against epochOf()); use it for
     * admission-time metadata (name, virtual section, strategy hints)
     * that is epoch-invariant, and find/at/pin when the dense graph
     * itself is needed.
     */
    const StoredGraph *peek(std::string_view name) const;

    /**
     * Live arena state of @p name, for serving queries straight off
     * the mutated graph. `graph` is null when the entry was never
     * mutated (no arena exists; the dense entry is current).
     * @throws std::out_of_range for an unknown name.
     */
    ArenaView arenaView(std::string_view name) const;

    /** True when @p name is registered. */
    bool contains(std::string_view name) const
    {
        return find(name) != nullptr;
    }

    /**
     * Apply @p batch to the graph named @p name and publish the next
     * epoch: the entry's DynamicGraph absorbs the batch and its
     * arena-addressed virtual array (when present) is incrementally
     * repaired — O(touched vertices), with no dense CSR or virtual
     * array materialized here. The dense StoredGraph is rebuilt lazily
     * by the next find/at/pin. Readers holding a pin() of the old
     * version are unaffected.
     *
     * Strong guarantee on rejection: a dynamic::MutationError (or an
     * injected `mutation.apply` fault) propagates with the entry
     * unchanged. A `mutation.compact` fault propagates AFTER the new
     * epoch is published — the mutation is applied and the entry
     * consistent; only slack reclamation was skipped.
     *
     * On a durable store (openDurable) the batch is appended to the
     * graph's write-ahead journal BEFORE it is applied; a rejected
     * batch's record is rolled back (JournalWriter::abortLast). Under
     * SyncPolicy::EveryRecord the record is fsync'd inside this call;
     * under GroupCommit durability arrives at the next syncJournals().
     *
     * @throws std::out_of_range for an unknown name.
     */
    MutateResult mutate(std::string_view name,
                        const dynamic::MutationBatch &batch);

    /**
     * Make this store durable over @p dir: run crash recovery over the
     * directory's snapshots and journals (see RecoveryManager —
     * corrupt files quarantined, torn tails truncated and preserved,
     * intact records replayed), then arm write-ahead journaling for
     * every subsequent mutate(). The directory is created when
     * missing. Each graph's journal is opened lazily on its first
     * durable mutation, writing the base ".tgs" snapshot first when
     * the graph has none — a journal always extends a durable
     * snapshot.
     * @throws std::logic_error when already durable, SnapshotError
     *         (Io) when the directory is unusable.
     */
    RecoveryReport openDurable(const std::filesystem::path &dir,
                               DurableOptions options = {});

    /** True once openDurable() succeeded. */
    bool durable() const { return durable_.has_value(); }

    /** The durable directory. @throws std::logic_error when the store
     *  is not durable. */
    const std::filesystem::path &durableDir() const;

    /**
     * Fold the journal of @p name into its snapshot: fsync the
     * journal, write the current epoch's snapshot crash-consistently
     * (tmp + atomic rename), then rotate in a fresh journal based at
     * that epoch the same way. A crash at any point leaves a
     * recoverable directory: either the old snapshot + full journal,
     * or the new snapshot with the old journal's records retiring on
     * recovery. @throws std::logic_error when not durable,
     * std::out_of_range for an unknown name, SnapshotError /
     * JournalError (Io) on write failure.
     */
    CheckpointResult checkpoint(std::string_view name);

    /** Group-commit barrier: fsync every journal with unsynced
     *  appends. The scheduler calls this at each batch boundary under
     *  SyncPolicy::GroupCommit; no-op when the store is not durable. */
    void syncJournals();

    /** Shared ownership of the current version of @p name: stays valid
     *  across later mutations and removes. @throws std::out_of_range. */
    std::shared_ptr<const StoredGraph> pin(std::string_view name) const;

    /** Current mutation epoch of @p name, straight off the dynamic
     *  state — never materializes a stale entry.
     *  @throws std::out_of_range. */
    std::uint64_t epochOf(std::string_view name) const;

    /**
     * Stream-apply a persisted mutation log (see
     * mutationLogPathFor / docs/service.md) to the graph named
     * @p name: batches are applied while parsing — memory stays
     * bounded by the largest batch — until the log ends or, when
     * @p target_epoch is set, until epochOf(name) reaches it. Replay
     * composes with snapshot restore: a `.tgs` saved at epoch E plus
     * the log of later batches replays to any recorded epoch > E
     * byte-identically (tests/dynamic/test_mutation_stream.cpp).
     *
     * @return Batches applied.
     * @throws std::out_of_range for an unknown name,
     *         dynamic::MutationError on a malformed or inapplicable
     *         log (already-applied batches leave their epochs
     *         published, like any other mutate sequence).
     */
    std::size_t replayLog(std::string_view name, std::istream &log,
                          std::optional<std::uint64_t> target_epoch =
                              std::nullopt);

    /** Drop @p name; returns false when it was not registered. The
     *  entry's graph memory is freed (unless pinned) — callers must
     *  not hold engines or cache entries over it across a remove. */
    bool remove(std::string_view name);

    /** Number of registered graphs. */
    std::size_t size() const { return entries_.size(); }

    /** Registered names in ascending order (deterministic stats). */
    std::vector<std::string> names() const;

    /** Total heap bytes of all stored CSR arrays. */
    std::size_t totalBytes() const;

  private:
    /** Lazily created mutable state behind an entry: the slack-arena
     *  graph plus its incrementally repaired virtual array. Epochs in
     *  here are relative to `base` (the entry's epoch when the state
     *  was created — nonzero for snapshot-restored entries). */
    struct DynamicState
    {
        dynamic::DynamicGraph graph;
        std::optional<dynamic::IncrementalVirtualizer> virtualizer;
        /** Mirrored In-side virtual array over the reverse arena,
         *  repaired in the same mutate() as `virtualizer` (from
         *  EpochDelta::touchedIn) so pull queries can be served with
         *  no dense reversed rebuild. */
        std::optional<dynamic::IncrementalVirtualizer>
            reverseVirtualizer;
        std::uint64_t base = 0;
        /** True when `graph` moved past the entry's dense StoredGraph.
         *  Set by mutate() (which runs only between query batches),
         *  cleared by the double-checked lazy materialization in
         *  find/at/pin — the release/acquire pair on this flag is what
         *  lets concurrent readers race on the first post-mutation
         *  read safely. */
        std::atomic<bool> staleDense{false};
    };

    /** One registry slot. shared_ptr pins each version: map
     *  rebalancing moves pointers, not the StoredGraph (whose Csr
     *  address clients capture), and the lazy materialization swaps
     *  `stored` without disturbing pinned readers. */
    struct Entry
    {
        /** Mutable: find/at/pin are logically const but may swap in
         *  the lazily materialized epoch. */
        mutable std::shared_ptr<StoredGraph> stored;
        std::shared_ptr<DynamicState> dynamic;
    };

    /** Materialize the entry's current epoch if it is stale, and
     *  return the dense StoredGraph. */
    const std::shared_ptr<StoredGraph> &
    materialized(const Entry &entry) const;

    /** Write-ahead state, armed by openDurable(). */
    struct Durable
    {
        std::filesystem::path dir;
        DurableOptions options;
        std::map<std::string, JournalWriter, std::less<>> journals;
    };

    /** The journal for @p name, opened lazily (resume an existing
     *  file, or write the base snapshot + a fresh journal). */
    JournalWriter &ensureJournal(const std::string &name);

    /** Snapshot the current version of @p name to @p path
     *  (crash-consistently, through saveSnapshotFile). */
    void writeSnapshot(std::string_view name,
                       const std::filesystem::path &path);

    std::map<std::string, Entry, std::less<>> entries_;
    std::optional<Durable> durable_;
    /** Serializes lazy materialization (never held on the fast
     *  path). */
    mutable std::mutex materializeMutex_;
};

} // namespace tigr::service
