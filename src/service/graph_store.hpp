/**
 * @file
 * GraphStore: the service's registry of named, immutable graphs.
 *
 * Each entry is heap-pinned, so the `const graph::Csr &` a lookup
 * returns stays valid for the store's lifetime no matter how many
 * graphs are added afterwards — engines, schedules, and cache entries
 * all hold pointers into it. Entries loaded from snapshots keep the
 * persisted virtual node array around so callers can rebind it with
 * VirtualGraph::fromArrays instead of rebuilding.
 */
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "service/snapshot.hpp"

namespace tigr::service {

/** One registered graph and where it came from. */
struct StoredGraph
{
    /** Registry name (unique within the store). */
    std::string name;
    /** The graph itself; address is stable for the store's lifetime. */
    graph::Csr graph;
    /** True when the source snapshot carried a virtual node array. */
    bool hasVirtual = false;
    /** Degree bound / layout the persisted array was built with. */
    NodeId virtualDegreeBound = 0;
    transform::EdgeLayout virtualLayout =
        transform::EdgeLayout::Coalesced;
    /** The persisted virtual node array (empty without one). */
    std::vector<transform::VirtualNode> virtualNodes;
    /** Provenance string for stats output ("memory", a file path). */
    std::string source = "memory";
    /** Host milliseconds spent loading/registering. */
    double loadMs = 0.0;

    /** Rebind the persisted virtual array to this entry's graph; empty
     *  when the entry has none. The result references `graph`. */
    std::optional<transform::VirtualGraph> virtualGraph() const;
};

/**
 * Name -> graph registry. Not internally synchronized: the service
 * mutates it only between query batches (the scheduler reads it
 * concurrently but never during add/remove).
 */
class GraphStore
{
  public:
    GraphStore() = default;
    GraphStore(const GraphStore &) = delete;
    GraphStore &operator=(const GraphStore &) = delete;

    /**
     * Register @p graph under @p name.
     * @throws std::invalid_argument if the name is taken or empty.
     */
    const StoredGraph &add(std::string name, graph::Csr graph,
                           std::string source = "memory");

    /**
     * Load the snapshot at @p path and register it under @p name,
     * keeping any persisted virtual section.
     * @throws SnapshotError on load failure, std::invalid_argument on
     *         a duplicate name.
     */
    const StoredGraph &
    addSnapshot(std::string name, const std::filesystem::path &path,
                SnapshotLoadMode mode = SnapshotLoadMode::Auto);

    /**
     * Audit @p dir (see auditSnapshotDirectory: partial "*.tgs.tmp"
     * leftovers and corrupt ".tgs" files are quarantined aside) and
     * register every intact snapshot under its file stem. A service
     * opening its snapshot directory through this never trips over a
     * half-written file from a crashed writer. A stem that collides
     * with an already-registered name is not re-registered (the store
     * keeps its existing entry); the file still counts as intact.
     * @throws SnapshotError (Io) only when @p dir is unreadable.
     */
    SnapshotAuditReport
    addSnapshotDirectory(const std::filesystem::path &dir,
                         SnapshotLoadMode mode = SnapshotLoadMode::Auto);

    /** Entry for @p name, or null. */
    const StoredGraph *find(std::string_view name) const;

    /** Entry for @p name. @throws std::out_of_range with the name. */
    const StoredGraph &at(std::string_view name) const;

    /** True when @p name is registered. */
    bool contains(std::string_view name) const
    {
        return find(name) != nullptr;
    }

    /** Drop @p name; returns false when it was not registered. The
     *  entry's graph memory is freed — callers must not hold engines
     *  or cache entries over it across a remove. */
    bool remove(std::string_view name);

    /** Number of registered graphs. */
    std::size_t size() const { return entries_.size(); }

    /** Registered names in ascending order (deterministic stats). */
    std::vector<std::string> names() const;

    /** Total heap bytes of all stored CSR arrays. */
    std::size_t totalBytes() const;

  private:
    // unique_ptr pins each entry: map rebalancing moves pointers, not
    // the StoredGraph (whose Csr address clients capture).
    std::map<std::string, std::unique_ptr<StoredGraph>, std::less<>>
        entries_;
};

} // namespace tigr::service
