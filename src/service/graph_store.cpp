#include "service/graph_store.hpp"

#include <chrono>
#include <stdexcept>

namespace tigr::service {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

std::optional<transform::VirtualGraph>
StoredGraph::virtualGraph() const
{
    if (!hasVirtual)
        return std::nullopt;
    return transform::VirtualGraph::fromArrays(
        graph, virtualDegreeBound, virtualLayout, virtualNodes);
}

const StoredGraph &
GraphStore::add(std::string name, graph::Csr graph, std::string source)
{
    if (name.empty())
        throw std::invalid_argument(
            "tigr: graph store names cannot be empty");
    if (entries_.count(name))
        throw std::invalid_argument("tigr: graph '" + name +
                                    "' is already registered");
    const auto start = std::chrono::steady_clock::now();
    auto entry = std::make_unique<StoredGraph>();
    entry->name = name;
    entry->graph = std::move(graph);
    entry->source = std::move(source);
    entry->loadMs = elapsedMs(start);
    StoredGraph &ref = *entry;
    entries_.emplace(std::move(name), std::move(entry));
    return ref;
}

const StoredGraph &
GraphStore::addSnapshot(std::string name,
                        const std::filesystem::path &path,
                        SnapshotLoadMode mode)
{
    if (name.empty())
        throw std::invalid_argument(
            "tigr: graph store names cannot be empty");
    if (entries_.count(name))
        throw std::invalid_argument("tigr: graph '" + name +
                                    "' is already registered");
    const auto start = std::chrono::steady_clock::now();
    Snapshot snapshot = loadSnapshotFile(path, mode);
    auto entry = std::make_unique<StoredGraph>();
    entry->name = name;
    entry->graph = std::move(snapshot.graph);
    entry->hasVirtual = snapshot.hasVirtual;
    entry->virtualDegreeBound = snapshot.virtualDegreeBound;
    entry->virtualLayout = snapshot.virtualLayout;
    entry->virtualNodes = std::move(snapshot.virtualNodes);
    entry->source = path.string();
    entry->loadMs = elapsedMs(start);
    StoredGraph &ref = *entry;
    entries_.emplace(std::move(name), std::move(entry));
    return ref;
}

SnapshotAuditReport
GraphStore::addSnapshotDirectory(const std::filesystem::path &dir,
                                 SnapshotLoadMode mode)
{
    SnapshotAuditReport report = auditSnapshotDirectory(dir);
    for (const std::filesystem::path &path : report.intact) {
        const std::string name = path.stem().string();
        if (name.empty() || entries_.count(name))
            continue; // keep the existing entry; the file is intact
        addSnapshot(name, path, mode);
    }
    return report;
}

const StoredGraph *
GraphStore::find(std::string_view name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.get();
}

const StoredGraph &
GraphStore::at(std::string_view name) const
{
    const StoredGraph *entry = find(name);
    if (!entry)
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    return *entry;
}

bool
GraphStore::remove(std::string_view name)
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    return true;
}

std::vector<std::string>
GraphStore::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

std::size_t
GraphStore::totalBytes() const
{
    std::size_t bytes = 0;
    for (const auto &[name, entry] : entries_)
        bytes += entry->graph.sizeInBytes();
    return bytes;
}

} // namespace tigr::service
