#include "service/graph_store.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tigr::service {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

std::optional<transform::VirtualGraph>
StoredGraph::virtualGraph() const
{
    if (!hasVirtual)
        return std::nullopt;
    return transform::VirtualGraph::fromArrays(
        graph, virtualDegreeBound, virtualLayout, virtualNodes);
}

const StoredGraph &
GraphStore::add(std::string name, graph::Csr graph, std::string source)
{
    if (name.empty())
        throw std::invalid_argument(
            "tigr: graph store names cannot be empty");
    if (entries_.count(name))
        throw std::invalid_argument("tigr: graph '" + name +
                                    "' is already registered");
    const auto start = std::chrono::steady_clock::now();
    auto entry = std::make_shared<StoredGraph>();
    entry->name = name;
    entry->graph = std::move(graph);
    entry->source = std::move(source);
    entry->loadMs = elapsedMs(start);
    StoredGraph &ref = *entry;
    entries_.emplace(std::move(name), Entry{std::move(entry), nullptr});
    return ref;
}

const StoredGraph &
GraphStore::addSnapshot(std::string name,
                        const std::filesystem::path &path,
                        SnapshotLoadMode mode)
{
    if (name.empty())
        throw std::invalid_argument(
            "tigr: graph store names cannot be empty");
    if (entries_.count(name))
        throw std::invalid_argument("tigr: graph '" + name +
                                    "' is already registered");
    const auto start = std::chrono::steady_clock::now();
    Snapshot snapshot = loadSnapshotFile(path, mode);
    auto entry = std::make_shared<StoredGraph>();
    entry->name = name;
    entry->graph = std::move(snapshot.graph);
    entry->hasVirtual = snapshot.hasVirtual;
    entry->virtualDegreeBound = snapshot.virtualDegreeBound;
    entry->virtualLayout = snapshot.virtualLayout;
    entry->virtualNodes = std::move(snapshot.virtualNodes);
    entry->source = path.string();
    entry->epoch = snapshot.epoch;
    entry->loadMs = elapsedMs(start);
    StoredGraph &ref = *entry;
    entries_.emplace(std::move(name), Entry{std::move(entry), nullptr});
    return ref;
}

SnapshotAuditReport
GraphStore::addSnapshotDirectory(const std::filesystem::path &dir,
                                 SnapshotLoadMode mode)
{
    SnapshotAuditReport report = auditSnapshotDirectory(dir);
    for (const std::filesystem::path &path : report.intact) {
        const std::string name = path.stem().string();
        if (name.empty() || entries_.count(name))
            continue; // keep the existing entry; the file is intact
        addSnapshot(name, path, mode);
    }
    return report;
}

MutateResult
GraphStore::mutate(std::string_view name,
                   const dynamic::MutationBatch &batch)
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    Entry &entry = it->second;
    const StoredGraph &current = *entry.stored;

    // Durable stores journal the batch BEFORE applying it (the WAL
    // invariant): the journal is the record of acknowledged history,
    // so nothing may change the graph without first reaching it. The
    // journal is opened lazily here — before any state changes.
    JournalWriter *journal = nullptr;
    if (durable_)
        journal = &ensureJournal(std::string(name));

    // First mutation of this entry: spin up the slack-arena graph and,
    // when the entry carries a virtual array, its incremental
    // virtualizer. Both start at relative epoch 0 == `current.epoch`.
    if (!entry.dynamic) {
        auto state = std::make_shared<DynamicState>();
        state->graph = dynamic::DynamicGraph(current.graph);
        if (current.hasVirtual) {
            state->virtualizer.emplace(state->graph,
                                       current.virtualDegreeBound,
                                       current.virtualLayout,
                                       dynamic::StartAddressing::Arena);
            state->reverseVirtualizer.emplace(
                state->graph, current.virtualDegreeBound,
                current.virtualLayout, dynamic::StartAddressing::Arena,
                nullptr, dynamic::GraphSide::In);
        }
        state->base = current.epoch;
        entry.dynamic = std::move(state);
    }
    DynamicState &state = *entry.dynamic;

    if (journal)
        journal->append(state.base + state.graph.epoch() + 1, batch);

    // Validation failures and injected mutation.apply faults throw out
    // of here with the arena — and therefore the entry — unchanged;
    // the journaled record of the rejected batch is rolled back so the
    // journal never acknowledges an epoch the graph refused.
    MutateResult result;
    try {
        result.delta = state.graph.apply(batch);
    } catch (...) {
        if (journal)
            journal->abortLast();
        throw;
    }
    if (state.virtualizer) {
        result.repair = state.virtualizer->applyDelta(result.delta);
        result.virtualRepaired = true;
    }
    if (state.reverseVirtualizer) {
        // Time the mirror's repair separately: it is the marginal cost
        // the reverse arena adds to the mutation path, surfaced as the
        // wall-clock `mutation.reverse_repair_us` counter (metrics
        // only; deterministic traces carry the repair counts instead).
        const auto reverse_start = std::chrono::steady_clock::now();
        result.reverseRepair =
            state.reverseVirtualizer->applyDelta(result.delta);
        result.reverseRepairUs =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - reverse_start)
                .count();
    }

    // Publish the next epoch by marking the dense StoredGraph stale —
    // O(1); the next find/at/pin materializes it. Pinned readers of the
    // old version keep it alive through their shared_ptr.
    state.staleDense.store(true, std::memory_order_release);

    result.epoch = state.base + result.delta.epoch;
    result.liveEdges = state.graph.numEdges();

    // Compact only after the epoch is published: an injected
    // mutation.compact fault then interrupts slack reclamation alone —
    // the arena (and the stale flag the next read materializes from)
    // is already consistent.
    if (state.graph.shouldCompact()) {
        result.reclaimed = state.graph.compact();
        result.compacted = true;
        // Compaction renumbers every arena slot (both sides); the
        // arena-addressed entries must be rebased before they are read
        // or repaired again. This is the one residual whole-array
        // sweep left on the mutation path.
        if (state.virtualizer)
            state.virtualizer->rebase();
        if (state.reverseVirtualizer)
            state.reverseVirtualizer->rebase();
    } else {
        if (state.virtualizer &&
            state.virtualizer->shouldCompactEntries())
            state.virtualizer->rebase();
        if (state.reverseVirtualizer &&
            state.reverseVirtualizer->shouldCompactEntries())
            state.reverseVirtualizer->rebase();
    }
    result.slackSlots = state.graph.slackSlots();
    return result;
}

const std::shared_ptr<StoredGraph> &
GraphStore::materialized(const Entry &entry) const
{
    if (!entry.dynamic ||
        !entry.dynamic->staleDense.load(std::memory_order_acquire))
        return entry.stored;

    std::lock_guard<std::mutex> lock(materializeMutex_);
    DynamicState &state = *entry.dynamic;
    if (!state.staleDense.load(std::memory_order_relaxed))
        return entry.stored; // another reader already materialized

    const StoredGraph &current = *entry.stored;
    const auto start = std::chrono::steady_clock::now();
    auto next = std::make_shared<StoredGraph>();
    next->name = current.name;
    next->graph = state.graph.toCsr();
    next->hasVirtual = current.hasVirtual;
    next->virtualDegreeBound = current.virtualDegreeBound;
    next->virtualLayout = current.virtualLayout;
    if (state.virtualizer)
        next->virtualNodes = state.virtualizer->nodesCopy();
    next->source = current.source;
    next->epoch = state.base + state.graph.epoch();
    next->loadMs = elapsedMs(start);
    entry.stored = std::move(next);
    // Release pairs with the fast path's acquire: a reader that sees
    // the flag clear also sees the fully built StoredGraph.
    state.staleDense.store(false, std::memory_order_release);
    return entry.stored;
}

std::uint64_t
GraphStore::epochOf(std::string_view name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    const Entry &entry = it->second;
    if (entry.dynamic)
        return entry.dynamic->base + entry.dynamic->graph.epoch();
    return entry.stored->epoch;
}

std::size_t
GraphStore::replayLog(std::string_view name, std::istream &log,
                      std::optional<std::uint64_t> target_epoch)
{
    if (!contains(name))
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    dynamic::MutationLogReader reader(log);
    std::size_t applied = 0;
    while (!target_epoch || epochOf(name) < *target_epoch) {
        std::optional<dynamic::MutationBatch> batch = reader.next();
        if (!batch)
            break;
        mutate(name, *batch);
        ++applied;
    }
    return applied;
}

std::shared_ptr<const StoredGraph>
GraphStore::pin(std::string_view name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    return materialized(it->second);
}

const StoredGraph *
GraphStore::peek(std::string_view name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.stored.get();
}

ArenaView
GraphStore::arenaView(std::string_view name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    ArenaView view;
    const Entry &entry = it->second;
    if (!entry.dynamic)
        return view;
    const DynamicState &state = *entry.dynamic;
    view.graph = &state.graph;
    if (state.virtualizer)
        view.forward = &*state.virtualizer;
    if (state.reverseVirtualizer)
        view.reverse = &*state.reverseVirtualizer;
    view.epoch = state.base + state.graph.epoch();
    view.staleDense = state.staleDense.load(std::memory_order_acquire);
    return view;
}

const StoredGraph *
GraphStore::find(std::string_view name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr
                                : materialized(it->second).get();
}

const StoredGraph &
GraphStore::at(std::string_view name) const
{
    const StoredGraph *entry = find(name);
    if (!entry)
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    return *entry;
}

bool
GraphStore::remove(std::string_view name)
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    if (durable_) {
        auto jit = durable_->journals.find(name);
        if (jit != durable_->journals.end())
            durable_->journals.erase(jit);
    }
    return true;
}

RecoveryReport
GraphStore::openDurable(const std::filesystem::path &dir,
                        DurableOptions options)
{
    if (durable_)
        throw std::logic_error(
            "tigr: the store is already durable over '" +
            durable_->dir.string() + "'");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throw SnapshotError(SnapshotErrorKind::Io,
                            "tigr: cannot create durable directory " +
                                dir.string() + ": " + ec.message());
    // Recover BEFORE arming the journal state: replayed batches flow
    // through mutate() and must not be re-journaled.
    RecoveryManager manager(dir, options);
    RecoveryReport report = manager.recover(*this);
    durable_.emplace();
    durable_->dir = dir;
    durable_->options = options;
    return report;
}

const std::filesystem::path &
GraphStore::durableDir() const
{
    if (!durable_)
        throw std::logic_error("tigr: the store is not durable");
    return durable_->dir;
}

void
GraphStore::writeSnapshot(std::string_view name,
                          const std::filesystem::path &path)
{
    std::shared_ptr<const StoredGraph> pinned = pin(name);
    Snapshot snapshot;
    snapshot.graph = pinned->graph;
    snapshot.hasVirtual = pinned->hasVirtual;
    snapshot.virtualDegreeBound = pinned->virtualDegreeBound;
    snapshot.virtualLayout = pinned->virtualLayout;
    snapshot.virtualNodes = pinned->virtualNodes;
    snapshot.epoch = pinned->epoch;
    saveSnapshotFile(snapshot, path);
}

JournalWriter &
GraphStore::ensureJournal(const std::string &name)
{
    auto it = durable_->journals.find(name);
    if (it != durable_->journals.end())
        return it->second;

    const std::filesystem::path snapshotPath =
        durable_->dir / (name + std::string(kSnapshotExtension));
    const std::filesystem::path journalPath =
        journalPathFor(snapshotPath);
    std::error_code ec;
    if (std::filesystem::exists(journalPath, ec) && !ec) {
        JournalWriter writer = JournalWriter::resume(
            journalPath, durable_->options.syncPolicy);
        writer.observe(durable_->options.metrics,
                       durable_->options.trace);
        return durable_->journals.emplace(name, std::move(writer))
            .first->second;
    }
    // First journal for this graph: put the base snapshot on disk
    // first (when the graph has none), so the journal always extends a
    // durable snapshot. A crash between the two leaves a snapshot with
    // no journal — recovery serves it as-is.
    ec.clear();
    if (!std::filesystem::exists(snapshotPath, ec) || ec)
        writeSnapshot(name, snapshotPath);
    JournalWriter writer = JournalWriter::create(
        journalPath, epochOf(name), durable_->options.syncPolicy);
    writer.observe(durable_->options.metrics, durable_->options.trace);
    return durable_->journals.emplace(name, std::move(writer))
        .first->second;
}

CheckpointResult
GraphStore::checkpoint(std::string_view name)
{
    if (!durable_)
        throw std::logic_error(
            "tigr: checkpoint requires a durable store (openDurable)");
    if (!contains(name))
        throw std::out_of_range("tigr: no graph named '" +
                                std::string(name) + "' in the store");
    const std::string key(name);

    // Ack everything outstanding before folding it into the snapshot.
    std::uint64_t retired = 0;
    auto it = durable_->journals.find(key);
    if (it != durable_->journals.end()) {
        it->second.sync();
        retired = it->second.records();
    }

    CheckpointResult result;
    result.snapshot =
        durable_->dir / (key + std::string(kSnapshotExtension));
    result.journal = journalPathFor(result.snapshot);
    writeSnapshot(name, result.snapshot);
    result.epoch = epochOf(name);
    result.retiredRecords = retired;

    // Rotate: build the fresh journal beside the live one, then
    // atomically swap it in. A crash before the rename leaves the old
    // journal (its records now retire against the new snapshot) plus a
    // "*.twj.tmp" leftover the audit quarantines; after, the fresh
    // journal.
    const std::filesystem::path tmp =
        result.journal.parent_path() /
        (result.journal.filename().string() + ".tmp");
    JournalWriter fresh = JournalWriter::create(
        tmp, result.epoch, durable_->options.syncPolicy);
    fresh.observe(durable_->options.metrics, durable_->options.trace);
    fresh.rotateInto(result.journal);
    io::syncPath(durable_->dir, /*directory=*/true);
    const std::uint64_t bytesAfter = fresh.bytes();
    if (it != durable_->journals.end())
        it->second = std::move(fresh);
    else
        durable_->journals.emplace(key, std::move(fresh));

    if (durable_->options.metrics) {
        durable_->options.metrics->counter("journal.checkpoints")
            .add(1);
        durable_->options.metrics->counter("journal.retired")
            .add(retired);
    }
    if (durable_->options.trace) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::JournalCheckpoint;
        event.arg[0] = result.epoch;
        event.arg[1] = retired;
        event.arg[2] = bytesAfter;
        durable_->options.trace->record(event);
    }
    return result;
}

void
GraphStore::syncJournals()
{
    if (!durable_)
        return;
    for (auto &[name, journal] : durable_->journals)
        journal.sync();
}

std::vector<std::string>
GraphStore::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

std::size_t
GraphStore::totalBytes() const
{
    std::size_t bytes = 0;
    for (const auto &[name, entry] : entries_)
        bytes += entry.stored->graph.sizeInBytes();
    return bytes;
}

} // namespace tigr::service
