#include "service/journal.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <utility>

#include "fault/fault.hpp"
#include "graph/io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tigr::service {

namespace {

constexpr char kJournalMagic[8] = {'T', 'I', 'G', 'R',
                                   'W', 'J', 'L', '1'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
/** Header bytes covered by the trailing FNV-1a checksum. */
constexpr std::size_t kHeaderHashed = kHeaderBytes - sizeof(std::uint64_t);
/** Fixed payload prefix: epoch u64 + seq u64 + count u32. */
constexpr std::size_t kRecordFixed = 20;
/** Wire bytes per mutation: kind u8 + src/dst/weight u32. */
constexpr std::size_t kMutationBytes = 13;
/** Length-prefix sanity cap: nothing this repo writes comes close, so
 *  anything larger is hostile bytes, not a record. */
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

[[noreturn]] void
fail(JournalErrorKind kind, const std::string &message)
{
    throw JournalError(kind, "tigr: " + message);
}

void
putU8(std::string &out, std::uint8_t value)
{
    out.push_back(static_cast<char>(value));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i)
        value = (value << 8) | p[i];
    return value;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i)
        value = (value << 8) | p[i];
    return value;
}

std::string
encodeHeader(std::uint64_t base_epoch)
{
    std::string out;
    out.reserve(kHeaderBytes);
    out.append(kJournalMagic, sizeof(kJournalMagic));
    putU32(out, kJournalVersion);
    putU32(out, 0); // flags, reserved
    putU64(out, base_epoch);
    putU64(out, graph::fnv1a64(out.data(), kHeaderHashed));
    return out;
}

/** Payload of one record (everything the CRC covers). */
std::string
encodePayload(std::uint64_t epoch, std::uint64_t seq,
              const dynamic::MutationBatch &batch)
{
    std::string out;
    out.reserve(kRecordFixed + batch.size() * kMutationBytes);
    putU64(out, epoch);
    putU64(out, seq);
    putU32(out, static_cast<std::uint32_t>(batch.size()));
    for (const dynamic::Mutation &m : batch) {
        putU8(out, static_cast<std::uint8_t>(m.kind));
        putU32(out, m.src);
        putU32(out, m.dst);
        putU32(out, m.weight);
    }
    return out;
}

/** Decode one payload; nullopt on any inconsistency (the caller treats
 *  that as the torn tail, never as an exception). */
std::optional<JournalRecord>
decodePayload(const unsigned char *p, std::size_t size)
{
    if (size < kRecordFixed)
        return std::nullopt;
    JournalRecord record;
    record.epoch = getU64(p);
    record.seq = getU64(p + 8);
    const std::uint32_t count = getU32(p + 16);
    if (size != kRecordFixed + std::size_t{count} * kMutationBytes)
        return std::nullopt;
    record.batch.reserve(count);
    const unsigned char *cursor = p + kRecordFixed;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t kind = cursor[0];
        if (kind > static_cast<std::uint8_t>(
                       dynamic::MutationKind::UpdateWeight))
            return std::nullopt;
        dynamic::Mutation m;
        m.kind = static_cast<dynamic::MutationKind>(kind);
        m.src = getU32(cursor + 1);
        m.dst = getU32(cursor + 5);
        m.weight = getU32(cursor + 9);
        record.batch.push_back(m);
        cursor += kMutationBytes;
    }
    return record;
}

} // namespace

std::filesystem::path
journalPathFor(const std::filesystem::path &snapshot_path)
{
    if (snapshot_path.filename().empty())
        throw std::invalid_argument(
            "tigr: cannot derive a journal path from '" +
            snapshot_path.string() + "' (no filename)");
    std::filesystem::path out = snapshot_path;
    out.replace_extension(kJournalExtension);
    return out;
}

std::string_view
syncPolicyName(SyncPolicy policy)
{
    switch (policy) {
      case SyncPolicy::EveryRecord: return "every-record";
      case SyncPolicy::GroupCommit: return "group-commit";
      case SyncPolicy::Unsynced: return "unsynced";
    }
    return "unknown";
}

std::optional<SyncPolicy>
parseSyncPolicy(std::string_view name)
{
    for (SyncPolicy policy : {SyncPolicy::EveryRecord,
                              SyncPolicy::GroupCommit,
                              SyncPolicy::Unsynced})
        if (syncPolicyName(policy) == name)
            return policy;
    return std::nullopt;
}

std::uint32_t
crc32c(const void *data, std::size_t size, std::uint32_t crc)
{
    // Reflected CRC-32C (Castagnoli), table-driven. Seeding with a
    // previous result chains: crc32c(b, n, crc32c(a, m)) equals the
    // CRC of the concatenation.
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1u) ? 0x82f63b78u : 0u);
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t c = ~crc;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        c = (c >> 8) ^ table[(c ^ p[i]) & 0xffu];
    return ~c;
}

JournalScan
scanJournal(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail(JournalErrorKind::Io,
             "cannot open journal " + path.string());
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad())
        fail(JournalErrorKind::Io,
             "cannot read journal " + path.string());

    JournalScan scan;
    scan.fileBytes = bytes.size();
    const unsigned char *base =
        reinterpret_cast<const unsigned char *>(bytes.data());

    // Header: magic + version + checksum, or nothing in the file can
    // be trusted.
    if (bytes.size() < kHeaderBytes ||
        std::memcmp(base, kJournalMagic, sizeof(kJournalMagic)) != 0 ||
        getU32(base + 8) != kJournalVersion ||
        getU64(base + kHeaderHashed) !=
            graph::fnv1a64(base, kHeaderHashed))
        return scan;
    scan.headerIntact = true;
    scan.baseEpoch = getU64(base + 16);
    scan.intactBytes = kHeaderBytes;

    // Records: stop at the first frame that fails the length prefix,
    // the CRC, the seq chain, or the mutation encoding — from there on
    // it is the torn tail.
    std::size_t pos = kHeaderBytes;
    while (pos + 8 <= bytes.size()) {
        const std::uint32_t payloadBytes = getU32(base + pos);
        const std::uint32_t payloadCrc = getU32(base + pos + 4);
        if (payloadBytes > kMaxPayloadBytes ||
            pos + 8 + payloadBytes > bytes.size())
            break;
        const unsigned char *payload = base + pos + 8;
        if (crc32c(payload, payloadBytes) != payloadCrc)
            break;
        std::optional<JournalRecord> record =
            decodePayload(payload, payloadBytes);
        if (!record || record->seq != scan.records.size())
            break;
        record->offset = pos;
        scan.records.push_back(std::move(*record));
        pos += 8 + payloadBytes;
        scan.intactBytes = pos;
    }
    return scan;
}

JournalWriter::JournalWriter(io::FileHandle file,
                             std::filesystem::path path,
                             std::uint64_t base_epoch,
                             SyncPolicy policy, std::uint64_t next_seq)
    : file_(std::move(file)), path_(std::move(path)),
      baseEpoch_(base_epoch), policy_(policy), nextSeq_(next_seq),
      bytes_(file_.offset())
{
}

JournalWriter
JournalWriter::create(const std::filesystem::path &path,
                      std::uint64_t base_epoch, SyncPolicy policy)
{
    try {
        io::FileHandle file = io::FileHandle::createTruncated(path);
        const std::string header = encodeHeader(base_epoch);
        file.writeAll(header.data(), header.size());
        // The header is synced unconditionally (even Unsynced): a
        // journal that exists must at least be identifiable.
        file.sync();
        const std::filesystem::path parent = path.parent_path();
        io::syncPath(parent.empty() ? "." : parent, /*directory=*/true);
        return JournalWriter(std::move(file), path, base_epoch, policy,
                             0);
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
}

JournalWriter
JournalWriter::resume(const std::filesystem::path &path,
                      SyncPolicy policy)
{
    JournalScan scan = scanJournal(path);
    if (!scan.headerIntact) {
        // Classify for the error message: a right-magic wrong-version
        // file is a version problem, anything else is foreign bytes.
        std::ifstream in(path, std::ios::binary);
        char head[12] = {};
        in.read(head, sizeof(head));
        if (in.gcount() == sizeof(head) &&
            std::memcmp(head, kJournalMagic,
                        sizeof(kJournalMagic)) == 0 &&
            getU32(reinterpret_cast<const unsigned char *>(head) + 8) !=
                kJournalVersion)
            fail(JournalErrorKind::BadVersion,
                 "journal " + path.string() +
                     " has an unsupported version");
        fail(JournalErrorKind::BadMagic,
             "journal " + path.string() + " has no intact header");
    }
    try {
        io::FileHandle file =
            io::FileHandle::openAt(path, scan.intactBytes);
        return JournalWriter(std::move(file), path, scan.baseEpoch,
                             policy, scan.records.size());
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
}

void
JournalWriter::append(std::uint64_t epoch,
                      const dynamic::MutationBatch &batch)
{
    TIGR_FAULT_POINT(fault::Site::JournalAppend);
    const std::string payload = encodePayload(epoch, nextSeq_, batch);
    std::string frame;
    frame.reserve(8 + payload.size());
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32c(payload.data(), payload.size()));
    frame += payload;

    lastAppendOffset_ = bytes_;
    try {
        // One write per frame: a crash tears at most this record.
        file_.writeAll(frame.data(), frame.size());
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
    bytes_ += frame.size();
    ++nextSeq_;
    dirty_ = true;

    if (metrics_) {
        metrics_->counter("journal.appends").add(1);
        metrics_->counter("journal.bytes").add(frame.size());
    }
    const bool syncedInline = policy_ == SyncPolicy::EveryRecord;
    if (trace_) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::JournalAppend;
        event.label[0] = syncPolicyName(policy_);
        event.arg[0] = epoch;
        event.arg[1] = nextSeq_ - 1;
        event.arg[2] = frame.size();
        event.arg[3] = syncedInline ? 1 : 0;
        trace_->record(event);
    }
    if (syncedInline)
        syncNow();
}

void
JournalWriter::sync()
{
    if (!dirty_ || policy_ == SyncPolicy::Unsynced)
        return;
    syncNow();
}

void
JournalWriter::syncNow()
{
    TIGR_FAULT_POINT(fault::Site::JournalSync);
    try {
        file_.sync();
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
    dirty_ = false;
    if (metrics_)
        metrics_->counter("journal.syncs").add(1);
}

void
JournalWriter::abortLast()
{
    if (!lastAppendOffset_)
        throw std::logic_error(
            "tigr: journal abortLast with no append to abort");
    try {
        file_.truncateTo(*lastAppendOffset_);
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
    bytes_ = *lastAppendOffset_;
    --nextSeq_;
    lastAppendOffset_.reset();
    if (metrics_)
        metrics_->counter("journal.aborts").add(1);
}

void
JournalWriter::observe(obs::MetricsRegistry *metrics,
                       obs::TraceSink *trace)
{
    metrics_ = metrics;
    trace_ = trace;
}

void
JournalWriter::rotateInto(const std::filesystem::path &target)
{
    try {
        // The fd survives the rename, so appends keep flowing to the
        // same (now renamed) file.
        io::renameFile(path_, target);
    } catch (const io::IoError &error) {
        fail(JournalErrorKind::Io, error.what());
    }
    path_ = target;
}

} // namespace tigr::service
