#include "service/recovery.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/graph_store.hpp"

namespace tigr::service {

namespace {

/**
 * Preserve the cut bytes [cut, size) of @p journal as "<journal>.torn"
 * before the truncate, so a torn tail is evidence, not data loss.
 * Best-effort: recovery never fails because the preserve did.
 * Returns the preserved path, empty on failure or an empty tail.
 */
std::filesystem::path
preserveTail(const std::filesystem::path &journal, std::uint64_t cut,
             std::uint64_t size)
{
    if (cut >= size)
        return {};
    std::ifstream in(journal, std::ios::binary);
    if (!in)
        return {};
    in.seekg(static_cast<std::streamoff>(cut));
    std::string tail(static_cast<std::size_t>(size - cut), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(tail.size()));
    if (in.gcount() <= 0)
        return {};
    tail.resize(static_cast<std::size_t>(in.gcount()));
    const std::filesystem::path preserved =
        journal.parent_path() / (journal.filename().string() + ".torn");
    std::ofstream out(preserved, std::ios::binary | std::ios::trunc);
    if (!out)
        return {};
    out.write(tail.data(), static_cast<std::streamsize>(tail.size()));
    out.flush();
    if (!out)
        return {};
    return preserved;
}

} // namespace

std::uint64_t
RecoveryReport::epochsReplayed() const
{
    std::uint64_t total = 0;
    for (const GraphRecovery &g : graphs)
        total += g.recordsReplayed;
    return total;
}

std::uint64_t
RecoveryReport::bytesTruncated() const
{
    std::uint64_t total = 0;
    for (const GraphRecovery &g : graphs)
        total += g.bytesTruncated;
    return total;
}

std::uint64_t
RecoveryReport::tornTails() const
{
    std::uint64_t total = 0;
    for (const GraphRecovery &g : graphs)
        total += g.tornTail ? 1 : 0;
    return total;
}

RecoveryManager::RecoveryManager(std::filesystem::path dir,
                                 DurableOptions options)
    : dir_(std::move(dir)), options_(std::move(options))
{
}

RecoveryReport
RecoveryManager::recover(GraphStore &store)
{
    RecoveryReport report;
    SnapshotAuditReport audit =
        store.addSnapshotDirectory(dir_, options_.loadMode);
    report.intactSnapshots = std::move(audit.intact);
    report.quarantined = std::move(audit.quarantined);

    std::map<std::string, std::filesystem::path> journalsByStem;
    for (const std::filesystem::path &journal : audit.journals)
        journalsByStem.emplace(journal.stem().string(), journal);

    for (const std::filesystem::path &snapshot :
         report.intactSnapshots) {
        const std::string name = snapshot.stem().string();
        if (!store.contains(name))
            continue;
        GraphRecovery g;
        g.name = name;
        g.snapshotEpoch = store.epochOf(name);

        auto jt = journalsByStem.find(name);
        if (jt != journalsByStem.end()) {
            g.journal = jt->second;
            // The audit vouched for the header; an unreadable file
            // here means the environment broke between the two reads —
            // skip replay, serve the snapshot.
            bool scanned = false;
            JournalScan scan;
            try {
                scan = scanJournal(g.journal);
                scanned = true;
            } catch (const JournalError &) {
            }
            if (scanned && scan.headerIntact) {
                std::uint64_t cutAt = scan.intactBytes;
                bool cut = scan.tornBytes() > 0;
                std::uint64_t epoch = g.snapshotEpoch;
                for (const JournalRecord &record : scan.records) {
                    if (record.epoch <= epoch) {
                        // Checkpoint-retired history: the snapshot
                        // already contains this batch.
                        ++g.recordsRetired;
                        continue;
                    }
                    if (record.epoch != epoch + 1) {
                        // An epoch gap: the record cannot extend this
                        // snapshot. Intact prefix ends here.
                        cutAt = record.offset;
                        cut = true;
                        break;
                    }
                    bool applied = false;
                    try {
                        store.mutate(name, record.batch);
                        applied = true;
                    } catch (const std::exception &) {
                        // A decodable record the graph rejects: the
                        // append-then-reject crash window. Same
                        // treatment as a torn tail — never an
                        // exception out of recovery.
                    }
                    if (!applied) {
                        cutAt = record.offset;
                        cut = true;
                        break;
                    }
                    ++g.recordsReplayed;
                    ++epoch;
                }
                if (cut) {
                    g.bytesTruncated = scan.fileBytes - cutAt;
                    g.tornTail = true;
                    try {
                        const std::filesystem::path preserved =
                            preserveTail(g.journal, cutAt,
                                         scan.fileBytes);
                        if (!preserved.empty())
                            report.quarantined.push_back(preserved);
                        io::truncatePath(g.journal, cutAt);
                    } catch (const std::exception &) {
                        // Best-effort: a failed truncate only means
                        // the next recovery redoes this work.
                    }
                }
            }
        }
        g.recoveredEpoch = store.epochOf(name);

        if (options_.metrics) {
            options_.metrics->counter("recovery.graphs").add(1);
            options_.metrics->counter("recovery.replayed")
                .add(g.recordsReplayed);
            options_.metrics->counter("recovery.truncated_bytes")
                .add(g.bytesTruncated);
            if (g.tornTail)
                options_.metrics->counter("recovery.torn_tails").add(1);
        }
        if (options_.trace) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::RecoverGraph;
            event.arg[0] = g.snapshotEpoch;
            event.arg[1] = g.recoveredEpoch;
            event.arg[2] = g.recordsReplayed;
            event.arg[3] = g.recordsRetired;
            event.arg[4] = g.bytesTruncated;
            event.arg[5] = g.tornTail ? 1 : 0;
            options_.trace->record(event);
        }
        report.graphs.push_back(std::move(g));
    }
    return report;
}

std::string
formatRecoveryReport(const RecoveryReport &report)
{
    std::ostringstream out;
    out << "recovered " << report.graphs.size() << " graph(s): "
        << report.epochsReplayed() << " record(s) replayed, "
        << report.bytesTruncated() << " byte(s) truncated, "
        << report.tornTails() << " torn tail(s), "
        << report.quarantined.size() << " file(s) quarantined\n";
    for (const GraphRecovery &g : report.graphs) {
        out << "  graph " << g.name << ": snapshot epoch "
            << g.snapshotEpoch << " -> epoch " << g.recoveredEpoch
            << " (replayed " << g.recordsReplayed << ", retired "
            << g.recordsRetired;
        if (g.tornTail)
            out << ", truncated " << g.bytesTruncated << " bytes";
        out << ")";
        if (!g.journal.empty())
            out << " journal " << g.journal.filename().string();
        out << "\n";
    }
    for (const std::filesystem::path &path : report.quarantined)
        out << "  quarantined " << path.string() << "\n";
    return out.str();
}

} // namespace tigr::service
