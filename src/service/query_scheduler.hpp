/**
 * @file
 * QueryScheduler: bounded-admission, deadline-aware batch execution of
 * analytics queries over the GraphStore, sharing transforms through the
 * TransformCache.
 *
 * Determinism contract (the property the differential tests pin): for
 * a fixed store, cache state, and batch, runBatch() produces
 * bit-identical per-query values, outcomes, iteration counts, and
 * cache-hit flags at ANY worker count. Three design choices make that
 * hold:
 *
 *  1. Every query executes on a single-threaded engine, whose results
 *     are bit-identical by the repo's chunk-determinism contract —
 *     scheduler workers add concurrency *across* queries, never inside
 *     one.
 *  2. Transform warm-up is serial and in batch order: each admitted
 *     query's schedule is built (or found) in the cache before any
 *     worker starts, so which query is the miss and which are hits is
 *     a function of the batch alone, not of worker interleaving.
 *  3. Deterministic deadlines are expressed in *simulated* time
 *     (QuerySpec::deadlineSimMs): the engine's cancel hook compares
 *     the simulated cycle counter — thread-count-invariant — so a
 *     query exceeds its deadline identically everywhere. Wall-clock
 *     deadlines (deadlineWallMs) are available but explicitly
 *     best-effort.
 */
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/strategy.hpp"
#include "engine/graph_engine.hpp"
#include "service/graph_store.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {

/** One analytics job. */
struct QuerySpec
{
    /** Store name of the graph to analyze. */
    std::string graph;
    /** Which analysis to run. */
    engine::Algorithm algorithm = engine::Algorithm::Bfs;
    /** Source node for BFS/SSSP/SSWP/BC (ignored by CC/PR). */
    NodeId source = 0;
    /** Scheduling strategy (Table 2). */
    engine::Strategy strategy = engine::Strategy::TigrVPlus;
    /** Degree bound K for the virtual strategies. */
    NodeId degreeBound = 10;
    /** Virtual-warp width for MaximumWarp. */
    unsigned mwVirtualWarp = 8;
    /** PageRank rounds (PR only). */
    unsigned prIterations = 20;
    /** Frontier representation of worklist iterations (dense, sparse,
     *  or the adaptive switch); values are identical for every mode. */
    engine::FrontierMode frontier = engine::FrontierMode::Adaptive;
    /** Occupancy threshold of the adaptive frontier switch. */
    double frontierRatio = engine::kDefaultFrontierRatio;
    /**
     * Deterministic deadline in *simulated* milliseconds: the query is
     * cancelled before the first BSP iteration whose accumulated
     * simulated kernel time is >= this. 0 = no deadline. Identical at
     * any worker count.
     */
    double deadlineSimMs = 0.0;
    /**
     * Best-effort wall-clock deadline in host milliseconds, measured
     * from when a worker picks the query up. 0 = none. NOT
     * deterministic — use deadlineSimMs when reproducibility matters.
     */
    double deadlineWallMs = 0.0;
};

/** How a query ended. */
enum class QueryOutcome
{
    Completed,        ///< Ran to convergence / iteration budget.
    DeadlineExceeded, ///< Cancelled by a deadline; partial values are
                      ///< the well-defined state at cancellation.
    Rejected,         ///< Never ran (admission queue full, unknown
                      ///< graph, unsupported strategy/algorithm pair).
    Error,            ///< The engine threw mid-run.
};

/** Display name ("completed", "deadline-exceeded", ...). */
std::string_view queryOutcomeName(QueryOutcome outcome);

/** Result of one query, in batch order. */
struct QueryResult
{
    QueryOutcome outcome = QueryOutcome::Rejected;
    /** Diagnostic for Rejected / Error outcomes. */
    std::string message;
    /** Engine metadata (iterations, counters, transform timing). */
    engine::RunInfo info;
    /** FNV-1a 64 digest over the raw result-value bytes — the compact
     *  bit-identity witness the differential tests compare. 0 for
     *  queries that never ran. */
    std::uint64_t digest = 0;
    /** Number of result values behind the digest. */
    std::size_t values = 0;
    /** True when the query's transform came out of the TransformCache
     *  (deterministic: decided by the serial warm-up phase). */
    bool cacheHit = false;
};

/** Scheduler tuning. */
struct SchedulerOptions
{
    /** Concurrent query workers: 0 = the TIGR_THREADS / hardware
     *  default, N >= 1 = exactly N. */
    unsigned workers = 0;
    /** Admission bound: queries beyond this many in one batch are
     *  Rejected (deterministically, by batch position). */
    std::size_t maxQueuedQueries = 1024;
    /** Host threads for cache-miss transform builds during warm-up
     *  (builds are bit-identical at any value). 0 = default. */
    unsigned buildThreads = 1;
};

/**
 * Executes query batches against a GraphStore + TransformCache. The
 * store must not be mutated during runBatch(); the cache is safe to
 * share (internally synchronized).
 */
class QueryScheduler
{
  public:
    QueryScheduler(const GraphStore &store, TransformCache &cache,
                   SchedulerOptions options = {});

    /** Worker count batches actually run with. */
    unsigned workers() const { return workers_; }

    /**
     * Run @p batch to completion and return per-query results in batch
     * order. Admission, warm-up, execution — see the file comment for
     * the determinism argument.
     */
    std::vector<QueryResult> runBatch(std::span<const QuerySpec> batch);

  private:
    /** Validate @p spec against the store; fills result on rejection. */
    bool admit(const QuerySpec &spec, QueryResult &result) const;

    /** Execute one admitted query (on a 1-thread engine). */
    void execute(const QuerySpec &spec, QueryResult &result) const;

    const GraphStore &store_;
    TransformCache &cache_;
    SchedulerOptions options_;
    unsigned workers_;
};

} // namespace tigr::service
