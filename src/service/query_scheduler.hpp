/**
 * @file
 * QueryScheduler: bounded-admission, deadline-aware, fault-resilient
 * batch execution of analytics queries over the GraphStore, sharing
 * transforms through the TransformCache.
 *
 * Determinism contract (the property the differential tests pin): for
 * a fixed store, cache state, batch, and fault plan, runBatch()
 * produces bit-identical per-query values, outcomes, attempt counts,
 * fault traces, and cache-hit flags at ANY worker count. The design
 * choices that make that hold:
 *
 *  1. Every query executes on a single-threaded engine, whose results
 *     are bit-identical by the repo's chunk-determinism contract —
 *     scheduler workers add concurrency *across* queries, never inside
 *     one.
 *  2. Transform warm-up is serial and in batch order: each admitted
 *     query's schedule is built (or found) in the cache before any
 *     worker starts, so which query is the miss and which are hits is
 *     a function of the batch alone, not of worker interleaving.
 *  3. Deterministic deadlines are expressed in *simulated* time
 *     (QuerySpec::deadlineSimMs): the engine's cancel hook compares
 *     the simulated cycle counter — thread-count-invariant — so a
 *     query exceeds its deadline identically everywhere. Wall-clock
 *     deadlines (deadlineWallMs) are available but explicitly
 *     best-effort.
 *  4. Injected faults (SchedulerOptions::faultPlan) are decided by a
 *     pure function of (seed, site, scope key, attempt, hit counter),
 *     with scope keys assigned by batch position — never by timing.
 *     Retry backoff is charged in simulated milliseconds against the
 *     query's deadlineSimMs budget, so no thread sleeps and a retried
 *     query times out identically everywhere. The circuit breaker
 *     advances only at batch boundaries and from a batch-ordered
 *     post-pass, so quarantine decisions are a function of batch
 *     history alone.
 *
 * Failure handling is layered (docs/resilience.md):
 *
 *  - Admission rejects invalid specs and quarantined graphs with a
 *    typed ServiceError; nothing invalid ever reaches a worker.
 *  - Warm-up failures (transform build faults, cache-insert faults,
 *    budget exhaustion) never fail a query — they push it down the
 *    degradation ladder: virtual-strategy queries fall back to the
 *    zero-memory dynamic mapping, everything else to an engine-local
 *    build; the result is flagged `degraded` and remains value-
 *    identical.
 *  - Execute-phase failures are retried up to RetryPolicy::maxRetries
 *    with deterministic simulated-time backoff; only an exhausted
 *    retry budget (or a non-retryable failure) surfaces as Error.
 *  - runBatch() itself never throws: every query gets a terminal
 *    typed outcome.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dynamic/mutation.hpp"
#include "engine/strategy.hpp"
#include "engine/graph_engine.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/graph_store.hpp"
#include "service/resilience.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {

/** One analytics job. */
struct QuerySpec
{
    /** Store name of the graph to analyze. */
    std::string graph;
    /** Which analysis to run. */
    engine::Algorithm algorithm = engine::Algorithm::Bfs;
    /** Source node for BFS/SSSP/SSWP/BC (ignored by CC/PR). */
    NodeId source = 0;
    /** Scheduling strategy (Table 2). */
    engine::Strategy strategy = engine::Strategy::TigrVPlus;
    /** Push or pull value propagation. Pull is rejected at admission
     *  under TigrUdt (like the engine itself). */
    engine::Direction direction = engine::Direction::Push;
    /** Degree bound K for the virtual strategies. */
    NodeId degreeBound = 10;
    /** Virtual-warp width for MaximumWarp. */
    unsigned mwVirtualWarp = 8;
    /** PageRank rounds (PR only). */
    unsigned prIterations = 20;
    /** Frontier representation of worklist iterations (dense, sparse,
     *  or the adaptive switch); values are identical for every mode. */
    engine::FrontierMode frontier = engine::FrontierMode::Adaptive;
    /** Occupancy threshold of the adaptive frontier switch. */
    double frontierRatio = engine::kDefaultFrontierRatio;
    /**
     * Deterministic deadline in *simulated* milliseconds: the query is
     * cancelled before the first BSP iteration whose accumulated
     * simulated kernel time is >= this. Retry backoff is charged
     * against the same budget. 0 = no deadline. Identical at any
     * worker count.
     */
    double deadlineSimMs = 0.0;
    /**
     * Best-effort wall-clock deadline in host milliseconds, measured
     * from when a worker picks the query up. 0 = none. NOT
     * deterministic — use deadlineSimMs when reproducibility matters.
     */
    double deadlineWallMs = 0.0;
};

/** One mutation job: an explicit batch, a generated one, or both
 *  (explicit mutations first, then the generated tail — applied as a
 *  single epoch). */
struct MutationSpec
{
    /** Store name of the graph to mutate. */
    std::string graph;
    /** Explicit mutations, applied in order. */
    dynamic::MutationBatch mutations;
    /** When set, a seeded batch generated against the graph's state at
     *  apply time (dynamic::generateBatch) is appended. */
    std::optional<dynamic::GeneratorSpec> generate;
};

/** Result of one mutation, in batch order. */
struct MutationResult
{
    /** True when the epoch advanced. A `mutation.compact` fault can
     *  leave applied=true alongside an error: the mutation landed and
     *  only slack reclamation was interrupted. */
    bool applied = false;
    /** Diagnostic for failures. */
    std::string message;
    /** Typed failure detail (empty on clean success). */
    std::optional<ServiceError> error;
    /** The graph's epoch after this mutation (unchanged on a clean
     *  rejection). */
    std::uint64_t epoch = 0;
    /** Mutations applied, by kind. */
    std::size_t inserts = 0;
    std::size_t deletes = 0;
    std::size_t reweights = 0;
    /** Distinct vertices the batch touched. */
    std::size_t touched = 0;
    /** Incremental virtual-array repair counters (0 when the entry has
     *  no virtual section). */
    std::size_t repaired = 0;
    std::size_t resplits = 0;
    /** Repair counters of the mirrored In-side array (0 without a
     *  virtual section). */
    std::size_t reverseRepaired = 0;
    std::size_t reverseResplits = 0;
    /** True when the slack threshold triggered a compaction. */
    bool compacted = false;
    /** Arena slots the compaction reclaimed. */
    std::uint64_t reclaimed = 0;
    /** Every fault injected into this mutation, in firing order. */
    fault::FaultTrace faultTrace;
    /** Structured trace (empty unless SchedulerOptions::trace). */
    obs::TraceSink trace;
};

/** How a query ended. Every outcome is terminal: runBatch() never
 *  throws and never leaves a query undecided. */
enum class QueryOutcome
{
    Completed,        ///< Ran to convergence / iteration budget.
    DeadlineExceeded, ///< Cancelled by a deadline; partial values are
                      ///< the well-defined state at cancellation.
    Rejected,         ///< Never ran (admission queue full, invalid
                      ///< spec, unsupported strategy/algorithm pair).
    Quarantined,      ///< Never ran: the target graph's circuit
                      ///< breaker is open.
    Error,            ///< Failed terminally after exhausting the retry
                      ///< budget (or a non-retryable failure).
};

/** Display name ("completed", "deadline-exceeded", ...). */
std::string_view queryOutcomeName(QueryOutcome outcome);

/** Result of one query, in batch order. */
struct QueryResult
{
    QueryOutcome outcome = QueryOutcome::Rejected;
    /** Diagnostic for Rejected / Quarantined / Error outcomes (the
     *  last failure's message for Error). */
    std::string message;
    /** Typed failure detail accompanying non-Completed terminal
     *  failures; also set for queries that eventually succeeded after
     *  degradation at warm-up (kind of the absorbed failure). Empty
     *  for clean completions. */
    std::optional<ServiceError> error;
    /** Engine metadata (iterations, counters, transform timing). */
    engine::RunInfo info;
    /** FNV-1a 64 digest over the raw result-value bytes — the compact
     *  bit-identity witness the differential tests compare. 0 for
     *  queries that never ran. */
    std::uint64_t digest = 0;
    /** Number of result values behind the digest. */
    std::size_t values = 0;
    /** True when the query's transform came out of the TransformCache
     *  (deterministic: decided by the serial warm-up phase). */
    bool cacheHit = false;
    /** True when the query was served straight off the live arena
     *  (graph mutated, dense copy stale) — no dense materialization
     *  and no cache involvement; values are bit-identical to the
     *  dense path (decided serially, see docs/service.md). */
    bool arenaServed = false;
    /** True when the query ran on the degradation ladder (dynamic
     *  mapping or engine-local build after a warm-up failure). The
     *  values are bit-identical to a non-degraded run. */
    bool degraded = false;
    /** Execution attempts consumed (1 = no retry; 0 = never ran). */
    unsigned attempts = 0;
    /** Total simulated-ms backoff charged against the query's
     *  deadlineSimMs budget by retries. */
    double backoffSimMs = 0.0;
    /** Every fault the plan injected into this query (warm-up and all
     *  attempts), in firing order. Bit-identical across runs of the
     *  same seeded plan over the same batch at any worker count. */
    fault::FaultTrace faultTrace;
    /** FNV-1a 64 digest over the query's canonical integer outcome
     *  record (outcome, attempts, iterations, simulated cycles, value
     *  digest, cache/degraded flags, simulated backoff, fault count —
     *  no wall-clock field participates). Always computed; the compact
     *  witness that metrics can reconcile against results. */
    std::uint64_t metricsDigest = 0;
    /** Per-query structured trace (empty unless SchedulerOptions::
     *  trace): engine iteration events plus the scheduler's cache /
     *  fault / retry / outcome events, in deterministic order. */
    obs::TraceSink trace;
};

/** Combined result of a mutation-then-query batch. */
struct MutationBatchResult
{
    std::vector<MutationResult> mutations;
    std::vector<QueryResult> queries;
};

/** Scheduler tuning. */
struct SchedulerOptions
{
    /** Concurrent query workers: 0 = the TIGR_THREADS / hardware
     *  default, N >= 1 = exactly N. */
    unsigned workers = 0;
    /** Admission bound: queries beyond this many in one batch are
     *  Rejected (deterministically, by batch position). */
    std::size_t maxQueuedQueries = 1024;
    /** Host threads for cache-miss transform builds during warm-up
     *  (builds are bit-identical at any value). 0 = default. */
    unsigned buildThreads = 1;
    /** Deterministic fault schedule; inert by default. */
    fault::FaultPlan faultPlan;
    /** Retry budget and simulated-time backoff for execute-phase
     *  failures. */
    RetryPolicy retry;
    /** Per-graph circuit-breaker tuning. */
    BreakerOptions breaker;
    /** Degrade virtual-strategy queries to the zero-memory dynamic
     *  mapping when the cache cannot retain their schedule (budget
     *  exhaustion or an injected cache.insert fault), instead of
     *  holding an uncached copy per query. Values are identical
     *  either way. */
    bool degradeOnCachePressure = true;
    /** Optional metrics registry: runBatch() folds per-batch counters
     *  (admitted/rejected/quarantined/completed/errors/retries/...)
     *  into it from a serial post-pass, so the counts are exact and
     *  worker-count-invariant. Null = no metrics. */
    obs::MetricsRegistry *metrics = nullptr;
    /** Record a structured trace into every QueryResult::trace. */
    bool trace = false;
};

/**
 * Executes query batches against a GraphStore + TransformCache. The
 * store must not be mutated during runBatch(); the cache is safe to
 * share (internally synchronized). runBatch() itself is not reentrant
 * (the circuit breaker advances per batch) — serialize callers.
 */
class QueryScheduler
{
  public:
    QueryScheduler(const GraphStore &store, TransformCache &cache,
                   SchedulerOptions options = {});

    /** A scheduler over a mutable store can additionally run mutation
     *  batches (the two-span runBatch overload). */
    QueryScheduler(GraphStore &store, TransformCache &cache,
                   SchedulerOptions options = {});

    /** Worker count batches actually run with. */
    unsigned workers() const { return workers_; }

    /**
     * Run @p batch to completion and return per-query results in batch
     * order. Admission, warm-up, execution, breaker post-pass — see
     * the file comment for the determinism argument. Never throws:
     * every query gets a terminal typed outcome.
     */
    std::vector<QueryResult> runBatch(std::span<const QuerySpec> batch);

    /**
     * Epoch-consistent mutate-then-query batch: every mutation is
     * applied serially, in batch order, BEFORE any query runs, so all
     * queries observe the final epoch of this batch — and, since the
     * query phase inherits the plain runBatch() contract over a store
     * that no longer changes, per-query results are bit-identical at
     * any worker count. Requires the mutable-store constructor:
     * mutations on a read-only scheduler are rejected with a typed
     * error (and the queries still run). Never throws.
     */
    MutationBatchResult
    runBatch(std::span<const MutationSpec> mutations,
             std::span<const QuerySpec> queries);

    /** The per-graph circuit breaker (inspection / manual reset). */
    CircuitBreaker &breaker() { return breaker_; }
    const CircuitBreaker &breaker() const { return breaker_; }

  private:
    /** Validate @p spec against the store; fills result on rejection.
     *  Reads only epoch-invariant metadata (GraphStore::peek), so
     *  admission never materializes a stale dense entry. */
    bool admit(const QuerySpec &spec, QueryResult &result) const;

    /** Execute one admitted query (on a 1-thread engine) with the
     *  retry loop. @p scope_key keys the fault scope; @p shared is the
     *  warm-up's schedule (null = degraded, uncacheable, or
     *  arena-served). @p arena_served routes the query off the live
     *  arena instead of the dense StoredGraph. */
    void execute(const QuerySpec &spec, QueryResult &result,
                 std::shared_ptr<const engine::SharedSchedule> shared,
                 std::uint64_t scope_key, bool arena_served) const;

    /** One engine run (attempt body); throws on failure. @p entry is
     *  null for arena-served attempts (which never touch the dense
     *  StoredGraph). */
    void runAttempt(const QuerySpec &spec, const StoredGraph *entry,
                    const std::shared_ptr<const engine::SharedSchedule>
                        &shared,
                    double backoff_sim_ms, QueryResult &result,
                    bool arena_served) const;

    /** Apply one mutation (serial phase of the two-span runBatch). */
    void applyMutation(const MutationSpec &spec, MutationResult &result,
                       std::uint64_t scope_key,
                       obs::MetricsRegistry &metrics);

    const GraphStore &store_;
    /** Non-null only for the mutable-store constructor. */
    GraphStore *mutableStore_ = nullptr;
    TransformCache &cache_;
    SchedulerOptions options_;
    unsigned workers_;
    CircuitBreaker breaker_;
    /** Monotonic batch counter: the high half of every scope key, so
     *  fault decisions differ across batches under one seed. */
    std::uint64_t batchSeq_ = 0;
};

} // namespace tigr::service
