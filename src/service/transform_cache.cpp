#include "service/transform_cache.hpp"

#include <chrono>

#include "fault/fault.hpp"
#include "par/thread_pool.hpp"

namespace tigr::service {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

TransformCache::TransformCache(std::size_t byte_budget,
                               obs::MetricsRegistry *metrics)
    : byteBudget_(byte_budget),
      metrics_(metrics ? metrics : &obs::MetricsRegistry::disabled())
{
}

void
TransformCache::publishGauges()
{
    metrics().gauge("cache.bytes").set(stats_.bytes);
    metrics().gauge("cache.entries").set(stats_.entries);
}

std::shared_ptr<const engine::SharedSchedule>
TransformCache::get(const TransformKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        metrics().counter("cache.misses").add();
        return nullptr;
    }
    ++stats_.hits;
    metrics().counter("cache.hits").add();
    lru_.splice(lru_.begin(), lru_, it->second); // refresh to MRU
    return it->second->schedule;
}

std::shared_ptr<const engine::SharedSchedule>
TransformCache::getOrBuild(const TransformKey &key,
                           par::ThreadPool *pool, bool *was_hit,
                           bool *retained)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        ++stats_.hits;
        metrics().counter("cache.hits").add();
        lru_.splice(lru_.begin(), lru_, it->second);
        if (was_hit)
            *was_hit = true;
        if (retained)
            *retained = true;
        return it->second->schedule;
    }

    ++stats_.misses;
    metrics().counter("cache.misses").add();
    if (was_hit)
        *was_hit = false;
    if (retained)
        *retained = false;

    TIGR_FAULT_POINT(fault::Site::TransformBuild);

    const auto start = std::chrono::steady_clock::now();
    auto shared = std::make_shared<engine::SharedSchedule>();
    shared->schedule = engine::Schedule::build(
        *key.graph, key.strategy, key.degreeBound, key.mwVirtualWarp,
        pool);
    shared->buildMs = elapsedMs(start);

    const std::size_t bytes = shared->schedule.sizeInBytes();
    if (bytes > byteBudget_)
        return shared; // oversized: hand out, don't retain
    // An injected insert failure likewise suppresses retention only —
    // the built schedule is still good, so hand it out.
    if (fault::armed() && fault::fired(fault::Site::CacheInsert))
        return shared;

    lru_.push_front(Entry{key, shared, bytes});
    index_[key] = lru_.begin();
    stats_.bytes += bytes;
    stats_.entries = lru_.size();
    enforceBudget();
    publishGauges();
    if (retained)
        *retained = true;
    return shared;
}

void
TransformCache::enforceBudget()
{
    while (stats_.bytes > byteBudget_ && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        stats_.bytes -= victim.bytes;
        ++stats_.evictions;
        metrics().counter("cache.evictions").add();
        index_.erase(victim.key);
        lru_.pop_back();
    }
    stats_.entries = lru_.size();
}

void
TransformCache::invalidateGraph(const graph::Csr *graph)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->key.graph == graph) {
            stats_.bytes -= it->bytes;
            ++stats_.evictions;
            metrics().counter("cache.evictions").add();
            index_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.entries = lru_.size();
    publishGauges();
}

std::size_t
TransformCache::invalidateStale(std::string_view graph_id,
                                std::uint64_t current_epoch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (it->key.graphId == graph_id &&
            it->key.epoch != current_epoch) {
            stats_.bytes -= it->bytes;
            ++stats_.evictions;
            ++dropped;
            metrics().counter("cache.evictions").add();
            index_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
    stats_.entries = lru_.size();
    publishGauges();
    return dropped;
}

void
TransformCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += lru_.size();
    metrics().counter("cache.evictions").add(lru_.size());
    lru_.clear();
    index_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
    publishGauges();
}

TransformCacheStats
TransformCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace tigr::service
