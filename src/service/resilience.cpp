#include "service/resilience.hpp"

#include <new>

#include "service/snapshot.hpp"

namespace tigr::service {

std::string_view
serviceErrorKindName(ServiceErrorKind kind)
{
    switch (kind) {
      case ServiceErrorKind::InvalidQuery: return "invalid-query";
      case ServiceErrorKind::Quarantined: return "quarantined";
      case ServiceErrorKind::Snapshot: return "snapshot";
      case ServiceErrorKind::TransformBuild: return "transform-build";
      case ServiceErrorKind::CacheInsert: return "cache-insert";
      case ServiceErrorKind::Engine: return "engine";
      case ServiceErrorKind::Resource: return "resource";
      case ServiceErrorKind::Mutation: return "mutation";
    }
    return "unknown";
}

bool
ServiceError::retryable() const
{
    switch (kind) {
      case ServiceErrorKind::InvalidQuery:
      case ServiceErrorKind::Quarantined:
        return false;
      case ServiceErrorKind::Snapshot:
      case ServiceErrorKind::TransformBuild:
      case ServiceErrorKind::CacheInsert:
      case ServiceErrorKind::Engine:
      case ServiceErrorKind::Resource:
      case ServiceErrorKind::Mutation:
        return true;
    }
    return false;
}

ServiceError
classifyFailure(const std::exception &e)
{
    ServiceError error;
    error.message = e.what();
    if (const auto *injected =
            dynamic_cast<const fault::InjectedFault *>(&e)) {
        error.site = injected->site();
        switch (injected->site()) {
          case fault::Site::SnapshotRead:
          case fault::Site::SnapshotMmap:
            error.kind = ServiceErrorKind::Snapshot;
            break;
          case fault::Site::CacheInsert:
            error.kind = ServiceErrorKind::CacheInsert;
            break;
          case fault::Site::TransformBuild:
            error.kind = ServiceErrorKind::TransformBuild;
            break;
          case fault::Site::EngineIteration:
            error.kind = ServiceErrorKind::Engine;
            break;
          case fault::Site::Alloc:
            error.kind = ServiceErrorKind::Resource;
            break;
          case fault::Site::MutationApply:
          case fault::Site::MutationCompact:
            error.kind = ServiceErrorKind::Mutation;
            break;
        }
        return error;
    }
    if (dynamic_cast<const SnapshotError *>(&e)) {
        error.kind = ServiceErrorKind::Snapshot;
        return error;
    }
    if (dynamic_cast<const std::bad_alloc *>(&e)) {
        error.kind = ServiceErrorKind::Resource;
        // bad_alloc's what() is unhelpfully terse; say what it means.
        error.message = "allocation failure: " + error.message;
        return error;
    }
    error.kind = ServiceErrorKind::Engine;
    return error;
}

std::string_view
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "unknown";
}

void
CircuitBreaker::beginBatch()
{
    ++batch_;
    for (auto &[graph, entry] : entries_) {
        if (entry.state == BreakerState::Open &&
            batch_ > entry.openedAt + options_.cooldownBatches) {
            entry.state = BreakerState::HalfOpen;
            // One more fault re-opens immediately.
            entry.consecutive =
                options_.threshold > 0 ? options_.threshold - 1 : 0;
        }
    }
}

bool
CircuitBreaker::admits(std::string_view graph) const
{
    return state(graph) != BreakerState::Open;
}

void
CircuitBreaker::recordFault(std::string_view graph)
{
    auto it = entries_.find(graph);
    if (it == entries_.end())
        it = entries_.emplace(std::string(graph), Entry{}).first;
    Entry &entry = it->second;
    if (entry.state == BreakerState::Open)
        return; // quarantined queries never ran; nothing to count
    ++entry.consecutive;
    if (entry.consecutive >= options_.threshold) {
        entry.state = BreakerState::Open;
        entry.openedAt = batch_;
    }
}

void
CircuitBreaker::recordSuccess(std::string_view graph)
{
    auto it = entries_.find(graph);
    if (it == entries_.end())
        return;
    if (it->second.state == BreakerState::Open)
        return; // stale success from before the trip cannot close it
    it->second.consecutive = 0;
    it->second.state = BreakerState::Closed;
}

BreakerState
CircuitBreaker::state(std::string_view graph) const
{
    auto it = entries_.find(graph);
    return it == entries_.end() ? BreakerState::Closed
                                : it->second.state;
}

unsigned
CircuitBreaker::consecutiveFaults(std::string_view graph) const
{
    auto it = entries_.find(graph);
    return it == entries_.end() ? 0 : it->second.consecutive;
}

void
CircuitBreaker::reset(std::string_view graph)
{
    auto it = entries_.find(graph);
    if (it != entries_.end())
        entries_.erase(it);
}

void
CircuitBreaker::resetAll()
{
    entries_.clear();
}

} // namespace tigr::service
