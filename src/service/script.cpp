#include "service/script.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/validate.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "service/graph_store.hpp"
#include "service/query_scheduler.hpp"
#include "service/recovery.hpp"
#include "service/snapshot.hpp"
#include "service/transform_cache.hpp"

namespace tigr::service {

namespace {

[[noreturn]] void
scriptFail(std::size_t line_no, const std::string &why)
{
    throw std::runtime_error("tigr serve: line " +
                             std::to_string(line_no) + ": " + why);
}

std::optional<engine::Algorithm>
parseAlgorithm(const std::string &name)
{
    if (name == "bfs") return engine::Algorithm::Bfs;
    if (name == "sssp") return engine::Algorithm::Sssp;
    if (name == "sswp") return engine::Algorithm::Sswp;
    if (name == "cc") return engine::Algorithm::Cc;
    if (name == "pr") return engine::Algorithm::Pr;
    if (name == "bc") return engine::Algorithm::Bc;
    return std::nullopt;
}

/** Load any graph file the CLI understands, snapshots included. */
const graph::Csr &
loadAnyGraph(GraphStore &store, const std::string &name,
             const std::string &path, std::size_t line_no)
{
    const std::string ext =
        std::filesystem::path(path).extension().string();
    if (ext == std::string(kSnapshotExtension)) {
        return store.addSnapshot(name, path).graph;
    }
    graph::Csr g;
    if (ext == ".csr")
        g = graph::loadCsrBinaryFile(path);
    else if (ext == ".mtx")
        g = graph::Csr::fromCoo(graph::loadMatrixMarketFile(path));
    else if (ext == ".el" || ext == ".txt" || ext == ".snap")
        g = graph::Csr::fromCoo(graph::loadEdgeListFile(path));
    else
        scriptFail(line_no, "unknown graph extension '" + ext + "'");
    if (auto error = graph::validateCsr(g))
        scriptFail(line_no, "invalid graph: " + *error);
    return store.add(name, std::move(g), path).graph;
}

double
parseDouble(const std::string &text, std::size_t line_no,
            const std::string &key)
{
    try {
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size() || value < 0.0)
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        scriptFail(line_no, "bad value '" + text + "' for " + key);
    }
}

std::uint64_t
parseU64(const std::string &text, std::size_t line_no,
         const std::string &key)
{
    try {
        std::size_t used = 0;
        const std::uint64_t value = std::stoull(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        scriptFail(line_no, "bad value '" + text + "' for " + key);
    }
}

MutationSpec
parseMutate(const std::vector<std::string> &tokens, std::size_t line_no)
{
    if (tokens.size() < 2)
        scriptFail(line_no, "mutate needs: mutate GRAPH [inserts=N "
                            "deletes=N reweights=N seed=S "
                            "max-weight=W]");
    MutationSpec spec;
    spec.graph = tokens[1];
    dynamic::GeneratorSpec gen;
    gen.inserts = 16;
    gen.deletes = 8;
    gen.reweights = 8;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            scriptFail(line_no, "expected key=value, got '" + token +
                                    "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "inserts") {
            gen.inserts =
                static_cast<std::size_t>(parseU64(value, line_no, key));
        } else if (key == "deletes") {
            gen.deletes =
                static_cast<std::size_t>(parseU64(value, line_no, key));
        } else if (key == "reweights") {
            gen.reweights =
                static_cast<std::size_t>(parseU64(value, line_no, key));
        } else if (key == "seed") {
            gen.seed = parseU64(value, line_no, key);
        } else if (key == "max-weight") {
            const std::uint64_t w = parseU64(value, line_no, key);
            if (w == 0)
                scriptFail(line_no, "max-weight must be >= 1");
            gen.maxWeight = static_cast<Weight>(w);
        } else {
            scriptFail(line_no, "unknown mutate key '" + key + "'");
        }
    }
    spec.generate = gen;
    return spec;
}

QuerySpec
parseQuery(const std::vector<std::string> &tokens, std::size_t line_no,
           const ScriptOptions &defaults)
{
    if (tokens.size() < 3)
        scriptFail(line_no, "query needs: query GRAPH ALGO [k=v ...]");
    QuerySpec spec;
    spec.frontier = defaults.frontier;
    spec.frontierRatio = defaults.frontierRatio;
    spec.graph = tokens[1];
    auto algorithm = parseAlgorithm(tokens[2]);
    if (!algorithm)
        scriptFail(line_no, "unknown algorithm '" + tokens[2] +
                                "' (bfs|sssp|sswp|cc|pr|bc)");
    spec.algorithm = *algorithm;
    for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            scriptFail(line_no, "expected key=value, got '" + token +
                                    "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (key == "source") {
            spec.source =
                static_cast<NodeId>(parseU64(value, line_no, key));
        } else if (key == "strategy") {
            auto strategy = engine::parseStrategy(value);
            if (!strategy)
                scriptFail(line_no,
                           "unknown strategy '" + value + "'");
            spec.strategy = *strategy;
        } else if (key == "k") {
            spec.degreeBound =
                static_cast<NodeId>(parseU64(value, line_no, key));
        } else if (key == "warp") {
            spec.mwVirtualWarp =
                static_cast<unsigned>(parseU64(value, line_no, key));
        } else if (key == "pr-iters") {
            spec.prIterations =
                static_cast<unsigned>(parseU64(value, line_no, key));
        } else if (key == "deadline-sim-ms") {
            spec.deadlineSimMs = parseDouble(value, line_no, key);
        } else if (key == "deadline-wall-ms") {
            spec.deadlineWallMs = parseDouble(value, line_no, key);
        } else if (key == "frontier") {
            auto mode = engine::parseFrontierMode(value);
            if (!mode)
                scriptFail(line_no, "unknown frontier mode '" + value +
                                        "' (dense|sparse|adaptive)");
            spec.frontier = *mode;
        } else if (key == "frontier-ratio") {
            const double ratio = parseDouble(value, line_no, key);
            if (ratio > 1.0)
                scriptFail(line_no, "frontier-ratio must be in [0, 1]");
            spec.frontierRatio = ratio;
        } else {
            scriptFail(line_no, "unknown query key '" + key + "'");
        }
    }
    return spec;
}

void
printMutationResults(std::ostream &out,
                     const std::vector<MutationSpec> &batch,
                     const std::vector<MutationResult> &results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        const MutationResult &r = results[i];
        out << "mutation " << i << ' ' << batch[i].graph
            << " applied=" << (r.applied ? 1 : 0)
            << " epoch=" << r.epoch;
        if (r.applied) {
            out << " inserts=" << r.inserts << " deletes=" << r.deletes
                << " reweights=" << r.reweights
                << " touched=" << r.touched
                << " repaired=" << r.repaired
                << " resplit=" << r.resplits;
            if (r.compacted)
                out << " compacted=1 reclaimed=" << r.reclaimed;
        }
        if (r.error)
            out << " error=" << serviceErrorKindName(r.error->kind);
        if (!r.message.empty())
            out << " message=\"" << r.message << '"';
        out << '\n';
    }
}

void
printResults(std::ostream &out,
             const std::vector<QuerySpec> &batch,
             const std::vector<QueryResult> &results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        const QueryResult &r = results[i];
        out << "query " << i << ' ' << batch[i].graph << ' '
            << algorithmName(batch[i].algorithm) << " outcome="
            << queryOutcomeName(r.outcome);
        if (r.outcome == QueryOutcome::Completed ||
            r.outcome == QueryOutcome::DeadlineExceeded) {
            out << " iterations=" << r.info.iterations << " digest=0x"
                << std::hex << std::setw(16) << std::setfill('0')
                << r.digest << std::dec << std::setfill(' ')
                << " cached=" << (r.cacheHit ? 1 : 0);
        }
        if (r.degraded)
            out << " degraded=1";
        if (r.attempts > 1)
            out << " retries=" << (r.attempts - 1);
        if (r.error && r.outcome != QueryOutcome::Completed &&
            r.outcome != QueryOutcome::DeadlineExceeded)
            out << " error=" << serviceErrorKindName(r.error->kind);
        if (!r.message.empty())
            out << " message=\"" << r.message << '"';
        out << '\n';
    }
}

/** True when @p results contains a terminally failed query (the
 *  fail-fast trigger). */
bool
anyTerminalFailure(const std::vector<QueryResult> &results)
{
    for (const QueryResult &r : results)
        if (r.outcome == QueryOutcome::Error ||
            r.outcome == QueryOutcome::Quarantined)
            return true;
    return false;
}

} // namespace

int
runScript(std::istream &in, std::ostream &out,
          const ScriptOptions &options)
{
    const bool tracing = !options.tracePath.empty();
    obs::MetricsRegistry registry;
    GraphStore store;
    TransformCache cache(options.cacheBytes, &registry);
    SchedulerOptions sched;
    sched.workers = options.workers;
    sched.maxQueuedQueries = options.maxQueuedQueries;
    sched.retry.maxRetries = options.maxRetries;
    sched.faultPlan = options.faultPlan;
    sched.metrics = &registry;
    sched.trace = tracing;
    QueryScheduler scheduler(store, cache, sched);

    if (!options.durableDir.empty()) {
        DurableOptions durable;
        durable.syncPolicy = options.syncPolicy;
        durable.metrics = &registry;
        const RecoveryReport report =
            store.openDurable(options.durableDir, durable);
        out << formatRecoveryReport(report);
    }

    std::vector<MutationSpec> pendingMutations;
    std::vector<QuerySpec> pending;
    /** One collected trace per executed mutation and query, across
     *  batches (mutation lanes precede query lanes per batch). */
    std::vector<obs::TraceSink> traces;
    bool failed = false;

    auto flush = [&]() {
        if (pendingMutations.empty() && pending.empty())
            return;
        const MutationBatchResult results =
            scheduler.runBatch(pendingMutations, pending);
        printMutationResults(out, pendingMutations, results.mutations);
        printResults(out, pending, results.queries);
        if (tracing) {
            for (const MutationResult &r : results.mutations)
                traces.push_back(r.trace);
            for (const QueryResult &r : results.queries)
                traces.push_back(r.trace);
        }
        for (const MutationResult &r : results.mutations)
            if (options.failFast && r.error && !r.applied)
                failed = true;
        if (options.failFast && anyTerminalFailure(results.queries))
            failed = true;
        pendingMutations.clear();
        pending.clear();
    };

    std::string line;
    std::size_t line_no = 0;
    while (!failed && std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::vector<std::string> tokens;
        for (std::string token; fields >> token;)
            tokens.push_back(token);
        if (tokens.empty())
            continue;

        const std::string &command = tokens[0];
        if (command == "load") {
            if (tokens.size() != 3)
                scriptFail(line_no, "load needs: load NAME PATH");
            const graph::Csr &g =
                loadAnyGraph(store, tokens[1], tokens[2], line_no);
            out << "loaded " << tokens[1] << " nodes=" << g.numNodes()
                << " edges=" << g.numEdges() << '\n';
        } else if (command == "snapshot") {
            if (tokens.size() < 3 || tokens.size() > 5)
                scriptFail(line_no,
                           "snapshot needs: snapshot NAME PATH "
                           "[K [consecutive|coalesced]]");
            const StoredGraph *entry = store.find(tokens[1]);
            if (!entry)
                scriptFail(line_no,
                           "unknown graph '" + tokens[1] + "'");
            Snapshot snapshot;
            snapshot.graph = entry->graph;
            snapshot.epoch = entry->epoch;
            if (tokens.size() >= 4) {
                const NodeId k = static_cast<NodeId>(
                    parseU64(tokens[3], line_no, "K"));
                if (k == 0)
                    scriptFail(line_no, "degree bound K must be >= 1");
                auto layout = transform::EdgeLayout::Coalesced;
                if (tokens.size() == 5) {
                    if (tokens[4] == "consecutive")
                        layout = transform::EdgeLayout::Consecutive;
                    else if (tokens[4] != "coalesced")
                        scriptFail(line_no, "unknown layout '" +
                                                tokens[4] + "'");
                }
                transform::VirtualGraph vg(entry->graph, k, layout);
                snapshot.hasVirtual = true;
                snapshot.virtualDegreeBound = k;
                snapshot.virtualLayout = layout;
                snapshot.virtualNodes.assign(
                    vg.virtualNodes().begin(), vg.virtualNodes().end());
            }
            saveSnapshotFile(snapshot, tokens[2]);
            out << "snapshot " << tokens[1] << " -> " << tokens[2]
                << " virtualNodes=" << snapshot.virtualNodes.size()
                << '\n';
        } else if (command == "query") {
            pending.push_back(parseQuery(tokens, line_no, options));
        } else if (command == "mutate") {
            pendingMutations.push_back(parseMutate(tokens, line_no));
        } else if (command == "run") {
            if (tokens.size() != 1)
                scriptFail(line_no, "run takes no arguments");
            flush();
        } else if (command == "checkpoint") {
            if (tokens.size() != 2)
                scriptFail(line_no,
                           "checkpoint needs: checkpoint NAME");
            if (!store.durable())
                scriptFail(line_no, "checkpoint requires --durable");
            if (!store.contains(tokens[1]))
                scriptFail(line_no,
                           "unknown graph '" + tokens[1] + "'");
            // Mutations still pending would journal after the
            // rotation they logically precede; flush them first.
            flush();
            const CheckpointResult cp = store.checkpoint(tokens[1]);
            out << "checkpoint " << tokens[1] << " epoch=" << cp.epoch
                << " retired=" << cp.retiredRecords << " -> "
                << cp.snapshot.filename().string() << '\n';
        } else if (command == "stats") {
            if (tokens.size() != 1)
                scriptFail(line_no, "stats takes no arguments");
            const TransformCacheStats cs = cache.stats();
            out << "stats graphs=" << store.size()
                << " graphBytes=" << store.totalBytes()
                << " cacheEntries=" << cs.entries
                << " cacheBytes=" << cs.bytes << " hits=" << cs.hits
                << " misses=" << cs.misses
                << " evictions=" << cs.evictions
                << " workers=" << scheduler.workers() << '\n';
        } else if (command == "metrics") {
            if (tokens.size() != 1)
                scriptFail(line_no, "metrics takes no arguments");
            out << registry.snapshotText();
        } else {
            scriptFail(line_no,
                       "unknown command '" + command +
                           "' (load|snapshot|query|mutate|run|"
                           "checkpoint|stats|metrics)");
        }
    }
    if (!failed)
        flush();
    if (options.metrics)
        out << registry.snapshotText();
    if (tracing) {
        std::ofstream trace_out(options.tracePath);
        if (!trace_out)
            throw std::runtime_error("tigr serve: cannot write trace "
                                     "file '" + options.tracePath +
                                     "'");
        obs::ChromeTraceWriter writer(trace_out);
        std::uint64_t events = 0;
        for (std::size_t q = 0; q < traces.size(); ++q) {
            writer.add(traces[q], q);
            events += traces[q].size();
        }
        writer.finish();
        out << "trace queries=" << traces.size()
            << " events=" << events << " -> " << options.tracePath
            << '\n';
    }
    if (failed)
        out << "fail-fast: stopping after a terminally failed query\n";
    return failed ? 1 : 0;
}

} // namespace tigr::service
