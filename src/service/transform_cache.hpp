/**
 * @file
 * TransformCache: a byte-budgeted LRU cache of built work-unit
 * schedules (the materialized transform of Section 4), shared across
 * queries so repeated analyses over the same (graph, strategy, K,
 * layout) reuse the virtual-node decomposition instead of rebuilding
 * it — the amortization the paper's Table 7 discussion argues for.
 */
#pragma once

#include <compare>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>

#include "engine/graph_engine.hpp"
#include "engine/strategy.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"

namespace tigr::par {
class ThreadPool;
}

namespace tigr::service {

/**
 * Cache key: which decomposition a query needs. The graph id names the
 * store entry; the pointer pins the exact Csr object the schedule was
 * built over (engines verify it before reusing — see SharedSchedule).
 * degreeBound doubles as the coalescing-relevant K; mwVirtualWarp only
 * matters for the MaximumWarp strategy but participates uniformly.
 */
struct TransformKey
{
    std::string graphId;
    const graph::Csr *graph = nullptr;
    engine::Strategy strategy = engine::Strategy::TigrVPlus;
    NodeId degreeBound = 10;
    unsigned mwVirtualWarp = 8;
    /** Mutation epoch of the store entry the schedule was built over:
     *  a mutated graph's queries key a fresh build, and entries from
     *  superseded epochs go stale (see invalidateStale) rather than
     *  ever being served for the new graph. */
    std::uint64_t epoch = 0;

    friend bool operator==(const TransformKey &,
                           const TransformKey &) = default;
    friend auto
    operator<=>(const TransformKey &a, const TransformKey &b)
    {
        return std::tie(a.graphId, a.graph, a.strategy, a.degreeBound,
                        a.mwVirtualWarp, a.epoch) <=>
               std::tie(b.graphId, b.graph, b.strategy, b.degreeBound,
                        b.mwVirtualWarp, b.epoch);
    }
};

/** Monotonic cache counters (never reset by eviction). */
struct TransformCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Bytes currently held (schedules' units + offsets arrays). */
    std::size_t bytes = 0;
    /** Entries currently held. */
    std::size_t entries = 0;
};

/**
 * LRU cache of SharedSchedule objects with a byte budget. Entries are
 * handed out as shared_ptr, so eviction never invalidates a schedule a
 * running query still holds — it only drops the cache's reference.
 *
 * Thread safety: all public methods are internally synchronized; the
 * schedule *build* happens under the lock, which serializes concurrent
 * getOrBuild calls for the same key (by design: building the same
 * decomposition twice is the waste this cache exists to avoid).
 */
class TransformCache
{
  public:
    /** @param byte_budget Max resident schedule bytes; an entry larger
     *  than the whole budget is built and returned but not retained.
     *  @param metrics Optional registry mirroring the cache counters
     *  (cache.hits / cache.misses / cache.evictions, plus cache.bytes
     *  and cache.entries gauges), updated under the cache lock. */
    explicit TransformCache(std::size_t byte_budget,
                            obs::MetricsRegistry *metrics = nullptr);

    /** Cached schedule for @p key, or null; a hit refreshes LRU. */
    std::shared_ptr<const engine::SharedSchedule>
    get(const TransformKey &key);

    /**
     * Cached schedule for @p key, building (and caching) it on a miss.
     * @param pool Optional host pool for the build's parallel passes
     *        (the result is bit-identical at any thread count).
     * @param was_hit Optional out-param: true when the schedule came
     *        from the cache.
     * @param retained Optional out-param: true when the schedule is
     *        resident in the cache on return (a hit, or a miss that was
     *        retained). False means the caller holds the only reference
     *        — an oversized build, or a `cache.insert` injected fault —
     *        and the scheduler's degradation ladder may prefer dropping
     *        it for a zero-memory dynamic run (docs/resilience.md).
     *
     * Fault sites: `transform.build` fires before the build (thrown as
     * InjectedFault); `cache.insert` fires after a successful build and
     * suppresses retention only — the built schedule is still returned,
     * so a single injected insert failure degrades, never fails, the
     * query.
     */
    std::shared_ptr<const engine::SharedSchedule>
    getOrBuild(const TransformKey &key,
               par::ThreadPool *pool = nullptr,
               bool *was_hit = nullptr,
               bool *retained = nullptr);

    /** Drop every entry whose key references @p graph (call before a
     *  GraphStore::remove so no schedule outlives its graph). */
    void invalidateGraph(const graph::Csr *graph);

    /** Drop every entry for @p graph_id built over an epoch other than
     *  @p current_epoch. Called after a mutation publishes a new epoch:
     *  stale schedules can never be served (their key's epoch differs),
     *  so this only releases their memory early instead of waiting for
     *  LRU eviction. Returns the number of entries dropped. */
    std::size_t invalidateStale(std::string_view graph_id,
                                std::uint64_t current_epoch);

    /** Drop everything. */
    void clear();

    /** Current counters (snapshot under the lock). */
    TransformCacheStats stats() const;

    /** The configured byte budget. */
    std::size_t byteBudget() const { return byteBudget_; }

  private:
    struct Entry
    {
        TransformKey key;
        std::shared_ptr<const engine::SharedSchedule> schedule;
        std::size_t bytes = 0;
    };

    /** Evict LRU tails until bytes_ fits the budget. Lock held. */
    void enforceBudget();

    /** The mirror registry (the shared no-op one when unset). */
    obs::MetricsRegistry &metrics() const { return *metrics_; }
    /** Push the residency gauges into the registry. Lock held. */
    void publishGauges();

    std::size_t byteBudget_;
    obs::MetricsRegistry *metrics_;
    mutable std::mutex mutex_;
    /** MRU at front, LRU at back. */
    std::list<Entry> lru_;
    std::map<TransformKey, std::list<Entry>::iterator> index_;
    TransformCacheStats stats_;
};

} // namespace tigr::service
