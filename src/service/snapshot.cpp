#include "service/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <set>
#include <sstream>

#include "dynamic/mutation.hpp"
#include "fault/fault.hpp"
#include "graph/io.hpp"
#include "service/fileio.hpp"
#include "service/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TIGR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TIGR_HAVE_MMAP 0
#endif

namespace tigr::service {

namespace {

constexpr char kMagic[8] = {'T', 'I', 'G', 'R', 'S', 'N', 'P', '2'};
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kFlagVirtual = 1u << 0;

/** The current (v3) on-disk header; field order gives natural
 *  alignment, so the struct is exactly its 88 wire bytes with no
 *  padding. v3 added the epoch field; the magic stays "TIGRSNP2" as a
 *  family tag, the version field tells the layouts apart. */
struct Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t flags;
    std::uint64_t numNodes;
    std::uint64_t numEdges;
    std::uint64_t numVirtualNodes;
    std::uint32_t virtualDegreeBound;
    std::uint32_t virtualLayout;
    std::uint64_t epoch;
    std::uint64_t payloadOffset;
    std::uint64_t payloadBytes;
    std::uint64_t payloadChecksum;
    std::uint64_t headerChecksum;
};

static_assert(sizeof(Header) == 88, "snapshot header must be 88 bytes");
static_assert(std::is_trivially_copyable_v<Header>);

/** The legacy v2 wire header (80 bytes, no epoch). Snapshots written
 *  before the dynamic subsystem still load; their epoch defaults 0. */
struct WireHeaderV2
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t flags;
    std::uint64_t numNodes;
    std::uint64_t numEdges;
    std::uint64_t numVirtualNodes;
    std::uint32_t virtualDegreeBound;
    std::uint32_t virtualLayout;
    std::uint64_t payloadOffset;
    std::uint64_t payloadBytes;
    std::uint64_t payloadChecksum;
    std::uint64_t headerChecksum;
};

static_assert(sizeof(WireHeaderV2) == 80,
              "legacy snapshot header must be 80 bytes");
static_assert(std::is_trivially_copyable_v<WireHeaderV2>);

/** Bytes of the header covered by headerChecksum (everything before
 *  the checksum field itself). */
constexpr std::size_t kHeaderHashedBytes =
    sizeof(Header) - sizeof(std::uint64_t);

/** First payload byte for a given header version. */
constexpr std::uint64_t
headerWireBytes(std::uint32_t version)
{
    return version == 2 ? sizeof(WireHeaderV2) : sizeof(Header);
}

[[noreturn]] void
fail(SnapshotErrorKind kind, const std::string &message)
{
    throw SnapshotError(kind, "tigr: " + message);
}

/** Payload size implied by the header's counts, with overflow guards
 *  (a hostile header must not wrap these multiplications). */
std::uint64_t
expectedPayloadBytes(const Header &h)
{
    if (h.numNodes >= std::numeric_limits<NodeId>::max())
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot declares more nodes than a 32-bit id can name");
    if (h.numEdges > (1ull << 48) || h.numVirtualNodes > (1ull << 48))
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot declares an implausible array size");
    std::uint64_t bytes = (h.numNodes + 1) * sizeof(EdgeIndex) +
                          h.numEdges * sizeof(NodeId) +
                          h.numEdges * sizeof(Weight);
    if (h.flags & kFlagVirtual) {
        bytes += h.numVirtualNodes *
                 (sizeof(NodeId) + 2 * sizeof(EdgeIndex) +
                  sizeof(std::uint32_t));
    }
    return bytes;
}

/** Validate everything a decoded header alone can prove: internal
 *  consistency of the declared geometry. Magic, version, and checksum
 *  are layout-dependent and verified by readHeader(). */
void
validateHeader(const Header &h)
{
    if (h.flags & ~kFlagVirtual)
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot header sets unknown flags");
    if (!(h.flags & kFlagVirtual) && h.numVirtualNodes != 0)
        fail(SnapshotErrorKind::Inconsistent,
             "virtual node count without a virtual section");
    if (h.payloadOffset != headerWireBytes(h.version))
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot payload offset does not follow the header");
    if (h.payloadBytes != expectedPayloadBytes(h))
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot payload size disagrees with its array counts");
    if (h.virtualLayout > 1)
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot declares an unknown edge layout");
}

/**
 * Read, version-dispatch, and authenticate a header through any
 * cursor, in diagnosis order: magic (is this even ours), version (do
 * we know its layout), checksum (is it intact). A v2 header is widened
 * to the in-memory Header with epoch 0; the version field keeps the
 * wire version so later checks know where the payload starts.
 */
template <typename Cursor>
Header
readHeader(Cursor &cursor)
{
    unsigned char raw[sizeof(Header)];
    cursor.read(raw, sizeof(WireHeaderV2));
    // Both layouts put magic at 0 and version at 8.
    std::uint32_t version;
    if (std::memcmp(raw, kMagic, sizeof(kMagic)) != 0)
        fail(SnapshotErrorKind::BadMagic,
             "not a TIGRSNP2 snapshot (bad magic)");
    std::memcpy(&version, raw + sizeof(kMagic), sizeof(version));
    Header h{};
    if (version == 2) {
        WireHeaderV2 v2{};
        std::memcpy(&v2, raw, sizeof(WireHeaderV2));
        if (graph::fnv1a64(&v2, sizeof(WireHeaderV2) -
                                    sizeof(std::uint64_t)) !=
            v2.headerChecksum)
            fail(SnapshotErrorKind::ChecksumMismatch,
                 "snapshot header fails its checksum");
        std::memcpy(h.magic, v2.magic, sizeof(h.magic));
        h.version = v2.version;
        h.flags = v2.flags;
        h.numNodes = v2.numNodes;
        h.numEdges = v2.numEdges;
        h.numVirtualNodes = v2.numVirtualNodes;
        h.virtualDegreeBound = v2.virtualDegreeBound;
        h.virtualLayout = v2.virtualLayout;
        h.epoch = 0;
        h.payloadOffset = v2.payloadOffset;
        h.payloadBytes = v2.payloadBytes;
        h.payloadChecksum = v2.payloadChecksum;
        h.headerChecksum = v2.headerChecksum;
    } else if (version == kVersion) {
        cursor.read(raw + sizeof(WireHeaderV2),
                    sizeof(Header) - sizeof(WireHeaderV2));
        std::memcpy(&h, raw, sizeof(Header));
        if (graph::fnv1a64(&h, kHeaderHashedBytes) != h.headerChecksum)
            fail(SnapshotErrorKind::ChecksumMismatch,
                 "snapshot header fails its checksum");
    } else {
        fail(SnapshotErrorKind::BadVersion,
             "unsupported snapshot version " + std::to_string(version) +
                 " (this build reads 2 and " + std::to_string(kVersion) +
                 ")");
    }
    return h;
}

/** Structural validation of the decoded arrays (checksums passing only
 *  proves the bytes are what the writer wrote, not that the writer was
 *  sane). Everything here guards a later unchecked array index. */
void
validateArrays(const Header &h, const std::vector<EdgeIndex> &offsets,
               const std::vector<transform::VirtualNode> &vnodes)
{
    if (offsets.front() != 0 || offsets.back() != h.numEdges)
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot row offsets do not span the edge array");
    for (std::size_t v = 1; v < offsets.size(); ++v)
        if (offsets[v] < offsets[v - 1])
            fail(SnapshotErrorKind::Inconsistent,
                 "snapshot row offsets are not monotone");
    // Edge targets out of range are tolerated by Csr itself but would
    // index out of bounds in every engine; reject them here once.
    if (h.flags & kFlagVirtual) {
        if (h.virtualDegreeBound == 0)
            fail(SnapshotErrorKind::Inconsistent,
                 "snapshot virtual section with degree bound 0");
        for (const transform::VirtualNode &node : vnodes) {
            if (node.physicalId >= h.numNodes ||
                node.count > h.virtualDegreeBound)
                fail(SnapshotErrorKind::Inconsistent,
                     "snapshot virtual node entry out of range");
            if (node.count > 0) {
                // Guard the stride * (count - 1) product against
                // uint64 wraparound before trusting `last`: a hostile
                // entry with a huge stride must not wrap back inside
                // its segment and pass containment.
                constexpr EdgeIndex kMax =
                    std::numeric_limits<EdgeIndex>::max();
                if (node.count > 1 &&
                    node.stride > (kMax - node.start) / (node.count - 1))
                    fail(SnapshotErrorKind::Inconsistent,
                         "snapshot virtual node stride overflows its "
                         "slot range");
                const EdgeIndex last =
                    node.start + node.stride * (node.count - 1);
                if (node.start < offsets[node.physicalId] ||
                    last >= offsets[node.physicalId + 1])
                    fail(SnapshotErrorKind::Inconsistent,
                         "snapshot virtual node owns slots outside "
                         "its node's edge segment");
            }
        }
        // No two virtual nodes may claim the same edge slot (a stride-0
        // entry with count > 1 collides with itself). Containment above
        // bounds every mark below numEdges, so the map never overflows.
        std::vector<unsigned char> claimed;
        try {
            claimed.assign(h.numEdges, 0);
        } catch (const std::bad_alloc &) {
            fail(SnapshotErrorKind::Truncated,
                 "snapshot declares arrays larger than available "
                 "memory");
        }
        for (const transform::VirtualNode &node : vnodes) {
            for (std::uint32_t k = 0; k < node.count; ++k) {
                const EdgeIndex slot = node.start + node.stride * k;
                if (claimed[slot])
                    fail(SnapshotErrorKind::Inconsistent,
                         "snapshot virtual nodes claim overlapping "
                         "edge slots");
                claimed[slot] = 1;
            }
        }
    }
}

void
validateTargets(const Header &h, const std::vector<NodeId> &cols)
{
    for (NodeId target : cols)
        if (target >= h.numNodes)
            fail(SnapshotErrorKind::Inconsistent,
                 "snapshot edge target out of range");
}

Header
makeHeader(const Snapshot &snapshot)
{
    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kVersion;
    h.flags = snapshot.hasVirtual ? kFlagVirtual : 0;
    h.numNodes = snapshot.graph.numNodes();
    h.numEdges = snapshot.graph.numEdges();
    h.numVirtualNodes =
        snapshot.hasVirtual ? snapshot.virtualNodes.size() : 0;
    h.virtualDegreeBound = snapshot.virtualDegreeBound;
    h.virtualLayout =
        snapshot.virtualLayout == transform::EdgeLayout::Coalesced ? 1
                                                                   : 0;
    h.epoch = snapshot.epoch;
    h.payloadOffset = sizeof(Header);
    h.payloadBytes = expectedPayloadBytes(h);
    return h;
}

/** In-memory cursor over a mapped or loaded snapshot image. */
struct MemCursor
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;

    void
    read(void *dst, std::size_t bytes)
    {
        if (bytes > size - pos)
            fail(SnapshotErrorKind::Truncated,
                 "snapshot ends mid-payload (file truncated?)");
        std::memcpy(dst, data + pos, bytes);
        pos += bytes;
    }
};

/** Stream cursor for the fread-style path. */
struct StreamCursor
{
    std::istream &in;

    void
    read(void *dst, std::size_t bytes)
    {
        in.read(reinterpret_cast<char *>(dst),
                static_cast<std::streamsize>(bytes));
        if (static_cast<std::size_t>(in.gcount()) != bytes)
            fail(SnapshotErrorKind::Truncated,
                 "snapshot ends mid-payload (file truncated?)");
    }
};

/** Read one payload array, chaining @p checksum across its bytes. */
template <typename Cursor, typename T>
void
readSection(Cursor &cursor, std::vector<T> &vec, std::uint64_t count,
            std::uint64_t &checksum)
{
    try {
        vec.resize(count);
    } catch (const std::bad_alloc &) {
        fail(SnapshotErrorKind::Truncated,
             "snapshot declares arrays larger than available memory");
    }
    cursor.read(vec.data(), count * sizeof(T));
    checksum = graph::fnv1a64(vec.data(), count * sizeof(T), checksum);
}

/** Decode header + payload through any cursor. The payload checksum is
 *  chained section by section, which equals the writer's single pass
 *  over the concatenated bytes. */
template <typename Cursor>
Snapshot
decode(Cursor &cursor)
{
    const Header h = readHeader(cursor);
    validateHeader(h);

    std::uint64_t checksum = graph::kFnv1aBasis;
    std::vector<EdgeIndex> offsets;
    std::vector<NodeId> cols;
    std::vector<Weight> weights;
    readSection(cursor, offsets, h.numNodes + 1, checksum);
    readSection(cursor, cols, h.numEdges, checksum);
    readSection(cursor, weights, h.numEdges, checksum);

    Snapshot snapshot;
    if (h.flags & kFlagVirtual) {
        std::vector<NodeId> phys;
        std::vector<EdgeIndex> starts;
        std::vector<EdgeIndex> strides;
        std::vector<std::uint32_t> counts;
        readSection(cursor, phys, h.numVirtualNodes, checksum);
        readSection(cursor, starts, h.numVirtualNodes, checksum);
        readSection(cursor, strides, h.numVirtualNodes, checksum);
        readSection(cursor, counts, h.numVirtualNodes, checksum);
        snapshot.virtualNodes.resize(h.numVirtualNodes);
        for (std::uint64_t i = 0; i < h.numVirtualNodes; ++i) {
            snapshot.virtualNodes[i] = transform::VirtualNode{
                phys[i], starts[i], strides[i], counts[i]};
        }
    }

    if (checksum != h.payloadChecksum)
        fail(SnapshotErrorKind::ChecksumMismatch,
             "snapshot payload fails its checksum (corrupted file?)");

    validateArrays(h, offsets, snapshot.virtualNodes);
    validateTargets(h, cols);

    snapshot.graph = graph::Csr(std::move(offsets), std::move(cols),
                                std::move(weights));
    snapshot.hasVirtual = (h.flags & kFlagVirtual) != 0;
    snapshot.virtualDegreeBound = h.virtualDegreeBound;
    snapshot.virtualLayout = h.virtualLayout == 1
                                 ? transform::EdgeLayout::Coalesced
                                 : transform::EdgeLayout::Consecutive;
    snapshot.epoch = h.epoch;
    return snapshot;
}

/** Pre-check a file's size against its header so a truncated file is
 *  reported as Truncated before any large allocation happens. */
void
checkFileSize(const std::filesystem::path &path, std::uint64_t actual,
              const Header &h)
{
    const std::uint64_t declared = h.payloadOffset + h.payloadBytes;
    if (actual < declared)
        fail(SnapshotErrorKind::Truncated,
             "snapshot " + path.string() + " is truncated: " +
                 std::to_string(actual) + " bytes of a declared " +
                 std::to_string(declared));
    if (actual > declared)
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot " + path.string() + " has trailing bytes");
}

#if TIGR_HAVE_MMAP
Snapshot
loadSnapshotMmap(const std::filesystem::path &path)
{
    // Injected mapping failure; same typed error a real one raises.
    if (fault::armed() && fault::fired(fault::Site::SnapshotMmap))
        fail(SnapshotErrorKind::Io,
             "injected fault at snapshot.mmap: " + path.string());
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(SnapshotErrorKind::Io,
             "cannot open " + path.string() + " for mapping");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(SnapshotErrorKind::Io, "cannot stat " + path.string());
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        fail(SnapshotErrorKind::Truncated,
             "snapshot " + path.string() + " is empty");
    }
    void *mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (mapped == MAP_FAILED)
        fail(SnapshotErrorKind::Io, "cannot mmap " + path.string());
    struct Unmapper
    {
        void *addr;
        std::size_t len;
        ~Unmapper() { ::munmap(addr, len); }
    } unmapper{mapped, size};

    const auto *data = static_cast<const unsigned char *>(mapped);
    if (size >= sizeof(Header)) {
        // Any intact snapshot is at least 88 bytes (a v2 header is 80
        // and the smallest payload is one u64), so the pre-check can
        // always parse the header out of the first 88.
        MemCursor cursor{data, size};
        const Header h = readHeader(cursor);
        validateHeader(h);
        checkFileSize(path, size, h);
    }
    return parseSnapshot(data, size);
}
#endif

} // namespace

std::string_view
snapshotErrorKindName(SnapshotErrorKind kind)
{
    switch (kind) {
      case SnapshotErrorKind::Io: return "io";
      case SnapshotErrorKind::BadMagic: return "bad-magic";
      case SnapshotErrorKind::BadVersion: return "bad-version";
      case SnapshotErrorKind::Truncated: return "truncated";
      case SnapshotErrorKind::ChecksumMismatch: return "bad-checksum";
      case SnapshotErrorKind::Inconsistent: return "inconsistent";
    }
    return "unknown";
}

void
saveSnapshot(const Snapshot &snapshot, std::ostream &out)
{
    if (snapshot.hasVirtual) {
        // Reuse fromArrays' validation so a bad array is rejected at
        // write time, not by every future load.
        transform::VirtualGraph::fromArrays(
            snapshot.graph, snapshot.virtualDegreeBound,
            snapshot.virtualLayout, snapshot.virtualNodes);
    }

    Header h = makeHeader(snapshot);

    // De-interleave the virtual array into the on-disk SoA sections
    // (VirtualNode has padding; raw struct bytes would checksum
    // indeterminate padding).
    const std::size_t nv = snapshot.hasVirtual
                               ? snapshot.virtualNodes.size()
                               : 0;
    std::vector<NodeId> phys(nv);
    std::vector<EdgeIndex> starts(nv);
    std::vector<EdgeIndex> strides(nv);
    std::vector<std::uint32_t> counts(nv);
    for (std::size_t i = 0; i < nv; ++i) {
        const transform::VirtualNode &node = snapshot.virtualNodes[i];
        phys[i] = node.physicalId;
        starts[i] = node.start;
        strides[i] = node.stride;
        counts[i] = node.count;
    }

    const graph::Csr &g = snapshot.graph;
    auto hash = [](std::uint64_t seed, const auto &vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        return graph::fnv1a64(vec.data(), vec.size() * sizeof(T), seed);
    };
    std::uint64_t checksum = graph::kFnv1aBasis;
    checksum = hash(checksum, g.rowOffsets());
    checksum = hash(checksum, g.colIndices());
    checksum = hash(checksum, g.weights());
    if (snapshot.hasVirtual) {
        checksum = hash(checksum, phys);
        checksum = hash(checksum, starts);
        checksum = hash(checksum, strides);
        checksum = hash(checksum, counts);
    }
    h.payloadChecksum = checksum;
    h.headerChecksum = graph::fnv1a64(&h, kHeaderHashedBytes);

    auto write = [&](const auto &vec) {
        using T = typename std::decay_t<decltype(vec)>::value_type;
        out.write(reinterpret_cast<const char *>(vec.data()),
                  static_cast<std::streamsize>(vec.size() * sizeof(T)));
    };
    out.write(reinterpret_cast<const char *>(&h), sizeof(Header));
    write(g.rowOffsets());
    write(g.colIndices());
    write(g.weights());
    if (snapshot.hasVirtual) {
        write(phys);
        write(starts);
        write(strides);
        write(counts);
    }
    if (!out)
        fail(SnapshotErrorKind::Io, "snapshot write failed");
}

void
saveSnapshotFile(const Snapshot &snapshot,
                 const std::filesystem::path &path)
{
    // Crash-consistent write: temp file + fsync + atomic rename. A
    // crash leaves either the old snapshot intact or a "*.tgs.tmp"
    // leftover that auditSnapshotDirectory() quarantines — a partial
    // file never appears under the real name. All file I/O flows
    // through the io:: shim, so the crash-torture harness can cut the
    // write at any byte or kill the fsync/rename.
    const std::filesystem::path tmp =
        path.parent_path() / (path.filename().string() + ".tmp");
    try {
        std::ostringstream buffer(std::ios::binary);
        saveSnapshot(snapshot, buffer);
        const std::string bytes = std::move(buffer).str();
        io::FileHandle file = io::FileHandle::createTruncated(tmp);
        file.writeAll(bytes.data(), bytes.size());
        file.sync();
        file.close();
        io::renameFile(tmp, path); // atomic on POSIX
        const std::filesystem::path parent = path.parent_path();
        io::syncPath(parent.empty() ? "." : parent,
                     /*directory=*/true);
    } catch (const fault::InjectedCrash &) {
        // Simulated process death: no cleanup runs — the leftover
        // "*.tgs.tmp" is exactly what recovery must cope with.
        throw;
    } catch (const io::IoError &error) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec); // best-effort cleanup
        fail(SnapshotErrorKind::Io, error.what());
    } catch (...) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        throw;
    }
}

void
saveSnapshotFile(const graph::Csr &graph,
                 const std::filesystem::path &path)
{
    Snapshot snapshot;
    snapshot.graph = graph;
    saveSnapshotFile(snapshot, path);
}

void
saveSnapshotFile(const transform::VirtualGraph &vg,
                 const std::filesystem::path &path)
{
    Snapshot snapshot;
    snapshot.graph = vg.physical();
    snapshot.hasVirtual = true;
    snapshot.virtualDegreeBound = vg.degreeBound();
    snapshot.virtualLayout = vg.layout();
    snapshot.virtualNodes.assign(vg.virtualNodes().begin(),
                                 vg.virtualNodes().end());
    saveSnapshotFile(snapshot, path);
}

Snapshot
loadSnapshot(std::istream &in)
{
    // Injected stream-read failure; reported through the typed error
    // like any real I/O fault would be.
    if (fault::armed() && fault::fired(fault::Site::SnapshotRead))
        fail(SnapshotErrorKind::Io, "injected fault at snapshot.read");
    StreamCursor cursor{in};
    return decode(cursor);
}

Snapshot
parseSnapshot(const void *data, std::size_t size)
{
    MemCursor cursor{static_cast<const unsigned char *>(data), size};
    Snapshot snapshot = decode(cursor);
    // An in-memory image knows its exact extent: bytes past the
    // declared payload mean the writer and the header disagree.
    if (cursor.pos != size)
        fail(SnapshotErrorKind::Inconsistent,
             "snapshot has trailing bytes");
    return snapshot;
}

SnapshotAuditReport
auditSnapshotDirectory(const std::filesystem::path &dir)
{
    std::error_code ec;
    std::vector<std::filesystem::path> entries;
    for (std::filesystem::directory_iterator
             it(dir, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && !ec)
            entries.push_back(it->path());
        ec.clear();
    }
    if (ec)
        fail(SnapshotErrorKind::Io,
             "cannot scan snapshot directory " + dir.string() + ": " +
                 ec.message());
    std::sort(entries.begin(), entries.end());

    auto quarantine = [](const std::filesystem::path &victim) {
        const std::filesystem::path target =
            victim.parent_path() /
            (victim.filename().string() + ".quarantined");
        std::error_code rename_ec;
        std::filesystem::rename(victim, target, rename_ec);
        // Unrenamable files are still reported, under the old name.
        return rename_ec ? victim : target;
    };

    SnapshotAuditReport report;
    std::set<std::string> intactStems;
    std::vector<std::filesystem::path> sidecars;
    for (const std::filesystem::path &entry : entries) {
        const std::string name = entry.filename().string();
        if (name.ends_with(std::string(kSnapshotExtension) + ".tmp") ||
            name.ends_with(std::string(kJournalExtension) + ".tmp")) {
            // Leftover of an interrupted saveSnapshotFile() or journal
            // rotation: by construction never complete, always
            // quarantined.
            report.quarantined.push_back(quarantine(entry));
            continue;
        }
        if (entry.extension() == kJournalExtension ||
            entry.extension() == kMutationLogExtension) {
            sidecars.push_back(entry); // judged after snapshots
            continue;
        }
        if (entry.extension() != kSnapshotExtension)
            continue;
        try {
            (void)loadSnapshotFile(entry);
            report.intact.push_back(entry);
            intactStems.insert(entry.stem().string());
        } catch (const SnapshotError &) {
            report.quarantined.push_back(quarantine(entry));
        }
    }

    // Sidecars: an orphan (no intact snapshot under the stem) has
    // nothing to replay onto; a corrupt one cannot be trusted. A
    // journal with a torn record tail is NOT corrupt — only a bad
    // header is — recovery truncates and preserves tails.
    for (const std::filesystem::path &entry : sidecars) {
        if (!intactStems.count(entry.stem().string())) {
            report.quarantined.push_back(quarantine(entry));
            continue;
        }
        if (entry.extension() == kJournalExtension) {
            bool trusted = false;
            try {
                trusted = scanJournal(entry).headerIntact;
            } catch (const JournalError &) {
            }
            if (trusted)
                report.journals.push_back(entry);
            else
                report.quarantined.push_back(quarantine(entry));
            continue;
        }
        bool parses = false;
        try {
            std::ifstream in(entry);
            if (in) {
                (void)dynamic::MutationLog::load(in);
                parses = true;
            }
        } catch (const std::exception &) {
        }
        if (parses)
            report.mutationLogs.push_back(entry);
        else
            report.quarantined.push_back(quarantine(entry));
    }
    return report;
}

Snapshot
loadSnapshotFile(const std::filesystem::path &path,
                 SnapshotLoadMode mode)
{
#if TIGR_HAVE_MMAP
    if (mode == SnapshotLoadMode::Mmap || mode == SnapshotLoadMode::Auto)
        return loadSnapshotMmap(path);
#else
    if (mode == SnapshotLoadMode::Mmap)
        fail(SnapshotErrorKind::Io,
             "mmap snapshot loading is unavailable on this platform");
#endif
    (void)mode;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail(SnapshotErrorKind::Io, "cannot open " + path.string());
    // Size pre-check: truncation diagnosed up front, and a hostile
    // header cannot demand allocations the file cannot back.
    std::error_code ec;
    const std::uint64_t actual =
        std::filesystem::file_size(path, ec);
    if (!ec && actual >= sizeof(Header)) {
        // See loadSnapshotMmap: 88 bytes always cover the header of
        // any intact snapshot, v2 or v3.
        unsigned char raw[sizeof(Header)];
        in.read(reinterpret_cast<char *>(raw), sizeof(Header));
        MemCursor cursor{raw, sizeof(Header)};
        const Header h = readHeader(cursor);
        validateHeader(h);
        checkFileSize(path, actual, h);
        in.seekg(0);
    }
    return loadSnapshot(in);
}

} // namespace tigr::service
