#include "service/query_scheduler.hpp"

#include <array>
#include <atomic>
#include <chrono>

#include "graph/io.hpp"
#include "par/thread_pool.hpp"

namespace tigr::service {

namespace {

/** FNV-1a digest of a result-value vector's raw bytes. */
template <typename T>
std::uint64_t
digestOf(const std::vector<T> &values)
{
    return graph::fnv1a64(values.data(), values.size() * sizeof(T));
}

/** True when a cached forward schedule can ever apply to this spec:
 *  TigrUdt engines schedule over the physically transformed graph, so
 *  a schedule over the original could never be reused. */
bool
cacheable(const QuerySpec &spec)
{
    return spec.strategy != engine::Strategy::TigrUdt;
}

bool
needsSource(engine::Algorithm algorithm)
{
    switch (algorithm) {
      case engine::Algorithm::Bfs:
      case engine::Algorithm::Sssp:
      case engine::Algorithm::Sswp:
      case engine::Algorithm::Bc:
        return true;
      case engine::Algorithm::Cc:
      case engine::Algorithm::Pr:
        return false;
    }
    return false;
}

} // namespace

std::string_view
queryOutcomeName(QueryOutcome outcome)
{
    switch (outcome) {
      case QueryOutcome::Completed: return "completed";
      case QueryOutcome::DeadlineExceeded: return "deadline-exceeded";
      case QueryOutcome::Rejected: return "rejected";
      case QueryOutcome::Error: return "error";
    }
    return "unknown";
}

QueryScheduler::QueryScheduler(const GraphStore &store,
                               TransformCache &cache,
                               SchedulerOptions options)
    : store_(store), cache_(cache), options_(options),
      workers_(par::resolveThreads(options.workers))
{
}

bool
QueryScheduler::admit(const QuerySpec &spec, QueryResult &result) const
{
    auto reject = [&](std::string why) {
        result.outcome = QueryOutcome::Rejected;
        result.message = std::move(why);
        return false;
    };
    const StoredGraph *entry = store_.find(spec.graph);
    if (!entry)
        return reject("unknown graph '" + spec.graph + "'");
    if (spec.strategy == engine::Strategy::TigrUdt &&
        (spec.algorithm == engine::Algorithm::Pr ||
         spec.algorithm == engine::Algorithm::Bc))
        return reject(std::string(algorithmName(spec.algorithm)) +
                      " is unsupported under the UDT strategy");
    if (needsSource(spec.algorithm) &&
        spec.source >= entry->graph.numNodes())
        return reject("source " + std::to_string(spec.source) +
                      " out of range for graph '" + spec.graph + "'");
    if ((spec.strategy == engine::Strategy::TigrV ||
         spec.strategy == engine::Strategy::TigrVPlus) &&
        spec.degreeBound == 0)
        return reject("degree bound 0 under a virtual strategy");
    return true;
}

void
QueryScheduler::execute(const QuerySpec &spec,
                        QueryResult &result) const
{
    const StoredGraph &entry = store_.at(spec.graph);

    engine::EngineOptions opts;
    opts.strategy = spec.strategy;
    opts.degreeBound = spec.degreeBound;
    opts.mwVirtualWarp = spec.mwVirtualWarp;
    opts.frontier = spec.frontier;
    opts.frontierRatio = spec.frontierRatio;
    // The engine itself is single-threaded: scheduler concurrency is
    // across queries only, which the determinism contract needs.
    opts.threads = 1;

    const auto wall_start = std::chrono::steady_clock::now();
    const double sim_limit = spec.deadlineSimMs;
    const double wall_limit = spec.deadlineWallMs;
    if (sim_limit > 0.0 || wall_limit > 0.0) {
        opts.cancel = [sim_limit, wall_limit,
                       wall_start](unsigned, std::uint64_t cycles) {
            if (sim_limit > 0.0 &&
                engine::cyclesToMs(cycles) >= sim_limit)
                return true;
            if (wall_limit > 0.0) {
                const double elapsed =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                if (elapsed >= wall_limit)
                    return true;
            }
            return false;
        };
    }

    std::shared_ptr<const engine::SharedSchedule> shared;
    if (cacheable(spec)) {
        // Warm-up already built it; this lookup is a guaranteed hit
        // and does not perturb the per-query hit attribution (that was
        // fixed serially in runBatch).
        shared = cache_.get(TransformKey{spec.graph, &entry.graph,
                                         spec.strategy,
                                         spec.degreeBound,
                                         spec.mwVirtualWarp});
    }

    try {
        engine::GraphEngine engine(entry.graph, opts, shared);
        switch (spec.algorithm) {
          case engine::Algorithm::Bfs: {
            auto r = engine.bfs(spec.source);
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
          case engine::Algorithm::Sssp: {
            auto r = engine.sssp(spec.source);
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
          case engine::Algorithm::Sswp: {
            auto r = engine.sswp(spec.source);
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
          case engine::Algorithm::Cc: {
            auto r = engine.cc();
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
          case engine::Algorithm::Pr: {
            engine::PageRankOptions pr;
            pr.iterations = spec.prIterations;
            auto r = engine.pagerank(pr);
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
          case engine::Algorithm::Bc: {
            const std::array<NodeId, 1> sources{spec.source};
            auto r = engine.bc(sources);
            result.info = r.info;
            result.digest = digestOf(r.values);
            result.values = r.values.size();
            break;
          }
        }
        result.outcome = result.info.cancelled
                             ? QueryOutcome::DeadlineExceeded
                             : QueryOutcome::Completed;
    } catch (const std::exception &e) {
        result.outcome = QueryOutcome::Error;
        result.message = e.what();
        result.digest = 0;
        result.values = 0;
    }
}

std::vector<QueryResult>
QueryScheduler::runBatch(std::span<const QuerySpec> batch)
{
    std::vector<QueryResult> results(batch.size());
    std::vector<bool> admitted(batch.size(), false);

    // Phase 1 — admission, in batch order: the queue bound rejects by
    // position, never by timing.
    std::size_t queued = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (queued >= options_.maxQueuedQueries) {
            results[i].outcome = QueryOutcome::Rejected;
            results[i].message =
                "admission queue full (" +
                std::to_string(options_.maxQueuedQueries) + " queries)";
            continue;
        }
        if (admit(batch[i], results[i])) {
            admitted[i] = true;
            ++queued;
        }
    }

    // Phase 2 — serial transform warm-up, in batch order: the first
    // query of each (graph, strategy, K, warp) key is the miss that
    // builds, every later one is a hit. Worker interleaving can no
    // longer influence hit attribution or who pays the build.
    std::unique_ptr<par::ThreadPool> build_pool;
    if (par::resolveThreads(options_.buildThreads) > 1)
        build_pool = std::make_unique<par::ThreadPool>(
            options_.buildThreads);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!admitted[i] || !cacheable(batch[i]))
            continue;
        const QuerySpec &spec = batch[i];
        bool hit = false;
        cache_.getOrBuild(TransformKey{spec.graph,
                                       &store_.at(spec.graph).graph,
                                       spec.strategy, spec.degreeBound,
                                       spec.mwVirtualWarp},
                          build_pool.get(), &hit);
        results[i].cacheHit = hit;
    }
    build_pool.reset();

    // Phase 3 — concurrent execution: workers claim batch slots via an
    // atomic ticket. Claim order varies; each slot's result does not.
    std::atomic<std::size_t> next{0};
    auto drain = [&](unsigned) {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                break;
            if (admitted[i])
                execute(batch[i], results[i]);
        }
    };
    if (workers_ > 1) {
        par::ThreadPool pool(workers_);
        pool.run(drain);
    } else {
        drain(0);
    }
    return results;
}

} // namespace tigr::service
