#include "service/query_scheduler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "engine/arena_engine.hpp"
#include "graph/io.hpp"
#include "par/thread_pool.hpp"

namespace tigr::service {

namespace {

/** FNV-1a digest of a result-value vector's raw bytes. */
template <typename T>
std::uint64_t
digestOf(const std::vector<T> &values)
{
    return graph::fnv1a64(values.data(), values.size() * sizeof(T));
}

/** True when a cached forward schedule can ever apply to this spec:
 *  TigrUdt engines schedule over the physically transformed graph, so
 *  a schedule over the original could never be reused. */
bool
cacheable(const QuerySpec &spec)
{
    return spec.strategy != engine::Strategy::TigrUdt;
}

/** True for the strategies with a zero-memory dynamic-mapping
 *  fallback (Section 4.1's second design). */
bool
hasDynamicFallback(engine::Strategy strategy)
{
    return strategy == engine::Strategy::TigrV ||
           strategy == engine::Strategy::TigrVPlus;
}

bool
needsSource(engine::Algorithm algorithm)
{
    switch (algorithm) {
      case engine::Algorithm::Bfs:
      case engine::Algorithm::Sssp:
      case engine::Algorithm::Sswp:
      case engine::Algorithm::Bc:
        return true;
      case engine::Algorithm::Cc:
      case engine::Algorithm::Pr:
        return false;
    }
    return false;
}

/** Deterministic fault-scope key: batch sequence over batch position. */
std::uint64_t
scopeKey(std::uint64_t batch_seq, std::size_t index)
{
    return (batch_seq << 32) | static_cast<std::uint64_t>(index);
}

/** Simulated backoff in whole microseconds. RetryPolicy backoff values
 *  are exact sums of exact doubles, so the rounding — like everything
 *  else in the digest — is deterministic. */
std::uint64_t
backoffMicros(double backoff_sim_ms)
{
    return static_cast<std::uint64_t>(
        std::llround(backoff_sim_ms * 1000.0));
}

/** The canonical integer outcome record behind
 *  QueryResult::metricsDigest. Only worker-count-invariant fields
 *  participate — never hostMs/transformMs. */
std::uint64_t
metricsDigestOf(const QueryResult &r)
{
    const std::uint64_t record[] = {
        static_cast<std::uint64_t>(r.outcome),
        r.attempts,
        r.info.iterations,
        r.info.stats.cycles,
        r.digest,
        r.values,
        r.cacheHit ? 1u : 0u,
        r.degraded ? 1u : 0u,
        r.arenaServed ? 1u : 0u,
        backoffMicros(r.backoffSimMs),
        r.faultTrace.size(),
        r.info.sparseIterations,
        r.info.peakFrontier,
        r.info.cancelled ? 1u : 0u,
    };
    return graph::fnv1a64(record, sizeof(record));
}

/** Convert fault records [from, end) of @p faults into Fault trace
 *  events (scheduler-phase events carry tick 0). */
void
traceFaults(obs::TraceSink &trace, const fault::FaultTrace &faults,
            std::size_t from)
{
    for (std::size_t i = from; i < faults.size(); ++i) {
        const fault::FaultRecord &record = faults[i];
        obs::TraceEvent event;
        event.kind = obs::EventKind::Fault;
        event.label[0] = fault::siteName(record.site);
        event.arg[0] = record.scope;
        event.arg[1] = record.attempt;
        event.arg[2] = record.hit;
        trace.record(event);
    }
}

void
traceNewFaults(QueryResult &result, std::size_t from)
{
    traceFaults(result.trace, result.faultTrace, from);
}

} // namespace

std::string_view
queryOutcomeName(QueryOutcome outcome)
{
    switch (outcome) {
      case QueryOutcome::Completed: return "completed";
      case QueryOutcome::DeadlineExceeded: return "deadline-exceeded";
      case QueryOutcome::Rejected: return "rejected";
      case QueryOutcome::Quarantined: return "quarantined";
      case QueryOutcome::Error: return "error";
    }
    return "unknown";
}

QueryScheduler::QueryScheduler(const GraphStore &store,
                               TransformCache &cache,
                               SchedulerOptions options)
    : store_(store), cache_(cache), options_(options),
      workers_(par::resolveThreads(options.workers)),
      breaker_(options.breaker)
{
}

QueryScheduler::QueryScheduler(GraphStore &store, TransformCache &cache,
                               SchedulerOptions options)
    : store_(store), mutableStore_(&store), cache_(cache),
      options_(options),
      workers_(par::resolveThreads(options.workers)),
      breaker_(options.breaker)
{
}

bool
QueryScheduler::admit(const QuerySpec &spec, QueryResult &result) const
{
    auto reject = [&](std::string why) {
        result.outcome = QueryOutcome::Rejected;
        result.error = ServiceError{ServiceErrorKind::InvalidQuery,
                                    std::nullopt, why};
        result.message = std::move(why);
        return false;
    };
    // peek(): admission reads only epoch-invariant metadata (the node
    // set never changes under mutation), so a query admitted mid-burst
    // never forces the stale dense entry to materialize here.
    const StoredGraph *entry = store_.peek(spec.graph);
    if (!entry)
        return reject("unknown graph '" + spec.graph + "'");
    if (entry->graph.numNodes() == 0)
        return reject("graph '" + spec.graph + "' has no nodes");
    if (spec.strategy == engine::Strategy::TigrUdt &&
        (spec.algorithm == engine::Algorithm::Pr ||
         spec.algorithm == engine::Algorithm::Bc))
        return reject(std::string(algorithmName(spec.algorithm)) +
                      " is unsupported under the UDT strategy");
    if (spec.strategy == engine::Strategy::TigrUdt &&
        spec.direction == engine::Direction::Pull)
        return reject("pull direction is unsupported under the UDT "
                      "strategy");
    if (needsSource(spec.algorithm) &&
        spec.source >= entry->graph.numNodes())
        return reject("source " + std::to_string(spec.source) +
                      " out of range for graph '" + spec.graph + "'");
    if ((spec.strategy == engine::Strategy::TigrV ||
         spec.strategy == engine::Strategy::TigrVPlus) &&
        spec.degreeBound == 0)
        return reject("degree bound 0 under a virtual strategy");
    if (spec.strategy == engine::Strategy::MaximumWarp &&
        spec.mwVirtualWarp == 0)
        return reject("virtual warp width 0 under the maximum-warp "
                      "strategy");
    if (!(spec.frontierRatio >= 0.0 && spec.frontierRatio <= 1.0))
        return reject("frontier ratio outside [0, 1]"); // NaN too
    return true;
}

void
QueryScheduler::runAttempt(
    const QuerySpec &spec, const StoredGraph *entry,
    const std::shared_ptr<const engine::SharedSchedule> &shared,
    double backoff_sim_ms, QueryResult &result,
    bool arena_served) const
{
    engine::EngineOptions opts;
    opts.strategy = spec.strategy;
    opts.direction = spec.direction;
    opts.degreeBound = spec.degreeBound;
    opts.mwVirtualWarp = spec.mwVirtualWarp;
    opts.frontier = spec.frontier;
    opts.frontierRatio = spec.frontierRatio;
    // The engine itself is single-threaded: scheduler concurrency is
    // across queries only, which the determinism contract needs.
    opts.threads = 1;
    opts.degraded = result.degraded;
    // Per-query sink: the engine runs serially on this worker, so the
    // unsynchronized sink is safe and the recorded ticks (simulated
    // cycles) are worker-count-invariant.
    opts.trace = options_.trace ? &result.trace : nullptr;
    // Degraded virtual-strategy queries run the zero-memory dynamic
    // mapping instead of a stored schedule — bit-identical values,
    // no transform memory (the ladder's whole point).
    if (result.degraded && hasDynamicFallback(spec.strategy))
        opts.dynamicMapping = true;

    const auto wall_start = std::chrono::steady_clock::now();
    // Retry backoff is charged against the simulated-time budget:
    // this attempt starts with the deadline moved that much closer.
    const double sim_limit = spec.deadlineSimMs > 0.0
                                 ? spec.deadlineSimMs - backoff_sim_ms
                                 : 0.0;
    const bool sim_deadline = spec.deadlineSimMs > 0.0;
    const double wall_limit = spec.deadlineWallMs;
    const bool inject = fault::armed();
    if (sim_deadline || wall_limit > 0.0 || inject) {
        opts.cancel = [sim_deadline, sim_limit, wall_limit, wall_start,
                       inject](unsigned, std::uint64_t cycles) {
            // The engine runs serially on this thread, so the armed
            // fault scope is visible here; a fired engine.iteration
            // site throws out of the analysis into the retry loop.
            if (inject)
                fault::check(fault::Site::EngineIteration);
            if (sim_deadline &&
                engine::cyclesToMs(cycles) >= sim_limit)
                return true;
            if (wall_limit > 0.0) {
                const double elapsed =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                if (elapsed >= wall_limit)
                    return true;
            }
            return false;
        };
    }

    // Exercises real allocation-failure paths (raises bad_alloc).
    TIGR_FAULT_POINT(fault::Site::Alloc);

    auto run = [&](auto &engine) {
        switch (spec.algorithm) {
      case engine::Algorithm::Bfs: {
        auto r = engine.bfs(spec.source);
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
      case engine::Algorithm::Sssp: {
        auto r = engine.sssp(spec.source);
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
      case engine::Algorithm::Sswp: {
        auto r = engine.sswp(spec.source);
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
      case engine::Algorithm::Cc: {
        auto r = engine.cc();
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
      case engine::Algorithm::Pr: {
        engine::PageRankOptions pr;
        pr.iterations = spec.prIterations;
        auto r = engine.pagerank(pr);
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
      case engine::Algorithm::Bc: {
        const std::array<NodeId, 1> sources{spec.source};
        auto r = engine.bc(sources);
        result.info = r.info;
        result.digest = digestOf(r.values);
        result.values = r.values.size();
        break;
      }
        }
    };
    if (arena_served) {
        // Straight off the live arena: no dense StoredGraph, no cached
        // schedule. The providers enumerate the same units a dense
        // schedule would, so values/digests are bit-identical to the
        // dense path (the differential fuzz suite's invariant).
        const ArenaView view = store_.arenaView(spec.graph);
        engine::ArenaEngine engine(*view.graph, view.forward,
                                   view.reverse, opts);
        run(engine);
    } else {
        engine::GraphEngine engine(entry->graph, opts, shared);
        run(engine);
    }
}

void
QueryScheduler::execute(
    const QuerySpec &spec, QueryResult &result,
    std::shared_ptr<const engine::SharedSchedule> shared,
    std::uint64_t scope_key, bool arena_served) const
{
    // Arena-served queries must not look the dense entry up at all:
    // at() materializes a stale epoch, which is exactly the work this
    // path exists to avoid.
    const StoredGraph *entry =
        arena_served ? nullptr : &store_.at(spec.graph);
    const RetryPolicy &retry = options_.retry;
    // A warm-up degradation error survives a successful run (the
    // result self-reports what it absorbed); attempt failures that a
    // retry outlasted do not.
    const std::optional<ServiceError> warmup_error = result.error;

    for (unsigned attempt = 0;; ++attempt) {
        result.attempts = attempt + 1;
        // Each attempt starts from clean output state so a partial
        // failed attempt can never leak into the result.
        result.info = {};
        result.digest = 0;
        result.values = 0;
        const std::size_t faults_before = result.faultTrace.size();

        fault::FaultScope scope(options_.faultPlan, scope_key, attempt,
                                &result.faultTrace);
        try {
            runAttempt(spec, entry, shared, result.backoffSimMs,
                       result, arena_served);
            // The warm-up miss query paid the shared schedule's build
            // (TransformCache::getOrBuild): it must not report the
            // transform as cached just because the engine reused the
            // injected schedule object. Hits keep reporting true.
            if (shared && !result.cacheHit)
                result.info.transformCached = false;
            if (options_.trace)
                traceNewFaults(result, faults_before);
            result.outcome = result.info.cancelled
                                 ? QueryOutcome::DeadlineExceeded
                                 : QueryOutcome::Completed;
            result.error = warmup_error;
            result.message.clear();
            return;
        } catch (const std::exception &e) {
            if (options_.trace)
                traceNewFaults(result, faults_before);
            ServiceError error = classifyFailure(e);
            const bool give_up = !error.retryable() ||
                                 attempt >= retry.maxRetries;
            result.message = error.message;
            result.error = std::move(error);
            if (give_up) {
                result.outcome = QueryOutcome::Error;
                result.digest = 0;
                result.values = 0;
                return;
            }
            // Deterministic backoff in simulated time: the next
            // attempt's deadline budget shrinks by this much.
            result.backoffSimMs += retry.backoffSimMs(attempt);
            if (options_.trace) {
                obs::TraceEvent event;
                event.kind = obs::EventKind::Retry;
                event.label[0] =
                    serviceErrorKindName(result.error->kind);
                event.arg[0] = attempt + 1;
                event.arg[1] = backoffMicros(result.backoffSimMs);
                result.trace.record(event);
            }
        }
    }
}

std::vector<QueryResult>
QueryScheduler::runBatch(std::span<const QuerySpec> batch)
{
    const std::uint64_t batch_seq = batchSeq_++;
    breaker_.beginBatch();
    // All metric updates happen in the serial phases (warm-up and the
    // final post-pass), in batch order — exact and worker-invariant.
    obs::MetricsRegistry &metrics =
        options_.metrics ? *options_.metrics
                         : obs::MetricsRegistry::disabled();

    std::vector<QueryResult> results(batch.size());
    std::vector<bool> admitted(batch.size(), false);

    // Phase 1 — admission, in batch order: the queue bound rejects by
    // position, never by timing, and quarantined graphs are refused
    // before any work is spent on them.
    std::size_t queued = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (queued >= options_.maxQueuedQueries) {
            results[i].outcome = QueryOutcome::Rejected;
            results[i].message =
                "admission queue full (" +
                std::to_string(options_.maxQueuedQueries) + " queries)";
            results[i].error =
                ServiceError{ServiceErrorKind::InvalidQuery,
                             std::nullopt, results[i].message};
            continue;
        }
        if (!admit(batch[i], results[i]))
            continue;
        if (!breaker_.admits(batch[i].graph)) {
            results[i].outcome = QueryOutcome::Quarantined;
            results[i].message = "graph '" + batch[i].graph +
                                 "' is quarantined (circuit breaker "
                                 "open)";
            results[i].error =
                ServiceError{ServiceErrorKind::Quarantined,
                             std::nullopt, results[i].message};
            continue;
        }
        admitted[i] = true;
        ++queued;
        if (options_.trace) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::QueryBegin;
            event.label[0] = algorithmName(batch[i].algorithm);
            event.label[1] = engine::strategyName(batch[i].strategy);
            event.arg[0] = i;
            results[i].trace.record(event);
        }
    }

    // Phase 2 — serial transform warm-up, in batch order: the first
    // query of each (graph, strategy, K, warp) key is the miss that
    // builds, every later one is a hit. Worker interleaving can no
    // longer influence hit attribution or who pays the build. Warm-up
    // failures never fail a query: they push it down the degradation
    // ladder (dynamic mapping for the virtual strategies, an
    // engine-local build otherwise) and the result self-reports
    // `degraded`.
    std::vector<std::shared_ptr<const engine::SharedSchedule>>
        schedules(batch.size());

    // Phase 2a — serial arena routing, in batch order: a query whose
    // graph mutated since the last dense materialization is served
    // straight off the live arena when its strategy can be (TigrV /
    // TigrV+ — push over the forward arena, pull over the reverse
    // one). Such queries skip the cache entirely; everything else on a
    // stale graph needs the dense StoredGraph, which is materialized
    // off-thread below so this phase never blocks on it. The decision
    // is a pure function of the batch and the store's epoch state —
    // never of timing.
    std::vector<bool> arena_served(batch.size(), false);
    std::vector<std::string_view> stale_dense;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!admitted[i])
            continue;
        const QuerySpec &spec = batch[i];
        const ArenaView view = store_.arenaView(spec.graph);
        if (!view.graph || !view.staleDense)
            continue;
        if (hasDynamicFallback(spec.strategy)) {
            arena_served[i] = true;
            results[i].arenaServed = true;
            if (options_.trace) {
                obs::TraceEvent event;
                event.kind = obs::EventKind::ArenaServe;
                event.label[0] =
                    spec.direction == engine::Direction::Pull
                        ? "pull"
                        : "push";
                event.arg[0] = view.epoch;
                event.arg[1] = view.forward ? 1 : 0;
                event.arg[2] = view.reverse ? 1 : 0;
                results[i].trace.record(event);
            }
        } else if (std::find(stale_dense.begin(), stale_dense.end(),
                             std::string_view(spec.graph)) ==
                   stale_dense.end()) {
            stale_dense.push_back(spec.graph);
        }
    }
    // Off-thread dense materialization, guarded by the store's
    // staleDense atomic (double-checked, idempotent): a mutation burst
    // whose queries are all arena-served spawns nothing and the stale
    // flag stays set; graphs with direct-CSR consumers rebuild here,
    // overlapped with warm-up instead of blocking it. Joined before
    // the concurrent phase, so workers only ever see current entries.
    std::vector<std::thread> materializers;
    materializers.reserve(stale_dense.size());
    for (std::string_view name : stale_dense)
        materializers.emplace_back([this, name] { store_.pin(name); });

    std::unique_ptr<par::ThreadPool> build_pool;
    if (par::resolveThreads(options_.buildThreads) > 1)
        build_pool = std::make_unique<par::ThreadPool>(
            options_.buildThreads);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!admitted[i] || arena_served[i] || !cacheable(batch[i]))
            continue;
        const QuerySpec &spec = batch[i];
        const StoredGraph &entry = store_.at(spec.graph);
        const TransformKey key{spec.graph, &entry.graph, spec.strategy,
                               spec.degreeBound, spec.mwVirtualWarp,
                               entry.epoch};
        const std::size_t faults_before = results[i].faultTrace.size();
        fault::FaultScope scope(options_.faultPlan,
                                scopeKey(batch_seq, i), 0,
                                &results[i].faultTrace);
        bool hit = false;
        bool retained = false;
        try {
            auto shared =
                cache_.getOrBuild(key, build_pool.get(), &hit,
                                  &retained);
            results[i].cacheHit = hit;
            metrics
                .counter(hit ? "scheduler.cache.hits"
                             : "scheduler.cache.misses")
                .add();
            if (options_.trace) {
                obs::TraceEvent event;
                event.kind = obs::EventKind::CacheLookup;
                event.arg[0] = hit ? 1 : 0;
                event.arg[1] = retained ? 1 : 0;
                results[i].trace.record(event);
            }
            if (!retained && options_.degradeOnCachePressure &&
                hasDynamicFallback(spec.strategy)) {
                // The cache could not keep the schedule (budget or an
                // injected cache.insert fault): drop our copy too and
                // run the zero-memory dynamic fallback instead of
                // holding an uncached schedule per query.
                results[i].degraded = true;
                results[i].error = ServiceError{
                    ServiceErrorKind::CacheInsert, std::nullopt,
                    "schedule not retained; degraded to dynamic "
                    "mapping"};
            } else {
                schedules[i] = std::move(shared);
            }
        } catch (const std::exception &e) {
            results[i].cacheHit = false;
            results[i].degraded = true;
            results[i].error = classifyFailure(e);
        }
        if (options_.trace) {
            traceNewFaults(results[i], faults_before);
            if (results[i].degraded) {
                obs::TraceEvent event;
                event.kind = obs::EventKind::Degrade;
                event.label[0] =
                    serviceErrorKindName(results[i].error->kind);
                results[i].trace.record(event);
            }
        }
    }
    build_pool.reset();
    for (std::thread &t : materializers)
        t.join();

    // Phase 3 — concurrent execution: workers claim batch slots via an
    // atomic ticket. Claim order varies; each slot's result does not
    // (fault decisions are keyed by slot, the breaker is untouched
    // until the post-pass).
    std::atomic<std::size_t> next{0};
    auto drain = [&](unsigned) {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch.size())
                break;
            if (admitted[i])
                execute(batch[i], results[i], schedules[i],
                        scopeKey(batch_seq, i), arena_served[i]);
        }
    };
    if (workers_ > 1) {
        par::ThreadPool pool(workers_);
        pool.run(drain);
    } else {
        drain(0);
    }

    // Phase 4 — breaker post-pass, in batch order over terminal
    // outcomes: deterministic because it never runs concurrently with
    // anything. Quarantine takes effect at admission of later batches.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        switch (results[i].outcome) {
          case QueryOutcome::Error:
            breaker_.recordFault(batch[i].graph);
            break;
          case QueryOutcome::Completed:
          case QueryOutcome::DeadlineExceeded:
            breaker_.recordSuccess(batch[i].graph);
            break;
          case QueryOutcome::Rejected:
          case QueryOutcome::Quarantined:
            break; // never ran; says nothing about graph health
        }
    }

    // Phase 5 — serial observability pass, in batch order: every query
    // gets its metricsDigest and QueryEnd event, and each counter is
    // bumped exactly once per query from the terminal outcomes, so the
    // registry can never drift from the results it describes.
    metrics.counter("scheduler.batches").add();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        QueryResult &r = results[i];
        r.metricsDigest = metricsDigestOf(r);
        if (options_.trace) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::QueryEnd;
            event.label[0] = queryOutcomeName(r.outcome);
            event.arg[0] = r.attempts;
            event.arg[1] = r.info.iterations;
            event.arg[2] = r.info.stats.cycles;
            event.arg[3] = r.digest;
            event.arg[4] = backoffMicros(r.backoffSimMs);
            event.arg[5] = r.degraded ? 1 : 0;
            event.arg[6] = r.cacheHit ? 1 : 0;
            r.trace.record(event);
        }
        metrics.counter("scheduler.queries").add();
        if (admitted[i])
            metrics.counter("scheduler.admitted").add();
        switch (r.outcome) {
          case QueryOutcome::Completed:
            metrics.counter("scheduler.completed").add();
            break;
          case QueryOutcome::DeadlineExceeded:
            metrics.counter("scheduler.deadline_exceeded").add();
            break;
          case QueryOutcome::Rejected:
            metrics.counter("scheduler.rejected").add();
            break;
          case QueryOutcome::Quarantined:
            metrics.counter("scheduler.quarantined").add();
            break;
          case QueryOutcome::Error:
            metrics.counter("scheduler.errors").add();
            break;
        }
        if (r.attempts > 1)
            metrics.counter("scheduler.retries").add(r.attempts - 1);
        if (r.degraded)
            metrics.counter("scheduler.degraded").add();
        if (r.arenaServed)
            metrics.counter("scheduler.arena_served").add();
        if (!r.faultTrace.empty())
            metrics.counter("scheduler.faults")
                .add(r.faultTrace.size());
        if (r.attempts > 0) {
            metrics.histogram("scheduler.query.attempts")
                .observe(r.attempts);
            metrics.histogram("scheduler.query.iterations")
                .observe(r.info.iterations);
            metrics.histogram("scheduler.query.sim_cycles")
                .observe(r.info.stats.cycles);
        }
    }
    if (options_.metrics) {
        const TransformCacheStats cache_stats = cache_.stats();
        metrics.gauge("scheduler.cache.bytes").set(cache_stats.bytes);
        metrics.gauge("scheduler.cache.entries")
            .set(cache_stats.entries);
    }
    return results;
}

void
QueryScheduler::applyMutation(const MutationSpec &spec,
                              MutationResult &result,
                              std::uint64_t scope_key,
                              obs::MetricsRegistry &metrics)
{
    auto reject = [&](ServiceErrorKind kind, std::string why) {
        result.error = ServiceError{kind, std::nullopt, why};
        result.message = std::move(why);
        metrics.counter("scheduler.mutation_errors").add();
    };
    if (!mutableStore_) {
        reject(ServiceErrorKind::InvalidQuery,
               "mutations require a scheduler over a mutable store");
        return;
    }
    const StoredGraph *entry = mutableStore_->find(spec.graph);
    if (!entry) {
        reject(ServiceErrorKind::InvalidQuery,
               "unknown graph '" + spec.graph + "'");
        return;
    }
    const std::uint64_t epoch_before = entry->epoch;
    result.epoch = epoch_before;

    // Generated tails are drawn against the graph's state *now*, so a
    // MutationSpec sequence is deterministic batch-by-batch even when
    // earlier specs in the same call mutated the graph.
    dynamic::MutationBatch batch = spec.mutations;
    if (spec.generate) {
        dynamic::MutationBatch tail =
            dynamic::generateBatch(entry->graph, *spec.generate);
        batch.insert(batch.end(), tail.begin(), tail.end());
    }

    if (options_.trace) {
        std::size_t inserts = 0, deletes = 0, reweights = 0;
        for (const dynamic::Mutation &m : batch) {
            switch (m.kind) {
              case dynamic::MutationKind::InsertEdge: ++inserts; break;
              case dynamic::MutationKind::DeleteEdge: ++deletes; break;
              case dynamic::MutationKind::UpdateWeight:
                ++reweights;
                break;
            }
        }
        obs::TraceEvent event;
        event.kind = obs::EventKind::MutationBegin;
        event.label[0] = spec.graph; // owned by the caller's spec
        event.arg[0] = epoch_before + 1;
        event.arg[1] = batch.size();
        event.arg[2] = inserts;
        event.arg[3] = deletes;
        event.arg[4] = reweights;
        result.trace.record(event);
    }

    fault::FaultScope scope(options_.faultPlan, scope_key, 0,
                            &result.faultTrace);
    try {
        const MutateResult applied =
            mutableStore_->mutate(spec.graph, batch);
        result.applied = true;
        result.epoch = applied.epoch;
        result.inserts = applied.delta.inserts;
        result.deletes = applied.delta.deletes;
        result.reweights = applied.delta.reweights;
        result.touched = applied.delta.touched.size();
        result.repaired = applied.repair.repairedVertices;
        result.resplits = applied.repair.resplitFamilies;
        result.reverseRepaired = applied.reverseRepair.repairedVertices;
        result.reverseResplits = applied.reverseRepair.resplitFamilies;
        result.compacted = applied.compacted;
        result.reclaimed = applied.reclaimed;
        if (options_.trace) {
            obs::TraceEvent event;
            event.kind = obs::EventKind::MutationApply;
            event.arg[0] = applied.epoch;
            event.arg[1] = result.touched;
            event.arg[2] = applied.liveEdges;
            event.arg[3] = applied.slackSlots;
            result.trace.record(event);
            if (applied.virtualRepaired) {
                obs::TraceEvent resplit;
                resplit.kind = obs::EventKind::MutationResplit;
                resplit.arg[0] = applied.epoch;
                resplit.arg[1] = applied.repair.repairedVertices;
                resplit.arg[2] = applied.repair.resplitFamilies;
                resplit.arg[3] = applied.repair.shiftedEntries;
                resplit.arg[4] = applied.repair.entriesAfter;
                resplit.arg[5] =
                    applied.reverseRepair.repairedVertices;
                resplit.arg[6] = applied.reverseRepair.resplitFamilies;
                result.trace.record(resplit);
            }
            if (applied.compacted) {
                obs::TraceEvent compact;
                compact.kind = obs::EventKind::MutationCompact;
                compact.arg[0] = applied.epoch;
                compact.arg[1] = applied.reclaimed;
                compact.arg[2] = applied.liveEdges;
                result.trace.record(compact);
            }
        }
        metrics.counter("scheduler.mutations").add();
        // Wall-clock cost of keeping the reverse-side virtual array in
        // step. Metrics only — host timing never enters deterministic
        // traces.
        if (applied.virtualRepaired)
            metrics.counter("mutation.reverse_repair_us")
                .add(static_cast<std::uint64_t>(
                    std::llround(applied.reverseRepairUs)));
    } catch (const fault::InjectedCrash &) {
        // A simulated process death is not a query failure: nothing
        // between here and the torture harness may absorb it.
        throw;
    } catch (const std::exception &e) {
        if (options_.trace)
            traceFaults(result.trace, result.faultTrace, 0);
        ServiceError error = classifyFailure(e);
        result.message = error.message;
        result.error = std::move(error);
        // A mutation.compact fault fires after the new epoch was
        // published: the mutation landed, only reclamation failed.
        result.epoch = mutableStore_->epochOf(spec.graph);
        result.applied = result.epoch != epoch_before;
        metrics.counter("scheduler.mutation_errors").add();
    }
    // Drop schedules built over superseded epochs — stale keys can
    // never be served again; this just releases their memory early.
    if (result.applied)
        cache_.invalidateStale(spec.graph, result.epoch);
}

MutationBatchResult
QueryScheduler::runBatch(std::span<const MutationSpec> mutations,
                         std::span<const QuerySpec> queries)
{
    obs::MetricsRegistry &metrics =
        options_.metrics ? *options_.metrics
                         : obs::MetricsRegistry::disabled();
    MutationBatchResult out;
    out.mutations.resize(mutations.size());
    // Mutations share the upcoming query batch's sequence number (the
    // query phase increments it); their fault sites are disjoint from
    // the query-phase sites, so scope keys cannot collide in effect.
    const std::uint64_t mutation_seq = batchSeq_;
    for (std::size_t i = 0; i < mutations.size(); ++i)
        applyMutation(mutations[i], out.mutations[i],
                      scopeKey(mutation_seq, i), metrics);
    // The group-commit barrier: under SyncPolicy::GroupCommit the
    // batch's journal records hit the disk here, once, before any
    // result of the batch is acknowledged. No-op for non-durable
    // stores (and for EveryRecord, which synced inside each append).
    if (mutableStore_ && !mutations.empty())
        mutableStore_->syncJournals();
    out.queries = runBatch(queries);
    return out;
}

} // namespace tigr::service
