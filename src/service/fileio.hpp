/**
 * @file
 * Raw durable-file I/O shared by the snapshot and journal writers:
 * EINTR-safe write/fsync/truncate loops around the POSIX calls, plus
 * the injectable crash shim the durability torture harness drives.
 *
 * Every byte the durability subsystem puts on disk flows through this
 * layer, for two reasons:
 *
 *  - Correctness under signals: `::write` and `::fsync` may fail with
 *    EINTR (and `::write` may write short); the helpers here retry
 *    until the full operation completed or a real error surfaced, so a
 *    stray SIGCHLD can never masquerade as a torn write.
 *  - Crash injection: a CrashScope armed on the current thread sees
 *    every write/fsync/rename as a numbered *I/O point* and can cut
 *    one write at an arbitrary byte offset — the bytes before the cut
 *    reach the file, nothing after does, and fault::InjectedCrash is
 *    thrown to model the process dying right there. Recording mode
 *    enumerates the points of a workload so a harness can then crash
 *    at every single one (tests/service/test_durability.cpp).
 *
 * Real I/O failures throw IoError; callers with their own typed errors
 * (SnapshotError, JournalError) catch and rewrap it. InjectedCrash is
 * never wrapped — it must reach the harness untouched.
 *
 * On platforms without POSIX descriptors the helpers fall back to
 * C stdio: writes still go through the shim (so the torture harness
 * stays meaningful), but sync() degrades to fflush — such platforms
 * get crash *atomicity* (tmp + rename) without crash *durability*.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tigr::service::io {

/** A real (non-injected) raw-I/O failure: open/write/fsync/rename
 *  errno paths. Callers rewrap it into their own typed error. */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** What one intercepted I/O point did. */
enum class OpKind : std::uint8_t
{
    Write,  ///< writeAll(): cuttable at any byte offset.
    Sync,   ///< sync()/syncPath(): crash = the fsync never happened.
    Rename, ///< renameFile(): crash = the rename never happened.
};

/** Display name ("write", "sync", "rename"). */
std::string_view opKindName(OpKind kind);

/** One recorded I/O point (recording-mode CrashScope). */
struct OpRecord
{
    OpKind kind = OpKind::Write;
    /** Payload size for Write points; 0 otherwise. */
    std::uint64_t bytes = 0;
};

/** Where to cut: crash at I/O point @p point, letting the first
 *  @p cutBytes of a Write land first (ignored for Sync/Rename, which
 *  simply never happen). */
struct CrashSpec
{
    std::uint64_t point = 0;
    std::uint64_t cutBytes = 0;
};

/**
 * RAII thread-local interception of the raw-I/O helpers, in one of two
 * modes:
 *
 *  - recording (default ctor): every op is appended to log() and runs
 *    normally. A harness records one clean workload, then enumerates
 *    crash points from the log.
 *  - crashing (CrashSpec ctor): ops before spec.point run normally; at
 *    spec.point a Write lands its first cutBytes bytes (clamped to the
 *    payload) and then fault::InjectedCrash is thrown; a Sync or
 *    Rename throws without doing anything. Ops after the crash never
 *    execute (the exception has unwound the workload by then).
 *
 * Scopes nest like FaultScope: the innermost armed scope wins and the
 * previous one is restored on destruction. Interception is per-thread;
 * the durability write paths are single-threaded by contract (the
 * store mutates only between query batches).
 */
class CrashScope
{
  public:
    /** Recording mode. */
    CrashScope();
    /** Crashing mode. */
    explicit CrashScope(const CrashSpec &spec);
    ~CrashScope();

    CrashScope(const CrashScope &) = delete;
    CrashScope &operator=(const CrashScope &) = delete;

    /** I/O points seen so far (both modes). */
    std::uint64_t pointsSeen() const { return next_; }

    /** The recorded ops, in point order (recording mode). */
    const std::vector<OpRecord> &log() const { return log_; }

    /** True once the armed crash point fired (crashing mode). */
    bool crashed() const { return crashed_; }

    /** Raw-helper hook (not for direct use): number this op, record or
     *  crash. Returns the byte count a Write may land before the crash
     *  (nullopt = run it in full); throws fault::InjectedCrash itself
     *  for Sync/Rename at the armed point. */
    std::optional<std::uint64_t> intercept(OpKind kind,
                                           std::uint64_t bytes);

  private:
    bool crashing_ = false;
    CrashSpec spec_{};
    std::uint64_t next_ = 0;
    bool crashed_ = false;
    std::vector<OpRecord> log_;
    CrashScope *previous_ = nullptr;
};

/**
 * An owned writable file handle (POSIX fd where available, stdio
 * elsewhere). Movable, closed on destruction; close() is explicit
 * where the caller needs the error.
 */
class FileHandle
{
  public:
    FileHandle() = default;

    /** Create/truncate @p path for writing. @throws IoError. */
    static FileHandle createTruncated(const std::filesystem::path &path);

    /** Open existing @p path for writing positioned at @p offset
     *  (which must not exceed the file size); bytes past it are
     *  discarded, so a writer resumes exactly at the intact tail.
     *  @throws IoError. */
    static FileHandle openAt(const std::filesystem::path &path,
                             std::uint64_t offset);

    FileHandle(FileHandle &&other) noexcept;
    FileHandle &operator=(FileHandle &&other) noexcept;
    FileHandle(const FileHandle &) = delete;
    FileHandle &operator=(const FileHandle &) = delete;
    ~FileHandle();

    bool open() const { return fd_ >= 0 || stream_ != nullptr; }

    /** Current write offset (bytes from start of file). */
    std::uint64_t offset() const { return offset_; }

    /**
     * Write all @p size bytes (EINTR-safe, short-write-safe), through
     * the crash shim: one call = one cuttable I/O point.
     * @throws IoError on a real failure, fault::InjectedCrash when an
     *         armed CrashScope cuts it.
     */
    void writeAll(const void *data, std::size_t size);

    /** fsync (EINTR-safe), through the crash shim. @throws IoError /
     *  fault::InjectedCrash. Best-effort fflush on non-POSIX. */
    void sync();

    /** Truncate the file to @p size bytes and seek there (EINTR-safe;
     *  not a shim point — only recovery truncates, and recovery is the
     *  crash *handler*, modeled as atomic). @throws IoError. */
    void truncateTo(std::uint64_t size);

    /** Close, reporting the error a destructor would swallow. */
    void close();

  private:
    FileHandle(int fd, std::FILE *stream, std::filesystem::path path,
               std::uint64_t offset);

    int fd_ = -1;
    std::FILE *stream_ = nullptr;
    std::filesystem::path path_;
    std::uint64_t offset_ = 0;
};

/** Atomically rename @p from over @p to, through the crash shim.
 *  @throws IoError / fault::InjectedCrash. */
void renameFile(const std::filesystem::path &from,
                const std::filesystem::path &to);

/**
 * fsync the file or directory at @p path (EINTR-safe), through the
 * crash shim. Directory syncs are best-effort (some filesystems refuse
 * to open directories): an unopenable directory is skipped silently —
 * but still consumes its crash point, so point numbering is stable
 * across filesystems. No-op (shim aside) without POSIX descriptors.
 * @throws IoError (files only) / fault::InjectedCrash.
 */
void syncPath(const std::filesystem::path &path, bool directory);

/** Truncate the file at @p path to @p size bytes (recovery's torn-tail
 *  cut; not a shim point). @throws IoError. */
void truncatePath(const std::filesystem::path &path, std::uint64_t size);

} // namespace tigr::service::io
