/**
 * @file
 * Versioned binary snapshots: the service layer's at-rest graph format.
 *
 * A snapshot persists a CSR graph — and optionally a materialized
 * virtual node array (Section 4 of the paper) — in one self-describing
 * container that loads in O(read) with no rebuild:
 *
 *   header  (88 bytes, fixed)
 *     magic            "TIGRSNP2"                       8 bytes
 *     version          u32  (currently 3)
 *     flags            u32  (bit 0: virtual section present)
 *     numNodes         u64
 *     numEdges         u64
 *     numVirtualNodes  u64  (0 without the virtual section)
 *     virtualDegreeBound  u32   }  build parameters of the
 *     virtualLayout       u32   }  persisted virtual array
 *     epoch            u64  (mutation epoch of the persisted state)
 *     payloadOffset    u64  (first payload byte; = 88)
 *     payloadBytes     u64  (total payload size)
 *     payloadChecksum  u64  (FNV-1a 64 of the payload bytes)
 *     headerChecksum   u64  (FNV-1a 64 of the preceding 80 bytes)
 *
 * Version 2 files (80-byte header, no epoch field) predate the dynamic
 * subsystem and still load — their epoch defaults to 0. The writer
 * always emits version 3.
 *   payload (little-endian arrays, in this order)
 *     rowOffsets   (numNodes + 1) x u64
 *     colIndices   numEdges x u32
 *     weights      numEdges x u32
 *     [virtual section, when flags bit 0 is set]
 *     physicalIds  numVirtualNodes x u32
 *     starts       numVirtualNodes x u64
 *     strides      numVirtualNodes x u64
 *     counts       numVirtualNodes x u32
 *
 * Every field is written little-endian (the only byte order the repo's
 * binary formats target). All section offsets are 64-bit, so snapshots
 * scale past 4 GiB. Corrupt, truncated, or foreign files are rejected
 * with a typed SnapshotError — a snapshot load never exhibits
 * undefined behavior on bad input.
 */
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::service {

/** Snapshot file extension the CLI dispatches on (".snap" already
 *  means a text edge list in this repo, so snapshots use ".tgs"). */
inline constexpr std::string_view kSnapshotExtension = ".tgs";

/** Mutation-log extension: the text MutationLog persisted beside a
 *  snapshot (see mutationLogPathFor). */
inline constexpr std::string_view kMutationLogExtension = ".tml";

/**
 * The conventional sidecar path for the mutation log of the snapshot at
 * @p snapshot_path: same directory and stem, extension swapped for
 * ".tml" (appended when the path has no extension; a dotfile like
 * ".hidden" counts as extensionless, yielding ".hidden.tml"). A store
 * that saves "g.tgs" at epoch E and the log of later batches to
 * "g.tml" can restore the snapshot and GraphStore::replayLog() its way
 * to any recorded epoch > E byte-identically.
 * @throws std::invalid_argument when the path has no filename (a
 *         trailing separator names a directory, not a snapshot).
 */
inline std::filesystem::path
mutationLogPathFor(const std::filesystem::path &snapshot_path)
{
    if (snapshot_path.filename().empty())
        throw std::invalid_argument(
            "tigr: cannot derive a mutation-log path from '" +
            snapshot_path.string() + "' (no filename)");
    std::filesystem::path out = snapshot_path;
    out.replace_extension(kMutationLogExtension);
    return out;
}

/** What went wrong loading a snapshot. */
enum class SnapshotErrorKind
{
    Io,               ///< File unopenable / unreadable / unwritable.
    BadMagic,         ///< Not a TIGRSNP container at all.
    BadVersion,       ///< A TIGRSNP container of an unsupported version.
    Truncated,        ///< File ends before the declared payload does.
    ChecksumMismatch, ///< Header or payload bytes fail their checksum.
    Inconsistent,     ///< Checksums pass but the arrays are invalid
                      ///< (non-monotone offsets, out-of-range ids, ...).
};

/** Display name of @p kind ("bad-magic", "truncated", ...). */
std::string_view snapshotErrorKindName(SnapshotErrorKind kind);

/** Typed snapshot failure: catch as SnapshotError to branch on kind(),
 *  or as std::runtime_error for a plain message. */
class SnapshotError : public std::runtime_error
{
  public:
    SnapshotError(SnapshotErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    SnapshotErrorKind kind() const { return kind_; }

  private:
    SnapshotErrorKind kind_;
};

/**
 * A loaded snapshot: the graph plus the optional persisted virtual
 * node array (as raw entries — bind them to the graph with
 * VirtualGraph::fromArrays once the Snapshot has a stable address).
 */
struct Snapshot
{
    graph::Csr graph;
    /** True when the container carried a virtual section. */
    bool hasVirtual = false;
    /** Degree bound K the persisted array was built with. */
    NodeId virtualDegreeBound = 0;
    /** Edge layout the persisted array was built with. */
    transform::EdgeLayout virtualLayout =
        transform::EdgeLayout::Coalesced;
    /** The persisted virtual node array (empty without the section). */
    std::vector<transform::VirtualNode> virtualNodes;
    /** Mutation epoch of the persisted state (0 for never-mutated
     *  graphs and for legacy v2 files, which predate the field). */
    std::uint64_t epoch = 0;
};

/** How loadSnapshotFile maps the file into memory. */
enum class SnapshotLoadMode
{
    Auto,   ///< Mmap when the platform supports it, else stream.
    Stream, ///< Buffered reads through an istream.
    Mmap,   ///< POSIX mmap of the whole file; throws Io if unavailable.
};

/** Write @p snapshot to @p out. @throws SnapshotError (Io) on write
 *  failure, std::invalid_argument if virtualNodes is inconsistent with
 *  the graph. */
void saveSnapshot(const Snapshot &snapshot, std::ostream &out);

/**
 * Write @p snapshot to @p path (conventionally "*.tgs"),
 * crash-consistently: the bytes go to "<path>.tmp" first, are flushed
 * and fsync'd, and the temp file is atomically renamed over @p path
 * (with the parent directory fsync'd after, where the platform
 * supports it). A crash at any point leaves either the old file intact
 * or a "*.tgs.tmp" leftover that auditSnapshotDirectory() quarantines
 * — never a partial snapshot under the real name. The temp file is
 * removed on any failure.
 */
void saveSnapshotFile(const Snapshot &snapshot,
                      const std::filesystem::path &path);

/** Convenience: snapshot @p graph with no virtual section. */
void saveSnapshotFile(const graph::Csr &graph,
                      const std::filesystem::path &path);

/** Convenience: snapshot @p vg's physical graph plus its array. */
void saveSnapshotFile(const transform::VirtualGraph &vg,
                      const std::filesystem::path &path);

/** Load a snapshot from @p in. @throws SnapshotError. */
Snapshot loadSnapshot(std::istream &in);

/** Load a snapshot from @p path. @throws SnapshotError. */
Snapshot loadSnapshotFile(const std::filesystem::path &path,
                          SnapshotLoadMode mode = SnapshotLoadMode::Auto);

/** Parse a snapshot already in memory (the mmap path bottoms out
 *  here; also useful for in-memory round-trip tests).
 *  @throws SnapshotError. */
Snapshot parseSnapshot(const void *data, std::size_t size);

/** What auditSnapshotDirectory found, in sorted path order. */
struct SnapshotAuditReport
{
    /** Snapshots that load and validate cleanly. */
    std::vector<std::filesystem::path> intact;
    /** ".twj" journals beside an intact snapshot whose header checks
     *  out (a torn tail is fine — recovery truncates it). */
    std::vector<std::filesystem::path> journals;
    /** ".tml" mutation logs beside an intact snapshot that parse. */
    std::vector<std::filesystem::path> mutationLogs;
    /** Files renamed aside (to "<name>.quarantined"): corrupt ".tgs"
     *  files, "*.tgs.tmp" / "*.twj.tmp" leftovers of interrupted
     *  writes, and orphaned or corrupt ".tml"/".twj" sidecars. Holds
     *  the new (post-rename) paths. */
    std::vector<std::filesystem::path> quarantined;
};

/**
 * Scan @p dir (non-recursive, sorted order) for snapshot files and
 * their sidecars, and quarantine everything that cannot be trusted:
 *
 *  - "*.tgs.tmp" / "*.twj.tmp" leftovers of a crashed write or
 *    rotation — by construction never complete, always quarantined;
 *  - "*.tgs" files that fail to load (truncated, corrupted, foreign);
 *  - ".tml" / ".twj" sidecars with no intact snapshot under their stem
 *    (orphans — nothing to replay them onto);
 *  - ".tml" sidecars that fail to parse, and ".twj" sidecars whose
 *    32-byte header is corrupt (a torn record *tail* is NOT corruption
 *    — recovery truncates and preserves it).
 *
 * Quarantining renames to "<name>.quarantined" so a service never
 * repeatedly trips over a bad file at open. Intact files are left
 * untouched and listed. A file that cannot even be renamed is still
 * reported quarantined (under its original path).
 * @throws SnapshotError (Io) only when @p dir itself is unreadable.
 */
SnapshotAuditReport
auditSnapshotDirectory(const std::filesystem::path &dir);

} // namespace tigr::service
