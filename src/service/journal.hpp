/**
 * @file
 * The write-ahead mutation journal: the service's durable record of
 * acknowledged mutation batches (docs/durability.md).
 *
 * A `.twj` file sits beside its graph's `.tgs` snapshot and holds one
 * binary record per applied batch:
 *
 *   header  (32 bytes, fixed)
 *     magic          "TIGRWJL1"                        8 bytes
 *     version        u32  (currently 1)
 *     flags          u32  (reserved, 0)
 *     baseEpoch      u64  (epoch of the snapshot this journal extends)
 *     headerChecksum u64  (FNV-1a 64 of the preceding 24 bytes)
 *   record, repeated
 *     payloadBytes   u32  (length prefix)
 *     payloadCrc     u32  (CRC-32C of the payload bytes)
 *     payload
 *       epoch        u64  (the epoch this batch produced)
 *       seq          u64  (record index within the file, from 0)
 *       count        u32  (mutations in the batch)
 *       count x { kind u8, src u32, dst u32, weight u32 }
 *
 * Everything is little-endian, like every binary format in this repo.
 * One append = one write() of the whole frame, so a crash can tear at
 * most the last record — scanJournal() walks the length prefixes,
 * verifies each CRC and the seq chain, and stops at the first frame
 * that does not check out: everything before it is intact, everything
 * from it on is the torn tail recovery truncates (and preserves
 * aside). Scanning never throws on hostile bytes; only an unreadable
 * file is an error.
 *
 * Sync policies order the ack against the disk: EveryRecord fsyncs
 * inside append() (strict WAL — nothing acknowledged that is not on
 * disk), GroupCommit batches the fsync into one sync() per scheduler
 * batch (the scheduler calls GraphStore::syncJournals() at the batch
 * boundary), Unsynced never fsyncs (bounded data loss, benchmarking
 * and bulk load only). bench/journal_overhead measures the gap.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dynamic/mutation.hpp"
#include "service/fileio.hpp"

namespace tigr::obs {
class MetricsRegistry;
class TraceSink;
} // namespace tigr::obs

namespace tigr::service {

/** Journal file extension (sits beside ".tgs" / ".tml" sidecars). */
inline constexpr std::string_view kJournalExtension = ".twj";

/** The conventional journal sidecar path for the snapshot at
 *  @p snapshot_path: same directory and stem, extension swapped for
 *  ".twj". @throws std::invalid_argument when the path has no filename
 *  (a trailing separator names a directory, not a journal). */
std::filesystem::path
journalPathFor(const std::filesystem::path &snapshot_path);

/** When an append is ordered to disk relative to its acknowledgment. */
enum class SyncPolicy
{
    EveryRecord, ///< fsync inside append(): strict per-record WAL.
    GroupCommit, ///< fsync once per batch, at the sync() barrier.
    Unsynced,    ///< never fsync: bounded loss, bulk load only.
};

/** Display name ("every-record", "group-commit", "unsynced"). */
std::string_view syncPolicyName(SyncPolicy policy);

/** Parse a display name back to a policy. */
std::optional<SyncPolicy> parseSyncPolicy(std::string_view name);

/** What went wrong on the journal's non-recovery paths. */
enum class JournalErrorKind
{
    Io,         ///< File unopenable / unwritable.
    BadMagic,   ///< Not a TIGRWJL container (resume refuses it).
    BadVersion, ///< A TIGRWJL container of an unsupported version.
};

/** Typed journal failure. Never thrown for hostile record bytes —
 *  those are a torn tail, reported through JournalScan instead. */
class JournalError : public std::runtime_error
{
  public:
    JournalError(JournalErrorKind kind, const std::string &message)
        : std::runtime_error(message), kind_(kind)
    {
    }

    JournalErrorKind kind() const { return kind_; }

  private:
    JournalErrorKind kind_;
};

/** CRC-32C (Castagnoli) of @p size bytes at @p data, seeded by @p crc
 *  (0 to start; chain calls to checksum discontiguous buffers). */
std::uint32_t crc32c(const void *data, std::size_t size,
                     std::uint32_t crc = 0);

/** One intact journal record. */
struct JournalRecord
{
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    /** Byte offset of this record's frame in the file — where recovery
     *  truncates when the record turns out to be inapplicable. */
    std::uint64_t offset = 0;
    dynamic::MutationBatch batch;
};

/** What scanJournal() found. */
struct JournalScan
{
    /** False when the 32-byte header itself is missing, foreign, or
     *  corrupt — nothing in the file can be trusted then. */
    bool headerIntact = false;
    /** Header baseEpoch (0 when the header is not intact). */
    std::uint64_t baseEpoch = 0;
    /** Every intact record, in seq order. */
    std::vector<JournalRecord> records;
    /** First byte past the last intact record (= the torn tail's
     *  start; 0 when the header is not intact). */
    std::uint64_t intactBytes = 0;
    /** Total file size. */
    std::uint64_t fileBytes = 0;

    /** Bytes of torn tail (0 = the file is clean). */
    std::uint64_t tornBytes() const { return fileBytes - intactBytes; }
};

/**
 * Walk the journal at @p path: header check, then records until the
 * first frame whose length prefix, CRC, seq chain, or mutation
 * encoding does not check out. Hostile bytes are never an exception —
 * they are where the intact prefix ends.
 * @throws JournalError (Io) only when the file cannot be read at all.
 */
JournalScan scanJournal(const std::filesystem::path &path);

/**
 * The append half: owns the file handle, frames + checksums records,
 * and orders fsyncs per its SyncPolicy. All writes flow through the
 * io:: crash shim, so the torture harness can cut any append at any
 * byte offset. Single-writer by contract (the store mutates between
 * query batches); not internally synchronized.
 */
class JournalWriter
{
  public:
    /** Start a fresh journal at @p path (truncating any existing
     *  file): header written, synced, and the parent directory synced,
     *  so the journal exists durably before its first record.
     *  @throws JournalError (Io). */
    static JournalWriter create(const std::filesystem::path &path,
                                std::uint64_t base_epoch,
                                SyncPolicy policy);

    /** Resume appending to an existing journal: scan it, silently drop
     *  any torn tail (recovery has already preserved it aside), and
     *  position after the last intact record.
     *  @throws JournalError (Io / BadMagic / BadVersion) when the file
     *          is unreadable or its header cannot be trusted. */
    static JournalWriter resume(const std::filesystem::path &path,
                                SyncPolicy policy);

    JournalWriter(JournalWriter &&) = default;
    JournalWriter &operator=(JournalWriter &&) = default;
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Append one record (one frame, one write). Under EveryRecord the
     * record is fsync'd before returning — the WAL ack. Under
     * GroupCommit/Unsynced the frame is written but the caller must
     * not acknowledge until sync() (GroupCommit) or ever rely on
     * durability (Unsynced).
     * @throws JournalError (Io), fault::InjectedCrash under an armed
     *         crash scope or a fired journal.append/journal.sync site.
     */
    void append(std::uint64_t epoch,
                const dynamic::MutationBatch &batch);

    /** Group-commit barrier: fsync everything appended since the last
     *  sync (no-op when clean or Unsynced). @throws JournalError (Io),
     *  fault::InjectedCrash. */
    void sync();

    /**
     * Roll back the most recent append() (the store's apply rejected
     * the batch after the record was written): truncate the file to
     * the pre-append offset and reuse its seq. Only valid while that
     * record is the unacknowledged tail — i.e. immediately after the
     * append whose batch was rejected. @throws JournalError (Io),
     * std::logic_error when there is nothing to abort.
     */
    void abortLast();

    const std::filesystem::path &path() const { return path_; }
    std::uint64_t baseEpoch() const { return baseEpoch_; }
    /** Records currently in the file. */
    std::uint64_t records() const { return nextSeq_; }
    /** Bytes currently in the file (header + intact records). */
    std::uint64_t bytes() const { return bytes_; }
    SyncPolicy policy() const { return policy_; }

    /** Attach observability sinks (either may be null). Counters:
     *  journal.appends/bytes/syncs/aborts; trace: journal.append. */
    void observe(obs::MetricsRegistry *metrics, obs::TraceSink *trace);

    /** Checkpoint rotation: atomically rename this (freshly created)
     *  journal over @p target and track the new path. The caller syncs
     *  the directory after. @throws JournalError (Io),
     *  fault::InjectedCrash. */
    void rotateInto(const std::filesystem::path &target);

  private:
    JournalWriter(io::FileHandle file, std::filesystem::path path,
                  std::uint64_t base_epoch, SyncPolicy policy,
                  std::uint64_t next_seq);

    void syncNow();

    io::FileHandle file_;
    std::filesystem::path path_;
    std::uint64_t baseEpoch_ = 0;
    SyncPolicy policy_ = SyncPolicy::GroupCommit;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t bytes_ = 0;
    /** Offset before the most recent append (abortLast target);
     *  nullopt once synced or aborted. */
    std::optional<std::uint64_t> lastAppendOffset_;
    /** Appended-but-not-fsynced bytes exist. */
    bool dirty_ = false;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::TraceSink *trace_ = nullptr;
};

} // namespace tigr::service
