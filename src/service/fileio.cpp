#include "service/fileio.hpp"

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "fault/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TIGR_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TIGR_HAVE_POSIX_IO 0
#endif

namespace tigr::service::io {

namespace {

thread_local CrashScope *tlsScope = nullptr;

[[noreturn]] void
failIo(const std::string &what, const std::filesystem::path &path)
{
    std::string message = "tigr: " + what + " failed for " +
                          path.string();
    if (errno != 0) {
        message += ": ";
        message += std::strerror(errno);
    }
    throw IoError(message);
}

[[noreturn]] void
crashNow(OpKind kind, std::uint64_t point)
{
    throw fault::InjectedCrash(
        "tigr: injected crash at io point " + std::to_string(point) +
        " (" + std::string(opKindName(kind)) + ")");
}

/**
 * Consult the armed scope before an op. Returns the byte count a Write
 * is allowed to land before the crash (nullopt = run normally); throws
 * InjectedCrash itself for non-Write ops at the crash point.
 */
std::optional<std::uint64_t>
beforeOp(OpKind kind, std::uint64_t bytes)
{
    CrashScope *scope = tlsScope;
    if (!scope)
        return std::nullopt;
    return scope->intercept(kind, bytes);
}

} // namespace

std::string_view
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Write: return "write";
      case OpKind::Sync: return "sync";
      case OpKind::Rename: return "rename";
    }
    return "unknown";
}

CrashScope::CrashScope() : previous_(tlsScope)
{
    tlsScope = this;
}

CrashScope::CrashScope(const CrashSpec &spec)
    : crashing_(true), spec_(spec), previous_(tlsScope)
{
    tlsScope = this;
}

CrashScope::~CrashScope()
{
    tlsScope = previous_;
}

std::optional<std::uint64_t>
CrashScope::intercept(OpKind kind, std::uint64_t bytes)
{
    const std::uint64_t point = next_++;
    if (!crashing_) {
        log_.push_back(OpRecord{kind, bytes});
        return std::nullopt;
    }
    if (point != spec_.point)
        return std::nullopt;
    crashed_ = true;
    if (kind == OpKind::Write)
        return spec_.cutBytes < bytes ? spec_.cutBytes : bytes;
    crashNow(kind, point);
}

FileHandle::FileHandle(int fd, std::FILE *stream,
                       std::filesystem::path path, std::uint64_t offset)
    : fd_(fd), stream_(stream), path_(std::move(path)), offset_(offset)
{
}

FileHandle::FileHandle(FileHandle &&other) noexcept
    : fd_(other.fd_), stream_(other.stream_),
      path_(std::move(other.path_)), offset_(other.offset_)
{
    other.fd_ = -1;
    other.stream_ = nullptr;
    other.offset_ = 0;
}

FileHandle &
FileHandle::operator=(FileHandle &&other) noexcept
{
    if (this != &other) {
        if (open()) {
            // Swallow close errors here; use close() when they matter.
            try {
                close();
            } catch (...) {
            }
        }
        fd_ = other.fd_;
        stream_ = other.stream_;
        path_ = std::move(other.path_);
        offset_ = other.offset_;
        other.fd_ = -1;
        other.stream_ = nullptr;
        other.offset_ = 0;
    }
    return *this;
}

FileHandle::~FileHandle()
{
    try {
        close();
    } catch (...) {
        // Destructors stay noexcept; explicit close() reports.
    }
}

FileHandle
FileHandle::createTruncated(const std::filesystem::path &path)
{
#if TIGR_HAVE_POSIX_IO
    int fd;
    do {
        errno = 0;
        fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        failIo("open", path);
    return FileHandle(fd, nullptr, path, 0);
#else
    std::FILE *stream = std::fopen(path.string().c_str(), "wb");
    if (!stream)
        failIo("open", path);
    return FileHandle(-1, stream, path, 0);
#endif
}

FileHandle
FileHandle::openAt(const std::filesystem::path &path,
                   std::uint64_t offset)
{
#if TIGR_HAVE_POSIX_IO
    int fd;
    do {
        errno = 0;
        fd = ::open(path.c_str(), O_WRONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        failIo("open", path);
    FileHandle handle(fd, nullptr, path, offset);
    handle.truncateTo(offset);
    return handle;
#else
    // Drop the tail first (stdio has no ftruncate), then append.
    std::error_code ec;
    std::filesystem::resize_file(path, offset, ec);
    if (ec)
        failIo("truncate", path);
    std::FILE *stream = std::fopen(path.string().c_str(), "ab");
    if (!stream)
        failIo("open", path);
    return FileHandle(-1, stream, path, offset);
#endif
}

void
FileHandle::writeAll(const void *data, std::size_t size)
{
    const std::optional<std::uint64_t> cut =
        beforeOp(OpKind::Write, size);
    const std::size_t allowed =
        cut ? static_cast<std::size_t>(*cut) : size;
    const char *bytes = static_cast<const char *>(data);
    std::size_t written = 0;
    while (written < allowed) {
#if TIGR_HAVE_POSIX_IO
        errno = 0;
        const ::ssize_t n =
            ::write(fd_, bytes + written, allowed - written);
        if (n < 0) {
            if (errno == EINTR)
                continue; // the retry loop EINTR-safety is about
            failIo("write", path_);
        }
        written += static_cast<std::size_t>(n);
#else
        const std::size_t n =
            std::fwrite(bytes + written, 1, allowed - written, stream_);
        if (n == 0)
            failIo("write", path_);
        written += n;
#endif
    }
    offset_ += written;
    if (cut)
        crashNow(OpKind::Write, tlsScope ? tlsScope->pointsSeen() - 1
                                         : 0);
}

void
FileHandle::sync()
{
    beforeOp(OpKind::Sync, 0); // throws at the armed crash point
#if TIGR_HAVE_POSIX_IO
    int rc;
    do {
        errno = 0;
        rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        failIo("fsync", path_);
#else
    if (std::fflush(stream_) != 0)
        failIo("flush", path_);
#endif
}

void
FileHandle::truncateTo(std::uint64_t size)
{
#if TIGR_HAVE_POSIX_IO
    int rc;
    do {
        errno = 0;
        rc = ::ftruncate(fd_, static_cast<::off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        failIo("ftruncate", path_);
    ::off_t pos;
    do {
        errno = 0;
        pos = ::lseek(fd_, static_cast<::off_t>(size), SEEK_SET);
    } while (pos < 0 && errno == EINTR);
    if (pos < 0)
        failIo("lseek", path_);
#else
    // stdio fallback: reopen at the new size.
    std::fclose(stream_);
    stream_ = nullptr;
    std::error_code ec;
    std::filesystem::resize_file(path_, size, ec);
    if (ec)
        failIo("truncate", path_);
    stream_ = std::fopen(path_.string().c_str(), "ab");
    if (!stream_)
        failIo("open", path_);
#endif
    offset_ = size;
}

void
FileHandle::close()
{
#if TIGR_HAVE_POSIX_IO
    if (fd_ >= 0) {
        const int fd = fd_;
        fd_ = -1;
        int rc;
        do {
            errno = 0;
            rc = ::close(fd);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0)
            failIo("close", path_);
    }
#else
    if (stream_) {
        std::FILE *stream = stream_;
        stream_ = nullptr;
        if (std::fclose(stream) != 0)
            failIo("close", path_);
    }
#endif
}

void
renameFile(const std::filesystem::path &from,
           const std::filesystem::path &to)
{
    beforeOp(OpKind::Rename, 0); // throws at the armed crash point
    std::error_code ec;
    std::filesystem::rename(from, to, ec); // atomic on POSIX
    if (ec)
        throw IoError("tigr: cannot rename " + from.string() +
                      " over " + to.string() + ": " + ec.message());
}

void
syncPath(const std::filesystem::path &path, bool directory)
{
    beforeOp(OpKind::Sync, 0); // throws at the armed crash point
#if TIGR_HAVE_POSIX_IO
    int fd;
    do {
        errno = 0;
        fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        if (directory)
            return; // some filesystems refuse O_RDONLY on dirs; the
                    // caller's rename is still ordered after the fsync
        failIo("open", path);
    }
    int rc;
    do {
        errno = 0;
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    const int saved = errno;
    ::close(fd);
    if (rc != 0 && !directory) {
        errno = saved;
        failIo("fsync", path);
    }
#else
    (void)path;
    (void)directory;
#endif
}

void
truncatePath(const std::filesystem::path &path, std::uint64_t size)
{
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    if (ec)
        throw IoError("tigr: cannot truncate " + path.string() +
                      " to " + std::to_string(size) + " bytes: " +
                      ec.message());
}

} // namespace tigr::service::io
