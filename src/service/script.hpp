/**
 * @file
 * Line-oriented service scripts: the embeddable driver behind
 * `tigr serve --script FILE`.
 *
 * Commands (one per line; '#' starts a comment):
 *
 *   load NAME PATH
 *       Register a graph file under NAME. Extension-dispatched:
 *       .el/.txt/.snap edge list, .mtx Matrix Market, .csr Tigr binary,
 *       .tgs versioned snapshot (keeps any persisted virtual section).
 *   snapshot NAME PATH [K [consecutive|coalesced]]
 *       Write stored graph NAME to PATH as a snapshot; a positive K
 *       embeds the virtual node array built with that degree bound.
 *   query GRAPH ALGO [key=value ...]
 *       Append a query to the pending batch. ALGO is one of
 *       bfs|sssp|sswp|cc|pr|bc. Keys: source=N strategy=S k=N warp=N
 *       pr-iters=N deadline-sim-ms=X deadline-wall-ms=X
 *       frontier=dense|sparse|adaptive frontier-ratio=X.
 *   mutate GRAPH [key=value ...]
 *       Append a seeded mutation batch to the pending batch. Keys:
 *       inserts=N deletes=N reweights=N seed=S max-weight=W
 *       (defaults 16/8/8/1/64). Mutations run serially, in script
 *       order, BEFORE the batch's queries — every query in the batch
 *       observes the final epoch (docs/dynamic.md).
 *   run
 *       Execute the pending batch through the QueryScheduler and print
 *       one result line per mutation, then one per query, in batch
 *       order.
 *   checkpoint NAME
 *       Durable mode only: fold graph NAME's write-ahead journal into
 *       its snapshot and rotate in a fresh journal
 *       (GraphStore::checkpoint, docs/durability.md).
 *   stats
 *       Print store and transform-cache counters.
 *   metrics
 *       Print the observability registry snapshot (sorted, integer
 *       counters/gauges/histograms; see docs/observability.md).
 *
 * A non-empty pending batch is flushed (as by `run`) at end of script.
 * All output is deterministic at any worker count (timings are
 * deliberately omitted); malformed commands throw std::runtime_error
 * naming the line.
 */
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>

#include "engine/frontier.hpp"
#include "fault/fault.hpp"
#include "service/journal.hpp"

namespace tigr::service {

/** Knobs for one script execution. */
struct ScriptOptions
{
    /** Scheduler workers (0 = TIGR_THREADS / hardware default). */
    unsigned workers = 0;
    /** Admission bound per batch. */
    std::size_t maxQueuedQueries = 1024;
    /** TransformCache byte budget. */
    std::size_t cacheBytes = std::size_t{64} << 20;
    /** Default frontier mode of queries that do not set frontier=. */
    engine::FrontierMode frontier = engine::FrontierMode::Adaptive;
    /** Default adaptive-switch ratio (frontier-ratio= overrides). */
    double frontierRatio = engine::kDefaultFrontierRatio;
    /** Retry budget per query (RetryPolicy::maxRetries). */
    unsigned maxRetries = 2;
    /** Deterministic fault plan forwarded to the scheduler (inert by
     *  default). Lets resilience drills and tests exercise retry and
     *  fail-fast end-to-end through a script. */
    fault::FaultPlan faultPlan;
    /** Stop at the first batch containing a terminally failed
     *  (error/quarantined) query and exit nonzero, instead of running
     *  the script to the end. */
    bool failFast = false;
    /** Print the observability registry snapshot after the final batch
     *  (sorted integer counters — deterministic at any worker count). */
    bool metrics = false;
    /** Non-empty: record per-query structured traces and write them as
     *  one merged Chrome trace_event JSON file at end of script (one
     *  track per query, timestamps in simulated microseconds). */
    std::string tracePath;
    /** Non-empty: open the store durably over this directory before
     *  the script runs (GraphStore::openDurable — crash recovery, then
     *  write-ahead journaling of every mutation; the recovery summary
     *  is printed first). */
    std::string durableDir;
    /** Journal ack-vs-disk ordering when durableDir is set. */
    SyncPolicy syncPolicy = SyncPolicy::GroupCommit;
};

/**
 * Run a service script from @p in, writing results to @p out.
 * @return 0 on success; 1 when failFast stopped the script at a batch
 *         with a terminally failed query.
 * @throws std::runtime_error on malformed commands, SnapshotError on
 *         bad snapshot files.
 */
int runScript(std::istream &in, std::ostream &out,
              const ScriptOptions &options = {});

} // namespace tigr::service
