#include "par/parse_int.hpp"

#include <stdexcept>
#include <string>

namespace tigr::par {

std::uint64_t
parsePositiveInt(std::string_view text, std::string_view origin,
                 std::uint64_t max)
{
    auto reject = [&](const char *why) {
        throw std::invalid_argument(
            std::string("tigr: invalid ") + std::string(origin) + " '" +
            std::string(text) + "': " + why +
            " (expected an integer in [1, " + std::to_string(max) +
            "])");
    };
    if (text.empty())
        reject("empty value");
    if (text[0] == '-')
        reject("the value cannot be negative");
    if (text[0] == '+')
        reject("not a plain decimal integer");
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            reject("not a plain decimal integer");
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            reject("too large");
        value = value * 10 + digit;
        if (value > max)
            reject("too large");
    }
    if (value == 0)
        reject("0 is not a valid value here; omit the setting to use "
               "the default");
    return value;
}

} // namespace tigr::par
