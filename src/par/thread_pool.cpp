#include "par/thread_pool.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "par/parse_int.hpp"

namespace tigr::par {

unsigned
parseThreadCount(std::string_view text, std::string_view origin)
{
    // The shared strict parser enforces the whole grammar (digits
    // only, no sign, no 0, no overflow); this wrapper only narrows
    // the range to the pool bound.
    return static_cast<unsigned>(
        parsePositiveInt(text, origin, kMaxThreads));
}

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("TIGR_THREADS")) {
        // An empty export is treated as unset; anything else must be a
        // valid count — garbage fails loudly rather than silently
        // running at the hardware default.
        if (*env != '\0')
            return parseThreadCount(env, "TIGR_THREADS");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
resolveThreads(unsigned requested)
{
    return requested > 0 ? requested : defaultThreads();
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(resolveThreads(threads))
{
    errors_.resize(threadCount_);
    workers_.reserve(threadCount_ - 1);
    for (unsigned id = 1; id < threadCount_; ++id)
        workers_.emplace_back(&ThreadPool::workerMain, this, id);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::run(const std::function<void(unsigned)> &job)
{
    if (active_.exchange(true, std::memory_order_acquire)) {
        throw std::logic_error(
            "tigr::par: nested ThreadPool::run() on the same pool");
    }
    struct Release
    {
        std::atomic<bool> &flag;
        ~Release() { flag.store(false, std::memory_order_release); }
    } release{active_};

    if (workers_.empty()) {
        job(0); // 1-thread pool: plain inline call, exceptions flow.
        return;
    }

    for (std::exception_ptr &error : errors_)
        error = nullptr;
    {
        std::lock_guard lock(mutex_);
        job_ = &job;
        pending_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    wake_.notify_all();

    try {
        job(0);
    } catch (...) {
        errors_[0] = std::current_exception();
    }

    {
        std::unique_lock lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
    }
    for (std::exception_ptr &error : errors_)
        if (error)
            std::rethrow_exception(error);
}

void
ThreadPool::workerMain(unsigned id)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *job = nullptr;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        try {
            (*job)(id);
        } catch (...) {
            errors_[id] = std::current_exception();
        }
        {
            std::lock_guard lock(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

} // namespace tigr::par
