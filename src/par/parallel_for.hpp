/**
 * @file
 * Chunked parallel loops with a determinism contract.
 *
 * Every loop here cuts [0, count) into ceil(count/grain) fixed chunks —
 * a decomposition that depends only on the item count and the grain,
 * never on the number of threads — and deals chunks round-robin to
 * workers. A caller that writes results into per-*chunk* slots and
 * reduces them in ascending chunk order therefore computes exactly the
 * same answer on 1, 2, or 64 threads; see docs/parallelism.md for the
 * full contract.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace tigr::par {

/** Default items per chunk. Large enough to amortize dispatch, small
 *  enough that real graphs produce many chunks per iteration. Fixed —
 *  results would otherwise depend on a tuning knob. */
inline constexpr std::uint64_t kDefaultGrain = 4096;

/** Number of chunks [0, count) decomposes into under @p grain. */
inline std::uint64_t
chunkCount(std::uint64_t count, std::uint64_t grain = kDefaultGrain)
{
    if (grain == 0)
        grain = 1;
    return (count + grain - 1) / grain;
}

/**
 * Invoke body(chunk, begin, end, worker) once per chunk of [0, count).
 * Chunks are dealt round-robin to the pool's workers; each worker runs
 * its chunks in ascending chunk order. A null pool (or a 1-thread
 * pool, or a single chunk) runs every chunk on the calling thread, in
 * chunk order — the same chunk structure, so the determinism contract
 * holds by construction.
 */
template <typename Body>
void
forEachChunk(ThreadPool *pool, std::uint64_t count, std::uint64_t grain,
             Body &&body)
{
    if (grain == 0)
        grain = 1;
    const std::uint64_t chunks = chunkCount(count, grain);
    if (chunks == 0)
        return;
    auto run_chunk = [&](std::uint64_t chunk, unsigned worker) {
        const std::uint64_t begin = chunk * grain;
        const std::uint64_t end = std::min(count, begin + grain);
        body(chunk, begin, end, worker);
    };
    const unsigned nthreads = pool ? pool->threads() : 1;
    if (nthreads <= 1 || chunks == 1) {
        for (std::uint64_t chunk = 0; chunk < chunks; ++chunk)
            run_chunk(chunk, 0);
        return;
    }
    pool->run([&](unsigned worker) {
        for (std::uint64_t chunk = worker; chunk < chunks;
             chunk += nthreads)
            run_chunk(chunk, worker);
    });
}

/** Element-wise wrapper: body(index, worker) for every index of
 *  [0, count), chunked as in forEachChunk. The body must only write to
 *  index-owned state (or per-worker scratch) to stay deterministic. */
template <typename Body>
void
parallelFor(ThreadPool *pool, std::uint64_t count, std::uint64_t grain,
            Body &&body)
{
    forEachChunk(pool, count, grain,
                 [&](std::uint64_t, std::uint64_t begin,
                     std::uint64_t end, unsigned worker) {
                     for (std::uint64_t i = begin; i < end; ++i)
                         body(i, worker);
                 });
}

/** One scratch slot per worker of a pool (slot 0 for a null pool).
 *  Index it with the worker id the loop body receives. */
template <typename T>
class PerWorker
{
  public:
    explicit PerWorker(const ThreadPool *pool)
        : slots_(pool ? pool->threads() : 1)
    {
    }

    unsigned size() const
    {
        return static_cast<unsigned>(slots_.size());
    }
    T &operator[](unsigned worker) { return slots_[worker]; }
    const T &operator[](unsigned worker) const
    {
        return slots_[worker];
    }

  private:
    std::vector<T> slots_;
};

/**
 * In-place exclusive prefix sum: values[i] becomes the sum of all
 * values[j], j < i. Parallelized as per-chunk partial sums, a serial
 * scan over the chunk totals, and a per-chunk rebase — exact for
 * integral T at any thread count.
 */
template <typename T>
void
chunkedExclusiveScan(ThreadPool *pool, std::vector<T> &values,
                     std::uint64_t grain = kDefaultGrain)
{
    const std::uint64_t n = values.size();
    if (n == 0)
        return;
    const std::uint64_t chunks = chunkCount(n, grain);
    std::vector<T> chunk_total(chunks);
    forEachChunk(pool, n, grain,
                 [&](std::uint64_t chunk, std::uint64_t begin,
                     std::uint64_t end, unsigned) {
                     T sum{};
                     for (std::uint64_t i = begin; i < end; ++i)
                         sum += values[i];
                     chunk_total[chunk] = sum;
                 });
    T running{};
    for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
        T next = running + chunk_total[chunk];
        chunk_total[chunk] = running;
        running = next;
    }
    forEachChunk(pool, n, grain,
                 [&](std::uint64_t chunk, std::uint64_t begin,
                     std::uint64_t end, unsigned) {
                     T acc = chunk_total[chunk];
                     for (std::uint64_t i = begin; i < end; ++i) {
                         T next = acc + values[i];
                         values[i] = acc;
                         acc = next;
                     }
                 });
}

/**
 * Deterministic parallel compaction: collect every index i of
 * [0, count) with pred(i) true into @p out, in ascending order. Runs
 * the classic count-then-prefix-scan scheme over the fixed chunk
 * decomposition — per-chunk match counts, an exclusive scan fixing
 * each chunk's output offset, and a parallel fill at exact slots — so
 * the output vector is bit-identical at any thread count. @p pred must
 * be pure (it is evaluated twice per index, concurrently).
 */
template <typename Out, typename Pred>
void
chunkedCompact(ThreadPool *pool, std::uint64_t count, Pred &&pred,
               std::vector<Out> &out,
               std::uint64_t grain = kDefaultGrain)
{
    const std::uint64_t chunks = chunkCount(count, grain);
    // One slot per chunk plus a sentinel: after the exclusive scan the
    // sentinel holds the total match count.
    std::vector<std::uint64_t> offsets(chunks + 1, 0);
    forEachChunk(pool, count, grain,
                 [&](std::uint64_t chunk, std::uint64_t begin,
                     std::uint64_t end, unsigned) {
                     std::uint64_t found = 0;
                     for (std::uint64_t i = begin; i < end; ++i)
                         found += pred(i) ? 1 : 0;
                     offsets[chunk] = found;
                 });
    chunkedExclusiveScan(pool, offsets, grain);
    out.resize(offsets.back());
    forEachChunk(pool, count, grain,
                 [&](std::uint64_t chunk, std::uint64_t begin,
                     std::uint64_t end, unsigned) {
                     std::uint64_t slot = offsets[chunk];
                     for (std::uint64_t i = begin; i < end; ++i)
                         if (pred(i))
                             out[slot++] = static_cast<Out>(i);
                 });
}

} // namespace tigr::par
