/**
 * @file
 * Strict positive-integer parsing shared by every numeric setting:
 * CLI flags, script arguments, and environment overrides all accept
 * exactly the same grammar (a plain decimal integer >= 1) and produce
 * the same shaped error message, instead of each call site hand-rolling
 * a subtly different strtoul wrapper.
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace tigr::par {

/**
 * Parse @p text as a plain decimal integer in [1, @p max]. Rejects an
 * empty string, any sign, non-digit characters (including trailing
 * text like "1x"), 0, and values beyond @p max — overflow past
 * uint64_t is caught too, not wrapped. @p origin names the setting
 * ("--k", "TIGR_THREADS") in the error message.
 *
 * @throws std::invalid_argument explaining what was given and what is
 *         accepted.
 */
std::uint64_t parsePositiveInt(std::string_view text,
                               std::string_view origin,
                               std::uint64_t max = UINT64_MAX);

} // namespace tigr::par
