/**
 * @file
 * The host execution backend: a small persistent thread pool that the
 * engines, transforms, and oracles share.
 *
 * The pool intentionally exposes only one primitive — run(job), which
 * invokes job(worker) once per worker, with the caller participating as
 * worker 0 — because every parallel loop in the code base is built on
 * *chunked static partitioning* (see parallel_for.hpp). That discipline
 * is what makes every parallelized result bit-identical across thread
 * counts: work is decomposed into chunks whose structure depends only
 * on the input, never on how many threads execute them.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace tigr::par {

/** Upper bound on a requested thread count; requests beyond it are
 *  configuration errors, not capacity hints. */
inline constexpr unsigned kMaxThreads = 1024;

/**
 * Parse a thread-count string strictly: a plain decimal integer in
 * [1, kMaxThreads]. Rejects 0, negatives, garbage, trailing text, and
 * overflow — `@p origin` names the setting ("TIGR_THREADS", "--threads")
 * in the error message.
 *
 * @throws std::invalid_argument with a message explaining what was
 *         given and what is accepted.
 */
unsigned parseThreadCount(std::string_view text, std::string_view origin);

/** Thread count used when nothing is requested: $TIGR_THREADS when set
 *  (and non-empty), otherwise std::thread::hardware_concurrency()
 *  (never 0).
 *  @throws std::invalid_argument when TIGR_THREADS is set to 0, a
 *          negative number, or anything that is not a plain integer in
 *          [1, kMaxThreads] — a misconfigured environment fails loudly
 *          instead of silently falling back to the hardware default. */
unsigned defaultThreads();

/** Resolve a requested thread count: a positive request wins verbatim;
 *  0 defers to defaultThreads() (and thereby the TIGR_THREADS
 *  override). Always >= 1. */
unsigned resolveThreads(unsigned requested);

/**
 * Persistent worker pool. A pool of T threads owns T-1 background
 * workers; the thread calling run() acts as worker 0, so a 1-thread
 * pool spawns nothing and runs the job inline.
 *
 * run() is not reentrant: calling it from inside a job on the same pool
 * throws std::logic_error (nested parallelism would deadlock the
 * generation barrier). Exceptions thrown by workers are captured and
 * the one from the lowest worker index is rethrown to the caller after
 * every worker has finished.
 */
class ThreadPool
{
  public:
    /** @param threads Pool size; 0 = resolveThreads(0) (the
     *  TIGR_THREADS / hardware default). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers including the caller (>= 1). */
    unsigned threads() const { return threadCount_; }

    /** Invoke job(worker) once per worker id in [0, threads()), the
     *  caller executing worker 0. Returns after every worker finished;
     *  rethrows the lowest-indexed captured worker exception. */
    void run(const std::function<void(unsigned)> &job);

    /** True while a run() on this pool is in flight (used by the
     *  nested-call guard). */
    bool inParallelRegion() const
    {
        return active_.load(std::memory_order_relaxed);
    }

  private:
    void workerMain(unsigned id);

    unsigned threadCount_ = 1;
    std::vector<std::thread> workers_;
    std::vector<std::exception_ptr> errors_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(unsigned)> *job_ = nullptr;
    std::uint64_t generation_ = 0;
    unsigned pending_ = 0;
    bool stop_ = false;
    std::atomic<bool> active_{false};
};

} // namespace tigr::par
