#include "hardwired/hardwired.hpp"

namespace tigr::hardwired {

namespace {

/** Chase parent pointers to the representative (host semantics of the
 *  GPU's intermediate pointer jumping). */
NodeId
findRoot(const std::vector<NodeId> &parent, NodeId v)
{
    while (parent[v] != v)
        v = parent[v];
    return v;
}

} // namespace

HardwiredResult<NodeId>
eclCc(const graph::Csr &graph, sim::WarpSimulator &sim)
{
    const NodeId n = graph.numNodes();
    HardwiredResult<NodeId> result;
    result.values.resize(n);
    for (NodeId v = 0; v < n; ++v)
        result.values[v] = v;
    std::vector<NodeId> &parent = result.values;

    bool changed = true;
    while (changed) {
        changed = false;

        // Hooking kernel: edge-parallel; attach the larger root under
        // the smaller one (min-id wins, so labels match the oracle).
        result.stats += sim.launch(
            graph.numEdges(), [&](std::uint64_t e) {
                // Reconstruct the source of edge e via the unit shape
                // only for accounting; semantics use the arrays.
                NodeId dst = graph.edgeTarget(e);
                // Find the edge's source by scanning is wasteful; the
                // simulator only needs the access shape, so semantics
                // iterate via a captured cursor below.
                (void)dst;
                sim::ThreadWork work;
                work.instructions = 6; // two finds + CAS hook
                work.edgeCount = 1;
                work.edgeStart = e;
                work.edgeStride = 1;
                // After the first round almost every find hits the
                // already-compressed (cached) root: one scattered
                // access per edge on average.
                work.scatterAccessesPerEdge = 1;
                return work;
            });
        // Semantics of the hooking pass (host-exact, same order).
        for (NodeId v = 0; v < n; ++v) {
            for (EdgeIndex e = graph.edgeBegin(v);
                 e < graph.edgeEnd(v); ++e) {
                NodeId ru = findRoot(parent, v);
                NodeId rv = findRoot(parent, graph.edgeTarget(e));
                if (ru == rv)
                    continue;
                if (ru > rv)
                    std::swap(ru, rv);
                parent[rv] = ru;
                changed = true;
            }
        }

        // Compression kernel: node-parallel pointer jumping.
        result.stats += sim.launch(n, [&](std::uint64_t v) {
            parent[v] = findRoot(parent, static_cast<NodeId>(v));
            sim::ThreadWork work;
            work.instructions = 4;
            work.edgeCount = 1;
            work.edgeStart = v; // coalesced parent-array sweep
            work.edgeStride = 1;
            work.bytesPerEdge = 4;
            return work;
        });

        ++result.iterations;
    }
    return result;
}

} // namespace tigr::hardwired
