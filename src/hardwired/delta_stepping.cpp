#include "hardwired/hardwired.hpp"

#include <algorithm>

namespace tigr::hardwired {

namespace {

/** ThreadWork of a full-row relaxation thread. */
sim::ThreadWork
rowWork(const graph::Csr &graph, NodeId v)
{
    sim::ThreadWork work;
    const auto degree = static_cast<std::uint32_t>(graph.degree(v));
    work.instructions = 4 + 3 * degree;
    work.edgeCount = degree;
    work.edgeStart = graph.edgeBegin(v);
    work.edgeStride = 1;
    return work;
}

} // namespace

HardwiredResult<Dist>
deltaSteppingSssp(const graph::Csr &graph, NodeId source, Weight delta,
                  sim::WarpSimulator &sim)
{
    const NodeId n = graph.numNodes();
    HardwiredResult<Dist> result;
    result.values.assign(n, kInfDist);
    if (n == 0)
        return result;

    if (delta == 0) {
        // Heuristic: twice the mean edge weight (Davidson et al. tune
        // per graph; this lands in their reported sweet spot).
        std::uint64_t total = 0;
        for (Weight w : graph.weights())
            total += w;
        delta = graph.numEdges() == 0
                    ? 1
                    : static_cast<Weight>(std::max<std::uint64_t>(
                          1, 2 * total / graph.numEdges()));
    }

    std::vector<Dist> &dist = result.values;
    dist[source] = 0;

    std::vector<std::vector<NodeId>> buckets(1);
    buckets[0].push_back(source);
    auto bucketOf = [delta](Dist d) {
        return static_cast<std::size_t>(d / delta);
    };
    auto place = [&](NodeId v) {
        std::size_t b = bucketOf(dist[v]);
        if (b >= buckets.size())
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };

    // Relax the light (w <= delta) or heavy edges of a request set.
    auto relax = [&](const std::vector<NodeId> &request, bool light) {
        std::vector<NodeId> improved;
        result.stats += sim.launch(
            request.size(), [&](std::uint64_t tid) {
                NodeId v = request[tid];
                for (EdgeIndex e = graph.edgeBegin(v);
                     e < graph.edgeEnd(v); ++e) {
                    Weight w = graph.edgeWeight(e);
                    if ((w <= delta) != light)
                        continue;
                    NodeId dst = graph.edgeTarget(e);
                    Dist candidate = saturatingAdd(dist[v], w);
                    if (candidate < dist[dst]) {
                        dist[dst] = candidate;
                        improved.push_back(dst);
                    }
                }
                return rowWork(graph, v);
            });
        ++result.iterations;
        return improved;
    };

    for (std::size_t i = 0; i < buckets.size(); ++i) {
        std::vector<NodeId> settled;
        // Light-edge phases: nodes may re-enter bucket i.
        while (!buckets[i].empty()) {
            std::vector<NodeId> request;
            request.swap(buckets[i]);
            // Skip stale entries whose distance moved to a later
            // bucket (or was improved below this one already).
            std::erase_if(request, [&](NodeId v) {
                return dist[v] == kInfDist || bucketOf(dist[v]) != i;
            });
            if (request.empty())
                break;
            settled.insert(settled.end(), request.begin(),
                           request.end());
            for (NodeId v : relax(request, /*light=*/true))
                place(v);
        }
        if (settled.empty())
            continue;
        // One heavy-edge phase over everything settled in bucket i.
        std::sort(settled.begin(), settled.end());
        settled.erase(std::unique(settled.begin(), settled.end()),
                      settled.end());
        for (NodeId v : relax(settled, /*light=*/false))
            place(v);
    }
    return result;
}

} // namespace tigr::hardwired
