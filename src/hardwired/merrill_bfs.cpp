#include "hardwired/hardwired.hpp"

namespace tigr::hardwired {

HardwiredResult<Dist>
merrillBfs(const graph::Csr &graph, NodeId source,
           sim::WarpSimulator &sim)
{
    const NodeId n = graph.numNodes();
    HardwiredResult<Dist> result;
    result.values.assign(n, kInfDist);
    if (n == 0)
        return result;

    std::vector<Dist> &depth = result.values;
    depth[source] = 0;
    std::vector<NodeId> frontier{source};

    while (!frontier.empty()) {
        const Dist level = result.iterations;

        // Setup kernel: per-node degree scan / prefix sum that load
        // balances the expansion (cheap, frontier-sized).
        result.stats += sim.launch(
            frontier.size(), [&](std::uint64_t tid) {
                (void)tid;
                sim::ThreadWork work;
                work.instructions = 3;
                return work;
            });

        // Expansion kernel: perfectly edge-parallel gather — one
        // thread per frontier edge, consecutive threads read
        // consecutive edge slots (Merrill's fine-grained gather).
        std::vector<std::pair<NodeId, EdgeIndex>> edges;
        for (NodeId v : frontier)
            for (EdgeIndex e = graph.edgeBegin(v);
                 e < graph.edgeEnd(v); ++e)
                edges.emplace_back(v, e);

        std::vector<NodeId> next;
        result.stats += sim.launch(
            edges.size(), [&](std::uint64_t tid) {
                auto [v, e] = edges[tid];
                (void)v;
                NodeId dst = graph.edgeTarget(e);
                if (depth[dst] == kInfDist) {
                    depth[dst] = level + 1;
                    next.push_back(dst);
                }
                sim::ThreadWork work;
                work.instructions = 4; // status probe + enqueue
                work.edgeCount = 1;
                work.edgeStart = e;
                work.edgeStride = 1;
                return work;
            });

        frontier.swap(next);
        ++result.iterations;
    }
    return result;
}

} // namespace tigr::hardwired
