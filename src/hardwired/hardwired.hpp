/**
 * @file
 * "Hardwired" specialized GPU graph algorithms — the low-level
 * single-primitive implementations the paper's methodology compares
 * against (Section 6.1): Davidson et al.'s delta-stepping SSSP [11],
 * Merrill et al.'s scan-based BFS [44], ECL-CC [25], and Elsen &
 * Vaidyanathan's gather-apply-scatter PageRank [13].
 *
 * Each runs its published kernel structure on the WarpSimulator, so
 * they are directly comparable with the general frameworks in the
 * hardwired_comparison benchmark.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "sim/warp_simulator.hpp"

namespace tigr::hardwired {

/** Result of a hardwired run: values plus simulator accounting. */
template <typename Value>
struct HardwiredResult
{
    std::vector<Value> values;   ///< One value per node.
    unsigned iterations = 0;     ///< Phases / levels / rounds executed.
    sim::KernelStats stats;      ///< Aggregated simulator counters.
};

/**
 * Delta-stepping SSSP (Davidson et al. [11], Meyer & Sanders [45]):
 * nodes are bucketed by floor(dist/delta); each bucket settles by
 * repeated light-edge (weight <= delta) relaxations, then releases its
 * heavy edges once. delta = 0 picks a heuristic (twice the mean edge
 * weight).
 */
HardwiredResult<Dist> deltaSteppingSssp(const graph::Csr &graph,
                                        NodeId source, Weight delta,
                                        sim::WarpSimulator &sim);

/**
 * Scan-based BFS (Merrill et al. [44]): level-synchronous expansion
 * with a prefix-sum gather per level, so edge work is perfectly load
 * balanced and status checks are cheap bitmask probes.
 */
HardwiredResult<Dist> merrillBfs(const graph::Csr &graph,
                                 NodeId source,
                                 sim::WarpSimulator &sim);

/**
 * ECL-CC (Jaiganesh & Burtscher [25]): connected components by
 * min-id hooking over the edges plus pointer-jumping compression,
 * converging in a handful of rounds. Pass a symmetrized graph for the
 * usual weak connectivity; labels are the component's minimum node id
 * (comparable with ref::connectedComponents).
 */
HardwiredResult<NodeId> eclCc(const graph::Csr &graph,
                              sim::WarpSimulator &sim);

/** Parameters for elsenPagerank. */
struct GasPrParams
{
    double damping = 0.85;    ///< Damping factor.
    unsigned iterations = 20; ///< Synchronous rounds.
};

/**
 * Gather-apply-scatter PageRank (Elsen & Vaidyanathan's vertexAPI2
 * [13]): an edge-parallel gather over incoming edges followed by a
 * node-parallel apply, two kernels per round.
 */
HardwiredResult<Rank> elsenPagerank(const graph::Csr &graph,
                                    const GasPrParams &params,
                                    sim::WarpSimulator &sim);

} // namespace tigr::hardwired
