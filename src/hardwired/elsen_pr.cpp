#include "hardwired/hardwired.hpp"

namespace tigr::hardwired {

HardwiredResult<Rank>
elsenPagerank(const graph::Csr &graph, const GasPrParams &params,
              sim::WarpSimulator &sim)
{
    const NodeId n = graph.numNodes();
    HardwiredResult<Rank> result;
    result.values.assign(n, n == 0 ? 0.0 : 1.0 / n);
    if (n == 0)
        return result;

    const graph::Csr reversed = graph.reversed();
    std::vector<EdgeIndex> outdeg(n);
    for (NodeId v = 0; v < n; ++v)
        outdeg[v] = graph.degree(v);

    std::vector<Rank> accumulator(n);
    const Rank base = (1.0 - params.damping) / n;

    for (unsigned round = 0; round < params.iterations; ++round) {
        std::fill(accumulator.begin(), accumulator.end(), 0.0);

        // Gather kernel: one thread per incoming edge.
        NodeId cursor_node = 0;
        result.stats += sim.launch(
            reversed.numEdges(), [&](std::uint64_t e) {
                // Advance the owning-node cursor to edge e; launches
                // visit tids in order, so this is O(1) amortized.
                while (reversed.edgeEnd(cursor_node) <= e)
                    ++cursor_node;
                NodeId u = reversed.edgeTarget(e);
                accumulator[cursor_node] +=
                    result.values[u] / static_cast<Rank>(outdeg[u]);

                sim::ThreadWork work;
                work.instructions = 3;
                work.edgeCount = 1;
                work.edgeStart = e;
                work.edgeStride = 1;
                return work;
            });

        // Apply kernel: node-parallel rank update (coalesced).
        result.stats += sim.launch(n, [&](std::uint64_t v) {
            result.values[v] =
                base + params.damping * accumulator[v];
            sim::ThreadWork work;
            work.instructions = 4;
            work.edgeCount = 1;
            work.edgeStart = v;
            work.edgeStride = 1;
            work.bytesPerEdge = 8;
            work.scatterAccessesPerEdge = 0; // sequential sweep
            return work;
        });

        ++result.iterations;
    }
    return result;
}

} // namespace tigr::hardwired
