#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "fault/fault.hpp"

namespace tigr::dynamic {

namespace {

[[noreturn]] void
rejectBatch(MutationErrorKind kind, std::size_t index,
            const Mutation &mutation, const std::string &why)
{
    throw MutationError(
        kind, index,
        "tigr: mutation " + std::to_string(index) + " (" +
            std::string(mutationKindName(mutation.kind)) + " " +
            std::to_string(mutation.src) + "->" +
            std::to_string(mutation.dst) + "): " + why);
}

} // namespace

DynamicGraph::DynamicGraph(const graph::Csr &source)
{
    const NodeId n = source.numNodes();
    begins_.assign(source.rowOffsets().begin(),
                   source.rowOffsets().end() - (n == 0 ? 0 : 1));
    if (n == 0)
        begins_.clear();
    degrees_.resize(n);
    caps_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        degrees_[v] = source.degree(v);
        caps_[v] = degrees_[v];
    }
    targets_ = source.colIndices();
    weights_ = source.weights();
    liveEdges_ = source.numEdges();
}

double
DynamicGraph::slackRatio() const
{
    const EdgeIndex slots = arenaSlots();
    if (slots == 0)
        return 0.0;
    return static_cast<double>(slackSlots()) /
           static_cast<double>(slots);
}

EpochDelta
DynamicGraph::apply(const MutationBatch &batch)
{
    const NodeId n = numNodes();

    // Phase 1: validate the whole batch against the projected edge
    // multiset before touching anything. liveCount(src, dst) is the
    // number of live (src, dst) instances now; the running delta map
    // projects in-batch inserts and deletes forward.
    std::map<std::pair<NodeId, NodeId>, std::int64_t> delta;
    const auto live_count = [&](NodeId src, NodeId dst) {
        std::int64_t count = 0;
        for (NodeId t : outNeighbors(src))
            if (t == dst)
                ++count;
        return count;
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Mutation &m = batch[i];
        if (m.src >= n)
            rejectBatch(MutationErrorKind::SourceOutOfRange, i, m,
                        "source node out of range (graph has " +
                            std::to_string(n) + " nodes)");
        if (m.dst >= n)
            rejectBatch(MutationErrorKind::TargetOutOfRange, i, m,
                        "target node out of range (graph has " +
                            std::to_string(n) + " nodes)");
        const auto key = std::make_pair(m.src, m.dst);
        switch (m.kind) {
          case MutationKind::InsertEdge:
            ++delta[key];
            break;
          case MutationKind::DeleteEdge:
            if (live_count(m.src, m.dst) + delta[key] <= 0)
                rejectBatch(MutationErrorKind::MissingEdge, i, m,
                            "no such edge to delete");
            --delta[key];
            break;
          case MutationKind::UpdateWeight:
            if (live_count(m.src, m.dst) + delta[key] <= 0)
                rejectBatch(MutationErrorKind::MissingEdge, i, m,
                            "no such edge to reweight");
            break;
        }
    }

    // Validation passed; an injected fault here still leaves the graph
    // bit-for-bit unchanged.
    TIGR_FAULT_POINT(fault::Site::MutationApply);

    // Phase 2: apply in order, recording per-vertex degree deltas.
    std::map<NodeId, EdgeIndex> old_degrees;
    EpochDelta result;
    for (const Mutation &m : batch) {
        old_degrees.emplace(m.src, degrees_[m.src]);
        switch (m.kind) {
          case MutationKind::InsertEdge: {
            if (degrees_[m.src] == caps_[m.src])
                relocate(m.src, degrees_[m.src] + 1);
            const EdgeIndex slot = begins_[m.src] + degrees_[m.src];
            targets_[slot] = m.dst;
            weights_[slot] = m.weight;
            ++degrees_[m.src];
            ++liveEdges_;
            ++result.inserts;
            break;
          }
          case MutationKind::DeleteEdge: {
            const EdgeIndex begin = begins_[m.src];
            const EdgeIndex end = begin + degrees_[m.src];
            EdgeIndex e = begin;
            while (targets_[e] != m.dst)
                ++e;
            // Shift the remainder left: storage order within the
            // segment stays stable, matching what Csr::fromCoo of the
            // surgically edited edge list would produce.
            for (EdgeIndex j = e; j + 1 < end; ++j) {
                targets_[j] = targets_[j + 1];
                weights_[j] = weights_[j + 1];
            }
            --degrees_[m.src];
            --liveEdges_;
            ++result.deletes;
            break;
          }
          case MutationKind::UpdateWeight: {
            EdgeIndex e = begins_[m.src];
            while (targets_[e] != m.dst)
                ++e;
            weights_[e] = m.weight;
            ++result.reweights;
            break;
          }
        }
    }

    ++epoch_;
    result.epoch = epoch_;
    result.touched.reserve(old_degrees.size());
    for (const auto &[v, old_degree] : old_degrees) {
        TouchedVertex touched;
        touched.vertex = v;
        touched.oldDegree = old_degree;
        touched.newDegree = degrees_[v];
        result.touched.push_back(touched);
    }
    return result;
}

void
DynamicGraph::relocate(NodeId v, EdgeIndex need)
{
    // Growth slack proportional to the segment so a vertex absorbing a
    // stream of inserts relocates O(log d) times, with a small floor so
    // low-degree vertices do not relocate on every insert.
    const EdgeIndex new_cap =
        need + std::max<EdgeIndex>(4, need / 2);
    const EdgeIndex tail = arenaSlots();
    targets_.resize(tail + new_cap);
    weights_.resize(tail + new_cap);
    const EdgeIndex old_begin = begins_[v];
    const EdgeIndex d = degrees_[v];
    std::copy_n(targets_.begin() + old_begin, d,
                targets_.begin() + tail);
    std::copy_n(weights_.begin() + old_begin, d,
                weights_.begin() + tail);
    begins_[v] = tail;
    caps_[v] = new_cap;
    // The old block stays behind as dead slack until compact().
}

bool
DynamicGraph::shouldCompact() const
{
    return slackSlots() >= 64 && slackSlots() * 2 > arenaSlots();
}

EdgeIndex
DynamicGraph::compact()
{
    TIGR_FAULT_POINT(fault::Site::MutationCompact);
    const EdgeIndex reclaimed = slackSlots();
    std::vector<NodeId> targets(liveEdges_);
    std::vector<Weight> weights(liveEdges_);
    EdgeIndex cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        const EdgeIndex d = degrees_[v];
        std::copy_n(targets_.begin() + begins_[v], d,
                    targets.begin() + cursor);
        std::copy_n(weights_.begin() + begins_[v], d,
                    weights.begin() + cursor);
        begins_[v] = cursor;
        caps_[v] = d;
        cursor += d;
    }
    targets_ = std::move(targets);
    weights_ = std::move(weights);
    ++compactions_;
    return reclaimed;
}

graph::Csr
DynamicGraph::toCsr() const
{
    std::vector<EdgeIndex> offsets(numNodes() + 1, 0);
    std::vector<NodeId> targets(liveEdges_);
    std::vector<Weight> weights(liveEdges_);
    EdgeIndex cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        offsets[v] = cursor;
        const EdgeIndex d = degrees_[v];
        std::copy_n(targets_.begin() + begins_[v], d,
                    targets.begin() + cursor);
        std::copy_n(weights_.begin() + begins_[v], d,
                    weights.begin() + cursor);
        cursor += d;
    }
    offsets[numNodes()] = cursor;
    return graph::Csr(std::move(offsets), std::move(targets),
                      std::move(weights));
}

} // namespace tigr::dynamic
