#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "fault/fault.hpp"

namespace tigr::dynamic {

namespace {

[[noreturn]] void
rejectBatch(MutationErrorKind kind, std::size_t index,
            const Mutation &mutation, const std::string &why)
{
    throw MutationError(
        kind, index,
        "tigr: mutation " + std::to_string(index) + " (" +
            std::string(mutationKindName(mutation.kind)) + " " +
            std::to_string(mutation.src) + "->" +
            std::to_string(mutation.dst) + "): " + why);
}

} // namespace

DynamicGraph::DynamicGraph(const graph::Csr &source)
{
    const NodeId n = source.numNodes();
    begins_.assign(source.rowOffsets().begin(),
                   source.rowOffsets().end() - (n == 0 ? 0 : 1));
    if (n == 0)
        begins_.clear();
    degrees_.resize(n);
    caps_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        degrees_[v] = source.degree(v);
        caps_[v] = degrees_[v];
    }
    targets_ = source.colIndices();
    weights_ = source.weights();
    liveEdges_ = source.numEdges();

    // The reverse arena starts as the tight counting-sorted reversal:
    // in-segments ordered by source id, forward slot order within a
    // source — the invariant every mutation preserves.
    const graph::Csr rev = source.reversed();
    inBegins_.assign(rev.rowOffsets().begin(),
                     rev.rowOffsets().end() - (n == 0 ? 0 : 1));
    if (n == 0)
        inBegins_.clear();
    inDegrees_.resize(n);
    inCaps_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        inDegrees_[v] = rev.degree(v);
        inCaps_[v] = inDegrees_[v];
    }
    inSources_ = rev.colIndices();
    inWeights_ = rev.weights();
}

double
DynamicGraph::slackRatio() const
{
    const EdgeIndex slots = arenaSlots();
    if (slots == 0)
        return 0.0;
    return static_cast<double>(slackSlots()) /
           static_cast<double>(slots);
}

EpochDelta
DynamicGraph::apply(const MutationBatch &batch)
{
    const NodeId n = numNodes();

    // Phase 1: validate the whole batch against the projected edge
    // multiset before touching anything. liveCount(src, dst) is the
    // number of live (src, dst) instances now; the running delta map
    // projects in-batch inserts and deletes forward.
    std::map<std::pair<NodeId, NodeId>, std::int64_t> delta;
    const auto live_count = [&](NodeId src, NodeId dst) {
        std::int64_t count = 0;
        for (NodeId t : outNeighbors(src))
            if (t == dst)
                ++count;
        return count;
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Mutation &m = batch[i];
        if (m.src >= n)
            rejectBatch(MutationErrorKind::SourceOutOfRange, i, m,
                        "source node out of range (graph has " +
                            std::to_string(n) + " nodes)");
        if (m.dst >= n)
            rejectBatch(MutationErrorKind::TargetOutOfRange, i, m,
                        "target node out of range (graph has " +
                            std::to_string(n) + " nodes)");
        const auto key = std::make_pair(m.src, m.dst);
        switch (m.kind) {
          case MutationKind::InsertEdge:
            ++delta[key];
            break;
          case MutationKind::DeleteEdge:
            if (live_count(m.src, m.dst) + delta[key] <= 0)
                rejectBatch(MutationErrorKind::MissingEdge, i, m,
                            "no such edge to delete");
            --delta[key];
            break;
          case MutationKind::UpdateWeight:
            if (live_count(m.src, m.dst) + delta[key] <= 0)
                rejectBatch(MutationErrorKind::MissingEdge, i, m,
                            "no such edge to reweight");
            break;
        }
    }

    // Validation passed; an injected fault here still leaves the graph
    // bit-for-bit unchanged.
    TIGR_FAULT_POINT(fault::Site::MutationApply);

    // Phase 2: apply in order, recording per-vertex degree deltas for
    // both arenas. Each mutation mirrors into the reverse arena in the
    // same pass, preserving the counting-sort in-segment order.
    std::map<NodeId, EdgeIndex> old_degrees;
    std::map<NodeId, EdgeIndex> old_in_degrees;
    EpochDelta result;
    for (const Mutation &m : batch) {
        old_degrees.emplace(m.src, degrees_[m.src]);
        old_in_degrees.emplace(m.dst, inDegrees_[m.dst]);
        switch (m.kind) {
          case MutationKind::InsertEdge: {
            if (degrees_[m.src] == caps_[m.src])
                relocate(m.src, degrees_[m.src] + 1);
            const EdgeIndex slot = begins_[m.src] + degrees_[m.src];
            targets_[slot] = m.dst;
            weights_[slot] = m.weight;
            ++degrees_[m.src];

            // Reverse mirror: the new forward edge is last in its
            // segment, so among equal sources it ranks last — insert
            // at the upper bound of m.src in the sorted in-segment.
            if (inDegrees_[m.dst] == inCaps_[m.dst])
                relocateIn(m.dst, inDegrees_[m.dst] + 1);
            const EdgeIndex ib = inBegins_[m.dst];
            const EdgeIndex id = inDegrees_[m.dst];
            EdgeIndex pos = ib;
            while (pos < ib + id && inSources_[pos] <= m.src)
                ++pos;
            for (EdgeIndex j = ib + id; j > pos; --j) {
                inSources_[j] = inSources_[j - 1];
                inWeights_[j] = inWeights_[j - 1];
            }
            inSources_[pos] = m.src;
            inWeights_[pos] = m.weight;
            ++inDegrees_[m.dst];

            ++liveEdges_;
            ++result.inserts;
            break;
          }
          case MutationKind::DeleteEdge: {
            const EdgeIndex begin = begins_[m.src];
            const EdgeIndex end = begin + degrees_[m.src];
            EdgeIndex e = begin;
            while (targets_[e] != m.dst)
                ++e;
            // Shift the remainder left: storage order within the
            // segment stays stable, matching what Csr::fromCoo of the
            // surgically edited edge list would produce.
            for (EdgeIndex j = e; j + 1 < end; ++j) {
                targets_[j] = targets_[j + 1];
                weights_[j] = weights_[j + 1];
            }
            --degrees_[m.src];

            // Reverse mirror: the forward delete removed the first
            // (src, dst) instance, which is the first in-entry with
            // this source (equal sources keep forward slot order).
            const EdgeIndex ib = inBegins_[m.dst];
            const EdgeIndex iend = ib + inDegrees_[m.dst];
            EdgeIndex ie = ib;
            while (inSources_[ie] != m.src)
                ++ie;
            for (EdgeIndex j = ie; j + 1 < iend; ++j) {
                inSources_[j] = inSources_[j + 1];
                inWeights_[j] = inWeights_[j + 1];
            }
            --inDegrees_[m.dst];

            --liveEdges_;
            ++result.deletes;
            break;
          }
          case MutationKind::UpdateWeight: {
            EdgeIndex e = begins_[m.src];
            while (targets_[e] != m.dst)
                ++e;
            weights_[e] = m.weight;

            // Reverse mirror of the forward first-match rule.
            EdgeIndex ie = inBegins_[m.dst];
            while (inSources_[ie] != m.src)
                ++ie;
            inWeights_[ie] = m.weight;

            ++result.reweights;
            break;
          }
        }
    }

    ++epoch_;
    result.epoch = epoch_;
    result.touched.reserve(old_degrees.size());
    for (const auto &[v, old_degree] : old_degrees) {
        TouchedVertex touched;
        touched.vertex = v;
        touched.oldDegree = old_degree;
        touched.newDegree = degrees_[v];
        result.touched.push_back(touched);
    }
    result.touchedIn.reserve(old_in_degrees.size());
    for (const auto &[v, old_degree] : old_in_degrees) {
        TouchedVertex touched;
        touched.vertex = v;
        touched.oldDegree = old_degree;
        touched.newDegree = inDegrees_[v];
        result.touchedIn.push_back(touched);
    }
    return result;
}

void
DynamicGraph::relocate(NodeId v, EdgeIndex need)
{
    // Growth slack proportional to the segment so a vertex absorbing a
    // stream of inserts relocates O(log d) times, with a small floor so
    // low-degree vertices do not relocate on every insert.
    const EdgeIndex new_cap =
        need + std::max<EdgeIndex>(4, need / 2);
    const EdgeIndex tail = arenaSlots();
    targets_.resize(tail + new_cap);
    weights_.resize(tail + new_cap);
    const EdgeIndex old_begin = begins_[v];
    const EdgeIndex d = degrees_[v];
    std::copy_n(targets_.begin() + old_begin, d,
                targets_.begin() + tail);
    std::copy_n(weights_.begin() + old_begin, d,
                weights_.begin() + tail);
    begins_[v] = tail;
    caps_[v] = new_cap;
    // The old block stays behind as dead slack until compact().
}

void
DynamicGraph::relocateIn(NodeId v, EdgeIndex need)
{
    const EdgeIndex new_cap =
        need + std::max<EdgeIndex>(4, need / 2);
    const EdgeIndex tail = inArenaSlots();
    inSources_.resize(tail + new_cap);
    inWeights_.resize(tail + new_cap);
    const EdgeIndex old_begin = inBegins_[v];
    const EdgeIndex d = inDegrees_[v];
    std::copy_n(inSources_.begin() + old_begin, d,
                inSources_.begin() + tail);
    std::copy_n(inWeights_.begin() + old_begin, d,
                inWeights_.begin() + tail);
    inBegins_[v] = tail;
    inCaps_[v] = new_cap;
}

bool
DynamicGraph::shouldCompact() const
{
    return slackSlots() >= 64 && slackSlots() * 2 > arenaSlots();
}

EdgeIndex
DynamicGraph::compact()
{
    TIGR_FAULT_POINT(fault::Site::MutationCompact);
    const EdgeIndex reclaimed = slackSlots();
    std::vector<NodeId> targets(liveEdges_);
    std::vector<Weight> weights(liveEdges_);
    EdgeIndex cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        const EdgeIndex d = degrees_[v];
        std::copy_n(targets_.begin() + begins_[v], d,
                    targets.begin() + cursor);
        std::copy_n(weights_.begin() + begins_[v], d,
                    weights.begin() + cursor);
        begins_[v] = cursor;
        caps_[v] = d;
        cursor += d;
    }
    targets_ = std::move(targets);
    weights_ = std::move(weights);

    // The reverse arena compacts in the same step, under the same
    // fault point and the same compaction counter — both virtualizers
    // rebase off one compactions() tick.
    std::vector<NodeId> sources(liveEdges_);
    std::vector<Weight> in_weights(liveEdges_);
    cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        const EdgeIndex d = inDegrees_[v];
        std::copy_n(inSources_.begin() + inBegins_[v], d,
                    sources.begin() + cursor);
        std::copy_n(inWeights_.begin() + inBegins_[v], d,
                    in_weights.begin() + cursor);
        inBegins_[v] = cursor;
        inCaps_[v] = d;
        cursor += d;
    }
    inSources_ = std::move(sources);
    inWeights_ = std::move(in_weights);

    ++compactions_;
    return reclaimed;
}

graph::Csr
DynamicGraph::toCsr() const
{
    std::vector<EdgeIndex> offsets(numNodes() + 1, 0);
    std::vector<NodeId> targets(liveEdges_);
    std::vector<Weight> weights(liveEdges_);
    EdgeIndex cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        offsets[v] = cursor;
        const EdgeIndex d = degrees_[v];
        std::copy_n(targets_.begin() + begins_[v], d,
                    targets.begin() + cursor);
        std::copy_n(weights_.begin() + begins_[v], d,
                    weights.begin() + cursor);
        cursor += d;
    }
    offsets[numNodes()] = cursor;
    return graph::Csr(std::move(offsets), std::move(targets),
                      std::move(weights));
}

graph::Csr
DynamicGraph::toReversedCsr() const
{
    std::vector<EdgeIndex> offsets(numNodes() + 1, 0);
    std::vector<NodeId> sources(liveEdges_);
    std::vector<Weight> weights(liveEdges_);
    EdgeIndex cursor = 0;
    for (NodeId v = 0; v < numNodes(); ++v) {
        offsets[v] = cursor;
        const EdgeIndex d = inDegrees_[v];
        std::copy_n(inSources_.begin() + inBegins_[v], d,
                    sources.begin() + cursor);
        std::copy_n(inWeights_.begin() + inBegins_[v], d,
                    weights.begin() + cursor);
        cursor += d;
    }
    offsets[numNodes()] = cursor;
    return graph::Csr(std::move(offsets), std::move(sources),
                      std::move(weights));
}

} // namespace tigr::dynamic
