/**
 * @file
 * Streaming graph mutations: the typed edge-mutation vocabulary, the
 * deterministic seeded batch generator, and the replayable MutationLog
 * behind the dynamic-graph subsystem (docs/dynamic.md).
 *
 * A mutation batch is the unit of change: the DynamicGraph applies one
 * batch per epoch, and everything downstream (incremental virtual
 * repair, store versioning, cache invalidation) is keyed by the epoch
 * the batch produced. Batches are plain vectors so tests and tools can
 * construct them directly; generateBatch() produces seeded batches
 * that are a pure function of (graph, spec) — the differential tests
 * lean on that to replay identical mutation streams at 1/2/8 workers.
 */
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::dynamic {

/** What one mutation does to the edge set. */
enum class MutationKind : std::uint8_t
{
    InsertEdge,   ///< Append (src, dst, weight) to src's edge list.
    DeleteEdge,   ///< Remove the first (src, dst) occurrence.
    UpdateWeight, ///< Reweight the first (src, dst) occurrence.
};

/** Display name ("insert", "delete", "reweight"). */
std::string_view mutationKindName(MutationKind kind);

/** One edge mutation. The node set is fixed: mutations change edges,
 *  never add or remove vertices (the store's entry geometry — and the
 *  engines' value arrays — stay n-sized across epochs). */
struct Mutation
{
    MutationKind kind = MutationKind::InsertEdge;
    NodeId src = 0;
    NodeId dst = 0;
    /** New weight for InsertEdge / UpdateWeight; ignored by delete. */
    Weight weight = 1;

    friend bool operator==(const Mutation &, const Mutation &) = default;
};

/** One epoch's worth of mutations, applied in order. */
using MutationBatch = std::vector<Mutation>;

/** Why a batch was rejected. */
enum class MutationErrorKind
{
    SourceOutOfRange, ///< src >= numNodes.
    TargetOutOfRange, ///< dst >= numNodes.
    MissingEdge,      ///< Delete/reweight of a nonexistent (src, dst).
    Parse,            ///< Malformed mutation-log text.
};

/** Display name ("source-out-of-range", "missing-edge", ...). */
std::string_view mutationErrorKindName(MutationErrorKind kind);

/** Typed batch-validation failure. Validation happens before any state
 *  is touched, so a thrown MutationError always leaves the graph
 *  exactly as it was (see DynamicGraph::apply). */
class MutationError : public std::runtime_error
{
  public:
    MutationError(MutationErrorKind kind, std::size_t index,
                  const std::string &message)
        : std::runtime_error(message), kind_(kind), index_(index)
    {
    }

    MutationErrorKind kind() const { return kind_; }

    /** Batch position of the offending mutation (line number for
     *  Parse errors). */
    std::size_t index() const { return index_; }

  private:
    MutationErrorKind kind_;
    std::size_t index_;
};

/** Shape of a seeded batch. */
struct GeneratorSpec
{
    std::uint64_t seed = 1;
    std::size_t inserts = 0;
    std::size_t deletes = 0;
    std::size_t reweights = 0;
    /** Generated weights are uniform in [1, maxWeight]. */
    Weight maxWeight = 64;
    /** When nonzero, concentrate every edit on vertices with id <
     *  hotSpan: inserts draw their source there, deletes/reweights
     *  sample only edges those vertices own. This is the
     *  suffix-dominated regime — low-id edits force a dense-addressed
     *  repair to shift (nearly) the whole suffix, while an
     *  arena-addressed repair stays O(touched)
     *  (bench/mutation_throughput). 0 = uniform over all vertices. */
    NodeId hotSpan = 0;
};

/**
 * Deterministically generate a valid mutation batch against @p graph:
 * inserts draw uniform (src, dst) pairs, deletes sample distinct
 * existing edges, reweights sample existing edges whose (src, dst)
 * pair no delete in the same batch targets — so the batch always
 * passes typed validation. The result is a pure function of
 * (graph, spec): same seed, same graph, same batch, bit for bit. The
 * three kinds are interleaved by a seeded shuffle, so a batch
 * exercises mixed apply paths rather than sorted runs.
 *
 * On a graph with fewer edges than requested deletes the batch holds
 * as many as could be sampled (deterministically), never an invalid
 * mutation.
 */
MutationBatch generateBatch(const graph::Csr &graph,
                            const GeneratorSpec &spec);

/**
 * An ordered record of mutation batches with a text round-trip, so a
 * mutation stream can be captured once (tigr mutate --log) and
 * replayed elsewhere byte-identically (tigr mutate --apply).
 *
 * Format: `batch <index> <count>` introduces each batch, followed by
 * one line per mutation — `+ src dst weight`, `- src dst`,
 * `= src dst weight`. '#' starts a comment.
 */
class MutationLog
{
  public:
    /** Append one batch (empty batches are recorded too: an epoch with
     *  no changes is still an epoch). */
    void append(MutationBatch batch);

    const std::vector<MutationBatch> &batches() const
    {
        return batches_;
    }

    std::size_t size() const { return batches_.size(); }

    /** Total mutations across all batches. */
    std::size_t totalMutations() const;

    /** Write the canonical text form. */
    void save(std::ostream &out) const;

    /** Parse the text form (whole-log convenience over
     *  MutationLogReader). @throws MutationError (Parse) naming the
     *  offending line. */
    static MutationLog load(std::istream &in);

  private:
    std::vector<MutationBatch> batches_;
};

/**
 * Streaming parser over the MutationLog text form: yields one batch at
 * a time so a long-lived mutation stream can be applied while parsing
 * — memory stays bounded by the largest single batch, never the log.
 * Parsing rules, typed Parse errors, and line numbering are exactly
 * MutationLog::load's (which is now implemented over this reader).
 */
class MutationLogReader
{
  public:
    explicit MutationLogReader(std::istream &in) : in_(&in) {}

    /**
     * Parse and return the next batch, or std::nullopt at a clean end
     * of stream. @throws MutationError (Parse) naming the offending
     * line.
     */
    std::optional<MutationBatch> next();

    /** Batches returned so far. */
    std::size_t batchesRead() const { return started_; }

  private:
    std::istream *in_;
    std::size_t lineNo_ = 0;
    /** Batch headers consumed so far (= index expected next). */
    std::size_t started_ = 0;
    /** A `batch` header has been consumed whose batch has not been
     *  returned yet; pendingDeclared_ is its declared count. */
    bool haveHeader_ = false;
    std::size_t pendingDeclared_ = 0;
};

/**
 * Drop mutations whose effect cannot survive to the end of their own
 * batch, preserving batch boundaries (epoch numbering) and the exact
 * graph state after every batch.
 *
 * Only the provably state-independent rewrite is applied: a reweight
 * is dead when a later same-batch mutation of the same (src, dst) pair
 * supersedes it — another reweight (both write the pair's first
 * occurrence, and nothing between them can change which edge that is:
 * inserts only append, and an intervening delete of the pair clears
 * the pending reweight) or a delete (which removes the occurrence the
 * reweight wrote). Insert/delete elimination is deliberately *not*
 * attempted: a delete removes the pair's first occurrence while an
 * insert appends a new one, so whether they cancel depends on how many
 * occurrences the graph already holds — unknowable from the log alone.
 *
 * Replaying the compacted log therefore reaches a byte-identical
 * DynamicGraph state at every epoch (proved by
 * tests/dynamic/test_mutation_stream.cpp).
 */
MutationLog compactLog(const MutationLog &log);

} // namespace tigr::dynamic
