/**
 * @file
 * Streaming graph mutations: the typed edge-mutation vocabulary, the
 * deterministic seeded batch generator, and the replayable MutationLog
 * behind the dynamic-graph subsystem (docs/dynamic.md).
 *
 * A mutation batch is the unit of change: the DynamicGraph applies one
 * batch per epoch, and everything downstream (incremental virtual
 * repair, store versioning, cache invalidation) is keyed by the epoch
 * the batch produced. Batches are plain vectors so tests and tools can
 * construct them directly; generateBatch() produces seeded batches
 * that are a pure function of (graph, spec) — the differential tests
 * lean on that to replay identical mutation streams at 1/2/8 workers.
 */
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::dynamic {

/** What one mutation does to the edge set. */
enum class MutationKind : std::uint8_t
{
    InsertEdge,   ///< Append (src, dst, weight) to src's edge list.
    DeleteEdge,   ///< Remove the first (src, dst) occurrence.
    UpdateWeight, ///< Reweight the first (src, dst) occurrence.
};

/** Display name ("insert", "delete", "reweight"). */
std::string_view mutationKindName(MutationKind kind);

/** One edge mutation. The node set is fixed: mutations change edges,
 *  never add or remove vertices (the store's entry geometry — and the
 *  engines' value arrays — stay n-sized across epochs). */
struct Mutation
{
    MutationKind kind = MutationKind::InsertEdge;
    NodeId src = 0;
    NodeId dst = 0;
    /** New weight for InsertEdge / UpdateWeight; ignored by delete. */
    Weight weight = 1;

    friend bool operator==(const Mutation &, const Mutation &) = default;
};

/** One epoch's worth of mutations, applied in order. */
using MutationBatch = std::vector<Mutation>;

/** Why a batch was rejected. */
enum class MutationErrorKind
{
    SourceOutOfRange, ///< src >= numNodes.
    TargetOutOfRange, ///< dst >= numNodes.
    MissingEdge,      ///< Delete/reweight of a nonexistent (src, dst).
    Parse,            ///< Malformed mutation-log text.
};

/** Display name ("source-out-of-range", "missing-edge", ...). */
std::string_view mutationErrorKindName(MutationErrorKind kind);

/** Typed batch-validation failure. Validation happens before any state
 *  is touched, so a thrown MutationError always leaves the graph
 *  exactly as it was (see DynamicGraph::apply). */
class MutationError : public std::runtime_error
{
  public:
    MutationError(MutationErrorKind kind, std::size_t index,
                  const std::string &message)
        : std::runtime_error(message), kind_(kind), index_(index)
    {
    }

    MutationErrorKind kind() const { return kind_; }

    /** Batch position of the offending mutation (line number for
     *  Parse errors). */
    std::size_t index() const { return index_; }

  private:
    MutationErrorKind kind_;
    std::size_t index_;
};

/** Shape of a seeded batch. */
struct GeneratorSpec
{
    std::uint64_t seed = 1;
    std::size_t inserts = 0;
    std::size_t deletes = 0;
    std::size_t reweights = 0;
    /** Generated weights are uniform in [1, maxWeight]. */
    Weight maxWeight = 64;
};

/**
 * Deterministically generate a valid mutation batch against @p graph:
 * inserts draw uniform (src, dst) pairs, deletes sample distinct
 * existing edges, reweights sample existing edges whose (src, dst)
 * pair no delete in the same batch targets — so the batch always
 * passes typed validation. The result is a pure function of
 * (graph, spec): same seed, same graph, same batch, bit for bit. The
 * three kinds are interleaved by a seeded shuffle, so a batch
 * exercises mixed apply paths rather than sorted runs.
 *
 * On a graph with fewer edges than requested deletes the batch holds
 * as many as could be sampled (deterministically), never an invalid
 * mutation.
 */
MutationBatch generateBatch(const graph::Csr &graph,
                            const GeneratorSpec &spec);

/**
 * An ordered record of mutation batches with a text round-trip, so a
 * mutation stream can be captured once (tigr mutate --log) and
 * replayed elsewhere byte-identically (tigr mutate --apply).
 *
 * Format: `batch <index> <count>` introduces each batch, followed by
 * one line per mutation — `+ src dst weight`, `- src dst`,
 * `= src dst weight`. '#' starts a comment.
 */
class MutationLog
{
  public:
    /** Append one batch (empty batches are recorded too: an epoch with
     *  no changes is still an epoch). */
    void append(MutationBatch batch);

    const std::vector<MutationBatch> &batches() const
    {
        return batches_;
    }

    std::size_t size() const { return batches_.size(); }

    /** Total mutations across all batches. */
    std::size_t totalMutations() const;

    /** Write the canonical text form. */
    void save(std::ostream &out) const;

    /** Parse the text form. @throws MutationError (Parse) naming the
     *  offending line. */
    static MutationLog load(std::istream &in);

  private:
    std::vector<MutationBatch> batches_;
};

} // namespace tigr::dynamic
