/**
 * @file
 * Incremental maintenance of the virtual node array across mutation
 * epochs. The virtual split (Section 4 of the paper) is vertex-local —
 * a node's family is a pure function of (edge begin, degree, K,
 * layout) — so when a batch touches t of n vertices, only the touched
 * families need re-splitting; every family after the first touched
 * vertex shifts by the cumulative edge/entry delta but keeps its
 * internal shape, including the coalesced round-robin stride.
 *
 * The repaired array is maintained byte-identical to what a
 * from-scratch VirtualGraph build over the materialized dense CSR
 * would produce; differentialCheck() proves it on demand and the
 * dynamic test suite proves it after every batch.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/types.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::dynamic {

/** What one repair pass did. */
struct RepairStats
{
    /** Epoch the virtual array now reflects. */
    std::uint64_t epoch = 0;

    /** Vertices whose family was rebuilt (degree changed). */
    std::size_t repairedVertices = 0;

    /** Rebuilt families whose entry count changed (degree crossed a
     *  multiple of K) — the expensive case a full rebuild pays for
     *  every vertex. */
    std::size_t resplitFamilies = 0;

    /** Untouched entries that only had their start slot shifted. */
    std::size_t shiftedEntries = 0;

    std::size_t entriesBefore = 0;
    std::size_t entriesAfter = 0;
};

/**
 * The virtual node array of a DynamicGraph, repaired in place across
 * epochs instead of rebuilt.
 *
 * Invariant (checked by differentialCheck and the dynamic tests):
 * after applyDelta() for every batch the graph absorbed,
 * virtualNodes() is element-for-element identical to
 * `VirtualGraph(graph.toCsr(), K, layout).virtualNodes()` — the same
 * entries the snapshot container would persist. Entry starts address
 * the *dense* CSR edge array (what toCsr() yields), not the slack
 * arena, so the repaired array drops straight into
 * VirtualGraph::fromArrays over the materialized graph.
 */
class IncrementalVirtualizer
{
  public:
    IncrementalVirtualizer() = default;

    /** Build the initial array from @p graph's current state. */
    IncrementalVirtualizer(const DynamicGraph &graph,
                           NodeId degree_bound,
                           transform::EdgeLayout layout);

    NodeId degreeBound() const { return degreeBound_; }

    transform::EdgeLayout layout() const { return layout_; }

    /** Epoch of the graph state the array reflects. */
    std::uint64_t epoch() const { return epoch_; }

    /** The maintained virtual node array. */
    std::span<const transform::VirtualNode> virtualNodes() const
    {
        return nodes_;
    }

    /** Copy of the array, e.g. for VirtualGraph::fromArrays or a
     *  snapshot save. */
    std::vector<transform::VirtualNode> nodesCopy() const
    {
        return nodes_;
    }

    /** Per-vertex entry offsets: vertex v's family occupies
     *  [offset[v], offset[v+1]) in virtualNodes(). */
    std::span<const EdgeIndex> entryOffsets() const { return vbase_; }

    /**
     * Repair the array for one applied batch. Deltas must arrive in
     * epoch order with no gaps (each DynamicGraph::apply result,
     * exactly once). Touched vertices whose degree did not change
     * (reweight-only) cost nothing; for the rest, one pass from the
     * first degree-changed vertex re-emits changed families and
     * shifts the remainder. The obs trace event `mutation.resplit`
     * reports the returned counters once per batch.
     *
     * @throws std::invalid_argument on an out-of-order delta.
     */
    RepairStats applyDelta(const EpochDelta &delta);

  private:
    NodeId degreeBound_ = 1;
    transform::EdgeLayout layout_ = transform::EdgeLayout::Coalesced;
    std::uint64_t epoch_ = 0;
    std::vector<transform::VirtualNode> nodes_;
    /** n+1 entry offsets into nodes_. */
    std::vector<EdgeIndex> vbase_;
    /** n+1 dense edge offsets (the toCsr() row offsets). */
    std::vector<EdgeIndex> begins_;
};

/**
 * Prove the maintained array equals a from-scratch rebuild: materialize
 * @p graph as a dense CSR, build a VirtualGraph with the virtualizer's
 * (K, layout), and compare entry by entry, plus the dense row offsets.
 *
 * @return std::nullopt when byte-identical; otherwise a human-readable
 *         description of the first divergence.
 */
std::optional<std::string>
differentialCheck(const DynamicGraph &graph,
                  const IncrementalVirtualizer &virtualizer);

} // namespace tigr::dynamic
