/**
 * @file
 * Incremental maintenance of the virtual node array across mutation
 * epochs. The virtual split (Section 4 of the paper) is vertex-local —
 * a node's family is a pure function of (edge begin, degree, K,
 * layout) — so when a batch touches t of n vertices, only the touched
 * families need re-splitting.
 *
 * Two addressing modes decide what "edge begin" means:
 *
 * - **Dense** (the historical default): entry starts address the dense
 *   CSR edge array that toCsr() would yield. Untouched families after
 *   the first touched vertex shift by the cumulative edge/entry delta,
 *   so every repair pays one suffix sweep.
 * - **Arena**: entry starts address the DynamicGraph slack arena
 *   directly. An untouched family's start never changes when another
 *   vertex grows, so repair is O(changed families) — no suffix sweep,
 *   no dense materialization on the mutate→query path.
 *   canonicalNodes() converts to the dense addressing on demand
 *   (snapshot save, differential proof) and is byte-identical to a
 *   from-scratch VirtualGraph build.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "graph/types.hpp"
#include "transform/virtual_graph.hpp"

namespace tigr::par {
class ThreadPool;
}

namespace tigr::dynamic {

/** How virtual-node entry starts address the edge array. */
enum class StartAddressing
{
    /** Starts index the dense CSR that toCsr() materializes. */
    Dense,
    /** Starts index the DynamicGraph slack arena directly. */
    Arena,
};

/** Which orientation of the graph the virtual array splits. */
enum class GraphSide
{
    /** Out-edges: the forward arena, degrees are outdegrees. */
    Out,
    /** In-edges: the reverse arena, degrees are indegrees. Entry
     *  starts address the reverse arena (or, dense, the CSR that
     *  toReversedCsr() materializes), and repair consumes
     *  EpochDelta::touchedIn. */
    In,
};

/** What one repair pass did. */
struct RepairStats
{
    /** Epoch the virtual array now reflects. */
    std::uint64_t epoch = 0;

    /** Vertices whose family was rebuilt. */
    std::size_t repairedVertices = 0;

    /** Rebuilt families whose entry count changed (degree crossed a
     *  multiple of K) — the expensive case a full rebuild pays for
     *  every vertex. */
    std::size_t resplitFamilies = 0;

    /** Untouched entries that only had their start slot shifted
     *  (dense addressing only; always 0 under arena addressing —
     *  that is the point of the mode). */
    std::size_t shiftedEntries = 0;

    /** Families moved to the entry-arena tail because they outgrew
     *  their capacity (arena addressing only). */
    std::size_t relocatedFamilies = 0;

    std::size_t entriesBefore = 0;
    std::size_t entriesAfter = 0;
};

/**
 * The virtual node array of a DynamicGraph, repaired in place across
 * epochs instead of rebuilt.
 *
 * Invariant (checked by differentialCheck and the dynamic tests):
 * after applyDelta() for every batch the graph absorbed,
 * canonicalNodes() — which is virtualNodes() verbatim under dense
 * addressing — is element-for-element identical to
 * `VirtualGraph(graph.toCsr(), K, layout).virtualNodes()`, the same
 * entries the snapshot container would persist.
 *
 * Arena addressing keeps a reference to the graph it was built from;
 * the graph must outlive the virtualizer and not move. After the graph
 * compacts (DynamicGraph::compact()) every arena slot may change, so
 * the caller must call rebase() before the next applyDelta() /
 * canonicalNodes(); the virtualizer tracks the graph's compaction
 * count and throws if the contract is broken rather than serving
 * stale slots.
 */
class IncrementalVirtualizer
{
  public:
    IncrementalVirtualizer() = default;

    /**
     * Build the initial array from @p graph's current state.
     *
     * @param pool Optional thread pool: the initial build (and, in
     *        arena mode, rebase/canonicalization) parallelizes with a
     *        bit-identical result for any thread count.
     */
    IncrementalVirtualizer(const DynamicGraph &graph,
                           NodeId degree_bound,
                           transform::EdgeLayout layout,
                           StartAddressing addressing =
                               StartAddressing::Dense,
                           par::ThreadPool *pool = nullptr,
                           GraphSide side = GraphSide::Out);

    NodeId degreeBound() const { return degreeBound_; }

    transform::EdgeLayout layout() const { return layout_; }

    StartAddressing addressing() const { return addressing_; }

    GraphSide side() const { return side_; }

    /** Epoch of the graph state the array reflects. */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * The maintained entry storage. Dense addressing: exactly the
     * canonical array. Arena addressing: the raw entry arena —
     * vertex families live at familyOf(v) and dead slack slots hold
     * stale entries; use canonicalNodes() for the dense-addressed
     * array.
     */
    std::span<const transform::VirtualNode> virtualNodes() const
    {
        return nodes_;
    }

    /** Live entries across all families (excludes arena slack). */
    std::size_t numEntries() const
    {
        return addressing_ == StartAddressing::Arena
                   ? liveEntries_
                   : nodes_.size();
    }

    /** Node @p v's family: its live entries, in emission order. */
    std::span<const transform::VirtualNode>
    familyOf(NodeId v) const
    {
        if (addressing_ == StartAddressing::Arena)
            return {nodes_.data() + entryBegin_[v],
                    static_cast<std::size_t>(entryCount_[v])};
        return {nodes_.data() + vbase_[v],
                static_cast<std::size_t>(vbase_[v + 1] - vbase_[v])};
    }

    /** Entry count of node @p v's family. */
    std::size_t
    familyCountOf(NodeId v) const
    {
        return addressing_ == StartAddressing::Arena
                   ? static_cast<std::size_t>(entryCount_[v])
                   : static_cast<std::size_t>(vbase_[v + 1] -
                                              vbase_[v]);
    }

    /**
     * Canonical dense-addressed copy of the array: vertex-ordered,
     * slack-free, entry starts indexing the dense CSR toCsr() yields.
     * Dense addressing returns the maintained array verbatim; arena
     * addressing converts (each start maps to
     * dense_begin[v] + (start − arena_begin[v])), parallelized over
     * @p pool with a bit-identical result for any thread count.
     */
    std::vector<transform::VirtualNode>
    canonicalNodes(par::ThreadPool *pool = nullptr) const;

    /** Copy of the canonical array, e.g. for VirtualGraph::fromArrays
     *  or a snapshot save. */
    std::vector<transform::VirtualNode> nodesCopy() const
    {
        return canonicalNodes(nullptr);
    }

    /** Per-vertex entry offsets (dense addressing only): vertex v's
     *  family occupies [offset[v], offset[v+1]) in virtualNodes().
     *  Empty under arena addressing. */
    std::span<const EdgeIndex> entryOffsets() const { return vbase_; }

    /**
     * Repair the array for one applied batch. Deltas must arrive in
     * epoch order with no gaps (each DynamicGraph::apply result,
     * exactly once). The obs trace event `mutation.resplit` reports
     * the returned counters once per batch.
     *
     * Dense addressing: touched vertices whose degree did not change
     * (reweight-only) cost nothing; for the rest, one pass from the
     * first degree-changed vertex re-emits changed families and
     * shifts the remainder — @p pool parallelizes the offset and
     * start sweeps. Arena addressing: only changed families are
     * re-emitted (a family whose degree and segment begin are both
     * unchanged costs nothing; a segment the graph relocated is
     * detected by its begin and re-emitted even at equal degree) —
     * O(touched), no sweep, @p pool unused.
     *
     * @throws std::invalid_argument on an out-of-order delta.
     * @throws std::logic_error when the graph compacted since the
     *         last rebase() (arena addressing).
     */
    RepairStats applyDelta(const EpochDelta &delta,
                           par::ThreadPool *pool = nullptr);

    /**
     * Rebuild a tight, vertex-ordered entry arena from the graph's
     * current geometry — the residual sweep that arena addressing
     * still needs, run only when slots actually moved wholesale:
     * after DynamicGraph::compact(), and when shouldCompactEntries()
     * says the entry arena itself accumulated too much slack.
     * Resynchronizes epoch() to the graph's current epoch (the rebuilt
     * array reflects the graph as-is, including any batch whose delta
     * never reached applyDelta). Parallelizes over @p pool,
     * bit-identical at any thread count.
     *
     * @throws std::logic_error under dense addressing (dense starts
     *         survive graph compaction unchanged; nothing to rebase).
     */
    RepairStats rebase(par::ThreadPool *pool = nullptr);

    /** Entry-arena slots not backing a live entry (arena addressing;
     *  0 under dense). */
    std::size_t
    entrySlackSlots() const
    {
        return nodes_.size() - numEntries();
    }

    /** True when the entry arena is worth rebasing: ≥64 slack slots
     *  and more slack than live entries (mirrors
     *  DynamicGraph::shouldCompact). */
    bool
    shouldCompactEntries() const
    {
        const std::size_t slack = entrySlackSlots();
        return slack >= 64 && slack * 2 > nodes_.size();
    }

  private:
    RepairStats applyDeltaDense(const EpochDelta &delta,
                                par::ThreadPool *pool);
    RepairStats applyDeltaArena(const EpochDelta &delta);
    void rebuildArena(par::ThreadPool *pool);
    void requireFreshSlots(const char *what) const;

    /** The side's live degree of @p v (out- or in-degree). */
    EdgeIndex sideDegree(NodeId v) const;

    /** The side's arena segment begin of @p v. */
    EdgeIndex sideBegin(NodeId v) const;

    /** The side's touched list of @p delta. */
    const std::vector<TouchedVertex> &
    sideTouched(const EpochDelta &delta) const;

    NodeId degreeBound_ = 1;
    transform::EdgeLayout layout_ = transform::EdgeLayout::Coalesced;
    StartAddressing addressing_ = StartAddressing::Dense;
    GraphSide side_ = GraphSide::Out;
    std::uint64_t epoch_ = 0;
    std::vector<transform::VirtualNode> nodes_;

    // Dense addressing:
    /** n+1 entry offsets into nodes_. */
    std::vector<EdgeIndex> vbase_;
    /** n+1 dense edge offsets (the toCsr() row offsets). */
    std::vector<EdgeIndex> begins_;

    // Arena addressing: per-vertex (begin, count, capacity) into the
    // nodes_ entry arena, mirroring the graph's edge arena.
    const DynamicGraph *graph_ = nullptr;
    std::vector<EdgeIndex> entryBegin_;
    std::vector<EdgeIndex> entryCount_;
    std::vector<EdgeIndex> entryCap_;
    std::size_t liveEntries_ = 0;
    /** Graph compaction count at the last (re)base — applyDelta and
     *  canonicalNodes refuse to run when the graph compacted without
     *  a rebase() in between. */
    std::uint64_t compactionsSeen_ = 0;
};

/**
 * Prove the maintained array equals a from-scratch rebuild: materialize
 * @p graph as a dense CSR (reversed via toCsr().reversed() for an
 * In-side virtualizer, so the oracle is independent of the reverse
 * arena it checks), build a VirtualGraph with the virtualizer's
 * (K, layout), and compare entry by entry (canonicalizing first under
 * arena addressing), plus the per-vertex family extents.
 *
 * @return std::nullopt when byte-identical; otherwise a human-readable
 *         description of the first divergence.
 */
std::optional<std::string>
differentialCheck(const DynamicGraph &graph,
                  const IncrementalVirtualizer &virtualizer);

} // namespace tigr::dynamic
