#include "dynamic/incremental_virtualizer.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace tigr::dynamic {

using transform::EdgeLayout;
using transform::VirtualNode;
using transform::familySize;
using transform::forEachVirtualNodeAt;

IncrementalVirtualizer::IncrementalVirtualizer(
    const DynamicGraph &graph, NodeId degree_bound, EdgeLayout layout)
    : degreeBound_(degree_bound), layout_(layout),
      epoch_(graph.epoch())
{
    if (degree_bound == 0)
        throw std::invalid_argument(
            "tigr: virtual degree bound must be positive");
    const NodeId n = graph.numNodes();
    vbase_.resize(n + 1);
    begins_.resize(n + 1);
    EdgeIndex edge_cursor = 0;
    EdgeIndex entry_cursor = 0;
    for (NodeId v = 0; v < n; ++v) {
        begins_[v] = edge_cursor;
        vbase_[v] = entry_cursor;
        const EdgeIndex d = graph.degree(v);
        entry_cursor += familySize(d, degree_bound);
        edge_cursor += d;
    }
    begins_[n] = edge_cursor;
    vbase_[n] = entry_cursor;
    nodes_.reserve(entry_cursor);
    for (NodeId v = 0; v < n; ++v)
        forEachVirtualNodeAt(v, begins_[v], graph.degree(v),
                             degree_bound, layout,
                             [&](const VirtualNode &node) {
                                 nodes_.push_back(node);
                             });
}

RepairStats
IncrementalVirtualizer::applyDelta(const EpochDelta &delta)
{
    if (delta.epoch != epoch_ + 1)
        throw std::invalid_argument(
            "tigr: delta for epoch " + std::to_string(delta.epoch) +
            " applied to virtual array at epoch " +
            std::to_string(epoch_));

    RepairStats stats;
    stats.entriesBefore = nodes_.size();

    // Reweight-only touches change no degree, hence no family.
    std::vector<const TouchedVertex *> changed;
    changed.reserve(delta.touched.size());
    for (const TouchedVertex &t : delta.touched)
        if (t.oldDegree != t.newDegree)
            changed.push_back(&t);

    if (changed.empty()) {
        epoch_ = delta.epoch;
        stats.epoch = epoch_;
        stats.entriesAfter = nodes_.size();
        return stats;
    }

    const NodeId n = static_cast<NodeId>(begins_.size() - 1);
    const NodeId first = changed.front()->vertex;

    // The repair is fully in place. Between changed families the array
    // splits into runs of untouched entries; a run's destination and
    // start adjustment are pure prefix sums of the family-size and
    // degree deltas, so everything is planned before a byte moves.
    // Runs whose cumulative entry delta is zero never move — when the
    // cumulative edge delta is also zero they cost literally nothing,
    // otherwise a single in-place `start +=` sweep. Runs that do move
    // go left in a forward pass and right in a backward pass, which
    // never clobbers an unread source (destinations are disjoint and
    // ordered, so a left move writes below every later source and a
    // right move above every earlier destination). That caps the
    // repair at one read-modify-write of the affected suffix plus
    // O(changed families) of real re-splitting — the asymptotic edge
    // over a full retransform that bench/mutation_throughput asserts.
    struct Run
    {
        EdgeIndex srcLo, srcHi, dst;
        std::int64_t startDelta;
    };
    struct Fam
    {
        NodeId vertex;
        EdgeIndex dst, newBegin, newDegree;
    };
    std::vector<Run> runs;
    runs.reserve(changed.size() + 1);
    std::vector<Fam> fams;
    fams.reserve(changed.size());

    std::int64_t edge_delta = 0;
    std::int64_t entry_delta = 0;
    EdgeIndex prev_entry_hi = vbase_[first];
    NodeId prev_vertex = first;
    // Offset fix-up for untouched vertices [lo, hi]; skips any array
    // whose running delta is zero, one fused pass when both moved.
    const auto shiftOffsets = [&](NodeId lo, NodeId hi) {
        if (edge_delta != 0 && entry_delta != 0) {
            for (NodeId w = lo; w <= hi; ++w) {
                begins_[w] = static_cast<EdgeIndex>(
                    static_cast<std::int64_t>(begins_[w]) + edge_delta);
                vbase_[w] = static_cast<EdgeIndex>(
                    static_cast<std::int64_t>(vbase_[w]) + entry_delta);
            }
        } else if (edge_delta != 0) {
            for (NodeId w = lo; w <= hi; ++w)
                begins_[w] = static_cast<EdgeIndex>(
                    static_cast<std::int64_t>(begins_[w]) + edge_delta);
        } else if (entry_delta != 0) {
            for (NodeId w = lo; w <= hi; ++w)
                vbase_[w] = static_cast<EdgeIndex>(
                    static_cast<std::int64_t>(vbase_[w]) + entry_delta);
        }
    };
    for (const TouchedVertex *t : changed) {
        const NodeId v = t->vertex;
        const EdgeIndex old_lo = vbase_[v];
        const EdgeIndex old_hi = vbase_[v + 1];
        const EdgeIndex old_family = old_hi - old_lo;
        const EdgeIndex new_family =
            familySize(t->newDegree, degreeBound_);
        runs.push_back({prev_entry_hi, old_lo,
                        static_cast<EdgeIndex>(
                            static_cast<std::int64_t>(prev_entry_hi) +
                            entry_delta),
                        edge_delta});
        if (v > prev_vertex)
            shiftOffsets(prev_vertex, v - 1);
        const EdgeIndex new_begin = static_cast<EdgeIndex>(
            static_cast<std::int64_t>(begins_[v]) + edge_delta);
        const EdgeIndex fam_dst = static_cast<EdgeIndex>(
            static_cast<std::int64_t>(old_lo) + entry_delta);
        fams.push_back({v, fam_dst, new_begin, t->newDegree});
        begins_[v] = new_begin;
        vbase_[v] = fam_dst;
        if (new_family != old_family)
            ++stats.resplitFamilies;
        ++stats.repairedVertices;
        edge_delta += static_cast<std::int64_t>(t->newDegree) -
                      static_cast<std::int64_t>(t->oldDegree);
        entry_delta += static_cast<std::int64_t>(new_family) -
                       static_cast<std::int64_t>(old_family);
        prev_entry_hi = old_hi;
        prev_vertex = v + 1;
    }
    runs.push_back({prev_entry_hi,
                    static_cast<EdgeIndex>(nodes_.size()),
                    static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(prev_entry_hi) +
                        entry_delta),
                    edge_delta});
    shiftOffsets(prev_vertex, n);

    const std::size_t new_size = static_cast<std::size_t>(
        static_cast<std::int64_t>(nodes_.size()) + entry_delta);
    if (new_size > nodes_.size())
        nodes_.resize(new_size);

    // memmove plus a separate vectorizable start sweep beats a fused
    // element loop ~3x: the struct-wise copy defeats SIMD, the split
    // passes don't, and the run usually still sits in cache for the
    // second pass.
    const auto moveRun = [&](const Run &r) {
        const std::size_t count = r.srcHi - r.srcLo;
        if (count == 0)
            return;
        VirtualNode *const base = nodes_.data();
        if (r.dst != r.srcLo) {
            // Short runs dodge the memmove call overhead — with a few
            // thousand families changed per batch most runs are tiny.
            if (count >= 16) {
                std::memmove(base + r.dst, base + r.srcLo,
                             count * sizeof(VirtualNode));
            } else if (r.dst < r.srcLo) {
                for (std::size_t i = 0; i < count; ++i)
                    base[r.dst + i] = base[r.srcLo + i];
            } else {
                for (std::size_t i = count; i-- > 0;)
                    base[r.dst + i] = base[r.srcLo + i];
            }
        }
        if (r.startDelta != 0) {
            VirtualNode *const run = base + r.dst;
            for (std::size_t i = 0; i < count; ++i)
                run[i].start = static_cast<EdgeIndex>(
                    static_cast<std::int64_t>(run[i].start) +
                    r.startDelta);
            stats.shiftedEntries += count;
        }
    };
    for (const Run &r : runs)
        if (r.dst <= r.srcLo)
            moveRun(r);
    for (std::size_t i = runs.size(); i-- > 0;)
        if (runs[i].dst > runs[i].srcLo)
            moveRun(runs[i]);
    for (const Fam &f : fams) {
        EdgeIndex out = f.dst;
        forEachVirtualNodeAt(f.vertex, f.newBegin, f.newDegree,
                             degreeBound_, layout_,
                             [&](const VirtualNode &node) {
                                 nodes_[out++] = node;
                             });
    }
    if (new_size < nodes_.size())
        nodes_.resize(new_size);
    epoch_ = delta.epoch;
    stats.epoch = epoch_;
    stats.entriesAfter = nodes_.size();
    return stats;
}

std::optional<std::string>
differentialCheck(const DynamicGraph &graph,
                  const IncrementalVirtualizer &virtualizer)
{
    const graph::Csr dense = graph.toCsr();
    const transform::VirtualGraph rebuilt(
        dense, virtualizer.degreeBound(), virtualizer.layout());
    const auto expect = rebuilt.virtualNodes();
    const auto got = virtualizer.virtualNodes();
    if (expect.size() != got.size())
        return "virtual array size " + std::to_string(got.size()) +
               " != rebuilt size " + std::to_string(expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        if (!(expect[i] == got[i]))
            return "virtual entry " + std::to_string(i) +
                   " diverges: physical " +
                   std::to_string(got[i].physicalId) + "/" +
                   std::to_string(expect[i].physicalId) + " start " +
                   std::to_string(got[i].start) + "/" +
                   std::to_string(expect[i].start) + " stride " +
                   std::to_string(got[i].stride) + "/" +
                   std::to_string(expect[i].stride) + " count " +
                   std::to_string(got[i].count) + "/" +
                   std::to_string(expect[i].count);
    }
    const auto entry_offsets = virtualizer.entryOffsets();
    EdgeIndex entry_cursor = 0;
    for (NodeId v = 0; v < dense.numNodes(); ++v) {
        if (entry_offsets[v] != entry_cursor)
            return "entry offset of node " + std::to_string(v) +
                   " diverges: " + std::to_string(entry_offsets[v]) +
                   " != " + std::to_string(entry_cursor);
        entry_cursor += familySize(dense.degree(v),
                                   virtualizer.degreeBound());
    }
    if (entry_offsets[dense.numNodes()] != entry_cursor)
        return "total entry count offset diverges";
    return std::nullopt;
}

} // namespace tigr::dynamic
