#include "dynamic/incremental_virtualizer.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "par/parallel_for.hpp"

namespace tigr::dynamic {

using transform::EdgeLayout;
using transform::VirtualNode;
using transform::familySize;
using transform::forEachVirtualNodeAt;

namespace {

/** Per-vertex family sizes as an exclusive scan: offsets[v] is where
 *  vertex v's family starts in a tight vertex-ordered entry array,
 *  offsets[n] the total. Bit-identical for any thread count. */
std::vector<std::size_t>
familyOffsets(const DynamicGraph &graph, GraphSide side,
              NodeId degree_bound, par::ThreadPool *pool)
{
    const NodeId n = graph.numNodes();
    std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1,
                                     0);
    par::parallelFor(pool, n, par::kDefaultGrain,
                     [&](std::uint64_t v, unsigned) {
                         const NodeId node = static_cast<NodeId>(v);
                         const EdgeIndex d = side == GraphSide::Out
                                                 ? graph.degree(node)
                                                 : graph.inDegree(node);
                         offsets[v] = familySize(d, degree_bound);
                     });
    par::chunkedExclusiveScan(pool, offsets);
    return offsets;
}

} // namespace

EdgeIndex
IncrementalVirtualizer::sideDegree(NodeId v) const
{
    return side_ == GraphSide::Out ? graph_->degree(v)
                                   : graph_->inDegree(v);
}

EdgeIndex
IncrementalVirtualizer::sideBegin(NodeId v) const
{
    return side_ == GraphSide::Out ? graph_->edgeBegin(v)
                                   : graph_->inEdgeBegin(v);
}

const std::vector<TouchedVertex> &
IncrementalVirtualizer::sideTouched(const EpochDelta &delta) const
{
    return side_ == GraphSide::Out ? delta.touched : delta.touchedIn;
}

IncrementalVirtualizer::IncrementalVirtualizer(
    const DynamicGraph &graph, NodeId degree_bound, EdgeLayout layout,
    StartAddressing addressing, par::ThreadPool *pool, GraphSide side)
    : degreeBound_(degree_bound), layout_(layout),
      addressing_(addressing), side_(side), epoch_(graph.epoch()),
      graph_(&graph)
{
    if (degree_bound == 0)
        throw std::invalid_argument(
            "tigr: virtual degree bound must be positive");
    const NodeId n = graph.numNodes();
    if (addressing_ == StartAddressing::Arena) {
        rebuildArena(pool);
        return;
    }
    vbase_.resize(static_cast<std::size_t>(n) + 1);
    begins_.resize(static_cast<std::size_t>(n) + 1);
    EdgeIndex edge_cursor = 0;
    EdgeIndex entry_cursor = 0;
    for (NodeId v = 0; v < n; ++v) {
        begins_[v] = edge_cursor;
        vbase_[v] = entry_cursor;
        const EdgeIndex d = sideDegree(v);
        entry_cursor += familySize(d, degree_bound);
        edge_cursor += d;
    }
    begins_[n] = edge_cursor;
    vbase_[n] = entry_cursor;
    nodes_.resize(entry_cursor);
    par::parallelFor(pool, n, par::kDefaultGrain,
                     [&](std::uint64_t i, unsigned) {
                         const NodeId v = static_cast<NodeId>(i);
                         std::size_t slot = vbase_[v];
                         forEachVirtualNodeAt(
                             v, begins_[v], sideDegree(v),
                             degreeBound_, layout_,
                             [&](const VirtualNode &node) {
                                 nodes_[slot++] = node;
                             });
                     });
}

void
IncrementalVirtualizer::rebuildArena(par::ThreadPool *pool)
{
    const NodeId n = graph_->numNodes();
    entryBegin_.resize(n);
    entryCount_.resize(n);
    entryCap_.resize(n);
    const std::vector<std::size_t> offsets =
        familyOffsets(*graph_, side_, degreeBound_, pool);
    const std::size_t total = offsets[n];
    // Entries are packed tight (every slot live, caps == sizes) but
    // the buffer keeps ~12% spare capacity: the first relocations
    // after a rebuild then append at the tail without a reallocation
    // that would copy the whole array — an O(entries) cliff inside an
    // otherwise O(touched) repair.
    nodes_.clear();
    nodes_.reserve(total + total / 8 + 64);
    nodes_.resize(total);
    par::parallelFor(
        pool, n, par::kDefaultGrain, [&](std::uint64_t i, unsigned) {
            const NodeId v = static_cast<NodeId>(i);
            std::size_t slot = offsets[v];
            forEachVirtualNodeAt(v, sideBegin(v), sideDegree(v),
                                 degreeBound_, layout_,
                                 [&](const VirtualNode &node) {
                                     nodes_[slot++] = node;
                                 });
            entryBegin_[v] = static_cast<EdgeIndex>(offsets[v]);
            const EdgeIndex fam =
                static_cast<EdgeIndex>(slot - offsets[v]);
            entryCount_[v] = fam;
            entryCap_[v] = fam;
        });
    liveEntries_ = total;
    compactionsSeen_ = graph_->compactions();
}

RepairStats
IncrementalVirtualizer::rebase(par::ThreadPool *pool)
{
    if (addressing_ != StartAddressing::Arena)
        throw std::logic_error(
            "tigr: rebase() is an arena-addressing operation; dense "
            "starts survive graph compaction unchanged");
    RepairStats stats;
    stats.entriesBefore = liveEntries_;
    rebuildArena(pool);
    // The rebuilt array reflects the graph's *current* state, so
    // resync the epoch too: a delta the virtualizer refused (applied
    // to the graph after an unrebased compact) is absorbed here.
    epoch_ = graph_->epoch();
    stats.epoch = epoch_;
    stats.repairedVertices = graph_->numNodes();
    stats.entriesAfter = liveEntries_;
    return stats;
}

void
IncrementalVirtualizer::requireFreshSlots(const char *what) const
{
    if (addressing_ != StartAddressing::Arena)
        return;
    if (graph_->compactions() != compactionsSeen_)
        throw std::logic_error(
            std::string("tigr: ") + what +
            " on an arena-addressed virtual array after "
            "DynamicGraph::compact(); call rebase() first");
}

RepairStats
IncrementalVirtualizer::applyDelta(const EpochDelta &delta,
                                   par::ThreadPool *pool)
{
    if (delta.epoch != epoch_ + 1)
        throw std::invalid_argument(
            "tigr: delta for epoch " + std::to_string(delta.epoch) +
            " applied to virtual array at epoch " +
            std::to_string(epoch_));
    if (addressing_ == StartAddressing::Arena)
        return applyDeltaArena(delta);
    return applyDeltaDense(delta, pool);
}

RepairStats
IncrementalVirtualizer::applyDeltaArena(const EpochDelta &delta)
{
    requireFreshSlots("applyDelta");
    RepairStats stats;
    stats.entriesBefore = liveEntries_;

    for (const TouchedVertex &t : sideTouched(delta)) {
        const NodeId v = t.vertex;
        const EdgeIndex seg_begin = sideBegin(v);
        // A family is stale iff its degree changed or the graph
        // relocated the segment (insert into a full segment moves the
        // block to the arena tail — detectable even at unchanged
        // degree because entry 0's start always equals the segment
        // begin, in both layouts, including zero-degree families).
        if (t.oldDegree == t.newDegree &&
            nodes_[entryBegin_[v]].start == seg_begin)
            continue;
        const EdgeIndex old_fam = entryCount_[v];
        const EdgeIndex new_fam =
            familySize(t.newDegree, degreeBound_);
        if (new_fam > entryCap_[v]) {
            // Outgrown family: abandon the block (it becomes entry
            // slack) and re-home at the tail with growth slack,
            // mirroring DynamicGraph::relocate.
            const EdgeIndex cap =
                new_fam + std::max<EdgeIndex>(2, new_fam / 2);
            entryBegin_[v] =
                static_cast<EdgeIndex>(nodes_.size());
            entryCap_[v] = cap;
            nodes_.resize(nodes_.size() + cap);
            ++stats.relocatedFamilies;
        }
        std::size_t slot = entryBegin_[v];
        forEachVirtualNodeAt(v, seg_begin, t.newDegree, degreeBound_,
                             layout_, [&](const VirtualNode &node) {
                                 nodes_[slot++] = node;
                             });
        entryCount_[v] = new_fam;
        liveEntries_ += new_fam;
        liveEntries_ -= old_fam;
        ++stats.repairedVertices;
        if (new_fam != old_fam)
            ++stats.resplitFamilies;
    }

    epoch_ = delta.epoch;
    stats.epoch = epoch_;
    stats.entriesAfter = liveEntries_;
    return stats;
}

RepairStats
IncrementalVirtualizer::applyDeltaDense(const EpochDelta &delta,
                                        par::ThreadPool *pool)
{
    RepairStats stats;
    stats.entriesBefore = nodes_.size();

    // Reweight-only touches change no degree, hence no family.
    const std::vector<TouchedVertex> &touched = sideTouched(delta);
    std::vector<const TouchedVertex *> changed;
    changed.reserve(touched.size());
    for (const TouchedVertex &t : touched)
        if (t.oldDegree != t.newDegree)
            changed.push_back(&t);

    if (changed.empty()) {
        epoch_ = delta.epoch;
        stats.epoch = epoch_;
        stats.entriesAfter = nodes_.size();
        return stats;
    }

    const NodeId n = static_cast<NodeId>(begins_.size() - 1);
    const NodeId first = changed.front()->vertex;

    // The repair is fully in place. Between changed families the array
    // splits into runs of untouched entries; a run's destination and
    // start adjustment are pure prefix sums of the family-size and
    // degree deltas, so everything is planned before a byte moves.
    // Runs whose cumulative entry delta is zero never move — when the
    // cumulative edge delta is also zero they cost literally nothing,
    // otherwise a single in-place `start +=` sweep. Runs that do move
    // go left in a forward pass and right in a backward pass, which
    // never clobbers an unread source (destinations are disjoint and
    // ordered, so a left move writes below every later source and a
    // right move above every earlier destination). That caps the
    // repair at one read-modify-write of the affected suffix plus
    // O(changed families) of real re-splitting. The element-wise
    // offset and start sweeps parallelize over @p pool (disjoint
    // slots, bit-identical at any thread count); the run moves stay
    // serial — their in-place ordering is what makes them safe.
    struct Run
    {
        EdgeIndex srcLo, srcHi, dst;
        std::int64_t startDelta;
    };
    struct Fam
    {
        NodeId vertex;
        EdgeIndex dst, newBegin, newDegree;
    };
    std::vector<Run> runs;
    runs.reserve(changed.size() + 1);
    std::vector<Fam> fams;
    fams.reserve(changed.size());

    std::int64_t edge_delta = 0;
    std::int64_t entry_delta = 0;
    EdgeIndex prev_entry_hi = vbase_[first];
    NodeId prev_vertex = first;
    // Offset fix-up for untouched vertices [lo, hi]; skips any array
    // whose running delta is zero, one fused pass when both moved.
    const auto shiftOffsets = [&](NodeId lo, NodeId hi) {
        const std::uint64_t count =
            static_cast<std::uint64_t>(hi) - lo + 1;
        const std::int64_t edelta = edge_delta;
        const std::int64_t vdelta = entry_delta;
        if (edelta != 0 && vdelta != 0) {
            par::parallelFor(
                pool, count, par::kDefaultGrain,
                [&, lo](std::uint64_t i, unsigned) {
                    const std::size_t w = lo + i;
                    begins_[w] = static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(begins_[w]) +
                        edelta);
                    vbase_[w] = static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(vbase_[w]) +
                        vdelta);
                });
        } else if (edelta != 0) {
            par::parallelFor(
                pool, count, par::kDefaultGrain,
                [&, lo](std::uint64_t i, unsigned) {
                    const std::size_t w = lo + i;
                    begins_[w] = static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(begins_[w]) +
                        edelta);
                });
        } else if (vdelta != 0) {
            par::parallelFor(
                pool, count, par::kDefaultGrain,
                [&, lo](std::uint64_t i, unsigned) {
                    const std::size_t w = lo + i;
                    vbase_[w] = static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(vbase_[w]) +
                        vdelta);
                });
        }
    };
    for (const TouchedVertex *t : changed) {
        const NodeId v = t->vertex;
        const EdgeIndex old_lo = vbase_[v];
        const EdgeIndex old_hi = vbase_[v + 1];
        const EdgeIndex old_family = old_hi - old_lo;
        const EdgeIndex new_family =
            familySize(t->newDegree, degreeBound_);
        runs.push_back({prev_entry_hi, old_lo,
                        static_cast<EdgeIndex>(
                            static_cast<std::int64_t>(prev_entry_hi) +
                            entry_delta),
                        edge_delta});
        if (v > prev_vertex)
            shiftOffsets(prev_vertex, v - 1);
        const EdgeIndex new_begin = static_cast<EdgeIndex>(
            static_cast<std::int64_t>(begins_[v]) + edge_delta);
        const EdgeIndex fam_dst = static_cast<EdgeIndex>(
            static_cast<std::int64_t>(old_lo) + entry_delta);
        fams.push_back({v, fam_dst, new_begin, t->newDegree});
        begins_[v] = new_begin;
        vbase_[v] = fam_dst;
        if (new_family != old_family)
            ++stats.resplitFamilies;
        ++stats.repairedVertices;
        edge_delta += static_cast<std::int64_t>(t->newDegree) -
                      static_cast<std::int64_t>(t->oldDegree);
        entry_delta += static_cast<std::int64_t>(new_family) -
                       static_cast<std::int64_t>(old_family);
        prev_entry_hi = old_hi;
        prev_vertex = v + 1;
    }
    runs.push_back({prev_entry_hi,
                    static_cast<EdgeIndex>(nodes_.size()),
                    static_cast<EdgeIndex>(
                        static_cast<std::int64_t>(prev_entry_hi) +
                        entry_delta),
                    edge_delta});
    shiftOffsets(prev_vertex, n);

    const std::size_t new_size = static_cast<std::size_t>(
        static_cast<std::int64_t>(nodes_.size()) + entry_delta);
    if (new_size > nodes_.size())
        nodes_.resize(new_size);

    // memmove plus a separate vectorizable start sweep beats a fused
    // element loop ~3x: the struct-wise copy defeats SIMD, the split
    // passes don't, and the run usually still sits in cache for the
    // second pass.
    const auto moveRun = [&](const Run &r) {
        const std::size_t count = r.srcHi - r.srcLo;
        if (count == 0)
            return;
        VirtualNode *const base = nodes_.data();
        if (r.dst != r.srcLo) {
            // Short runs dodge the memmove call overhead — with a few
            // thousand families changed per batch most runs are tiny.
            if (count >= 16) {
                std::memmove(base + r.dst, base + r.srcLo,
                             count * sizeof(VirtualNode));
            } else if (r.dst < r.srcLo) {
                for (std::size_t i = 0; i < count; ++i)
                    base[r.dst + i] = base[r.srcLo + i];
            } else {
                for (std::size_t i = count; i-- > 0;)
                    base[r.dst + i] = base[r.srcLo + i];
            }
        }
        if (r.startDelta != 0) {
            VirtualNode *const run = base + r.dst;
            const std::int64_t sdelta = r.startDelta;
            par::parallelFor(pool, count, par::kDefaultGrain,
                             [&](std::uint64_t i, unsigned) {
                                 run[i].start =
                                     static_cast<EdgeIndex>(
                                         static_cast<std::int64_t>(
                                             run[i].start) +
                                         sdelta);
                             });
            stats.shiftedEntries += count;
        }
    };
    for (const Run &r : runs)
        if (r.dst <= r.srcLo)
            moveRun(r);
    for (std::size_t i = runs.size(); i-- > 0;)
        if (runs[i].dst > runs[i].srcLo)
            moveRun(runs[i]);
    for (const Fam &f : fams) {
        EdgeIndex out = f.dst;
        forEachVirtualNodeAt(f.vertex, f.newBegin, f.newDegree,
                             degreeBound_, layout_,
                             [&](const VirtualNode &node) {
                                 nodes_[out++] = node;
                             });
    }
    if (new_size < nodes_.size())
        nodes_.resize(new_size);
    epoch_ = delta.epoch;
    stats.epoch = epoch_;
    stats.entriesAfter = nodes_.size();
    return stats;
}

std::vector<VirtualNode>
IncrementalVirtualizer::canonicalNodes(par::ThreadPool *pool) const
{
    if (addressing_ != StartAddressing::Arena)
        return nodes_;
    requireFreshSlots("canonicalNodes");
    const NodeId n = graph_->numNodes();
    // Dense row offsets plus tight entry offsets, then every entry
    // maps by its offset inside the vertex's arena segment:
    // start_dense = dense_begin[v] + (start_arena − arena_begin[v]).
    std::vector<std::size_t> dense_begin(
        static_cast<std::size_t>(n) + 1, 0);
    std::vector<std::size_t> out_off(static_cast<std::size_t>(n) + 1,
                                     0);
    par::parallelFor(pool, n, par::kDefaultGrain,
                     [&](std::uint64_t v, unsigned) {
                         dense_begin[v] =
                             sideDegree(static_cast<NodeId>(v));
                         out_off[v] = entryCount_[v];
                     });
    par::chunkedExclusiveScan(pool, dense_begin);
    par::chunkedExclusiveScan(pool, out_off);
    std::vector<VirtualNode> out(liveEntries_);
    par::parallelFor(
        pool, n, par::kDefaultGrain, [&](std::uint64_t i, unsigned) {
            const NodeId v = static_cast<NodeId>(i);
            const EdgeIndex arena_begin = sideBegin(v);
            const VirtualNode *src = nodes_.data() + entryBegin_[v];
            VirtualNode *dst = out.data() + out_off[v];
            for (EdgeIndex e = 0; e < entryCount_[v]; ++e) {
                VirtualNode node = src[e];
                node.start = static_cast<EdgeIndex>(
                    dense_begin[v] + (node.start - arena_begin));
                dst[e] = node;
            }
        });
    return out;
}

std::optional<std::string>
differentialCheck(const DynamicGraph &graph,
                  const IncrementalVirtualizer &virtualizer)
{
    // The In-side oracle reverses the dense forward materialization —
    // deliberately NOT toReversedCsr(), so the check stays independent
    // of the reverse arena whose maintenance it is proving.
    const graph::Csr dense = virtualizer.side() == GraphSide::Out
                                 ? graph.toCsr()
                                 : graph.toCsr().reversed();
    const transform::VirtualGraph rebuilt(
        dense, virtualizer.degreeBound(), virtualizer.layout());
    const auto expect = rebuilt.virtualNodes();
    std::vector<VirtualNode> canon;
    std::span<const VirtualNode> got;
    if (virtualizer.addressing() == StartAddressing::Arena) {
        canon = virtualizer.canonicalNodes();
        got = canon;
    } else {
        got = virtualizer.virtualNodes();
    }
    if (expect.size() != got.size())
        return "virtual array size " + std::to_string(got.size()) +
               " != rebuilt size " + std::to_string(expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        if (!(expect[i] == got[i]))
            return "virtual entry " + std::to_string(i) +
                   " diverges: physical " +
                   std::to_string(got[i].physicalId) + "/" +
                   std::to_string(expect[i].physicalId) + " start " +
                   std::to_string(got[i].start) + "/" +
                   std::to_string(expect[i].start) + " stride " +
                   std::to_string(got[i].stride) + "/" +
                   std::to_string(expect[i].stride) + " count " +
                   std::to_string(got[i].count) + "/" +
                   std::to_string(expect[i].count);
    }
    if (virtualizer.addressing() == StartAddressing::Arena) {
        // The raw entry arena's own invariants: each family sized by
        // the live degree, entry 0 anchored at the arena segment.
        for (NodeId v = 0; v < dense.numNodes(); ++v) {
            const auto fam = virtualizer.familyOf(v);
            const std::size_t want = familySize(
                dense.degree(v), virtualizer.degreeBound());
            const EdgeIndex seg_begin =
                virtualizer.side() == GraphSide::Out
                    ? graph.edgeBegin(v)
                    : graph.inEdgeBegin(v);
            if (fam.size() != want)
                return "family of node " + std::to_string(v) +
                       " has " + std::to_string(fam.size()) +
                       " entries, expected " + std::to_string(want);
            if (fam[0].start != seg_begin)
                return "family of node " + std::to_string(v) +
                       " anchors at arena slot " +
                       std::to_string(fam[0].start) +
                       ", segment begins at " +
                       std::to_string(seg_begin);
        }
        return std::nullopt;
    }
    const auto entry_offsets = virtualizer.entryOffsets();
    EdgeIndex entry_cursor = 0;
    for (NodeId v = 0; v < dense.numNodes(); ++v) {
        if (entry_offsets[v] != entry_cursor)
            return "entry offset of node " + std::to_string(v) +
                   " diverges: " + std::to_string(entry_offsets[v]) +
                   " != " + std::to_string(entry_cursor);
        entry_cursor += familySize(dense.degree(v),
                                   virtualizer.degreeBound());
    }
    if (entry_offsets[dense.numNodes()] != entry_cursor)
        return "total entry count offset diverges";
    return std::nullopt;
}

} // namespace tigr::dynamic
