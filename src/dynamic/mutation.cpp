#include "dynamic/mutation.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace tigr::dynamic {

namespace {

/** splitmix64: the repo's standard bit mixer (fault.cpp uses the same
 *  constants). Used here as a counter-based PRNG so generated batches
 *  are bit-for-bit portable across standard libraries — unlike
 *  std::uniform_int_distribution, whose sequences are
 *  implementation-defined. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Counter-based stream: draw i of stream (seed, tag). */
std::uint64_t
draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t i)
{
    return mix(mix(seed ^ 0x7469677264796e61ull) ^ mix(tag) ^ i);
}

/** Map a 64-bit draw into [0, bound) without modulo bias mattering for
 *  correctness (the multiply-shift reduction is uniform enough for
 *  test workloads and, unlike rejection sampling, consumes exactly one
 *  draw — keeping the stream position a pure function of i). */
std::uint64_t
bounded(std::uint64_t value, std::uint64_t bound)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(value) * bound) >> 64);
}

[[noreturn]] void
parseFail(std::size_t line_no, const std::string &why)
{
    throw MutationError(MutationErrorKind::Parse, line_no,
                        "tigr: mutation log line " +
                            std::to_string(line_no) + ": " + why);
}

} // namespace

std::string_view
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::InsertEdge: return "insert";
      case MutationKind::DeleteEdge: return "delete";
      case MutationKind::UpdateWeight: return "reweight";
    }
    return "unknown";
}

std::string_view
mutationErrorKindName(MutationErrorKind kind)
{
    switch (kind) {
      case MutationErrorKind::SourceOutOfRange:
        return "source-out-of-range";
      case MutationErrorKind::TargetOutOfRange:
        return "target-out-of-range";
      case MutationErrorKind::MissingEdge: return "missing-edge";
      case MutationErrorKind::Parse: return "parse";
    }
    return "unknown";
}

MutationBatch
generateBatch(const graph::Csr &graph, const GeneratorSpec &spec)
{
    MutationBatch batch;
    const NodeId n = graph.numNodes();
    if (n == 0)
        return batch;
    const EdgeIndex m = graph.numEdges();
    const Weight max_weight = spec.maxWeight == 0 ? 1 : spec.maxWeight;
    // The suffix-dominated regime: a nonzero hotSpan restricts insert
    // sources to [0, hot) and delete/reweight samples to the edge
    // slots those vertices own. hotSpan == 0 leaves every stream
    // bit-identical to the historical uniform draw.
    const NodeId hot =
        spec.hotSpan == 0 ? n : std::min<NodeId>(spec.hotSpan, n);
    const EdgeIndex slot_bound =
        spec.hotSpan == 0 ? m : graph.rowOffsets()[hot];

    // Deletes: sample distinct existing edge positions (so two deletes
    // never race for the same edge instance), in ascending order, then
    // map them to (src, dst) pairs. A Floyd-style distinct sample
    // would need a set; sorting a plain sample and deduplicating is
    // deterministic and just as portable.
    std::vector<EdgeIndex> delete_slots;
    if (spec.deletes > 0 && slot_bound > 0) {
        const std::size_t want =
            std::min<std::size_t>(spec.deletes, slot_bound);
        std::vector<EdgeIndex> sample;
        sample.reserve(want * 2);
        for (std::uint64_t i = 0; sample.size() < want; ++i) {
            const EdgeIndex slot =
                bounded(draw(spec.seed, 1, i), slot_bound);
            if (std::find(sample.begin(), sample.end(), slot) ==
                sample.end())
                sample.push_back(slot);
            // The stream is infinite and m >= want, so this always
            // terminates; bound the scan anyway for tiny graphs where
            // duplicates dominate.
            if (i > 64 * static_cast<std::uint64_t>(want) + 1024)
                break;
        }
        delete_slots = std::move(sample);
        std::sort(delete_slots.begin(), delete_slots.end());
    }

    // Resolve delete slots to pairs; remember the pairs so reweights
    // can avoid them (a reweight of a pair a delete also targets could
    // fail validation when the delete removes the last occurrence).
    std::vector<Mutation> deletes;
    deletes.reserve(delete_slots.size());
    std::vector<std::pair<NodeId, NodeId>> deleted_pairs;
    {
        NodeId src = 0;
        for (EdgeIndex slot : delete_slots) {
            while (graph.edgeEnd(src) <= slot)
                ++src;
            Mutation mutation;
            mutation.kind = MutationKind::DeleteEdge;
            mutation.src = src;
            mutation.dst = graph.edgeTarget(slot);
            deletes.push_back(mutation);
            deleted_pairs.emplace_back(mutation.src, mutation.dst);
        }
    }
    std::sort(deleted_pairs.begin(), deleted_pairs.end());
    const auto is_deleted = [&](NodeId src, NodeId dst) {
        return std::binary_search(deleted_pairs.begin(),
                                  deleted_pairs.end(),
                                  std::make_pair(src, dst));
    };

    // Reweights: existing edges whose (src, dst) no delete targets.
    std::vector<Mutation> reweights;
    if (spec.reweights > 0 && slot_bound > 0) {
        for (std::uint64_t i = 0;
             reweights.size() < spec.reweights &&
             i < 64 * static_cast<std::uint64_t>(spec.reweights) + 1024;
             ++i) {
            const EdgeIndex slot =
                bounded(draw(spec.seed, 2, i), slot_bound);
            NodeId src = 0;
            // Binary search the offset array for the owning node.
            const auto &offsets = graph.rowOffsets();
            src = static_cast<NodeId>(
                std::upper_bound(offsets.begin(), offsets.end(), slot) -
                offsets.begin() - 1);
            const NodeId dst = graph.edgeTarget(slot);
            if (is_deleted(src, dst))
                continue;
            Mutation mutation;
            mutation.kind = MutationKind::UpdateWeight;
            mutation.src = src;
            mutation.dst = dst;
            mutation.weight = static_cast<Weight>(
                1 + bounded(draw(spec.seed, 3, i), max_weight));
            reweights.push_back(mutation);
        }
    }

    // Inserts: uniform (src, dst) pairs; self-loops and duplicates are
    // legal edges in this repo, so no rejection is needed.
    std::vector<Mutation> inserts;
    inserts.reserve(spec.inserts);
    for (std::uint64_t i = 0; i < spec.inserts; ++i) {
        Mutation mutation;
        mutation.kind = MutationKind::InsertEdge;
        mutation.src =
            static_cast<NodeId>(bounded(draw(spec.seed, 4, i), hot));
        mutation.dst =
            static_cast<NodeId>(bounded(draw(spec.seed, 5, i), n));
        mutation.weight = static_cast<Weight>(
            1 + bounded(draw(spec.seed, 6, i), max_weight));
        inserts.push_back(mutation);
    }

    batch.reserve(inserts.size() + deletes.size() + reweights.size());
    batch.insert(batch.end(), inserts.begin(), inserts.end());
    batch.insert(batch.end(), deletes.begin(), deletes.end());
    batch.insert(batch.end(), reweights.begin(), reweights.end());

    // Seeded Fisher-Yates interleave so a batch exercises mixed apply
    // paths rather than sorted kind runs. Deletes of the same (src,
    // dst) pair commute ("first occurrence" is first occurrence either
    // way), so shuffling never invalidates the batch.
    for (std::size_t i = batch.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(
            bounded(draw(spec.seed, 7, i), i));
        std::swap(batch[i - 1], batch[j]);
    }
    return batch;
}

void
MutationLog::append(MutationBatch batch)
{
    batches_.push_back(std::move(batch));
}

std::size_t
MutationLog::totalMutations() const
{
    std::size_t total = 0;
    for (const MutationBatch &batch : batches_)
        total += batch.size();
    return total;
}

void
MutationLog::save(std::ostream &out) const
{
    for (std::size_t b = 0; b < batches_.size(); ++b) {
        out << "batch " << b << ' ' << batches_[b].size() << '\n';
        for (const Mutation &m : batches_[b]) {
            switch (m.kind) {
              case MutationKind::InsertEdge:
                out << "+ " << m.src << ' ' << m.dst << ' ' << m.weight
                    << '\n';
                break;
              case MutationKind::DeleteEdge:
                out << "- " << m.src << ' ' << m.dst << '\n';
                break;
              case MutationKind::UpdateWeight:
                out << "= " << m.src << ' ' << m.dst << ' ' << m.weight
                    << '\n';
                break;
            }
        }
    }
}

MutationLog
MutationLog::load(std::istream &in)
{
    MutationLog log;
    MutationLogReader reader(in);
    while (std::optional<MutationBatch> batch = reader.next())
        log.append(std::move(*batch));
    return log;
}

std::optional<MutationBatch>
MutationLogReader::next()
{
    std::string line;
    std::string head;
    // Tokenize one line: comment-stripped head + field stream. Returns
    // false for blank/comment-only lines (skip), true otherwise.
    std::istringstream fields;
    const auto tokenize = [&]() {
        ++lineNo_;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        fields.clear();
        fields.str(line);
        return static_cast<bool>(fields >> head);
    };
    const auto want_trailing_clean = [&]() {
        std::string extra;
        if (fields >> extra)
            parseFail(lineNo_,
                      "unexpected trailing '" + extra + "'");
    };
    // Parse the header on `line` (head == "batch" already seen).
    const auto take_header = [&]() {
        std::size_t index = 0;
        if (!(fields >> index >> pendingDeclared_))
            parseFail(lineNo_, "batch needs: batch INDEX COUNT");
        want_trailing_clean();
        if (index != started_)
            parseFail(lineNo_,
                      "batch index " + std::to_string(index) +
                          " out of order (expected " +
                          std::to_string(started_) + ")");
        haveHeader_ = true;
        ++started_;
    };

    if (!haveHeader_) {
        // Scan to the first batch header (or a clean end of stream).
        for (;;) {
            if (!std::getline(*in_, line))
                return std::nullopt;
            if (!tokenize())
                continue;
            if (head == "batch") {
                take_header();
                break;
            }
            if (head != "+" && head != "-" && head != "=")
                parseFail(lineNo_, "unknown record '" + head + "'");
            parseFail(lineNo_, "mutation before any batch header");
        }
    }

    MutationBatch batch;
    const std::size_t declared = pendingDeclared_;
    const auto check_count = [&](const char *which) {
        if (batch.size() != declared)
            parseFail(lineNo_,
                      std::string(which) + " batch declared " +
                          std::to_string(declared) +
                          " mutations, recorded " +
                          std::to_string(batch.size()));
    };
    while (std::getline(*in_, line)) {
        if (!tokenize())
            continue;
        if (head == "batch") {
            // The next header closes this batch; keep it pending so
            // the following next() call starts from it.
            check_count("previous");
            take_header();
            return batch;
        }
        if (head != "+" && head != "-" && head != "=")
            parseFail(lineNo_, "unknown record '" + head + "'");
        Mutation mutation;
        // A negative id must not wrap into a huge unsigned; stream
        // extraction into unsigned already rejects '-', and anything
        // non-numeric fails the stream.
        if (head == "+") {
            mutation.kind = MutationKind::InsertEdge;
            if (!(fields >> mutation.src >> mutation.dst >>
                  mutation.weight))
                parseFail(lineNo_, "insert needs: + SRC DST WEIGHT");
        } else if (head == "-") {
            mutation.kind = MutationKind::DeleteEdge;
            if (!(fields >> mutation.src >> mutation.dst))
                parseFail(lineNo_, "delete needs: - SRC DST");
        } else {
            mutation.kind = MutationKind::UpdateWeight;
            if (!(fields >> mutation.src >> mutation.dst >>
                  mutation.weight))
                parseFail(lineNo_,
                          "reweight needs: = SRC DST WEIGHT");
        }
        want_trailing_clean();
        batch.push_back(mutation);
    }
    check_count("final");
    haveHeader_ = false;
    return batch;
}

MutationLog
compactLog(const MutationLog &log)
{
    MutationLog compacted;
    for (const MutationBatch &batch : log.batches()) {
        std::vector<bool> dead(batch.size(), false);
        // Last not-yet-superseded reweight per (src, dst) pair.
        std::map<std::pair<NodeId, NodeId>, std::size_t> pending;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Mutation &m = batch[i];
            const auto pair = std::make_pair(m.src, m.dst);
            switch (m.kind) {
              case MutationKind::UpdateWeight: {
                // Supersedes any pending reweight of the pair: both
                // write the pair's first occurrence, and nothing
                // between them can retarget it (inserts only append;
                // a delete would have cleared the pending slot).
                const auto it = pending.find(pair);
                if (it != pending.end())
                    dead[it->second] = true;
                pending[pair] = i;
                break;
              }
              case MutationKind::DeleteEdge: {
                // Removes the occurrence the pending reweight wrote.
                const auto it = pending.find(pair);
                if (it != pending.end()) {
                    dead[it->second] = true;
                    pending.erase(it);
                }
                break;
              }
              case MutationKind::InsertEdge:
                // Appends a new occurrence; never changes which edge
                // is "first (src, dst)", so pending reweights stand.
                break;
            }
        }
        MutationBatch kept;
        kept.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            if (!dead[i])
                kept.push_back(batch[i]);
        compacted.append(std::move(kept));
    }
    return compacted;
}

} // namespace tigr::dynamic
