/**
 * @file
 * Mutable CSR with per-vertex edge slack: the graph container behind the
 * dynamic subsystem (docs/dynamic.md). Applies MutationBatches in whole
 * epochs with strong exception guarantees, keeps each vertex's edge
 * segment contiguous (so the virtual split math still applies per
 * vertex), and compacts dead slack periodically.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/mutation.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::dynamic {

/** One vertex whose edge segment a batch changed. Reweight-only touches
 *  appear with oldDegree == newDegree (the virtualizer skips them; the
 *  cache invalidation layer must not). */
struct TouchedVertex
{
    NodeId vertex = 0;
    EdgeIndex oldDegree = 0;
    EdgeIndex newDegree = 0;

    friend bool operator==(const TouchedVertex &,
                           const TouchedVertex &) = default;
};

/** What one applied batch changed: the epoch it produced plus the
 *  per-vertex degree deltas the IncrementalVirtualizer repairs from. */
struct EpochDelta
{
    /** Epoch the graph is at after this batch (first batch -> 1). */
    std::uint64_t epoch = 0;

    /** Vertices whose out-segment the batch touched, sorted by id,
     *  no duplicates. */
    std::vector<TouchedVertex> touched;

    /** Vertices whose in-segment the batch touched (the mirror of
     *  `touched` over the reverse arena: degrees are in-degrees),
     *  sorted by id, no duplicates. */
    std::vector<TouchedVertex> touchedIn;

    std::size_t inserts = 0;
    std::size_t deletes = 0;
    std::size_t reweights = 0;
};

/**
 * A directed weighted graph that starts life as an immutable Csr and
 * then absorbs mutation batches.
 *
 * Storage is a slack arena: per-vertex (begin, degree, capacity)
 * triples over shared target/weight arrays. Construction is tight
 * (capacity == degree, begins == the Csr's row offsets). An insert
 * into a full segment relocates that vertex's block to the arena tail
 * with growth slack; the abandoned block becomes dead slack that
 * compact() reclaims. Deletes shift the remainder of the segment left,
 * preserving storage order — so toCsr() of an unmutated graph equals
 * the source Csr exactly, and edge order stays the stable order
 * Csr::fromCoo would produce.
 *
 * A mirrored *reverse* slack arena keeps each vertex's in-neighbor
 * segment contiguous and is updated in the same O(touched) pass as the
 * forward one. The in-segment invariant matches Csr::reversed()'s
 * counting sort exactly: entries ordered by source id ascending, and
 * among equal sources by the forward slot order of the parallel
 * (src, dst) edges. Inserts place the new source at the upper bound of
 * its id (the new forward edge is appended last in its segment, so it
 * ranks last among equal sources); deletes and reweights hit the first
 * in-entry with the matching source, mirroring the forward first-match
 * rule. Consequently toReversedCsr() is bit-identical to
 * toCsr().reversed() at every epoch.
 *
 * apply() validates the whole batch before touching any state: a
 * thrown MutationError (or an injected fault at the mutation.apply
 * site) leaves the graph bit-for-bit unchanged.
 */
class DynamicGraph
{
  public:
    DynamicGraph() = default;

    /** Adopt @p source at epoch 0 with a tight arena. */
    explicit DynamicGraph(const graph::Csr &source);

    /** Number of nodes (fixed for the lifetime of the graph). */
    NodeId numNodes() const
    {
        return static_cast<NodeId>(degrees_.size());
    }

    /** Number of live edges. */
    EdgeIndex numEdges() const { return liveEdges_; }

    /** Outdegree of node @p v. */
    EdgeIndex degree(NodeId v) const { return degrees_[v]; }

    /** First arena slot of node @p v's segment. */
    EdgeIndex edgeBegin(NodeId v) const { return begins_[v]; }

    /** Allocated capacity of node @p v's segment. */
    EdgeIndex capacity(NodeId v) const { return caps_[v]; }

    /** Destinations of node @p v's live edges. */
    std::span<const NodeId>
    outNeighbors(NodeId v) const
    {
        return {targets_.data() + begins_[v],
                static_cast<std::size_t>(degrees_[v])};
    }

    /** Weights of node @p v's live edges, parallel to outNeighbors. */
    std::span<const Weight>
    outWeights(NodeId v) const
    {
        return {weights_.data() + begins_[v],
                static_cast<std::size_t>(degrees_[v])};
    }

    /** Destination stored in arena slot @p slot. Valid for any slot an
     *  arena-addressed virtual entry owns (inside a live segment). */
    NodeId arenaTarget(EdgeIndex slot) const { return targets_[slot]; }

    /** Weight stored in arena slot @p slot, parallel to arenaTarget. */
    Weight arenaWeight(EdgeIndex slot) const { return weights_[slot]; }

    /** Per-vertex segment begins (size n), for validating externally
     *  produced arena-addressed virtual arrays. */
    std::span<const EdgeIndex> segmentBegins() const { return begins_; }

    /** Per-vertex live degrees (size n), parallel to segmentBegins. */
    std::span<const EdgeIndex> segmentDegrees() const
    {
        return degrees_;
    }

    /** Indegree of node @p v (reverse arena). */
    EdgeIndex inDegree(NodeId v) const { return inDegrees_[v]; }

    /** First reverse-arena slot of node @p v's in-segment. */
    EdgeIndex inEdgeBegin(NodeId v) const { return inBegins_[v]; }

    /** Allocated capacity of node @p v's in-segment. */
    EdgeIndex inCapacity(NodeId v) const { return inCaps_[v]; }

    /** Sources of node @p v's live in-edges, ordered by source id then
     *  forward slot order — the order Csr::reversed() produces. */
    std::span<const NodeId>
    inNeighbors(NodeId v) const
    {
        return {inSources_.data() + inBegins_[v],
                static_cast<std::size_t>(inDegrees_[v])};
    }

    /** Weights of node @p v's live in-edges, parallel to inNeighbors. */
    std::span<const Weight>
    inWeights(NodeId v) const
    {
        return {inWeights_.data() + inBegins_[v],
                static_cast<std::size_t>(inDegrees_[v])};
    }

    /** Source stored in reverse-arena slot @p slot. Valid for any slot
     *  an arena-addressed reverse virtual entry owns. */
    NodeId inArenaSource(EdgeIndex slot) const
    {
        return inSources_[slot];
    }

    /** Weight stored in reverse-arena slot @p slot, parallel to
     *  inArenaSource. */
    Weight inArenaWeight(EdgeIndex slot) const
    {
        return inWeights_[slot];
    }

    /** Per-vertex in-segment begins (size n). */
    std::span<const EdgeIndex> inSegmentBegins() const
    {
        return inBegins_;
    }

    /** Per-vertex live in-degrees (size n), parallel to
     *  inSegmentBegins. */
    std::span<const EdgeIndex> inSegmentDegrees() const
    {
        return inDegrees_;
    }

    /** Total reverse-arena slots (live + slack). */
    EdgeIndex inArenaSlots() const
    {
        return static_cast<EdgeIndex>(inSources_.size());
    }

    /** Dead + over-allocated slots in the reverse arena. */
    EdgeIndex inSlackSlots() const
    {
        return inArenaSlots() - liveEdges_;
    }

    /** Current epoch: number of batches applied so far. */
    std::uint64_t epoch() const { return epoch_; }

    /** Total arena slots (live + slack). */
    EdgeIndex arenaSlots() const
    {
        return static_cast<EdgeIndex>(targets_.size());
    }

    /** Dead + over-allocated slots in the arena. */
    EdgeIndex slackSlots() const { return arenaSlots() - liveEdges_; }

    /** Slack as a fraction of the arena (0 for an empty arena). */
    double slackRatio() const;

    /** Number of compactions run so far (automatic + explicit). */
    std::uint64_t compactions() const { return compactions_; }

    /**
     * Validate then apply @p batch as one epoch.
     *
     * Validation covers the entire batch against the *projected* state:
     * node ids in range, and every delete/reweight matched against live
     * edges plus in-batch inserts minus earlier in-batch deletes of the
     * same (src, dst) pair. Only after the whole batch validates is any
     * state written (strong guarantee). The fault site
     * `mutation.apply` fires between validation and the first write, so
     * an injected fault also leaves the graph untouched.
     *
     * @throws MutationError naming the first offending batch position.
     */
    EpochDelta apply(const MutationBatch &batch);

    /** True when the arena has accumulated enough slack to be worth
     *  compacting (> 50% slack and at least 64 slack slots). Callers —
     *  GraphStore::mutate, tigr mutate — poll this after apply() and
     *  call compact(); keeping compaction out of apply() means a fault
     *  at either site interrupts exactly one of the two steps. */
    bool shouldCompact() const;

    /**
     * Rebuild a tight arena (capacity == degree, segments in vertex
     * order). Does not change any live edge or the epoch. The fault
     * site `mutation.compact` fires before the first write, so an
     * injected fault leaves the (uncompacted but consistent) arena
     * as it was.
     *
     * @return Number of arena slots reclaimed.
     */
    EdgeIndex compact();

    /** Materialize the live graph as a dense, immutable Csr. The
     *  result is bit-identical to applying the same batches via COO
     *  edge-list surgery: segments in vertex order, stable edge order
     *  within each vertex. */
    graph::Csr toCsr() const;

    /** Materialize the reversed live graph as a dense Csr straight
     *  from the reverse arena — bit-identical to toCsr().reversed()
     *  without building the forward Csr first. */
    graph::Csr toReversedCsr() const;

  private:
    /** Move node @p v's segment to the arena tail with room for at
     *  least @p need slots. */
    void relocate(NodeId v, EdgeIndex need);

    /** Move node @p v's in-segment to the reverse-arena tail with room
     *  for at least @p need slots. */
    void relocateIn(NodeId v, EdgeIndex need);

    std::vector<EdgeIndex> begins_;
    std::vector<EdgeIndex> degrees_;
    std::vector<EdgeIndex> caps_;
    std::vector<NodeId> targets_;
    std::vector<Weight> weights_;
    std::vector<EdgeIndex> inBegins_;
    std::vector<EdgeIndex> inDegrees_;
    std::vector<EdgeIndex> inCaps_;
    std::vector<NodeId> inSources_;
    std::vector<Weight> inWeights_;
    EdgeIndex liveEdges_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t compactions_ = 0;
};

} // namespace tigr::dynamic
