#include "algorithms/analytics.hpp"

namespace tigr::algorithms {

engine::DistancesResult
bfs(const graph::Csr &graph, NodeId source,
    engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.bfs(source);
}

engine::DistancesResult
sssp(const graph::Csr &graph, NodeId source,
     engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.sssp(source);
}

engine::WidthsResult
sswp(const graph::Csr &graph, NodeId source,
     engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.sswp(source);
}

engine::LabelsResult
cc(const graph::Csr &graph, engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.cc();
}

engine::RanksResult
pagerank(const graph::Csr &graph, engine::PageRankOptions pr_options,
         engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.pagerank(pr_options);
}

engine::CentralityResult
bc(const graph::Csr &graph, std::span<const NodeId> sources,
   engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.bc(sources);
}

engine::TrianglesResult
triangles(const graph::Csr &graph, engine::EngineOptions options)
{
    engine::GraphEngine eng(graph, options);
    return eng.triangles();
}

} // namespace tigr::algorithms
