/**
 * @file
 * One-call convenience wrappers around GraphEngine for the six analyses
 * the paper evaluates. Each constructs a throwaway engine, so use
 * GraphEngine directly when running several analyses over one graph
 * (the engine caches transformed structures between calls).
 */
#pragma once

#include <span>

#include "engine/graph_engine.hpp"

namespace tigr::algorithms {

/** Breadth-first search hop counts from @p source. */
engine::DistancesResult bfs(const graph::Csr &graph, NodeId source,
                            engine::EngineOptions options = {});

/** Single-source shortest paths from @p source. */
engine::DistancesResult sssp(const graph::Csr &graph, NodeId source,
                             engine::EngineOptions options = {});

/** Single-source widest paths from @p source. */
engine::WidthsResult sswp(const graph::Csr &graph, NodeId source,
                          engine::EngineOptions options = {});

/** Connected components (pass a symmetrized graph; see
 *  GraphEngine::cc). */
engine::LabelsResult cc(const graph::Csr &graph,
                        engine::EngineOptions options = {});

/** PageRank. */
engine::RanksResult pagerank(const graph::Csr &graph,
                             engine::PageRankOptions pr_options = {},
                             engine::EngineOptions options = {});

/** Betweenness centrality from @p sources. */
engine::CentralityResult bc(const graph::Csr &graph,
                            std::span<const NodeId> sources,
                            engine::EngineOptions options = {});

/** Triangle counting (pass a symmetric, deduplicated graph; see
 *  GraphEngine::triangles). */
engine::TrianglesResult triangles(const graph::Csr &graph,
                                  engine::EngineOptions options = {});

} // namespace tigr::algorithms
