/**
 * @file
 * Value semirings for push-based vertex-centric analyses.
 *
 * Each semiring defines how a value travels along an edge (extend) and
 * how candidate values combine at a node (an associative, commutative,
 * idempotent "better" reduction) — the exact associativity property
 * Theorem 3 of the paper requires. One push engine instantiated over
 * these four semirings yields BFS, SSSP, SSWP, and CC.
 */
#pragma once

#include <algorithm>

#include "graph/types.hpp"

namespace tigr::algorithms {

/**
 * Shortest-path semiring: distances extend by saturating addition and
 * reduce by minimum. With unit edge weights this is BFS (the paper's
 * reduction of BFS to SSSP); with zero "dumb weights" on UDT-introduced
 * edges it preserves distances across physical transformation
 * (Corollary 2).
 */
struct SsspSemiring
{
    using Value = Dist;

    /** Value of every node before the seed is planted. */
    static constexpr Value identity = kInfDist;

    /** Extend a path by one edge. */
    static Value
    extend(Value value, Weight weight)
    {
        return saturatingAdd(value, weight);
    }

    /** Is @p candidate an improvement over @p current? */
    static bool
    better(Value candidate, Value current)
    {
        return candidate < current;
    }
};

/**
 * Widest-path semiring: the width of a path is its minimum edge weight;
 * widths reduce by maximum. Infinite "dumb weights" on UDT-introduced
 * edges keep them neutral (Corollary 3).
 */
struct SswpSemiring
{
    using Value = Weight;

    static constexpr Value identity = 0;

    static Value
    extend(Value value, Weight weight)
    {
        return std::min(value, weight);
    }

    static bool
    better(Value candidate, Value current)
    {
        return candidate > current;
    }
};

/**
 * Connected-components semiring: node labels travel unchanged along
 * edges and reduce by minimum, converging to the smallest reachable
 * label. Run on a symmetrized graph, every node seeded with its own id,
 * this computes weak connectivity (Corollary 1).
 */
struct CcSemiring
{
    using Value = NodeId;

    static constexpr Value identity = kInvalidNode;

    static Value
    extend(Value value, Weight weight)
    {
        (void)weight;
        return value;
    }

    static bool
    better(Value candidate, Value current)
    {
        return candidate < current;
    }
};

} // namespace tigr::algorithms
