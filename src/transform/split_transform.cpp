#include "transform/split_transform.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <random>
#include <utility>

#include "par/parallel_for.hpp"

namespace tigr::transform {

Weight
dumbWeight(DumbWeightPolicy policy)
{
    switch (policy) {
      case DumbWeightPolicy::Zero:
        return kZeroWeight;
      case DumbWeightPolicy::Infinity:
        return kInfWeight;
      case DumbWeightPolicy::One:
        return 1;
    }
    return 0;
}

PhysicalTransformResult
SplitTransform::apply(const graph::Csr &input,
                      const SplitOptions &options) const
{
    const NodeId n = input.numNodes();
    const NodeId k = options.degreeBound;
    const Weight internal_weight = dumbWeight(options.weightPolicy);
    assert(k >= 1);

    PhysicalTransformResult result;
    result.originalNodes = n;
    result.stats.maxDegreeBefore = input.maxOutDegree();

    // Pass 1: plan every family and allocate split-node ids. Plans
    // are independent per node, so planning parallelizes across host
    // threads with a deterministic outcome (ids are assigned by a
    // serial sweep afterwards).
    result.rootOf.resize(n);
    for (NodeId v = 0; v < n; ++v)
        result.rootOf[v] = v;

    struct PlannedFamily
    {
        NodeId root;
        SplitPlan plan;
        NodeId firstNewId; // ids firstNewId .. firstNewId+memberCount-2
    };
    std::vector<PlannedFamily> planned;
    // memberId(f, m): global node id of member m of family f.
    auto memberId = [](const PlannedFamily &f, std::uint32_t m) {
        return m == 0 ? f.root : f.firstNewId + (m - 1);
    };

    std::vector<NodeId> high_degree;
    for (NodeId v = 0; v < n; ++v)
        if (input.degree(v) > k)
            high_degree.push_back(v);

    // Each plan lands in its own slot, so the loop is deterministic
    // for any worker count. An engine-owned pool is reused when given;
    // otherwise `threads` spins up a transient one.
    std::vector<SplitPlan> plans(high_degree.size());
    std::unique_ptr<par::ThreadPool> local_pool;
    par::ThreadPool *pool = options.pool;
    if (!pool && options.threads > 1 && high_degree.size() > 1)
        pool = (local_pool =
                    std::make_unique<par::ThreadPool>(options.threads))
                   .get();
    par::parallelFor(pool, high_degree.size(), 64,
                     [&](std::uint64_t i, unsigned) {
                         plans[i] =
                             plan(input.degree(high_degree[i]), k);
                     });

    NodeId next_id = n;
    std::vector<NodeId> family_index(n, kInvalidNode);
    planned.reserve(high_degree.size());
    for (std::size_t i = 0; i < high_degree.size(); ++i) {
        NodeId v = high_degree[i];
        SplitPlan &p = plans[i];
        assert(p.memberCount >= 1);
        assert(p.ownerOfEdge.size() == input.degree(v));
        family_index[v] = static_cast<NodeId>(planned.size());
        planned.push_back({v, std::move(p), next_id});
        next_id += planned.back().plan.memberCount - 1;
    }

    const NodeId total_nodes = next_id;
    result.rootOf.resize(total_nodes);
    result.families.reserve(planned.size());
    for (const PlannedFamily &f : planned) {
        FamilyInfo info;
        info.root = f.root;
        info.members.reserve(f.plan.memberCount);
        for (std::uint32_t m = 0; m < f.plan.memberCount; ++m) {
            NodeId id = memberId(f, m);
            info.members.push_back(id);
            result.rootOf[id] = f.root;
        }
        result.families.push_back(std::move(info));
    }

    // Entry selection: where an incoming edge of original node v lands.
    std::mt19937_64 rng(options.seed);
    auto entryOf = [&](NodeId v) -> NodeId {
        NodeId fi = family_index[v];
        if (fi == kInvalidNode || entryAtRoot())
            return v;
        const std::vector<NodeId> &members = result.families[fi].members;
        std::uniform_int_distribution<std::size_t> pick(
            0, members.size() - 1);
        return members[pick(rng)];
    };

    // Pass 2: emit all edges of the transformed graph.
    graph::CooEdges coo(total_nodes);
    coo.reserve(input.numEdges());
    for (NodeId v = 0; v < n; ++v) {
        NodeId fi = family_index[v];
        if (fi == kInvalidNode) {
            // Untouched node: copy edges, retargeting split targets.
            for (EdgeIndex e = input.edgeBegin(v); e < input.edgeEnd(v);
                 ++e) {
                coo.add(v, entryOf(input.edgeTarget(e)),
                        input.edgeWeight(e));
            }
            continue;
        }
        const PlannedFamily &f = planned[fi];
        // Original out-edges, each owned by its planned member.
        EdgeIndex base = input.edgeBegin(v);
        for (EdgeIndex i = 0; i < input.degree(v); ++i) {
            NodeId owner = memberId(f, f.plan.ownerOfEdge[i]);
            coo.add(owner, entryOf(input.edgeTarget(base + i)),
                    input.edgeWeight(base + i));
        }
        // Internal family edges with the dumb weight.
        for (auto [from, to] : f.plan.internalEdges) {
            coo.add(memberId(f, from), memberId(f, to), internal_weight);
        }
        result.stats.newEdges += f.plan.internalEdges.size();
        result.stats.newNodes += f.plan.memberCount - 1;
        ++result.stats.highDegreeNodes;
    }

    result.graph = graph::Csr::fromCoo(coo);
    result.stats.maxDegreeAfter = result.graph.maxOutDegree();
    return result;
}

} // namespace tigr::transform
