#include "transform/virtual_graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "par/parallel_for.hpp"

namespace tigr::transform {

VirtualGraph::VirtualGraph(const graph::Csr &physical,
                           NodeId degree_bound, EdgeLayout layout,
                           unsigned threads)
    : physical_(&physical), degreeBound_(degree_bound), layout_(layout)
{
    assert(degree_bound >= 1);
    const NodeId n = physical.numNodes();

    std::unique_ptr<par::ThreadPool> local_pool;
    par::ThreadPool *pool = nullptr;
    if (threads > 1)
        pool = (local_pool = std::make_unique<par::ThreadPool>(threads))
                   .get();

    // Per-node entry counts, then an exclusive prefix sum: with entry
    // positions fixed up front, the fill parallelizes with a
    // bit-identical result for any thread count.
    std::vector<std::size_t> offset(static_cast<std::size_t>(n) + 1, 0);
    par::parallelFor(pool, n, par::kDefaultGrain,
                     [&](std::uint64_t v, unsigned) {
                         EdgeIndex d =
                             physical.degree(static_cast<NodeId>(v));
                         offset[v] = d == 0 ? 1
                                            : (d + degree_bound - 1) /
                                                  degree_bound;
                     });
    par::chunkedExclusiveScan(pool, offset);
    nodes_.resize(offset[n]);

    par::parallelFor(pool, n, par::kDefaultGrain,
                     [&](std::uint64_t i, unsigned) {
                         const NodeId v = static_cast<NodeId>(i);
                         std::size_t slot = offset[v];
                         forEachVirtualNodeOf(
                             physical, v, degreeBound_, layout_,
                             [&](const VirtualNode &node) {
                                 nodes_[slot++] = node;
                             });
                     });
}

void
validateVirtualArray(std::span<const VirtualNode> nodes,
                     NodeId num_nodes, NodeId degree_bound,
                     std::span<const EdgeIndex> segment_begins,
                     std::span<const EdgeIndex> segment_degrees)
{
    if (degree_bound == 0)
        throw std::invalid_argument(
            "tigr: virtual node array with degree bound 0");
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const VirtualNode &node = nodes[i];
        auto bad = [&](const char *why) {
            throw std::invalid_argument(
                "tigr: virtual node entry " + std::to_string(i) +
                " inconsistent with the physical graph: " + why);
        };
        if (node.physicalId >= num_nodes)
            bad("physical id out of range");
        if (node.count > degree_bound)
            bad("owns more slots than the degree bound");
        if (node.count > 0) {
            // Guard stride * (count - 1) against uint64 wraparound: a
            // hostile entry must not wrap back inside the segment and
            // pass the containment check below.
            constexpr EdgeIndex kMax =
                std::numeric_limits<EdgeIndex>::max();
            if (node.count > 1 &&
                node.stride > (kMax - node.start) / (node.count - 1))
                bad("stride overflows the owned slot range");
            const EdgeIndex last =
                node.start + node.stride * (node.count - 1);
            const EdgeIndex begin =
                segment_begins[node.physicalId];
            const EdgeIndex end =
                begin + segment_degrees[node.physicalId];
            if (node.start < begin || last >= end)
                bad("owned slots outside the node's edge segment");
        }
    }
}

VirtualGraph
VirtualGraph::fromArrays(const graph::Csr &physical, NodeId degree_bound,
                         EdgeLayout layout,
                         std::vector<VirtualNode> nodes)
{
    // The dense rows are just segments whose begins are the row
    // offsets; share the segment validator with the arena-addressed
    // dynamic path.
    const NodeId n = physical.numNodes();
    std::vector<EdgeIndex> degrees(n);
    for (NodeId v = 0; v < n; ++v)
        degrees[v] = physical.degree(v);
    validateVirtualArray(
        nodes, n, degree_bound,
        std::span<const EdgeIndex>(physical.rowOffsets().data(), n),
        degrees);

    VirtualGraph vg;
    vg.physical_ = &physical;
    vg.degreeBound_ = degree_bound;
    vg.layout_ = layout;
    vg.nodes_ = std::move(nodes);
    return vg;
}

std::size_t
VirtualGraph::paperBytes() const
{
    // Figure 10(b): the node-offset array is replaced by the virtual
    // node array with two 4-byte fields per entry; edge targets stay 4
    // bytes each. Table 6's accounting covers the structural CSR only
    // (no weight array — the paper sizes the unweighted layout), and
    // the per-physical-node value array cancels out of ratios.
    return nodes_.size() * 8 +
           static_cast<std::size_t>(physical_->numEdges()) * 4;
}

std::size_t
VirtualGraph::paperBytesOriginal(const graph::Csr &physical)
{
    return (static_cast<std::size_t>(physical.numNodes()) + 1) * 4 +
           static_cast<std::size_t>(physical.numEdges()) * 4;
}

} // namespace tigr::transform
