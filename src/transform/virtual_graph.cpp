#include "transform/virtual_graph.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace tigr::transform {

VirtualGraph::VirtualGraph(const graph::Csr &physical,
                           NodeId degree_bound, EdgeLayout layout,
                           unsigned threads)
    : physical_(&physical), degreeBound_(degree_bound), layout_(layout)
{
    assert(degree_bound >= 1);
    const NodeId n = physical.numNodes();

    // Per-node entry counts, then exclusive prefix sums: with entry
    // positions fixed up front, the fill parallelizes with a
    // bit-identical result for any thread count.
    std::vector<std::size_t> offset(static_cast<std::size_t>(n) + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
        EdgeIndex d = physical.degree(v);
        offset[v + 1] =
            d == 0 ? 1 : (d + degree_bound - 1) / degree_bound;
    }
    for (NodeId v = 0; v < n; ++v)
        offset[v + 1] += offset[v];
    nodes_.resize(offset[n]);

    auto fill_range = [&](NodeId begin, NodeId end) {
        for (NodeId v = begin; v < end; ++v) {
            std::size_t slot = offset[v];
            forEachVirtualNodeOf(physical, v, degreeBound_, layout_,
                                 [&](const VirtualNode &node) {
                                     nodes_[slot++] = node;
                                 });
        }
    };

    const unsigned worker_count = std::max(1u, threads);
    if (worker_count > 1 && n > worker_count) {
        std::vector<std::thread> workers;
        const NodeId chunk = (n + worker_count - 1) / worker_count;
        for (unsigned t = 0; t < worker_count; ++t) {
            NodeId begin = std::min<NodeId>(n, t * chunk);
            NodeId end = std::min<NodeId>(n, begin + chunk);
            workers.emplace_back(fill_range, begin, end);
        }
        for (std::thread &worker : workers)
            worker.join();
    } else {
        fill_range(0, n);
    }
}

std::size_t
VirtualGraph::paperBytes() const
{
    // Figure 10(b): the node-offset array is replaced by the virtual
    // node array with two 4-byte fields per entry; edge targets stay 4
    // bytes each. Table 6's accounting covers the structural CSR only
    // (no weight array — the paper sizes the unweighted layout), and
    // the per-physical-node value array cancels out of ratios.
    return nodes_.size() * 8 +
           static_cast<std::size_t>(physical_->numEdges()) * 4;
}

std::size_t
VirtualGraph::paperBytesOriginal(const graph::Csr &physical)
{
    return (static_cast<std::size_t>(physical.numNodes()) + 1) * 4 +
           static_cast<std::size_t>(physical.numEdges()) * 4;
}

} // namespace tigr::transform
