#include "transform/basic_topologies.hpp"

#include <cassert>

namespace tigr::transform {

namespace {

/** ceil(degree / k): the paper's family size |B| (Definition 2). */
std::uint32_t
familySize(EdgeIndex degree, NodeId k)
{
    return static_cast<std::uint32_t>((degree + k - 1) / k);
}

/** Deal edges blockwise: edge i belongs to member i / k. */
std::vector<std::uint32_t>
blockOwners(EdgeIndex degree, NodeId k)
{
    std::vector<std::uint32_t> owners(degree);
    for (EdgeIndex i = 0; i < degree; ++i)
        owners[i] = static_cast<std::uint32_t>(i / k);
    return owners;
}

} // namespace

SplitPlan
CliqueTransform::plan(EdgeIndex degree, NodeId degree_bound) const
{
    assert(degree > degree_bound);
    SplitPlan result;
    const std::uint32_t p = familySize(degree, degree_bound);
    result.memberCount = p;
    result.ownerOfEdge = blockOwners(degree, degree_bound);
    result.internalEdges.reserve(
        static_cast<std::size_t>(p) * (p - 1));
    for (std::uint32_t a = 0; a < p; ++a)
        for (std::uint32_t b = 0; b < p; ++b)
            if (a != b)
                result.internalEdges.emplace_back(a, b);
    return result;
}

SplitPlan
CircularTransform::plan(EdgeIndex degree, NodeId degree_bound) const
{
    assert(degree > degree_bound);
    SplitPlan result;
    const std::uint32_t p = familySize(degree, degree_bound);
    result.memberCount = p;
    result.ownerOfEdge = blockOwners(degree, degree_bound);
    result.internalEdges.reserve(p);
    for (std::uint32_t a = 0; a < p; ++a)
        result.internalEdges.emplace_back(a, (a + 1) % p);
    return result;
}

SplitPlan
RecursiveStarTransform::plan(EdgeIndex degree, NodeId degree_bound) const
{
    assert(degree > degree_bound);
    assert(degree_bound >= 2 &&
           "recursive star needs K >= 2 to shrink each level");
    SplitPlan result;
    result.ownerOfEdge.resize(degree);

    // Level 0: satellites own the original edges blockwise.
    std::uint32_t next_member = 1; // 0 is the root hub
    std::vector<std::uint32_t> level;
    for (EdgeIndex i = 0; i < degree; i += degree_bound) {
        std::uint32_t member = next_member++;
        EdgeIndex end = std::min<EdgeIndex>(i + degree_bound, degree);
        for (EdgeIndex j = i; j < end; ++j)
            result.ownerOfEdge[j] = member;
        level.push_back(member);
    }

    // Recursively star the hub: while the current level's fanout still
    // exceeds K, interpose a level of intermediate hubs.
    while (level.size() > degree_bound) {
        std::vector<std::uint32_t> parents;
        for (std::size_t i = 0; i < level.size(); i += degree_bound) {
            std::uint32_t hub = next_member++;
            std::size_t end =
                std::min<std::size_t>(i + degree_bound, level.size());
            for (std::size_t j = i; j < end; ++j)
                result.internalEdges.emplace_back(hub, level[j]);
            parents.push_back(hub);
        }
        level = std::move(parents);
    }
    for (std::uint32_t member : level)
        result.internalEdges.emplace_back(0, member);
    result.memberCount = next_member;
    return result;
}

SplitPlan
StarTransform::plan(EdgeIndex degree, NodeId degree_bound) const
{
    assert(degree > degree_bound);
    SplitPlan result;
    const std::uint32_t satellites = familySize(degree, degree_bound);
    result.memberCount = satellites + 1; // member 0 is the hub (root)
    result.ownerOfEdge.resize(degree);
    for (EdgeIndex i = 0; i < degree; ++i) {
        result.ownerOfEdge[i] =
            1 + static_cast<std::uint32_t>(i / degree_bound);
    }
    result.internalEdges.reserve(satellites);
    for (std::uint32_t s = 1; s <= satellites; ++s)
        result.internalEdges.emplace_back(0, s);
    return result;
}

} // namespace tigr::transform
