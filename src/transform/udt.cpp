#include "transform/udt.hpp"

#include <cassert>
#include <deque>

namespace tigr::transform {

namespace {

/** Queue item of Algorithm 1: an original out-edge slot or a member. */
struct QueueItem
{
    bool isMember;      ///< False: original edge slot; true: split node.
    std::uint32_t id;   ///< Edge slot index or member index.
};

} // namespace

SplitPlan
UdtTransform::plan(EdgeIndex degree, NodeId degree_bound) const
{
    const NodeId k = degree_bound;
    assert(k >= 2 && "UDT requires K >= 2 to terminate");
    assert(degree > k);

    SplitPlan result;
    result.ownerOfEdge.resize(degree);

    // Algorithm 1: the queue starts with all original neighbors (here:
    // edge slots); each new node adopts K popped items and re-enters the
    // queue; the root adopts the final <= K items.
    std::deque<QueueItem> queue;
    for (std::uint32_t slot = 0; slot < degree; ++slot)
        queue.push_back({false, slot});

    std::uint32_t next_member = 1; // 0 is the root
    while (queue.size() > k) {
        std::uint32_t member = next_member++;
        for (NodeId i = 0; i < k; ++i) {
            QueueItem item = queue.front();
            queue.pop_front();
            if (item.isMember)
                result.internalEdges.emplace_back(member, item.id);
            else
                result.ownerOfEdge[item.id] = member;
        }
        queue.push_back({true, member});
    }
    for (const QueueItem &item : queue) {
        if (item.isMember)
            result.internalEdges.emplace_back(0, item.id);
        else
            result.ownerOfEdge[item.id] = 0;
    }
    result.memberCount = next_member;
    return result;
}

unsigned
UdtTransform::treeHeight(EdgeIndex degree, NodeId degree_bound)
{
    const NodeId k = degree_bound;
    assert(k >= 2);
    if (degree <= k)
        return 0;

    // Replay Algorithm 1 tracking, per queue item, the internal-hop
    // distance from that item's subtree root to its deepest owned edge:
    // edge slots cost 0 (their adopter owns them directly), adopting a
    // member subtree costs one hop plus the subtree's own height.
    struct Item
    {
        bool isMember;
        unsigned height; // hops from this item to its deepest owned edge
    };
    std::deque<Item> queue(degree, Item{false, 0});
    while (queue.size() > k) {
        unsigned height = 0;
        for (NodeId i = 0; i < k; ++i) {
            Item item = queue.front();
            queue.pop_front();
            unsigned cost = item.isMember ? item.height + 1 : 0;
            height = std::max(height, cost);
        }
        queue.push_back(Item{true, height});
    }
    unsigned root_height = 0;
    for (const Item &item : queue) {
        unsigned cost = item.isMember ? item.height + 1 : 0;
        root_height = std::max(root_height, cost);
    }
    return root_height;
}

} // namespace tigr::transform
