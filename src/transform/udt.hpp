/**
 * @file
 * Uniform-degree tree (UDT) transformation — Algorithm 1 of the paper.
 */
#pragma once

#include "transform/split_transform.hpp"

namespace tigr::transform {

/**
 * The paper's headline physical transformation (Section 3.2).
 *
 * A high-degree node becomes a K-ary tree built bottom-up from a queue:
 * the queue starts with all original out-edges; while more than K items
 * remain, a fresh node adopts K of them and is pushed back; the root
 * adopts the final <= K items. Properties (all tested):
 *  - P1: it is a split transformation per Definition 2;
 *  - P2: each original out-edge is reachable from the root by a unique
 *    path (the root keeps all incoming edges);
 *  - P3: the tree height grows only as O(log_K d);
 *  - every non-root member has outdegree exactly K — at most the root is
 *    "residual" (degree < K), unlike recursive Tstar (Figure 6).
 *
 * Requires K >= 2: with K = 1 the queue never shrinks and the algorithm
 * cannot terminate.
 */
class UdtTransform : public SplitTransform
{
  public:
    std::string_view name() const override { return "udt"; }

    SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const override;

    /** The root keeps all incoming edges (P2). */
    bool entryAtRoot() const override { return true; }

    /**
     * Height of the uniform-degree tree that UDT builds for a node of
     * outdegree @p degree under bound @p degree_bound: the maximum
     * number of internal hops a value takes from the root to an
     * original out-edge owner. 0 when the node is not split.
     */
    static unsigned treeHeight(EdgeIndex degree, NodeId degree_bound);
};

} // namespace tigr::transform
