#include "transform/properties.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>

#include "transform/basic_topologies.hpp"
#include "transform/udt.hpp"

namespace tigr::transform {

namespace {

std::uint64_t
ceilDiv(EdgeIndex d, NodeId k)
{
    return (d + k - 1) / k;
}

} // namespace

TopologyProperties
analyticProperties(Topology topology, EdgeIndex d, NodeId k)
{
    assert(d > k);
    const std::uint64_t p = ceilDiv(d, k);
    TopologyProperties props;
    switch (topology) {
      case Topology::Clique:
        // Table 1 row 1: p-1 new nodes, (p-1)*p new edges, degree
        // K + p - 1, one hop.
        props.newNodes = p - 1;
        props.newEdges = (p - 1) * p;
        props.newDegree = k + p - 1;
        props.maxHops = 1;
        break;
      case Topology::Circular:
        // Table 1 row 2: p-1 new nodes, ring wiring, degree K + 1,
        // up to p-1 hops. (The paper counts p-1 new edges; a closed
        // directed ring over p members has p — we report the ring.)
        props.newNodes = p - 1;
        props.newEdges = p;
        props.newDegree = k + 1;
        props.maxHops = static_cast<unsigned>(p - 1);
        break;
      case Topology::Star:
        // Table 1 row 3: p new satellite nodes, p hub->satellite edges,
        // family degree max(K, p) (hub owns p edges, satellites K),
        // one hop.
        props.newNodes = p;
        props.newEdges = p;
        props.newDegree = std::max<EdgeIndex>(k, p);
        props.maxHops = 1;
        break;
      case Topology::Udt:
        // Section 3.2: every non-root member has degree exactly K; the
        // tree height grows as O(log_K d). Nodes/edges follow from the
        // queue recurrence; compute them exactly by replaying it.
        {
            // Each new node removes K queue items and re-enters as one,
            // shrinking the queue by K-1; splitting stops at size <= K:
            //   newNodes = ceil((d - K) / (K - 1)).
            // Every new node is later adopted exactly once (by a newer
            // node or the root), costing exactly one internal edge.
            assert(k >= 2);
            std::uint64_t members = (d - k + (k - 2)) / (k - 1);
            props.newNodes = members;
            props.newEdges = members;
            props.newDegree = k;
            props.maxHops = UdtTransform::treeHeight(d, k);
        }
        break;
    }
    return props;
}

TopologyProperties
measuredProperties(const SplitTransform &transform, EdgeIndex d, NodeId k)
{
    assert(d > k);
    SplitPlan plan = transform.plan(d, k);

    TopologyProperties props;
    props.newNodes = plan.memberCount - 1;
    props.newEdges = plan.internalEdges.size();

    // Member outdegrees: owned original edges + internal out-edges.
    std::vector<EdgeIndex> degree(plan.memberCount, 0);
    for (std::uint32_t owner : plan.ownerOfEdge)
        ++degree[owner];
    for (auto [from, to] : plan.internalEdges) {
        (void)to;
        ++degree[from];
    }
    props.newDegree = *std::max_element(degree.begin(), degree.end());

    // Worst-case hops: BFS over internal edges from each possible entry
    // member (root only when entryAtRoot()) to every edge owner.
    std::vector<std::vector<std::uint32_t>> internal(plan.memberCount);
    for (auto [from, to] : plan.internalEdges)
        internal[from].push_back(to);

    std::vector<bool> owns_edge(plan.memberCount, false);
    for (std::uint32_t owner : plan.ownerOfEdge)
        owns_edge[owner] = true;

    unsigned worst = 0;
    const std::uint32_t entry_count =
        transform.entryAtRoot() ? 1 : plan.memberCount;
    for (std::uint32_t entry = 0; entry < entry_count; ++entry) {
        std::vector<unsigned> hops(plan.memberCount, ~0u);
        std::deque<std::uint32_t> frontier{entry};
        hops[entry] = 0;
        while (!frontier.empty()) {
            std::uint32_t m = frontier.front();
            frontier.pop_front();
            for (std::uint32_t next : internal[m]) {
                if (hops[next] == ~0u) {
                    hops[next] = hops[m] + 1;
                    frontier.push_back(next);
                }
            }
        }
        for (std::uint32_t m = 0; m < plan.memberCount; ++m) {
            if (owns_edge[m]) {
                assert(hops[m] != ~0u &&
                       "every edge owner must be reachable from entry");
                worst = std::max(worst, hops[m]);
            }
        }
    }
    props.maxHops = worst;
    return props;
}

std::unique_ptr<SplitTransform>
makeTransform(Topology topology)
{
    switch (topology) {
      case Topology::Clique:
        return std::make_unique<CliqueTransform>();
      case Topology::Circular:
        return std::make_unique<CircularTransform>();
      case Topology::Star:
        return std::make_unique<StarTransform>();
      case Topology::Udt:
        return std::make_unique<UdtTransform>();
    }
    return nullptr;
}

std::string_view
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::Clique:
        return "cliq";
      case Topology::Circular:
        return "circ";
      case Topology::Star:
        return "star";
      case Topology::Udt:
        return "udt";
    }
    return "?";
}

} // namespace tigr::transform
