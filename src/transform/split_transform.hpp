/**
 * @file
 * Physical split transformations (Section 3 of the paper).
 *
 * A split transformation rewrites every high-degree node (outdegree > K)
 * into a *family* of nodes whose degrees are bounded by K, redistributing
 * the original outgoing edges over the family and wiring the family
 * together with new "internal" edges that carry dumb weights
 * (Corollaries 2 and 3). Concrete topologies — clique, circular, star,
 * and the paper's uniform-degree tree — differ only in how they assign
 * edges to members and wire the members, so they plug into one shared
 * driver via the SplitPlan hook.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::par {
class ThreadPool;
}

namespace tigr::transform {

/**
 * Weight written on transformation-introduced (internal) edges.
 *
 * Zero makes new edges invisible to additive path metrics — SSSP, BFS,
 * BC (Corollary 2). Infinity makes them invisible to min-along-path
 * metrics — SSWP (Corollary 3). One treats them as ordinary hops, which
 * is *incorrect* for weighted analyses and exists for experiments that
 * deliberately show why dumb weights matter.
 */
enum class DumbWeightPolicy
{
    Zero,
    Infinity,
    One,
};

/** The concrete weight value a policy writes on internal edges. */
Weight dumbWeight(DumbWeightPolicy policy);

/** Tuning knobs of a physical split transformation. */
struct SplitOptions
{
    /** Degree bound K: after the transformation every family member has
     *  outdegree <= max(K, small topology-specific hub size). */
    NodeId degreeBound = 10;
    /** Weight policy for the internal edges. */
    DumbWeightPolicy weightPolicy = DumbWeightPolicy::Zero;
    /** Seed for the random entry assignment used by clique/circular
     *  topologies (incoming edges land on a random family member). */
    std::uint64_t seed = 0x5449'4752'5544'5421ULL;
    /** Host threads for the planning phase (per-family plans are
     *  independent, so this parallelizes deterministically — the
     *  paper's Table 7 notes the transformation "can be
     *  parallelized"). 0 or 1 = serial. Ignored when `pool` is set. */
    unsigned threads = 1;
    /** Existing worker pool to plan on (takes precedence over
     *  `threads`); null = spin up `threads` workers, or run serial. */
    par::ThreadPool *pool = nullptr;
};

/** One transformed high-degree node: its root and all family members. */
struct FamilyInfo
{
    NodeId root;                   ///< The original node id (member 0).
    std::vector<NodeId> members;   ///< All members, root first.
};

/** Aggregate statistics of one physical transformation run. */
struct SplitStats
{
    std::uint64_t highDegreeNodes = 0; ///< Nodes that exceeded K.
    std::uint64_t newNodes = 0;        ///< Split nodes introduced.
    std::uint64_t newEdges = 0;        ///< Internal edges introduced.
    EdgeIndex maxDegreeBefore = 0;     ///< Max outdegree of the input.
    EdgeIndex maxDegreeAfter = 0;      ///< Max outdegree of the output.
};

/** Output of a physical split transformation. */
struct PhysicalTransformResult
{
    /** The transformed graph. Nodes [0, originalNodes) are the original
     *  ids; split nodes are appended after them. */
    graph::Csr graph;
    /** Node count of the input graph. */
    NodeId originalNodes = 0;
    /** For every node of the transformed graph, the original node it
     *  descends from (identity for untouched nodes and family roots). */
    std::vector<NodeId> rootOf;
    /** One entry per transformed high-degree node. */
    std::vector<FamilyInfo> families;
    /** Run statistics. */
    SplitStats stats;
};

/**
 * Topology-only description of one family: how the original out-edges
 * are assigned to members and how members are wired. Member 0 is always
 * the original node (the root); members 1..memberCount-1 are fresh.
 */
struct SplitPlan
{
    /** Total family size including the root. */
    std::uint32_t memberCount = 1;
    /** ownerOfEdge[i] = member index that keeps the i-th original
     *  outgoing edge. Size = original outdegree. */
    std::vector<std::uint32_t> ownerOfEdge;
    /** Internal (member -> member) edges; they carry the dumb weight. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> internalEdges;
};

/**
 * Base class of all physical split transformations (Definition 2).
 *
 * The shared apply() driver walks the graph, asks the concrete topology
 * for a SplitPlan per high-degree node, materializes families, and then
 * retargets incoming edges: to the family root when entryAtRoot() (star,
 * UDT — the root keeps all incoming edges) or to a seeded-random family
 * member otherwise (clique, circular, as in Figure 5).
 */
class SplitTransform
{
  public:
    virtual ~SplitTransform() = default;

    /** Human-readable topology name ("udt", "cliq", ...). */
    virtual std::string_view name() const = 0;

    /**
     * Plan the family for a node of outdegree @p degree under bound
     * @p degree_bound. Only called when degree > degree_bound.
     */
    virtual SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const
        = 0;

    /** True when incoming edges must stay on the family root. */
    virtual bool entryAtRoot() const = 0;

    /** Transform @p input under @p options. */
    PhysicalTransformResult apply(const graph::Csr &input,
                                  const SplitOptions &options) const;
};

} // namespace tigr::transform
