/**
 * @file
 * Virtual split transformation (Section 4): the virtual node array that
 * makes an irregular CSR *look* regular to the programming model while
 * leaving the physical graph — and therefore value propagation and
 * convergence — untouched.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::transform {

/**
 * How a family's edges are dealt to its virtual nodes (Section 4.4).
 *
 * Consecutive reproduces Figure 10 / Algorithm 2: virtual node r of a
 * family owns edge-array slots [begin + r*K, begin + (r+1)*K). From a
 * warp's view these accesses are strided by K.
 *
 * Coalesced reproduces Figure 12 / Algorithm 3 (edge-array coalescing):
 * virtual node r owns slots {begin + r + F*j} where F is the family
 * size, so the 32 lanes of a warp touch consecutive slots on each step.
 */
enum class EdgeLayout
{
    Consecutive,
    Coalesced,
};

/**
 * One entry of the virtual node array. start/stride/count describe the
 * owned edge-array slots uniformly for both layouts:
 * slot(j) = start + stride * j, j in [0, count).
 */
struct VirtualNode
{
    NodeId physicalId = 0;   ///< The physical node this maps to.
    EdgeIndex start = 0;     ///< First owned edge-array slot.
    EdgeIndex stride = 1;    ///< Distance between owned slots.
    std::uint32_t count = 0; ///< Number of owned slots (<= K).

    /** Field-wise equality (the struct has tail padding, so memcmp
     *  would compare indeterminate bytes — the incremental repair's
     *  byte-identity check compares entries with this instead). */
    friend bool operator==(const VirtualNode &,
                           const VirtualNode &) = default;
};

/**
 * The virtually transformed graph: an untouched physical CSR plus the
 * virtual node array scheduled threads iterate over. Values live in one
 * slot per *physical* node, which is exactly the implicit value
 * synchronization that keeps convergence identical to the original
 * graph (Theorem 2).
 */
class VirtualGraph
{
  public:
    VirtualGraph() = default;

    /**
     * Build the virtual node array over @p physical with degree bound
     * @p degree_bound and the given edge @p layout. A node of outdegree
     * d becomes max(1, ceil(d/K)) virtual nodes; zero-degree nodes keep
     * one virtual node so every physical node is scheduled at least
     * once (initialization, PR-style per-node work).
     *
     * @param threads Host threads for the array fill. Per-node entry
     *        offsets are prefix-summed first, so any thread count
     *        produces a bit-identical array (the parallelization the
     *        paper's Table 7 discussion anticipates). 0/1 = serial.
     */
    VirtualGraph(const graph::Csr &physical, NodeId degree_bound,
                 EdgeLayout layout = EdgeLayout::Coalesced,
                 unsigned threads = 1);

    /**
     * Reassemble a VirtualGraph from a previously materialized node
     * array (the snapshot container persists exactly these arrays, so
     * loading skips the build entirely). @p physical must be the graph
     * the array was built over and must outlive the result; @p nodes
     * is validated against it — every entry's physical id in range and
     * owned slots inside the node's edge segment.
     *
     * @throws std::invalid_argument on any inconsistent entry.
     */
    static VirtualGraph fromArrays(const graph::Csr &physical,
                                   NodeId degree_bound,
                                   EdgeLayout layout,
                                   std::vector<VirtualNode> nodes);

    /** The untouched physical graph. */
    const graph::Csr &physical() const { return *physical_; }

    /** Degree bound K the array was built with. */
    NodeId degreeBound() const { return degreeBound_; }

    /** The layout the array was built with. */
    EdgeLayout layout() const { return layout_; }

    /** Number of virtual nodes (= number of schedulable threads). */
    NodeId numVirtualNodes() const
    {
        return static_cast<NodeId>(nodes_.size());
    }

    /** The virtual node array (Figure 10). */
    std::span<const VirtualNode> virtualNodes() const { return nodes_; }

    /** Entry for virtual node @p v. */
    const VirtualNode &virtualNode(NodeId v) const { return nodes_[v]; }

    /**
     * Space cost of the virtually transformed graph in the paper's CSR
     * accounting (Table 6): 4-byte edge entries and weights, and one
     * {physicalId, edgePointer} 8-byte record per virtual node in place
     * of the original 4-byte node-offset array.
     */
    std::size_t paperBytes() const;

    /** Same accounting for the *original* graph (4-byte offsets). */
    static std::size_t paperBytesOriginal(const graph::Csr &physical);

  private:
    const graph::Csr *physical_ = nullptr;
    NodeId degreeBound_ = 0;
    EdgeLayout layout_ = EdgeLayout::Coalesced;
    std::vector<VirtualNode> nodes_;
};

/**
 * Validate an externally produced virtual-node array against arbitrary
 * per-vertex edge segments — dense CSR rows (what fromArrays checks) or
 * a DynamicGraph's slack-arena segments (arena-addressed entries, see
 * docs/dynamic.md). @p segment_begins / @p segment_degrees give each
 * vertex's first owned slot and live degree; checks every entry's
 * physical id in range, count within the degree bound, and owned slots
 * (guarding stride arithmetic against wraparound) inside the vertex's
 * segment.
 *
 * @throws std::invalid_argument naming the first inconsistent entry.
 */
void validateVirtualArray(std::span<const VirtualNode> nodes,
                          NodeId num_nodes, NodeId degree_bound,
                          std::span<const EdgeIndex> segment_begins,
                          std::span<const EdgeIndex> segment_degrees);

/**
 * The family-decomposition math itself, independent of any Csr: emit
 * node @p v's virtual entries given only its edge segment (@p begin,
 * degree @p d). This is the vertex-locality property Section 4 leans
 * on — a node's family is a pure function of (begin, d, K, layout) —
 * and what lets the dynamic subsystem's IncrementalVirtualizer repair
 * one vertex's entries without a graph object in hand.
 */
template <typename Fn>
void
forEachVirtualNodeAt(NodeId v, EdgeIndex begin, EdgeIndex d,
                     NodeId degree_bound, EdgeLayout layout, Fn &&fn)
{
    const EdgeIndex family =
        d == 0 ? 1 : (d + degree_bound - 1) / degree_bound;
    for (EdgeIndex r = 0; r < family; ++r) {
        VirtualNode node;
        node.physicalId = v;
        if (layout == EdgeLayout::Consecutive) {
            node.start = begin + r * degree_bound;
            node.stride = 1;
            node.count = static_cast<std::uint32_t>(
                std::min<EdgeIndex>(degree_bound,
                                    d - r * degree_bound));
        } else {
            node.start = begin + r;
            node.stride = family;
            // Slots r, r+F, r+2F, ... below d.
            node.count = static_cast<std::uint32_t>(
                d == 0 ? 0 : (d - r + family - 1) / family);
        }
        if (d == 0)
            node.count = 0;
        fn(node);
    }
}

/** Number of virtual entries node of degree @p d decomposes into:
 *  max(1, ceil(d / K)) — zero-degree nodes keep one entry. */
inline EdgeIndex
familySize(EdgeIndex d, NodeId degree_bound)
{
    return d == 0 ? 1 : (d + degree_bound - 1) / degree_bound;
}

/**
 * On-the-fly mapping reasoning for a single node: recompute node
 * @p v's family decomposition from its degree and @p degree_bound and
 * call @p fn once per virtual node, with the same VirtualNode record
 * VirtualGraph would store.
 */
template <typename Fn>
void
forEachVirtualNodeOf(const graph::Csr &physical, NodeId v,
                     NodeId degree_bound, EdgeLayout layout, Fn &&fn)
{
    forEachVirtualNodeAt(v, physical.edgeBegin(v), physical.degree(v),
                         degree_bound, layout,
                         std::forward<Fn>(fn));
}

/**
 * On-the-fly mapping reasoning (Section 4.1, second design): stream the
 * virtual nodes of @p physical without materializing any array, trading
 * recomputation for zero memory. Calls @p fn once per virtual node with
 * the same VirtualNode record VirtualGraph would store.
 */
template <typename Fn>
void
forEachVirtualNode(const graph::Csr &physical, NodeId degree_bound,
                   EdgeLayout layout, Fn &&fn)
{
    for (NodeId v = 0; v < physical.numNodes(); ++v)
        forEachVirtualNodeOf(physical, v, degree_bound, layout, fn);
}

} // namespace tigr::transform
