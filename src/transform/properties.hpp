/**
 * @file
 * Split-transformation property calculators reproducing Table 1: for a
 * single node of degree d under bound K, the number of new nodes and
 * edges, the resulting family degree, and the maximum number of internal
 * hops needed to propagate a value through the family.
 *
 * Both the paper's closed forms and measurements taken from an actual
 * SplitPlan are provided, so tests can pin one against the other.
 */
#pragma once

#include <memory>

#include "transform/split_transform.hpp"

namespace tigr::transform {

/** One row of Table 1 for a concrete (topology, d, K). */
struct TopologyProperties
{
    std::uint64_t newNodes = 0;  ///< Split nodes introduced.
    std::uint64_t newEdges = 0;  ///< Internal edges introduced.
    EdgeIndex newDegree = 0;     ///< Max outdegree within the family.
    unsigned maxHops = 0;        ///< Worst value-propagation hops from
                                 ///< an entry member to any edge owner.
};

/** The topologies Table 1 compares (plus the paper's UDT). */
enum class Topology
{
    Clique,
    Circular,
    Star,
    Udt,
};

/** Closed-form Table 1 row for @p topology at degree @p d, bound @p k.
 *  For UDT the hop count is the exact tree height (the paper states the
 *  asymptotic O(log_K d)). */
TopologyProperties analyticProperties(Topology topology, EdgeIndex d,
                                      NodeId k);

/**
 * Measure the same properties from the SplitPlan the transformation
 * actually produces: counts members and internal edges, derives member
 * degrees, and BFS-es the internal wiring from every possible entry
 * member to find the worst hop distance to an edge owner.
 */
TopologyProperties measuredProperties(const SplitTransform &transform,
                                      EdgeIndex d, NodeId k);

/** Construct the transformation object for @p topology. The returned
 *  pointer is owned by the caller. */
std::unique_ptr<SplitTransform> makeTransform(Topology topology);

/** Short name used in tables ("cliq", "circ", "star", "udt"). */
std::string_view topologyName(Topology topology);

} // namespace tigr::transform
