/**
 * @file
 * The three illustrative split-transformation topologies of Section 3.1
 * (Figure 5): clique, circular, and star. They exist to reproduce the
 * design-tradeoff study of Table 1; UDT (udt.hpp) is the one the paper
 * actually deploys.
 */
#pragma once

#include "transform/split_transform.hpp"

namespace tigr::transform {

/**
 * Tcliq: ceil(d/K) family members (root included) each own up to K
 * original edges; every member links to every other member. One hop
 * covers the family, but the (p-1)*p internal edges make it the most
 * space-hungry design. Incoming edges land on a random member.
 */
class CliqueTransform : public SplitTransform
{
  public:
    std::string_view name() const override { return "cliq"; }
    SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const override;
    bool entryAtRoot() const override { return false; }
};

/**
 * Tcirc: ceil(d/K) members in a directed ring. Cheapest in space
 * (p internal edges) and best irregularity reduction (degree K+1), but a
 * value may need p-1 hops to circle the family — the slow-propagation
 * extreme of the trade-off. Incoming edges land on a random member.
 */
class CircularTransform : public SplitTransform
{
  public:
    std::string_view name() const override { return "circ"; }
    SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const override;
    bool entryAtRoot() const override { return false; }
};

/**
 * Tstar: the root becomes a hub pointing at ceil(d/K) fresh members that
 * own the original edges. One hop, p internal edges, but the hub's own
 * degree ceil(d/K) can still be huge — the "hub node issue" that
 * motivates UDT. Incoming edges stay on the hub.
 */
class StarTransform : public SplitTransform
{
  public:
    std::string_view name() const override { return "star"; }
    SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const override;
    bool entryAtRoot() const override { return true; }
};

/**
 * Recursive Tstar: the "straightforward solution to the hub node
 * issue" Section 3.2 considers and rejects — when the hub's fanout
 * ceil(d/K) still exceeds K, apply Tstar to the hub again, producing a
 * hierarchy of intermediate hubs until the root's degree drops to K.
 *
 * It bounds every degree at K like UDT, but each grouping level can
 * leave a residual member (degree < K), so it wastes nodes compared to
 * UDT's at-most-one residual (Figure 6) — the tests quantify this.
 * Kept in the library as the paper's explicit design foil.
 */
class RecursiveStarTransform : public SplitTransform
{
  public:
    std::string_view name() const override { return "rstar"; }
    SplitPlan plan(EdgeIndex degree, NodeId degree_bound) const override;
    bool entryAtRoot() const override { return true; }
};

} // namespace tigr::transform
