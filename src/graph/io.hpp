/**
 * @file
 * Graph persistence: SNAP-style text edge lists and a compact binary CSR
 * container. Both formats round-trip exactly.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <istream>
#include <ostream>
#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tigr::graph {

/** FNV-1a 64-bit offset basis: the seed of an unchained hash. */
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ull;

/**
 * FNV-1a 64-bit hash of @p size bytes at @p data. Pass a previous
 * digest as @p seed to chain ranges (hashing ranges A then B chained
 * equals hashing their concatenation). This is the checksum the
 * versioned snapshot container (service/snapshot) protects its header
 * and payload with: cheap, streaming, and byte-order-stable on the
 * little-endian targets the binary formats assume.
 */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = kFnv1aBasis);

/**
 * Parse a text edge list: one "src dst [weight]" triple per line,
 * whitespace separated; lines starting with '#' or '%' are comments.
 * Missing weights default to 1. This accepts the SNAP dataset format the
 * paper's inputs ship in.
 *
 * @throws std::runtime_error on malformed lines.
 */
CooEdges loadEdgeList(std::istream &in);

/** Load a text edge list from @p path. @throws std::runtime_error. */
CooEdges loadEdgeListFile(const std::filesystem::path &path);

/** Write @p coo as a text edge list ("src dst weight" per line). */
void saveEdgeList(const CooEdges &coo, std::ostream &out);

/** Write @p coo as a text edge list to @p path. */
void saveEdgeListFile(const CooEdges &coo,
                      const std::filesystem::path &path);

/**
 * Serialize a CSR to the compact binary container (magic "TIGRCSR1",
 * little-endian arrays). Loading is O(read) with no rebuild.
 */
void saveCsrBinary(const Csr &graph, std::ostream &out);

/** Serialize @p graph to @p path in the binary container. */
void saveCsrBinaryFile(const Csr &graph,
                       const std::filesystem::path &path);

/** Load a binary CSR container. @throws std::runtime_error. */
Csr loadCsrBinary(std::istream &in);

/** Load a binary CSR container from @p path. */
Csr loadCsrBinaryFile(const std::filesystem::path &path);

/**
 * Parse a Matrix Market coordinate file (the format most public graph
 * collections, e.g. SuiteSparse, distribute):
 * `%%MatrixMarket matrix coordinate <field> <symmetry>` with field in
 * {pattern, integer, real} and symmetry in {general, symmetric}.
 * Entries are 1-based (row, col[, value]); symmetric files emit both
 * directions (off-diagonal). Pattern entries and non-positive values
 * load as weight 1; real values are rounded.
 *
 * @throws std::runtime_error on malformed headers or entries.
 */
CooEdges loadMatrixMarket(std::istream &in);

/** Load a Matrix Market file from @p path. */
CooEdges loadMatrixMarketFile(const std::filesystem::path &path);

} // namespace tigr::graph
