#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>

namespace tigr::graph {

namespace {

std::vector<EdgeIndex>
sortedDegrees(const Csr &graph)
{
    std::vector<EdgeIndex> degrees(graph.numNodes());
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        degrees[v] = graph.degree(v);
    std::sort(degrees.begin(), degrees.end());
    return degrees;
}

/** BFS hop distances from @p source; kInvalidNode marks unreachable. */
std::vector<NodeId>
bfsHops(const Csr &graph, NodeId source)
{
    std::vector<NodeId> hops(graph.numNodes(), kInvalidNode);
    std::deque<NodeId> frontier{source};
    hops[source] = 0;
    while (!frontier.empty()) {
        NodeId v = frontier.front();
        frontier.pop_front();
        for (NodeId nbr : graph.outNeighbors(v)) {
            if (hops[nbr] == kInvalidNode) {
                hops[nbr] = hops[v] + 1;
                frontier.push_back(nbr);
            }
        }
    }
    return hops;
}

} // namespace

DegreeStats
degreeStats(const Csr &graph)
{
    DegreeStats stats;
    stats.numNodes = graph.numNodes();
    stats.numEdges = graph.numEdges();
    if (graph.numNodes() == 0)
        return stats;

    std::vector<EdgeIndex> degrees = sortedDegrees(graph);
    const std::size_t n = degrees.size();

    stats.minDegree = degrees.front();
    stats.maxDegree = degrees.back();
    stats.meanDegree =
        static_cast<double>(graph.numEdges()) / static_cast<double>(n);
    stats.medianDegree = degrees[n / 2];
    stats.p90Degree = degrees[static_cast<std::size_t>(0.90 * (n - 1))];
    stats.p99Degree = degrees[static_cast<std::size_t>(0.99 * (n - 1))];

    // Gini over the sorted degrees:
    //   G = (2 * sum_i i*d_i) / (n * sum_i d_i) - (n + 1) / n
    // with 1-based i over ascending d_i.
    double weighted = 0.0;
    double total = 0.0;
    double variance = 0.0;
    std::uint64_t below20 = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double d = static_cast<double>(degrees[i]);
        weighted += static_cast<double>(i + 1) * d;
        total += d;
        double delta = d - stats.meanDegree;
        variance += delta * delta;
        if (degrees[i] < 20)
            ++below20;
    }
    variance /= static_cast<double>(n);
    if (total > 0.0) {
        stats.gini = (2.0 * weighted) / (static_cast<double>(n) * total) -
                     (static_cast<double>(n) + 1.0) /
                         static_cast<double>(n);
    }
    if (stats.meanDegree > 0.0)
        stats.coefficientOfVariation = std::sqrt(variance) /
            stats.meanDegree;
    stats.fractionBelow20 =
        static_cast<double>(below20) / static_cast<double>(n);
    return stats;
}

std::vector<std::uint64_t>
degreeHistogram(const Csr &graph)
{
    std::vector<std::uint64_t> histogram(
        static_cast<std::size_t>(graph.maxOutDegree()) + 1, 0);
    for (NodeId v = 0; v < graph.numNodes(); ++v)
        ++histogram[graph.degree(v)];
    return histogram;
}

double
powerLawExponent(const Csr &graph, EdgeIndex d_min)
{
    double log_sum = 0.0;
    std::uint64_t count = 0;
    for (NodeId v = 0; v < graph.numNodes(); ++v) {
        EdgeIndex d = graph.degree(v);
        if (d >= d_min) {
            log_sum += std::log(static_cast<double>(d) /
                                (static_cast<double>(d_min) - 0.5));
            ++count;
        }
    }
    if (count < 2 || log_sum <= 0.0)
        return 0.0;
    return 1.0 + static_cast<double>(count) / log_sum;
}

NodeId
estimateDiameter(const Csr &graph, unsigned samples, std::uint64_t seed)
{
    if (graph.numNodes() == 0)
        return 0;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<NodeId> pick(0, graph.numNodes() - 1);

    NodeId best = 0;
    // Start from node 0 deterministically (covers sources of DAG-like
    // graphs such as directed paths), then double-sweep with random
    // restarts.
    NodeId start = 0;
    for (unsigned i = 0; i < samples; ++i) {
        std::vector<NodeId> hops = bfsHops(graph, start);
        NodeId farthest = start;
        NodeId ecc = 0;
        for (NodeId v = 0; v < graph.numNodes(); ++v) {
            if (hops[v] != kInvalidNode && hops[v] > ecc) {
                ecc = hops[v];
                farthest = v;
            }
        }
        best = std::max(best, ecc);
        // Double sweep: restart from the farthest node found, falling
        // back to a random restart when the sweep stalls.
        start = (farthest == start) ? pick(rng) : farthest;
    }
    return best;
}

double
warpLoadImbalance(const Csr &graph, unsigned warp_width)
{
    const NodeId n = graph.numNodes();
    if (n == 0 || warp_width == 0)
        return 0.0;

    double useful = 0.0;
    double occupied = 0.0;
    for (NodeId base = 0; base < n; base += warp_width) {
        EdgeIndex warp_max = 0;
        EdgeIndex warp_sum = 0;
        NodeId end = std::min<NodeId>(base + warp_width, n);
        for (NodeId v = base; v < end; ++v) {
            EdgeIndex d = graph.degree(v);
            warp_max = std::max(warp_max, d);
            warp_sum += d;
        }
        useful += static_cast<double>(warp_sum);
        occupied += static_cast<double>(warp_max) * warp_width;
    }
    if (occupied == 0.0)
        return 0.0;
    return 1.0 - useful / occupied;
}

} // namespace tigr::graph
