#include "graph/reorder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tigr::graph {

Reordering
applyPermutation(const Csr &graph, std::vector<NodeId> new_id)
{
    const NodeId n = graph.numNodes();
    assert(new_id.size() == n);

    Reordering result;
    result.newId = std::move(new_id);
    result.oldId.resize(n);
    for (NodeId old = 0; old < n; ++old) {
        assert(result.newId[old] < n);
        result.oldId[result.newId[old]] = old;
    }

    CooEdges coo(n);
    coo.reserve(graph.numEdges());
    // Emit edges in new-id source order so the CSR's intra-node edge
    // order matches the original node's order.
    for (NodeId v = 0; v < n; ++v) {
        NodeId old = result.oldId[v];
        for (EdgeIndex e = graph.edgeBegin(old); e < graph.edgeEnd(old);
             ++e) {
            coo.add(v, result.newId[graph.edgeTarget(e)],
                    graph.edgeWeight(e));
        }
    }
    result.graph = Csr::fromCoo(coo);
    return result;
}

Reordering
sortByDegreeDescending(const Csr &graph)
{
    const NodeId n = graph.numNodes();
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&graph](NodeId a, NodeId b) {
                         return graph.degree(a) > graph.degree(b);
                     });
    std::vector<NodeId> new_id(n);
    for (NodeId rank = 0; rank < n; ++rank)
        new_id[order[rank]] = rank;
    return applyPermutation(graph, std::move(new_id));
}

} // namespace tigr::graph
