#include "graph/validate.hpp"

#include <sstream>

namespace tigr::graph {

std::optional<std::string>
validateCoo(const CooEdges &coo)
{
    const NodeId n = coo.numNodes();
    for (std::size_t i = 0; i < coo.edges().size(); ++i) {
        const Edge &e = coo.edges()[i];
        if (e.src >= n || e.dst >= n) {
            std::ostringstream out;
            out << "edge " << i << " (" << e.src << " -> " << e.dst
                << ") outside node universe of size " << n;
            return out.str();
        }
    }
    return std::nullopt;
}

std::optional<std::string>
validateCsr(const Csr &graph)
{
    const auto &offsets = graph.rowOffsets();
    if (offsets.empty())
        return "offset array is empty";
    if (offsets.front() != 0)
        return "offset array does not start at 0";
    for (std::size_t v = 1; v < offsets.size(); ++v) {
        if (offsets[v] < offsets[v - 1]) {
            std::ostringstream out;
            out << "offset array decreases at node " << v - 1;
            return out.str();
        }
    }
    if (offsets.back() != graph.colIndices().size())
        return "offset array does not end at the edge count";
    if (graph.colIndices().size() != graph.weights().size())
        return "weight array not parallel to edge array";
    const NodeId n = graph.numNodes();
    for (std::size_t e = 0; e < graph.colIndices().size(); ++e) {
        if (graph.colIndices()[e] >= n) {
            std::ostringstream out;
            out << "edge " << e << " targets node "
                << graph.colIndices()[e] << " >= " << n;
            return out.str();
        }
    }
    return std::nullopt;
}

} // namespace tigr::graph
