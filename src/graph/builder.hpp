/**
 * @file
 * GraphBuilder: cleans raw COO edge bags (self loops, duplicates, weight
 * assignment) and produces the canonical Csr the library works on.
 */
#pragma once

#include <cstdint>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tigr::graph {

/** Knobs controlling how GraphBuilder canonicalizes an edge list. */
struct BuildOptions
{
    /** Drop edges whose source equals their destination. */
    bool dropSelfLoops = true;
    /** Keep only the first occurrence of each (src, dst) pair. */
    bool dedupEdges = false;
    /** Overwrite all weights with values in [minWeight, maxWeight]. */
    bool randomizeWeights = false;
    /** Smallest random weight (inclusive). */
    Weight minWeight = 1;
    /** Largest random weight (inclusive). */
    Weight maxWeight = 64;
    /** Seed for the weight generator; same seed, same graph. */
    std::uint64_t weightSeed = 0x7167'7261'7068'2131ULL;
};

/**
 * Stateless helper that turns CooEdges into a clean Csr.
 *
 * Cleaning preserves the relative order of surviving edges, so a graph
 * built twice from the same COO input is bit-identical — deterministic
 * builds underpin every test and benchmark in the repository.
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(BuildOptions options = {}) : options_(options) {}

    /** The options this builder applies. */
    const BuildOptions &options() const { return options_; }

    /**
     * Clean @p coo in place according to the options: drop self loops,
     * deduplicate, randomize weights.
     */
    void clean(CooEdges &coo) const;

    /** Clean a copy of @p coo and convert it to CSR. */
    Csr build(CooEdges coo) const;

  private:
    BuildOptions options_;
};

} // namespace tigr::graph
