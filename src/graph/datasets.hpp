/**
 * @file
 * Synthetic stand-ins for the six real-world datasets of Table 3.
 *
 * The paper evaluates on SNAP/LAW crawls (Pokec, LiveJournal, Hollywood,
 * Orkut, Sinaweibo, Twitter2010) that are hundreds of millions of edges.
 * This repository regenerates graphs with the same *shape* — matched
 * average degree, power-law tail, and relative size ordering — scaled
 * down so the full benchmark suite runs in minutes on a workstation.
 * DESIGN.md Section 2 documents the substitution.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace tigr::graph {

/** Which generator family synthesizes a dataset stand-in. */
enum class DatasetGenerator
{
    Rmat,           ///< R-MAT with per-dataset skew parameters.
    BarabasiAlbert, ///< Preferential attachment (dense collaboration).
};

/** Recipe for one Table 3 stand-in plus the paper's reference numbers. */
struct DatasetSpec
{
    std::string name;             ///< Dataset key, e.g. "pokec".
    DatasetGenerator generator;   ///< Generator family.
    NodeId nodes;                 ///< Stand-in node count (scale = 1).
    EdgeIndex edges;              ///< Stand-in edge count (scale = 1).
    double rmatA;                 ///< R-MAT a parameter (skew knob).
    unsigned baEdgesPerNode;      ///< BA attachment count.
    std::uint64_t seed;           ///< Generator seed.

    // Reference values from Table 3 of the paper, used by EXPERIMENTS.md
    // and the table3_datasets benchmark for side-by-side reporting.
    std::uint64_t paperNodes;     ///< #Nodes in the paper.
    std::uint64_t paperEdges;     ///< #Edges in the paper.
    std::uint64_t paperMaxDegree; ///< dmax in the paper.
    unsigned paperDiameter;       ///< d in the paper.
    NodeId paperKudt;             ///< Degree bound the paper used for UDT.
    NodeId paperKv;               ///< Degree bound the paper used for
                                  ///< virtual transformation (always 10).
};

/** The six stand-ins, ordered as in Table 3 (smallest to largest). */
const std::vector<DatasetSpec> &standardDatasets();

/** Look up a spec by name; std::nullopt when unknown. */
std::optional<DatasetSpec> findDataset(const std::string &name);

/**
 * Generate the stand-in graph for @p spec.
 *
 * @param spec Dataset recipe.
 * @param scale Multiplier on nodes/edges (0.1 = ten times smaller);
 *        useful for quick smoke runs of the benchmark suite.
 * @param weighted When true, assign deterministic random weights in
 *        [1, 64] (needed by SSSP/SSWP); otherwise all weights are 1.
 */
Csr makeDataset(const DatasetSpec &spec, double scale = 1.0,
                bool weighted = true);

/**
 * The paper's Section 5 heuristic: pick the UDT degree bound from the
 * graph's maximum outdegree. Larger tails get larger K so that value
 * propagation stays fast (Table 3's Kudt column follows dmax/16 rounded
 * to a power of ten; we reproduce the same staircase).
 */
NodeId chooseUdtK(EdgeIndex max_degree);

} // namespace tigr::graph
