/**
 * @file
 * Compressed-sparse-row (CSR) graph: the canonical physical representation
 * every Tigr component operates on (Figure 10 of the paper, "CSR of
 * Original Graph").
 */
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/coo.hpp"
#include "graph/types.hpp"

namespace tigr::graph {

/**
 * Immutable directed weighted graph in CSR form.
 *
 * Layout follows the paper exactly: a node array of n+1 offsets into an
 * edge array of destination ids, plus a parallel weight array. Node v's
 * outgoing edges live at positions [rowOffsets()[v], rowOffsets()[v+1]).
 *
 * Instances are value types: transformations return new Csr objects and
 * never mutate their input.
 */
class Csr
{
  public:
    Csr() = default;

    /**
     * Assemble a CSR from raw arrays.
     *
     * @param row_offsets n+1 monotonically increasing edge offsets.
     * @param col_indices Destination node of each edge.
     * @param weights Weight of each edge; must match col_indices in size.
     */
    Csr(std::vector<EdgeIndex> row_offsets,
        std::vector<NodeId> col_indices,
        std::vector<Weight> weights);

    /**
     * Build a CSR from a COO edge list. Edges are counting-sorted by
     * source; the relative order of a node's edges follows their order in
     * the COO input (stable), which the virtual transformation relies on
     * for its implicit edge mapping.
     */
    static Csr fromCoo(const CooEdges &coo);

    /** Number of nodes. */
    NodeId numNodes() const;

    /** Number of directed edges. */
    EdgeIndex numEdges() const;

    /** True when the graph has no nodes. */
    bool empty() const { return numNodes() == 0; }

    /** Outdegree of node @p v. */
    EdgeIndex
    degree(NodeId v) const
    {
        return rowOffsets_[v + 1] - rowOffsets_[v];
    }

    /** First edge index of node @p v. */
    EdgeIndex edgeBegin(NodeId v) const { return rowOffsets_[v]; }

    /** One-past-last edge index of node @p v. */
    EdgeIndex edgeEnd(NodeId v) const { return rowOffsets_[v + 1]; }

    /** Destination node of edge @p e. */
    NodeId edgeTarget(EdgeIndex e) const { return colIndices_[e]; }

    /** Weight of edge @p e. */
    Weight edgeWeight(EdgeIndex e) const { return weights_[e]; }

    /** Destinations of node @p v's outgoing edges. */
    std::span<const NodeId>
    outNeighbors(NodeId v) const
    {
        return {colIndices_.data() + rowOffsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** Weights of node @p v's outgoing edges, parallel to outNeighbors. */
    std::span<const Weight>
    outWeights(NodeId v) const
    {
        return {weights_.data() + rowOffsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** The full n+1 offset array. */
    const std::vector<EdgeIndex> &rowOffsets() const { return rowOffsets_; }

    /** The full destination array. */
    const std::vector<NodeId> &colIndices() const { return colIndices_; }

    /** The full weight array. */
    const std::vector<Weight> &weights() const { return weights_; }

    /** Largest outdegree over all nodes (0 for an empty graph). */
    EdgeIndex maxOutDegree() const;

    /**
     * The transposed graph: every edge u->v becomes v->u with the same
     * weight. Pull-based engines run on the transpose of the push graph.
     */
    Csr reversed() const;

    /** Convert back to a COO edge list (edges in CSR storage order). */
    CooEdges toCoo() const;

    /**
     * Storage footprint of the CSR arrays in bytes. This is the quantity
     * Tables 5 and 6 of the paper report space costs against.
     */
    std::size_t sizeInBytes() const;

    /**
     * Structural + weight equality. Note this compares storage order, so
     * two graphs with identical edge sets but different intra-node edge
     * order compare unequal; use for exact round-trip checks.
     */
    friend bool operator==(const Csr &, const Csr &) = default;

  private:
    std::vector<EdgeIndex> rowOffsets_ = {0};
    std::vector<NodeId> colIndices_;
    std::vector<Weight> weights_;
};

} // namespace tigr::graph
