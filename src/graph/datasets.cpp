#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace tigr::graph {

const std::vector<DatasetSpec> &
standardDatasets()
{
    // Stand-in sizes are the paper's node counts scaled by ~1/400 with
    // average degree preserved; R-MAT "a" is tuned per dataset so the
    // degree tail matches the paper's dmax/mean ratio qualitatively
    // (sinaweibo and twitter have by far the heaviest tails).
    static const std::vector<DatasetSpec> specs = {
        {"pokec", DatasetGenerator::Rmat, 4096, 79000, 0.57, 0, 101,
         1'600'000, 31'000'000, 8'800, 11, 500, 10},
        {"livejournal", DatasetGenerator::Rmat, 10240, 176000, 0.57, 0,
         102, 4'000'000, 69'000'000, 15'000, 13, 1000, 10},
        {"hollywood", DatasetGenerator::Rmat, 2816, 288000, 0.55, 0, 103,
         1'100'000, 114'000'000, 11'000, 8, 1000, 10},
        {"orkut", DatasetGenerator::Rmat, 7936, 590000, 0.52, 0, 104,
         3'100'000, 234'000'000, 33'000, 7, 1000, 10},
        {"sinaweibo", DatasetGenerator::Rmat, 49152, 660000, 0.65, 0, 105,
         59'000'000, 523'000'000, 278'000, 5, 10000, 10},
        {"twitter", DatasetGenerator::Rmat, 20480, 665000, 0.62, 0, 106,
         21'000'000, 530'000'000, 698'000, 15, 10000, 10},
    };
    return specs;
}

std::optional<DatasetSpec>
findDataset(const std::string &name)
{
    for (const DatasetSpec &spec : standardDatasets())
        if (spec.name == name)
            return spec;
    return std::nullopt;
}

Csr
makeDataset(const DatasetSpec &spec, double scale, bool weighted)
{
    const auto nodes = static_cast<NodeId>(
        std::max(16.0, std::round(static_cast<double>(spec.nodes) * scale)));
    const auto edges = static_cast<EdgeIndex>(std::max(
        32.0, std::round(static_cast<double>(spec.edges) * scale)));

    CooEdges coo;
    switch (spec.generator) {
      case DatasetGenerator::Rmat: {
        RmatParams params;
        params.nodes = nodes;
        params.edges = edges;
        params.a = spec.rmatA;
        // Split the remaining mass like the classic social-network
        // setting: b = c, d gets what is left after a fixed d share.
        params.b = params.c = (1.0 - spec.rmatA - 0.05) / 2.0;
        params.seed = spec.seed;
        coo = rmat(params);
        break;
      }
      case DatasetGenerator::BarabasiAlbert: {
        unsigned per_node = std::max<unsigned>(
            1, static_cast<unsigned>(edges / (2 * nodes)));
        coo = barabasiAlbert(nodes, per_node, spec.seed);
        break;
      }
    }

    BuildOptions options;
    options.dropSelfLoops = true;
    options.dedupEdges = false;
    options.randomizeWeights = weighted;
    options.minWeight = 1;
    options.maxWeight = 64;
    options.weightSeed = spec.seed * 2654435761ULL + 17;
    return GraphBuilder(options).build(std::move(coo));
}

NodeId
chooseUdtK(EdgeIndex max_degree)
{
    // Paper Table 3: dmax ~ 8.8k -> K = 500, dmax ~ 11k..33k -> K = 1000,
    // dmax ~ 278k..698k -> K = 10000. Reproduce the staircase as a
    // dmax-relative rule: K = dmax / 16 rounded to {..., 50, 100, 500,
    // 1000, 5000, 10000, ...} half-decades, clamped to >= 10.
    if (max_degree <= 16)
        return 10;
    double raw = static_cast<double>(max_degree) / 16.0;
    double decade = std::pow(10.0, std::floor(std::log10(raw)));
    double rounded = (raw >= 5.0 * decade) ? 5.0 * decade : decade;
    return static_cast<NodeId>(std::max(10.0, rounded));
}

} // namespace tigr::graph
