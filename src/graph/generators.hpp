/**
 * @file
 * Seeded synthetic graph generators.
 *
 * Power-law generators (RMAT, Barabasi-Albert) provide the irregular
 * inputs Tigr targets; regular generators (ring, grid, complete) provide
 * the already-regular controls that transformations must leave unchanged.
 * Every generator is deterministic in its seed.
 */
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tigr::graph {

/** Parameters of the recursive-matrix (R-MAT) generator. */
struct RmatParams
{
    NodeId nodes = 1024;      ///< Number of nodes (rounded up to 2^k).
    EdgeIndex edges = 8192;   ///< Number of directed edges to emit.
    double a = 0.57;          ///< Probability mass of the top-left cell.
    double b = 0.19;          ///< Probability mass of the top-right cell.
    double c = 0.19;          ///< Probability mass of the bottom-left cell.
    /// Bottom-right mass is 1-a-b-c.
    std::uint64_t seed = 1;   ///< RNG seed.
    /// Jitter the quadrant probabilities per level (smoothes the
    /// staircase artifacts of pure R-MAT, as in the original paper).
    bool noise = true;
};

/**
 * R-MAT power-law graph (Chakrabarti et al.). The default (a, b, c)
 * parameters are the classic "social network" setting and give the
 * heavy-tailed outdegree distribution the Tigr paper studies.
 */
CooEdges rmat(const RmatParams &params);

/**
 * Barabasi-Albert preferential-attachment graph. Each new node attaches
 * @p edges_per_node edges to existing nodes picked proportionally to
 * their current degree; emitted directed both ways (undirected network).
 *
 * @param nodes Total number of nodes.
 * @param edges_per_node Edges added per arriving node (>= 1).
 * @param seed RNG seed.
 */
CooEdges barabasiAlbert(NodeId nodes, unsigned edges_per_node,
                        std::uint64_t seed);

/**
 * Erdos-Renyi G(n, m): @p edges directed edges chosen uniformly at
 * random. Degree distribution is binomial, i.e. regular in the paper's
 * sense — a control input where Tigr should win little.
 */
CooEdges erdosRenyi(NodeId nodes, EdgeIndex edges, std::uint64_t seed);

/** Directed ring 0 -> 1 -> ... -> n-1 -> 0: every outdegree is one. */
CooEdges ring(NodeId nodes);

/** Directed path 0 -> 1 -> ... -> n-1. */
CooEdges path(NodeId nodes);

/**
 * 4-neighbor grid of @p rows x @p cols nodes with edges both directions:
 * a perfectly regular mesh (outdegree 2..4).
 */
CooEdges grid2d(NodeId rows, NodeId cols);

/**
 * Star: the hub (node 0) points at every other node. The most extreme
 * irregular input — one node of degree n-1, all others of degree 0.
 */
CooEdges star(NodeId nodes);

/** Complete directed graph on @p nodes nodes (no self loops). */
CooEdges complete(NodeId nodes);

/**
 * Watts-Strogatz small-world graph: a ring lattice where every node
 * links to its @p neighbors_per_side nearest neighbors on each side,
 * with each edge's far endpoint rewired to a uniform random node with
 * probability @p beta. Emitted directed both ways. Degrees stay nearly
 * regular for any beta — a control input with small diameter but no
 * power-law tail, where Tigr should win little.
 */
CooEdges wattsStrogatz(NodeId nodes, unsigned neighbors_per_side,
                       double beta, std::uint64_t seed);

} // namespace tigr::graph
