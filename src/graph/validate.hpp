/**
 * @file
 * Structural validation of graph containers. Loaders and tools call
 * these before trusting external data; tests use them for failure
 * injection.
 */
#pragma once

#include <optional>
#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tigr::graph {

/**
 * Check that every edge of @p coo stays inside its node universe.
 * @return std::nullopt when valid, otherwise a human-readable
 *         description of the first violation.
 */
std::optional<std::string> validateCoo(const CooEdges &coo);

/**
 * Check the CSR invariants: non-empty monotone offset array starting
 * at 0 and ending at the edge count, every target below the node
 * count, and weight array parallel to the targets.
 * @return std::nullopt when valid, otherwise a description of the
 *         first violation.
 */
std::optional<std::string> validateCsr(const Csr &graph);

} // namespace tigr::graph
