/**
 * @file
 * Node reordering utilities. Degree sorting is the classic *alternative*
 * mitigation for warp load imbalance (group similar-degree nodes so
 * warps are internally balanced); the ablation benchmark compares it
 * against Tigr's transformations.
 */
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace tigr::graph {

/** A relabeled graph plus both directions of the id mapping. */
struct Reordering
{
    /** The relabeled graph. */
    Csr graph;
    /** newId[old] = new id of the node formerly known as `old`. */
    std::vector<NodeId> newId;
    /** oldId[new] = original id of node `new` in the result. */
    std::vector<NodeId> oldId;
};

/**
 * Relabel nodes by non-increasing outdegree (ties by original id, so
 * the result is deterministic). Edges keep their weights; each node's
 * out-edges keep their relative order.
 */
Reordering sortByDegreeDescending(const Csr &graph);

/**
 * Relabel nodes with an arbitrary permutation.
 * @param new_id new_id[old] = new id; must be a permutation of
 *        [0, numNodes).
 */
Reordering applyPermutation(const Csr &graph,
                            std::vector<NodeId> new_id);

} // namespace tigr::graph
