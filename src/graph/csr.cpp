#include "graph/csr.hpp"

#include <cassert>
#include <utility>

namespace tigr::graph {

Csr::Csr(std::vector<EdgeIndex> row_offsets,
         std::vector<NodeId> col_indices,
         std::vector<Weight> weights)
    : rowOffsets_(std::move(row_offsets)),
      colIndices_(std::move(col_indices)),
      weights_(std::move(weights))
{
    assert(!rowOffsets_.empty());
    assert(rowOffsets_.front() == 0);
    assert(rowOffsets_.back() == colIndices_.size());
    assert(colIndices_.size() == weights_.size());
}

Csr
Csr::fromCoo(const CooEdges &coo)
{
    const NodeId n = coo.numNodes();
    const std::vector<Edge> &edges = coo.edges();

    std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const Edge &e : edges) {
        assert(e.src < n && e.dst < n);
        ++offsets[e.src + 1];
    }
    for (std::size_t v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<NodeId> cols(edges.size());
    std::vector<Weight> weights(edges.size());
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge &e : edges) {
        EdgeIndex slot = cursor[e.src]++;
        cols[slot] = e.dst;
        weights[slot] = e.weight;
    }
    return Csr(std::move(offsets), std::move(cols), std::move(weights));
}

NodeId
Csr::numNodes() const
{
    return static_cast<NodeId>(rowOffsets_.size() - 1);
}

EdgeIndex
Csr::numEdges() const
{
    return rowOffsets_.back();
}

EdgeIndex
Csr::maxOutDegree() const
{
    EdgeIndex best = 0;
    for (NodeId v = 0; v < numNodes(); ++v)
        best = std::max(best, degree(v));
    return best;
}

Csr
Csr::reversed() const
{
    const NodeId n = numNodes();
    std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (NodeId dst : colIndices_)
        ++offsets[dst + 1];
    for (std::size_t v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<NodeId> cols(colIndices_.size());
    std::vector<Weight> weights(colIndices_.size());
    std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId src = 0; src < n; ++src) {
        for (EdgeIndex e = edgeBegin(src); e < edgeEnd(src); ++e) {
            EdgeIndex slot = cursor[colIndices_[e]]++;
            cols[slot] = src;
            weights[slot] = weights_[e];
        }
    }
    return Csr(std::move(offsets), std::move(cols), std::move(weights));
}

CooEdges
Csr::toCoo() const
{
    CooEdges coo(numNodes());
    coo.reserve(numEdges());
    for (NodeId v = 0; v < numNodes(); ++v)
        for (EdgeIndex e = edgeBegin(v); e < edgeEnd(v); ++e)
            coo.add(v, colIndices_[e], weights_[e]);
    return coo;
}

std::size_t
Csr::sizeInBytes() const
{
    return rowOffsets_.size() * sizeof(EdgeIndex) +
           colIndices_.size() * sizeof(NodeId) +
           weights_.size() * sizeof(Weight);
}

} // namespace tigr::graph
