#include "graph/builder.hpp"

#include <algorithm>
#include <random>
#include <unordered_set>
#include <utility>

namespace tigr::graph {

namespace {

/** Pack an edge endpoint pair into one 64-bit key for dedup hashing. */
std::uint64_t
edgeKey(const Edge &e)
{
    return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
}

} // namespace

void
GraphBuilder::clean(CooEdges &coo) const
{
    std::vector<Edge> &edges = coo.edges();

    if (options_.dropSelfLoops) {
        std::erase_if(edges, [](const Edge &e) { return e.src == e.dst; });
    }

    if (options_.dedupEdges) {
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(edges.size());
        std::vector<Edge> kept;
        kept.reserve(edges.size());
        for (const Edge &e : edges)
            if (seen.insert(edgeKey(e)).second)
                kept.push_back(e);
        edges = std::move(kept);
    }

    if (options_.randomizeWeights) {
        std::mt19937_64 rng(options_.weightSeed);
        std::uniform_int_distribution<Weight> dist(options_.minWeight,
                                                   options_.maxWeight);
        for (Edge &e : edges)
            e.weight = dist(rng);
    }
}

Csr
GraphBuilder::build(CooEdges coo) const
{
    clean(coo);
    return Csr::fromCoo(coo);
}

} // namespace tigr::graph
