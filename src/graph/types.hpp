/**
 * @file
 * Fundamental scalar types and constants shared across the Tigr library.
 *
 * All graph containers, transformations, engines and algorithms agree on
 * these definitions, so a node id or an edge weight means the same thing
 * in every module.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace tigr {

/** Identifier of a node (physical or virtual). 32 bits is plenty for the
 *  scaled-down datasets this repository ships; all containers index nodes
 *  with this type. */
using NodeId = std::uint32_t;

/** Index into an edge array. 64 bits so that offset arithmetic never
 *  overflows even for graphs near the NodeId limit. */
using EdgeIndex = std::uint64_t;

/** Weight attached to a single edge. Unsigned integral weights keep the
 *  shortest/widest path algebra exact (no floating point drift) and match
 *  the paper's SSSP/SSWP formulation. */
using Weight = std::uint32_t;

/** Accumulated path distance (sum of weights along a path). Kept wider
 *  than Weight so long paths cannot overflow. */
using Dist = std::uint64_t;

/** Node value used by rank-style analytics (PageRank). */
using Rank = double;

/** Sentinel: an unreachable/unknown node. */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel: "no edge" / invalid edge position. */
inline constexpr EdgeIndex kInvalidEdge =
    std::numeric_limits<EdgeIndex>::max();

/** Sentinel: infinite distance (node not yet reached by SSSP/BFS). */
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/** Maximum representable weight. Doubles as the "dumb weight" that makes
 *  UDT-introduced edges neutral for widest-path analyses (Corollary 3). */
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::max();

/** The "dumb weight" that makes UDT-introduced edges neutral for
 *  distance-based analyses (Corollary 2). */
inline constexpr Weight kZeroWeight = 0;

/**
 * Saturating addition for path distances: adding anything to an infinite
 * distance stays infinite, and the sum never wraps around.
 *
 * @param a Current path distance (possibly kInfDist).
 * @param w Edge weight to extend the path with.
 * @return a + w, saturated at kInfDist.
 */
inline constexpr Dist
saturatingAdd(Dist a, Weight w)
{
    if (a == kInfDist)
        return kInfDist;
    Dist sum = a + static_cast<Dist>(w);
    return sum < a ? kInfDist : sum;
}

} // namespace tigr
