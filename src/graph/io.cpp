#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tigr::graph {

namespace {

constexpr char kMagic[8] = {'T', 'I', 'G', 'R', 'C', 'S', 'R', '1'};

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        throw std::runtime_error("tigr: truncated binary graph stream");
    return value;
}

template <typename T>
void
writeVec(std::ostream &out, const std::vector<T> &vec)
{
    writePod<std::uint64_t>(out, vec.size());
    out.write(reinterpret_cast<const char *>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &in)
{
    auto count = readPod<std::uint64_t>(in);
    std::vector<T> vec(count);
    in.read(reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in)
        throw std::runtime_error("tigr: truncated binary graph stream");
    return vec;
}

std::ifstream
openInput(const std::filesystem::path &path, std::ios::openmode mode)
{
    std::ifstream in(path, mode);
    if (!in)
        throw std::runtime_error("tigr: cannot open " + path.string());
    return in;
}

std::ofstream
openOutput(const std::filesystem::path &path, std::ios::openmode mode)
{
    std::ofstream out(path, mode);
    if (!out)
        throw std::runtime_error("tigr: cannot open " + path.string());
    return out;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull; // FNV-1a 64 prime
    }
    return hash;
}

CooEdges
loadEdgeList(std::istream &in)
{
    CooEdges coo;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream fields(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        std::uint64_t weight = 1;
        if (!(fields >> src >> dst)) {
            throw std::runtime_error(
                "tigr: malformed edge list line " + std::to_string(line_no));
        }
        fields >> weight; // optional third column
        coo.add(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                static_cast<Weight>(weight));
    }
    return coo;
}

CooEdges
loadEdgeListFile(const std::filesystem::path &path)
{
    auto in = openInput(path, std::ios::in);
    return loadEdgeList(in);
}

void
saveEdgeList(const CooEdges &coo, std::ostream &out)
{
    for (const Edge &e : coo.edges())
        out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
}

void
saveEdgeListFile(const CooEdges &coo, const std::filesystem::path &path)
{
    auto out = openOutput(path, std::ios::out);
    saveEdgeList(coo, out);
}

CooEdges
loadMatrixMarket(std::istream &in)
{
    std::string header;
    if (!std::getline(in, header))
        throw std::runtime_error("tigr: empty MatrixMarket stream");

    std::istringstream head(header);
    std::string banner, object, format, field, symmetry;
    head >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket" || object != "matrix" ||
        format != "coordinate") {
        throw std::runtime_error(
            "tigr: not a MatrixMarket coordinate header");
    }
    const bool has_value = field == "integer" || field == "real";
    if (!has_value && field != "pattern")
        throw std::runtime_error("tigr: unsupported MatrixMarket field "
                                 + field);
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general")
        throw std::runtime_error(
            "tigr: unsupported MatrixMarket symmetry " + symmetry);

    // Skip comments, read the size line.
    std::string line;
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream sizes(line);
        if (!(sizes >> rows >> cols >> nnz))
            throw std::runtime_error("tigr: bad MatrixMarket size line");
        break;
    }
    if (rows == 0 && cols == 0)
        throw std::runtime_error("tigr: missing MatrixMarket size line");

    CooEdges coo(static_cast<NodeId>(std::max(rows, cols)));
    coo.reserve(symmetric ? 2 * nnz : nnz);
    std::uint64_t seen = 0;
    while (seen < nnz && std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream fields(line);
        std::uint64_t row = 0, col = 0;
        double value = 1.0;
        if (!(fields >> row >> col))
            throw std::runtime_error("tigr: bad MatrixMarket entry");
        if (has_value)
            fields >> value;
        if (row == 0 || col == 0 || row > rows || col > cols)
            throw std::runtime_error(
                "tigr: MatrixMarket entry out of range");
        Weight weight =
            value >= 1.0
                ? static_cast<Weight>(value + 0.5)
                : 1; // pattern / non-positive values load as 1
        NodeId src = static_cast<NodeId>(row - 1);
        NodeId dst = static_cast<NodeId>(col - 1);
        coo.add(src, dst, weight);
        if (symmetric && src != dst)
            coo.add(dst, src, weight);
        ++seen;
    }
    if (seen != nnz)
        throw std::runtime_error("tigr: truncated MatrixMarket stream");
    return coo;
}

CooEdges
loadMatrixMarketFile(const std::filesystem::path &path)
{
    auto in = openInput(path, std::ios::in);
    return loadMatrixMarket(in);
}

void
saveCsrBinary(const Csr &graph, std::ostream &out)
{
    out.write(kMagic, sizeof(kMagic));
    writeVec(out, graph.rowOffsets());
    writeVec(out, graph.colIndices());
    writeVec(out, graph.weights());
}

void
saveCsrBinaryFile(const Csr &graph, const std::filesystem::path &path)
{
    auto out = openOutput(path, std::ios::binary);
    saveCsrBinary(graph, out);
}

Csr
loadCsrBinary(std::istream &in)
{
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (!in || !std::equal(magic, magic + 8, kMagic))
        throw std::runtime_error("tigr: not a TIGRCSR1 stream");
    auto offsets = readVec<EdgeIndex>(in);
    auto cols = readVec<NodeId>(in);
    auto weights = readVec<Weight>(in);
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != cols.size() || cols.size() != weights.size()) {
        throw std::runtime_error("tigr: inconsistent TIGRCSR1 arrays");
    }
    return Csr(std::move(offsets), std::move(cols), std::move(weights));
}

Csr
loadCsrBinaryFile(const std::filesystem::path &path)
{
    auto in = openInput(path, std::ios::binary);
    return loadCsrBinary(in);
}

} // namespace tigr::graph
