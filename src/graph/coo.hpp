/**
 * @file
 * Coordinate-format (COO) edge list: the interchange representation that
 * generators and loaders produce and that GraphBuilder consumes.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace tigr::graph {

/** A single directed, weighted edge. */
struct Edge
{
    NodeId src = 0;     ///< Source node id.
    NodeId dst = 0;     ///< Destination node id.
    Weight weight = 1;  ///< Edge weight (1 for unweighted analyses).

    friend bool operator==(const Edge &, const Edge &) = default;
};

/**
 * A bag of directed edges plus the node-id universe they live in.
 *
 * COO is deliberately dumb: it owns no indexes and enforces no ordering.
 * Use GraphBuilder to clean it (dedup, drop self loops) and convert it to
 * the Csr form the rest of the library operates on.
 */
class CooEdges
{
  public:
    CooEdges() = default;

    /** @param num_nodes Number of nodes; ids must be < num_nodes. */
    explicit CooEdges(NodeId num_nodes) : numNodes_(num_nodes) {}

    /** Number of nodes in the id universe. */
    NodeId numNodes() const { return numNodes_; }

    /** Number of edges currently stored. */
    std::size_t numEdges() const { return edges_.size(); }

    /** True when no edges are stored. */
    bool empty() const { return edges_.empty(); }

    /** Grow the node universe to at least @p num_nodes ids. */
    void
    ensureNodes(NodeId num_nodes)
    {
        if (num_nodes > numNodes_)
            numNodes_ = num_nodes;
    }

    /**
     * Append one edge, growing the node universe as needed.
     * @param src Source node id.
     * @param dst Destination node id.
     * @param weight Edge weight.
     */
    void
    add(NodeId src, NodeId dst, Weight weight = 1)
    {
        edges_.push_back(Edge{src, dst, weight});
        NodeId hi = (src > dst ? src : dst);
        if (hi >= numNodes_)
            numNodes_ = hi + 1;
    }

    /** Append @p edge verbatim, growing the node universe as needed. */
    void
    add(const Edge &edge)
    {
        add(edge.src, edge.dst, edge.weight);
    }

    /** Pre-allocate storage for @p n edges. */
    void reserve(std::size_t n) { edges_.reserve(n); }

    /** Read-only view of the stored edges. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Mutable view of the stored edges (used by builders/shufflers). */
    std::vector<Edge> &edges() { return edges_; }

    /**
     * Add the reverse of every current edge, turning a directed edge list
     * into the directed representation of an undirected graph (the paper
     * treats undirected graphs as directed graphs with both directions).
     */
    void
    symmetrize()
    {
        std::size_t n = edges_.size();
        edges_.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i) {
            const Edge &e = edges_[i];
            edges_.push_back(Edge{e.dst, e.src, e.weight});
        }
    }

  private:
    NodeId numNodes_ = 0;
    std::vector<Edge> edges_;
};

} // namespace tigr::graph
