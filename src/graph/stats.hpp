/**
 * @file
 * Degree-distribution statistics and irregularity metrics.
 *
 * These quantify the "power-law skew" that motivates Tigr (Section 2.3 of
 * the paper) and let tests and benchmarks assert that a transformation
 * actually made a graph more regular.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace tigr::graph {

/** Summary of a graph's outdegree distribution. */
struct DegreeStats
{
    NodeId numNodes = 0;        ///< Node count.
    EdgeIndex numEdges = 0;     ///< Directed edge count.
    EdgeIndex minDegree = 0;    ///< Smallest outdegree.
    EdgeIndex maxDegree = 0;    ///< Largest outdegree.
    double meanDegree = 0.0;    ///< Average outdegree.
    EdgeIndex medianDegree = 0; ///< 50th-percentile outdegree.
    EdgeIndex p90Degree = 0;    ///< 90th-percentile outdegree.
    EdgeIndex p99Degree = 0;    ///< 99th-percentile outdegree.

    /**
     * Gini coefficient of the outdegree distribution, in [0, 1].
     * 0 = perfectly regular (all degrees equal), values near 1 = a few
     * nodes own nearly all edges. Our primary irregularity metric.
     */
    double gini = 0.0;

    /** Coefficient of variation (stddev / mean) of outdegrees. */
    double coefficientOfVariation = 0.0;

    /** Fraction of nodes with outdegree < 20 (the paper quotes >90%
     *  for its real-world inputs). */
    double fractionBelow20 = 0.0;
};

/** Compute DegreeStats over @p graph's outdegrees. */
DegreeStats degreeStats(const Csr &graph);

/**
 * Histogram of outdegrees: result[d] = number of nodes with outdegree d,
 * for d in [0, maxOutDegree].
 */
std::vector<std::uint64_t> degreeHistogram(const Csr &graph);

/**
 * Maximum-likelihood power-law exponent of the outdegree tail
 * (Clauset-Shalizi-Newman estimator restricted to degrees >= @p d_min).
 * Returns 0 when fewer than two nodes qualify.
 */
double powerLawExponent(const Csr &graph, EdgeIndex d_min = 2);

/**
 * Pseudo-diameter: run BFS (hop counts, ignoring weights) from
 * @p samples start nodes spread over the graph and return the largest
 * finite eccentricity observed. A lower bound on the true diameter, the
 * quantity Table 3 of the paper reports as "d".
 */
NodeId estimateDiameter(const Csr &graph, unsigned samples = 8,
                        std::uint64_t seed = 42);

/**
 * Estimated SIMD-lane waste of mapping one node per lane in warps of
 * @p warp_width: 1 - sum(deg) / (warps * warp_width * max_deg_in_warp).
 * Mirrors the intra-warp load-imbalance argument of Section 2.3; lower
 * is better, 0 means perfectly balanced warps.
 */
double warpLoadImbalance(const Csr &graph, unsigned warp_width = 32);

} // namespace tigr::graph
