#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <random>

namespace tigr::graph {

namespace {

/** Smallest power of two >= @p n (and >= 1). */
NodeId
roundUpPow2(NodeId n)
{
    if (n <= 1)
        return 1;
    return std::bit_ceil(n);
}

} // namespace

CooEdges
rmat(const RmatParams &params)
{
    assert(params.a + params.b + params.c <= 1.0 + 1e-9);
    const NodeId n = roundUpPow2(params.nodes);
    const int levels = std::countr_zero(n);

    std::mt19937_64 rng(params.seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_real_distribution<double> jitter(0.9, 1.1);

    CooEdges coo(params.nodes);
    coo.reserve(params.edges);
    for (EdgeIndex i = 0; i < params.edges; ++i) {
        NodeId src = 0;
        NodeId dst = 0;
        for (int level = 0; level < levels; ++level) {
            double a = params.a;
            double b = params.b;
            double c = params.c;
            if (params.noise) {
                a *= jitter(rng);
                b *= jitter(rng);
                c *= jitter(rng);
                double d = (1.0 - params.a - params.b - params.c)
                    * jitter(rng);
                double norm = a + b + c + d;
                a /= norm;
                b /= norm;
                c /= norm;
            }
            double r = uni(rng);
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left: both bits zero
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        // Fold ids generated in the power-of-two universe back into the
        // requested node range so no id is out of bounds.
        src %= params.nodes;
        dst %= params.nodes;
        coo.add(src, dst);
    }
    return coo;
}

CooEdges
barabasiAlbert(NodeId nodes, unsigned edges_per_node, std::uint64_t seed)
{
    assert(edges_per_node >= 1);
    assert(nodes > edges_per_node);

    std::mt19937_64 rng(seed);

    // targets[i] is an endpoint list where each node appears once per
    // incident edge; sampling uniformly from it is preferential
    // attachment.
    std::vector<NodeId> endpoints;
    endpoints.reserve(static_cast<std::size_t>(nodes) * edges_per_node * 2);

    CooEdges coo(nodes);
    coo.reserve(static_cast<std::size_t>(nodes) * edges_per_node * 2);

    // Seed clique over the first edges_per_node + 1 nodes.
    const NodeId seed_nodes = edges_per_node + 1;
    for (NodeId u = 0; u < seed_nodes; ++u) {
        for (NodeId v = u + 1; v < seed_nodes; ++v) {
            coo.add(u, v);
            coo.add(v, u);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }

    for (NodeId v = seed_nodes; v < nodes; ++v) {
        std::vector<NodeId> chosen;
        chosen.reserve(edges_per_node);
        while (chosen.size() < edges_per_node) {
            std::uniform_int_distribution<std::size_t> pick(
                0, endpoints.size() - 1);
            NodeId u = endpoints[pick(rng)];
            if (std::find(chosen.begin(), chosen.end(), u) == chosen.end())
                chosen.push_back(u);
        }
        for (NodeId u : chosen) {
            coo.add(v, u);
            coo.add(u, v);
            endpoints.push_back(u);
            endpoints.push_back(v);
        }
    }
    return coo;
}

CooEdges
erdosRenyi(NodeId nodes, EdgeIndex edges, std::uint64_t seed)
{
    assert(nodes > 1);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<NodeId> pick(0, nodes - 1);

    CooEdges coo(nodes);
    coo.reserve(edges);
    for (EdgeIndex i = 0; i < edges; ++i)
        coo.add(pick(rng), pick(rng));
    return coo;
}

CooEdges
ring(NodeId nodes)
{
    CooEdges coo(nodes);
    coo.reserve(nodes);
    for (NodeId v = 0; v < nodes; ++v)
        coo.add(v, (v + 1) % nodes);
    return coo;
}

CooEdges
path(NodeId nodes)
{
    CooEdges coo(nodes);
    if (nodes < 2)
        return coo;
    coo.reserve(nodes - 1);
    for (NodeId v = 0; v + 1 < nodes; ++v)
        coo.add(v, v + 1);
    return coo;
}

CooEdges
grid2d(NodeId rows, NodeId cols)
{
    CooEdges coo(rows * cols);
    auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
    for (NodeId r = 0; r < rows; ++r) {
        for (NodeId c = 0; c < cols; ++c) {
            if (c + 1 < cols) {
                coo.add(id(r, c), id(r, c + 1));
                coo.add(id(r, c + 1), id(r, c));
            }
            if (r + 1 < rows) {
                coo.add(id(r, c), id(r + 1, c));
                coo.add(id(r + 1, c), id(r, c));
            }
        }
    }
    return coo;
}

CooEdges
star(NodeId nodes)
{
    assert(nodes >= 1);
    CooEdges coo(nodes);
    coo.reserve(nodes - 1);
    for (NodeId v = 1; v < nodes; ++v)
        coo.add(0, v);
    return coo;
}

CooEdges
wattsStrogatz(NodeId nodes, unsigned neighbors_per_side, double beta,
              std::uint64_t seed)
{
    assert(nodes > 2 * neighbors_per_side);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_int_distribution<NodeId> pick(0, nodes - 1);

    CooEdges coo(nodes);
    coo.reserve(static_cast<std::size_t>(nodes) * neighbors_per_side *
                2);
    for (NodeId v = 0; v < nodes; ++v) {
        for (unsigned offset = 1; offset <= neighbors_per_side;
             ++offset) {
            NodeId target = (v + offset) % nodes;
            if (uni(rng) < beta) {
                do {
                    target = pick(rng);
                } while (target == v);
            }
            coo.add(v, target);
            coo.add(target, v);
        }
    }
    return coo;
}

CooEdges
complete(NodeId nodes)
{
    CooEdges coo(nodes);
    coo.reserve(static_cast<std::size_t>(nodes) * (nodes - 1));
    for (NodeId u = 0; u < nodes; ++u)
        for (NodeId v = 0; v < nodes; ++v)
            if (u != v)
                coo.add(u, v);
    return coo;
}

} // namespace tigr::graph
