#include "sim/warp_simulator.hpp"

namespace tigr::sim {

KernelStats &
KernelStats::operator+=(const KernelStats &other)
{
    launches += other.launches;
    threads += other.threads;
    warps += other.warps;
    cycles += other.cycles;
    instructions += other.instructions;
    laneSlots += other.laneSlots;
    memTransactions += other.memTransactions;
    memAccesses += other.memAccesses;
    valueTransactions += other.valueTransactions;
    busiestSmCycles += other.busiestSmCycles;
    totalSmCycles += other.totalSmCycles;
    smCount = std::max(smCount, other.smCount);
    return *this;
}

std::uint64_t
WarpSimulator::simulateWarp(unsigned lanes, unsigned warp_size,
                            KernelStats &stats,
                            WarpScratch &scratch) const
{
    const std::vector<ThreadWork> &warp_lanes = scratch.lanes;
    std::vector<std::uint64_t> &segment_scratch = scratch.segments;
    // SIMD lockstep: the warp issues for as many steps as its deepest
    // lane; finished lanes keep their slots occupied (Figure 3).
    std::uint32_t max_instructions = 0;
    std::uint32_t max_edges = 0;
    std::uint64_t useful = 0;
    for (unsigned lane = 0; lane < lanes; ++lane) {
        const ThreadWork &work = warp_lanes[lane];
        max_instructions = std::max(max_instructions, work.instructions);
        max_edges = std::max(max_edges, work.edgeCount);
        useful += work.instructions;
        stats.memAccesses += work.edgeCount;
    }
    stats.instructions += useful;
    stats.laneSlots +=
        static_cast<std::uint64_t>(max_instructions) * warp_size;

    // Memory model. Lanes fall into two regimes:
    //  - Interleaved lanes (stride > 1, or a single access): what
    //    matters is cross-lane coalescing within each lockstep step —
    //    loads from different lanes falling into one aligned segment
    //    merge into a single transaction. This is the Tigr-V+ family
    //    pattern (lanes read adjacent slots each step) and the
    //    edge-parallel pattern (consecutive threads read consecutive
    //    edges).
    //  - Sequential lanes (stride == 1 with multiple accesses, i.e. a
    //    thread walking its own CSR row): each lane streams through
    //    ceil(count*record/segment) segments on its own, but
    //    inter-step eviction by other warps re-fetches each segment
    //    sequentialReloadFactor times on average (capped at one
    //    transaction per access).
    auto is_sequential = [](const ThreadWork &work) {
        return work.edgeStride == 1 && work.edgeCount > 1;
    };
    std::uint64_t transactions = 0;
    const std::uint64_t segment = config_.memSegmentBytes;
    for (std::uint32_t j = 0; j < max_edges; ++j) {
        segment_scratch.clear();
        for (unsigned lane = 0; lane < lanes; ++lane) {
            const ThreadWork &work = warp_lanes[lane];
            if (j >= work.edgeCount || is_sequential(work))
                continue;
            std::uint64_t address =
                (work.edgeStart + work.edgeStride * j) *
                work.bytesPerEdge;
            std::uint64_t seg = address / segment;
            bool seen = false;
            for (std::uint64_t s : segment_scratch) {
                if (s == seg) {
                    seen = true;
                    break;
                }
            }
            if (!seen)
                segment_scratch.push_back(seg);
        }
        transactions += segment_scratch.size();
    }
    for (unsigned lane = 0; lane < lanes; ++lane) {
        const ThreadWork &work = warp_lanes[lane];
        if (!is_sequential(work))
            continue;
        std::uint64_t bytes = static_cast<std::uint64_t>(work.edgeCount) *
                              work.bytesPerEdge;
        std::uint64_t segments = (bytes + segment - 1) / segment;
        transactions += std::min<std::uint64_t>(
            work.edgeCount, segments * config_.sequentialReloadFactor);
    }
    stats.memTransactions += transactions;

    // Scattered value-array traffic: Algorithm 2's update of
    // distance[edges[i].nbr] touches an effectively random segment per
    // edge regardless of how the edge array is laid out, so it charges
    // one transaction per lane-level edge access. This bandwidth term
    // is identical across strategies per edge and keeps the modeled
    // kernels memory-bound, as on real hardware.
    std::uint64_t value_transactions = 0;
    if (config_.modelValueScatter) {
        std::uint64_t windowed_bytes = 0;
        for (unsigned lane = 0; lane < lanes; ++lane) {
            const ThreadWork &work = warp_lanes[lane];
            if (work.scatterAccessesPerEdge > 0) {
                value_transactions +=
                    static_cast<std::uint64_t>(work.edgeCount) *
                    work.scatterAccessesPerEdge;
            } else {
                // Windowed updates (CuSha shards) land sequentially
                // and coalesce across the whole warp; accumulate their
                // bytes and charge at half-segment efficiency below.
                windowed_bytes +=
                    static_cast<std::uint64_t>(work.edgeCount) * 4;
            }
        }
        if (windowed_bytes > 0) {
            value_transactions +=
                (windowed_bytes * 2 + config_.memSegmentBytes - 1) /
                config_.memSegmentBytes;
        }
    }
    stats.valueTransactions += value_transactions;

    return static_cast<std::uint64_t>(max_instructions) *
               config_.cyclesPerInstruction +
           (transactions + value_transactions) *
               config_.cyclesPerTransaction;
}

} // namespace tigr::sim
