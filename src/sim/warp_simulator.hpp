/**
 * @file
 * The lockstep warp execution model: the accounting core of the GPU
 * substitute substrate.
 *
 * Engines execute graph semantics themselves (on the host) and describe
 * each simulated thread's work to the simulator as a ThreadWork record;
 * the simulator derives warp occupancy, SIMD-lane idling, coalesced
 * memory transactions, per-SM load, and total kernel cycles from those
 * records. This keeps simulation O(total work) while charging exactly
 * the costs the paper's analysis is about.
 *
 * Edge-array slots are opaque addresses to the simulator: an
 * arena-addressed provider (engine/arena_provider.hpp) hands it slots
 * in the DynamicGraph slack arena rather than a dense CSR, which can
 * shift memTransactions/coalescing accounting (segments relocate to
 * the arena tail as a graph mutates) but never any analysis value —
 * the engines compute semantics from the provider's edges, not from
 * the simulated addresses.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "par/parallel_for.hpp"
#include "sim/gpu_config.hpp"

namespace tigr::sim {

/**
 * One simulated thread's work in a kernel launch.
 *
 * Edge-array accesses are described compactly as an arithmetic sequence
 * of slots (start + stride * j, j < edgeCount), which covers the
 * baseline (stride 1, count = degree), Tigr-V (stride 1, count <= K) and
 * Tigr-V+ (stride = family size) access patterns alike.
 */
struct ThreadWork
{
    /** Instructions this lane issues (edge loop + epilogue). */
    std::uint32_t instructions = 0;
    /** Number of edge-array slots the lane reads. */
    std::uint32_t edgeCount = 0;
    /** First edge-array slot. */
    std::uint64_t edgeStart = 0;
    /** Distance between consecutive slots. */
    std::uint64_t edgeStride = 1;
    /** Bytes per edge record (target id + weight). */
    std::uint32_t bytesPerEdge = 8;
    /** Scattered value-array accesses per edge: 1 for a plain push
     *  (the atomicMin on distance[nbr]), 2 for engines that also touch
     *  scattered bookkeeping per edge (Gunrock's frontier atomics and
     *  label checks), 0 for windowed/sequential value updates (CuSha's
     *  shard windows), which coalesce instead. */
    std::uint32_t scatterAccessesPerEdge = 1;
};

/**
 * The work of one lane of a frontier-maintenance pass (Gunrock-style
 * compaction / filter): an activity-flag test plus a compacted-slot
 * write, no edge traffic. Engines running a sparse-frontier iteration
 * charge one extra launch of |frontier| such threads, so the simulated
 * cost of frontier compaction scales with the real frontier size
 * instead of being free.
 */
inline ThreadWork
frontierPassWork()
{
    ThreadWork work;
    work.instructions = 2;
    work.edgeCount = 0;
    work.scatterAccessesPerEdge = 0;
    return work;
}

/** Counters produced by one kernel launch (or aggregated over many). */
struct KernelStats
{
    std::uint64_t launches = 0;        ///< Kernel launches accounted.
    std::uint64_t threads = 0;         ///< Threads scheduled.
    std::uint64_t warps = 0;           ///< Warps scheduled.
    std::uint64_t cycles = 0;          ///< Total kernel cycles.
    std::uint64_t instructions = 0;    ///< Useful lane instructions.
    std::uint64_t laneSlots = 0;       ///< Issued lane-cycles
                                       ///< (warps x warpSize x depth).
    std::uint64_t memTransactions = 0; ///< Coalesced edge-array
                                       ///< transactions.
    std::uint64_t memAccesses = 0;     ///< Lane-level edge accesses.
    std::uint64_t valueTransactions = 0; ///< Scattered value-array
                                         ///< transactions (1 per edge
                                         ///< when modeled).
    std::uint64_t busiestSmCycles = 0;   ///< Cycles of the most loaded
                                         ///< SM (summed over launches).
    std::uint64_t totalSmCycles = 0;     ///< Cycles summed over all SMs.
    std::uint32_t smCount = 0;           ///< SMs in the configuration.

    /** SIMD efficiency: useful lane instructions over issued lane
     *  slots — the paper's "warp efficiency" (Table 8). */
    double
    warpEfficiency() const
    {
        return laneSlots == 0
                   ? 1.0
                   : static_cast<double>(instructions) /
                         static_cast<double>(laneSlots);
    }

    /** Average memory accesses served per transaction (32 = perfectly
     *  coalesced 4-byte loads, 1 = fully scattered). */
    double
    coalescingFactor() const
    {
        return memTransactions == 0
                   ? 1.0
                   : static_cast<double>(memAccesses) /
                         static_cast<double>(memTransactions);
    }

    /** Inter-warp (SM-level) load imbalance, Section 2.3's second
     *  effect: 0 = every SM equally busy, values toward 1 = one SM
     *  did nearly all the work while others idled. */
    double
    smImbalance() const
    {
        if (busiestSmCycles == 0 || smCount == 0)
            return 0.0;
        double ideal = static_cast<double>(totalSmCycles) /
                       static_cast<double>(smCount);
        return 1.0 - ideal / static_cast<double>(busiestSmCycles);
    }

    /** Accumulate another launch's counters. */
    KernelStats &operator+=(const KernelStats &other);

    /** Field-wise equality (the determinism tests' workhorse). */
    bool operator==(const KernelStats &other) const = default;
};

/**
 * Lockstep warp simulator.
 *
 * launch() groups consecutive thread ids into warps of warpSize lanes,
 * charges each warp max-over-lanes instruction depth (idle lanes burn
 * issue slots — Figure 3 of the paper), counts one memory transaction
 * per distinct memSegmentBytes-aligned segment touched by the warp per
 * lockstep edge access, assigns warps round-robin to SMs, and reports
 * kernel cycles as the busiest SM's total plus launch overhead.
 */
class WarpSimulator
{
  public:
    explicit WarpSimulator(const GpuConfig &config = {})
        : config_(config)
    {
    }

    /** The configuration in use. */
    const GpuConfig &config() const { return config_; }

    /**
     * Simulate a kernel of @p num_threads threads. @p work_of is called
     * once per thread id, in order, and must return that thread's
     * ThreadWork. This serial form accepts impure callbacks (callers
     * may run graph semantics inside work_of).
     */
    template <typename WorkFn>
    KernelStats
    launch(std::uint64_t num_threads, WorkFn &&work_of)
    {
        KernelStats stats;
        stats.launches = 1;
        stats.threads = num_threads;

        const unsigned warp_size = config_.warpSize;
        smCycles_.assign(config_.numSms, 0);
        scratch_.lanes.resize(warp_size);

        std::uint64_t warp_index = 0;
        for (std::uint64_t base = 0; base < num_threads;
             base += warp_size, ++warp_index) {
            const unsigned lanes = static_cast<unsigned>(
                std::min<std::uint64_t>(warp_size, num_threads - base));
            for (unsigned lane = 0; lane < lanes; ++lane)
                scratch_.lanes[lane] = work_of(base + lane);
            std::uint64_t warp_cycles =
                simulateWarp(lanes, warp_size, stats, scratch_);
            smCycles_[warp_index % config_.numSms] += warp_cycles;
            ++stats.warps;
        }

        stats.cycles = config_.kernelLaunchCycles;
        stats.smCount = config_.numSms;
        if (!smCycles_.empty()) {
            stats.busiestSmCycles =
                *std::max_element(smCycles_.begin(), smCycles_.end());
            stats.cycles += stats.busiestSmCycles;
            for (std::uint64_t sm : smCycles_)
                stats.totalSmCycles += sm;
        }
        return stats;
    }

    /**
     * Parallel overload: simulate the launch across the pool's host
     * threads. @p work_of MUST be pure — callable concurrently for
     * distinct thread ids with no side effects — which is why the
     * engines describe units instead of executing semantics here.
     *
     * Warps are cut into fixed chunks; each chunk produces a partial
     * KernelStats plus a partial per-SM cycle vector, and partials are
     * merged in chunk order. All counters are integer sums and the
     * warp -> SM assignment (warp index mod numSms) is position-based,
     * so the result is bit-identical to the serial overload for every
     * pool size (including a null pool, which falls back to it).
     */
    template <typename WorkFn>
    KernelStats
    launch(std::uint64_t num_threads, WorkFn &&work_of,
           par::ThreadPool *pool)
    {
        const unsigned warp_size = config_.warpSize;
        const std::uint64_t num_warps =
            (num_threads + warp_size - 1) / warp_size;
        if (pool == nullptr || pool->threads() <= 1 ||
            num_warps <= kWarpGrain) {
            return launch(num_threads, work_of);
        }

        struct Partial
        {
            KernelStats stats;
            std::vector<std::uint64_t> smCycles;
        };
        const std::uint64_t chunks =
            par::chunkCount(num_warps, kWarpGrain);
        std::vector<Partial> partials(chunks);
        par::PerWorker<WarpScratch> scratch(pool);

        par::forEachChunk(
            pool, num_warps, kWarpGrain,
            [&](std::uint64_t chunk, std::uint64_t warp_begin,
                std::uint64_t warp_end, unsigned worker) {
                Partial &part = partials[chunk];
                part.smCycles.assign(config_.numSms, 0);
                WarpScratch &ws = scratch[worker];
                ws.lanes.resize(warp_size);
                for (std::uint64_t w = warp_begin; w < warp_end; ++w) {
                    const std::uint64_t base =
                        w * static_cast<std::uint64_t>(warp_size);
                    const unsigned lanes = static_cast<unsigned>(
                        std::min<std::uint64_t>(warp_size,
                                                num_threads - base));
                    for (unsigned lane = 0; lane < lanes; ++lane)
                        ws.lanes[lane] = work_of(base + lane);
                    const std::uint64_t warp_cycles =
                        simulateWarp(lanes, warp_size, part.stats, ws);
                    part.smCycles[w % config_.numSms] += warp_cycles;
                }
            });

        KernelStats stats;
        stats.launches = 1;
        stats.threads = num_threads;
        stats.warps = num_warps;
        smCycles_.assign(config_.numSms, 0);
        for (const Partial &part : partials) {
            stats.instructions += part.stats.instructions;
            stats.laneSlots += part.stats.laneSlots;
            stats.memTransactions += part.stats.memTransactions;
            stats.memAccesses += part.stats.memAccesses;
            stats.valueTransactions += part.stats.valueTransactions;
            for (std::uint32_t sm = 0; sm < config_.numSms; ++sm)
                smCycles_[sm] += part.smCycles[sm];
        }
        stats.cycles = config_.kernelLaunchCycles;
        stats.smCount = config_.numSms;
        if (!smCycles_.empty()) {
            stats.busiestSmCycles =
                *std::max_element(smCycles_.begin(), smCycles_.end());
            stats.cycles += stats.busiestSmCycles;
            for (std::uint64_t sm : smCycles_)
                stats.totalSmCycles += sm;
        }
        return stats;
    }

  private:
    /** Reusable per-warp simulation buffers (one per host worker in
     *  the parallel overload). */
    struct WarpScratch
    {
        std::vector<ThreadWork> lanes;
        std::vector<std::uint64_t> segments;
    };

    /** Warps per parallel-simulation chunk (4096 threads at warp 32);
     *  fixed so the chunk structure never depends on thread count. */
    static constexpr std::uint64_t kWarpGrain = 128;

    /** Charge one warp; returns the warp's cycle cost. Reads only the
     *  configuration, so it is safe to call concurrently with distinct
     *  scratch and stats objects. */
    std::uint64_t simulateWarp(unsigned lanes, unsigned warp_size,
                               KernelStats &stats,
                               WarpScratch &scratch) const;

    GpuConfig config_;
    std::vector<std::uint64_t> smCycles_;
    WarpScratch scratch_;
};

} // namespace tigr::sim
