/**
 * @file
 * Configuration of the software GPU-SIMD model.
 *
 * The paper's evaluation hardware (NVIDIA Quadro P4000) is replaced by
 * this simulator per the substitution documented in DESIGN.md: the model
 * charges exactly the costs the paper reasons about — idle SIMD lanes in
 * lockstep warps, per-SM load imbalance, and memory transactions that
 * depend on access coalescing — so relative results transfer.
 */
#pragma once

#include <cstdint>

namespace tigr::sim {

/** Hardware parameters of the simulated GPU. Defaults approximate the
 *  paper's Quadro P4000 (1792 cores = 14 SMs x 128 lanes). */
struct GpuConfig
{
    /** Threads per warp; NVIDIA's fixed 32. */
    unsigned warpSize = 32;

    /** Streaming multiprocessors. Warps are assigned round-robin; the
     *  kernel finishes when the busiest SM finishes, which is how
     *  inter-warp imbalance shows up (Section 2.3). */
    unsigned numSms = 14;

    /** Memory-coalescing segment size in bytes: one transaction serves
     *  all lane accesses that fall into one aligned segment. */
    unsigned memSegmentBytes = 128;

    /** Cycles charged per issued instruction slot. */
    unsigned cyclesPerInstruction = 1;

    /** Cycles charged per memory transaction. */
    unsigned cyclesPerTransaction = 8;

    /** Cache-reuse model for per-lane sequential edge streams (lane
     *  stride x record size smaller than a segment): each segment is
     *  re-fetched this many times on average before the lane finishes
     *  it, because other warps evict it between lockstep steps. 1 =
     *  perfect reuse, segmentBytes/recordBytes = no reuse at all. */
    unsigned sequentialReloadFactor = 4;

    /** Model the scattered neighbor-value access each edge performs
     *  (the atomicMin on distance[edges[i].nbr] in Algorithm 2): one
     *  transaction per edge, independent of edge-array layout. This is
     *  what makes graph kernels bandwidth-bound and keeps the modeled
     *  transformation speedups in the paper's range. */
    bool modelValueScatter = true;

    /** Fixed overhead charged per kernel launch (host-side driver
     *  work; it is what makes many tiny iterations expensive). The
     *  default is a real ~5 us launch scaled by the ~1/400 dataset
     *  scale this repository runs at, so per-iteration overhead keeps
     *  the same *relative* weight as on the paper's testbed. */
    std::uint64_t kernelLaunchCycles = 64;
};

} // namespace tigr::sim
