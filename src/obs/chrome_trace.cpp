#include "obs/chrome_trace.hpp"

namespace tigr::obs {
namespace {

/// Simulator clock: 1.2 GHz -> 1200 cycles per simulated microsecond.
constexpr std::uint64_t kCyclesPerMicro = 1200;

std::uint64_t
toMicros(std::uint64_t cycles)
{
    return cycles / kCyclesPerMicro;
}

void
writeEscaped(std::ostream &out, std::string_view text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
}

/// The "args" object: labelled fields per kind, mirroring formatEvent.
void
writeArgs(std::ostream &out, const TraceEvent &e)
{
    struct Field
    {
        std::string_view key;
        std::uint64_t value;
    };
    struct Label
    {
        std::string_view key;
        std::string_view value;
    };
    Field fields[8];
    Label labels[4];
    std::size_t nf = 0;
    std::size_t nl = 0;
    switch (e.kind) {
    case EventKind::RunBegin:
        labels[nl++] = {"algo", e.label[0]};
        labels[nl++] = {"strategy", e.label[1]};
        labels[nl++] = {"direction", e.label[2]};
        labels[nl++] = {"frontier", e.label[3]};
        fields[nf++] = {"n", e.arg[0]};
        fields[nf++] = {"worklist", e.arg[1]};
        fields[nf++] = {"dynamic", e.arg[2]};
        break;
    case EventKind::Transform:
        fields[nf++] = {"cached", e.arg[0]};
        fields[nf++] = {"units", e.arg[1]};
        break;
    case EventKind::Iteration:
        fields[nf++] = {"i", e.arg[0]};
        fields[nf++] = {"frontier", e.arg[1]};
        fields[nf++] = {"sparse", e.arg[2]};
        fields[nf++] = {"units", e.arg[3]};
        fields[nf++] = {"cycles", e.arg[4]};
        fields[nf++] = {"instr", e.arg[5]};
        fields[nf++] = {"lanes", e.arg[6]};
        fields[nf++] = {"memtx", e.arg[7]};
        break;
    case EventKind::RunEnd:
        fields[nf++] = {"iterations", e.arg[0]};
        fields[nf++] = {"converged", e.arg[1]};
        fields[nf++] = {"cancelled", e.arg[2]};
        fields[nf++] = {"peak_frontier", e.arg[3]};
        fields[nf++] = {"sparse_iters", e.arg[4]};
        fields[nf++] = {"cycles", e.arg[5]};
        break;
    case EventKind::CacheLookup:
        fields[nf++] = {"hit", e.arg[0]};
        fields[nf++] = {"retained", e.arg[1]};
        break;
    case EventKind::QueryBegin:
        labels[nl++] = {"algo", e.label[0]};
        labels[nl++] = {"strategy", e.label[1]};
        fields[nf++] = {"index", e.arg[0]};
        break;
    case EventKind::QueryEnd:
        labels[nl++] = {"outcome", e.label[0]};
        fields[nf++] = {"attempts", e.arg[0]};
        fields[nf++] = {"iterations", e.arg[1]};
        fields[nf++] = {"cycles", e.arg[2]};
        fields[nf++] = {"digest", e.arg[3]};
        fields[nf++] = {"backoff_us", e.arg[4]};
        fields[nf++] = {"degraded", e.arg[5]};
        fields[nf++] = {"cache_hit", e.arg[6]};
        break;
    case EventKind::Fault:
        labels[nl++] = {"site", e.label[0]};
        fields[nf++] = {"scope", e.arg[0]};
        fields[nf++] = {"attempt", e.arg[1]};
        fields[nf++] = {"hit", e.arg[2]};
        break;
    case EventKind::Retry:
        labels[nl++] = {"error", e.label[0]};
        fields[nf++] = {"attempt", e.arg[0]};
        fields[nf++] = {"backoff_us", e.arg[1]};
        break;
    case EventKind::Degrade:
        labels[nl++] = {"error", e.label[0]};
        break;
    case EventKind::MutationBegin:
        labels[nl++] = {"graph", e.label[0]};
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"mutations", e.arg[1]};
        fields[nf++] = {"inserts", e.arg[2]};
        fields[nf++] = {"deletes", e.arg[3]};
        fields[nf++] = {"reweights", e.arg[4]};
        break;
    case EventKind::MutationApply:
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"touched", e.arg[1]};
        fields[nf++] = {"edges", e.arg[2]};
        fields[nf++] = {"slack", e.arg[3]};
        break;
    case EventKind::MutationCompact:
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"reclaimed", e.arg[1]};
        fields[nf++] = {"edges", e.arg[2]};
        break;
    case EventKind::MutationResplit:
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"repaired", e.arg[1]};
        fields[nf++] = {"resplit", e.arg[2]};
        fields[nf++] = {"shifted", e.arg[3]};
        fields[nf++] = {"entries", e.arg[4]};
        fields[nf++] = {"reverse_repaired", e.arg[5]};
        fields[nf++] = {"reverse_resplit", e.arg[6]};
        break;
    case EventKind::ArenaServe:
        labels[nl++] = {"direction", e.label[0]};
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"forward", e.arg[1]};
        fields[nf++] = {"reverse", e.arg[2]};
        break;
    case EventKind::JournalAppend:
        labels[nl++] = {"policy", e.label[0]};
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"seq", e.arg[1]};
        fields[nf++] = {"bytes", e.arg[2]};
        fields[nf++] = {"synced", e.arg[3]};
        break;
    case EventKind::JournalCheckpoint:
        fields[nf++] = {"epoch", e.arg[0]};
        fields[nf++] = {"retired", e.arg[1]};
        fields[nf++] = {"bytes", e.arg[2]};
        break;
    case EventKind::RecoverGraph:
        fields[nf++] = {"snapshot_epoch", e.arg[0]};
        fields[nf++] = {"epoch", e.arg[1]};
        fields[nf++] = {"replayed", e.arg[2]};
        fields[nf++] = {"retired", e.arg[3]};
        fields[nf++] = {"truncated", e.arg[4]};
        fields[nf++] = {"torn", e.arg[5]};
        break;
    }
    out << "{";
    bool first = true;
    for (std::size_t i = 0; i < nl; ++i) {
        if (labels[i].value.empty())
            continue;
        out << (first ? "" : ",") << '"';
        writeEscaped(out, labels[i].key);
        out << "\":\"";
        writeEscaped(out, labels[i].value);
        out << '"';
        first = false;
    }
    for (std::size_t i = 0; i < nf; ++i) {
        out << (first ? "" : ",") << '"';
        writeEscaped(out, fields[i].key);
        out << "\":" << fields[i].value;
        first = false;
    }
    out << "}";
}

/// The event's display name in the viewer.
std::string_view
displayName(const TraceEvent &e)
{
    switch (e.kind) {
    case EventKind::RunBegin:
    case EventKind::RunEnd:
        return e.label[0].empty() ? eventKindName(e.kind) : e.label[0];
    case EventKind::Fault:
        return e.label[0].empty() ? "fault" : e.label[0];
    default:
        return eventKindName(e.kind);
    }
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream &out) : out_(out)
{
    out_ << "{\"traceEvents\":[";
}

void
ChromeTraceWriter::comma()
{
    if (!first_)
        out_ << ",\n";
    first_ = false;
}

void
ChromeTraceWriter::add(const TraceSink &sink, std::uint64_t tid,
                       std::string_view thread_name)
{
    if (!thread_name.empty()) {
        comma();
        out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":"
             << tid << ",\"args\":{\"name\":\"";
        writeEscaped(out_, thread_name);
        out_ << "\"}}";
    }
    for (const TraceEvent &e : sink.events()) {
        comma();
        const std::uint64_t ts = toMicros(e.tick);
        out_ << "{\"name\":\"";
        writeEscaped(out_, displayName(e));
        out_ << "\",\"pid\":1,\"tid\":" << tid;
        switch (e.kind) {
        case EventKind::Iteration: {
            // The iteration spans [tick - cycles delta, tick].
            const std::uint64_t dur_cycles = e.arg[4];
            const std::uint64_t start =
                e.tick >= dur_cycles ? e.tick - dur_cycles : 0;
            out_ << ",\"ph\":\"X\",\"ts\":" << toMicros(start)
                 << ",\"dur\":" << toMicros(dur_cycles);
            break;
        }
        case EventKind::RunBegin:
            out_ << ",\"ph\":\"B\",\"ts\":" << ts;
            break;
        case EventKind::RunEnd:
            out_ << ",\"ph\":\"E\",\"ts\":" << ts;
            break;
        default:
            out_ << ",\"ph\":\"i\",\"ts\":" << ts << ",\"s\":\"t\"";
            break;
        }
        out_ << ",\"args\":";
        writeArgs(out_, e);
        out_ << "}";
    }
}

void
ChromeTraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    out_ << "],\"displayTimeUnit\":\"ms\"}\n";
}

void
writeChromeTrace(std::ostream &out, const TraceSink &sink,
                 std::string_view thread_name)
{
    ChromeTraceWriter writer(out);
    writer.add(sink, 0, thread_name);
    writer.finish();
}

} // namespace tigr::obs
