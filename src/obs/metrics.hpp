/**
 * @file
 * MetricsRegistry: named monotonic counters, gauges, and log2-bucket
 * histograms with a stable, sorted, integer-only serialization — the
 * aggregate half of the observability layer (docs/observability.md).
 *
 * Design constraints, in determinism order:
 *
 *  - Every exported number is an integer. Histograms use fixed log2
 *    buckets (bucket i counts values whose bit width is i), so no
 *    float ever participates in a comparison or a golden file.
 *  - snapshotText() / snapshotJson() emit instruments sorted by name,
 *    so two registries fed the same updates serialize byte-identically
 *    regardless of registration order.
 *  - Counters saturate at uint64 max instead of wrapping: a saturated
 *    counter is visibly pinned, never silently small again.
 *  - Disabled mode is allocation-free: MetricsRegistry::disabled()
 *    hands out shared scrap instruments without touching the name maps
 *    (tests/obs/test_metrics pins the zero-allocation property).
 *
 * Thread safety: instrument updates are relaxed atomics (sums are
 * order-independent), instrument lookup takes the registry mutex.
 * References returned by counter()/gauge()/histogram() stay valid for
 * the registry's lifetime (node-based storage).
 */
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace tigr::obs {

/** FNV-1a 64-bit hash (local copy; obs depends on nothing). */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = 14695981039346656037ULL);

/** A monotonic counter. add() saturates at uint64 max. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        std::uint64_t cur = value_.load(std::memory_order_relaxed);
        std::uint64_t next;
        do {
            next = cur > ~delta ? ~std::uint64_t{0} : cur + delta;
        } while (!value_.compare_exchange_weak(
            cur, next, std::memory_order_relaxed));
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-value-wins gauge (cache residency, worker counts, ...). */
class Gauge
{
  public:
    void set(std::uint64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Fixed log2-bucket histogram: observe(v) increments bucket
 * bit_width(v), i.e. bucket 0 holds exactly the value 0 and bucket
 * i >= 1 holds values in [2^(i-1), 2^i - 1]. Count and sum saturate.
 */
class Histogram
{
  public:
    /** Bucket count: bit widths 0..64 inclusive. */
    static constexpr std::size_t kBuckets = 65;

    void observe(std::uint64_t value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of observed values, saturating at uint64 max. */
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t bucket(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Which bucket observe(@p value) lands in (= bit_width). */
    static std::size_t bucketOf(std::uint64_t value);

    /** Smallest value of bucket @p i (0 for buckets 0 and 1). */
    static std::uint64_t bucketFloor(std::size_t i);

    /** Largest value of bucket @p i. */
    static std::uint64_t bucketCeil(std::size_t i);

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * A named registry of counters/gauges/histograms. Instruments are
 * created on first lookup and live as long as the registry. The
 * disabled() singleton accepts updates into shared scrap instruments
 * without allocating or storing anything — production code can bump
 * metrics unconditionally through a registry reference.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    /** The shared no-op registry: never allocates, snapshots empty. */
    static MetricsRegistry &disabled();

    /** False only for the disabled() singleton. */
    bool enabled() const { return enabled_; }

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /**
     * Deterministic text form, one instrument per line, sorted by
     * (type, name):
     *
     *   counter scheduler.admitted 42
     *   gauge cache.bytes 65536
     *   hist query.iterations count=10 sum=55 b2=3 b3=7
     *
     * Only non-zero histogram buckets appear (bN = bucket index N).
     */
    std::string snapshotText() const;

    /** The same snapshot as a single JSON object (stable key order). */
    std::string snapshotJson() const;

    /** FNV-1a 64 of snapshotText() — the compact comparison witness. */
    std::uint64_t digest() const;

  private:
    struct DisabledTag
    {
    };
    explicit MetricsRegistry(DisabledTag) : enabled_(false) {}

    bool enabled_ = true;
    mutable std::mutex mutex_;
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    /** Scrap instruments the disabled registry hands out. */
    Counter scrapCounter_;
    Gauge scrapGauge_;
    Histogram scrapHistogram_;
};

} // namespace tigr::obs
