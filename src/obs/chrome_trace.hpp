/**
 * @file
 * Chrome trace_event JSON export for TraceSink streams.
 *
 * Timestamps are *simulated* microseconds: ticks are simulator cycles
 * and the simulator models a 1.2 GHz clock, so ts = cycles / 1200.
 * Integer division keeps the output deterministic; sub-microsecond
 * events collapse onto the same tick, which chrome://tracing renders
 * fine.
 *
 * Event mapping:
 *  - Iteration  -> "X" (complete) events spanning the iteration's
 *                  cycle delta, so BSP steps show up as bars.
 *  - RunBegin / RunEnd -> "B"/"E" duration pair enclosing the run.
 *  - everything else -> "i" (instant) events.
 *
 * Merge traces from several queries by calling add() once per sink
 * with distinct tids (e.g. the query's batch index), then finish().
 */
#pragma once

#include "obs/trace.hpp"

#include <ostream>
#include <string_view>

namespace tigr::obs {

class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(std::ostream &out);

    /**
     * Emit every event of @p sink on thread id @p tid. If
     * @p thread_name is non-empty a thread_name metadata event is
     * emitted first so the track is labelled in the viewer.
     */
    void add(const TraceSink &sink, std::uint64_t tid = 0,
             std::string_view thread_name = {});

    /** Close the JSON document. Must be called exactly once. */
    void finish();

  private:
    void comma();

    std::ostream &out_;
    bool first_ = true;
    bool finished_ = false;
};

/** One-shot convenience: write @p sink as a complete trace document. */
void writeChromeTrace(std::ostream &out, const TraceSink &sink,
                      std::string_view thread_name = {});

} // namespace tigr::obs
