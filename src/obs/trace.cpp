#include "obs/trace.hpp"

#include "obs/metrics.hpp"

#include <sstream>
#include <vector>

namespace tigr::obs {
namespace {

/// Append " key=value" only when the value is meaningful for the kind.
void
appendArg(std::ostringstream &out, std::string_view key,
          std::uint64_t value)
{
    out << ' ' << key << '=' << value;
}

void
appendLabel(std::ostringstream &out, std::string_view key,
            std::string_view value)
{
    if (!value.empty())
        out << ' ' << key << '=' << value;
}

std::vector<std::string_view>
splitLines(std::string_view text)
{
    std::vector<std::string_view> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos) {
            lines.push_back(text.substr(pos));
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::vector<std::string_view>
splitFields(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        if (pos >= line.size())
            break;
        std::size_t end = line.find(' ', pos);
        if (end == std::string_view::npos)
            end = line.size();
        fields.push_back(line.substr(pos, end - pos));
        pos = end;
    }
    return fields;
}

} // namespace

std::string_view
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::RunBegin:
        return "run.begin";
    case EventKind::Transform:
        return "transform";
    case EventKind::Iteration:
        return "iter";
    case EventKind::RunEnd:
        return "run.end";
    case EventKind::CacheLookup:
        return "cache.lookup";
    case EventKind::QueryBegin:
        return "query.begin";
    case EventKind::QueryEnd:
        return "query.end";
    case EventKind::Fault:
        return "fault";
    case EventKind::Retry:
        return "retry";
    case EventKind::Degrade:
        return "degrade";
    case EventKind::MutationBegin:
        return "mutation.begin";
    case EventKind::MutationApply:
        return "mutation.apply";
    case EventKind::MutationCompact:
        return "mutation.compact";
    case EventKind::MutationResplit:
        return "mutation.resplit";
    case EventKind::ArenaServe:
        return "arena.serve";
    case EventKind::JournalAppend:
        return "journal.append";
    case EventKind::JournalCheckpoint:
        return "journal.checkpoint";
    case EventKind::RecoverGraph:
        return "recover.graph";
    }
    return "unknown";
}

void
TraceSink::append(const TraceSink &other)
{
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
}

std::string
formatEvent(const TraceEvent &e)
{
    std::ostringstream out;
    out << '[' << e.tick << "] " << eventKindName(e.kind);
    switch (e.kind) {
    case EventKind::RunBegin:
        appendLabel(out, "algo", e.label[0]);
        appendLabel(out, "strategy", e.label[1]);
        appendLabel(out, "direction", e.label[2]);
        appendLabel(out, "frontier", e.label[3]);
        appendArg(out, "n", e.arg[0]);
        appendArg(out, "worklist", e.arg[1]);
        appendArg(out, "dynamic", e.arg[2]);
        break;
    case EventKind::Transform:
        appendArg(out, "cached", e.arg[0]);
        appendArg(out, "units", e.arg[1]);
        break;
    case EventKind::Iteration:
        appendArg(out, "i", e.arg[0]);
        appendArg(out, "frontier", e.arg[1]);
        appendArg(out, "sparse", e.arg[2]);
        appendArg(out, "units", e.arg[3]);
        appendArg(out, "cycles", e.arg[4]);
        appendArg(out, "instr", e.arg[5]);
        appendArg(out, "lanes", e.arg[6]);
        appendArg(out, "memtx", e.arg[7]);
        break;
    case EventKind::RunEnd:
        appendArg(out, "iterations", e.arg[0]);
        appendArg(out, "converged", e.arg[1]);
        appendArg(out, "cancelled", e.arg[2]);
        appendArg(out, "peak_frontier", e.arg[3]);
        appendArg(out, "sparse_iters", e.arg[4]);
        appendArg(out, "cycles", e.arg[5]);
        break;
    case EventKind::CacheLookup:
        appendArg(out, "hit", e.arg[0]);
        appendArg(out, "retained", e.arg[1]);
        break;
    case EventKind::QueryBegin:
        appendLabel(out, "algo", e.label[0]);
        appendLabel(out, "strategy", e.label[1]);
        appendArg(out, "index", e.arg[0]);
        break;
    case EventKind::QueryEnd:
        appendLabel(out, "outcome", e.label[0]);
        appendArg(out, "attempts", e.arg[0]);
        appendArg(out, "iterations", e.arg[1]);
        appendArg(out, "cycles", e.arg[2]);
        appendArg(out, "digest", e.arg[3]);
        appendArg(out, "backoff_us", e.arg[4]);
        appendArg(out, "degraded", e.arg[5]);
        appendArg(out, "cache_hit", e.arg[6]);
        break;
    case EventKind::Fault:
        appendLabel(out, "site", e.label[0]);
        appendArg(out, "scope", e.arg[0]);
        appendArg(out, "attempt", e.arg[1]);
        appendArg(out, "hit", e.arg[2]);
        break;
    case EventKind::Retry:
        appendLabel(out, "error", e.label[0]);
        appendArg(out, "attempt", e.arg[0]);
        appendArg(out, "backoff_us", e.arg[1]);
        break;
    case EventKind::Degrade:
        appendLabel(out, "error", e.label[0]);
        break;
    case EventKind::MutationBegin:
        appendLabel(out, "graph", e.label[0]);
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "mutations", e.arg[1]);
        appendArg(out, "inserts", e.arg[2]);
        appendArg(out, "deletes", e.arg[3]);
        appendArg(out, "reweights", e.arg[4]);
        break;
    case EventKind::MutationApply:
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "touched", e.arg[1]);
        appendArg(out, "edges", e.arg[2]);
        appendArg(out, "slack", e.arg[3]);
        break;
    case EventKind::MutationCompact:
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "reclaimed", e.arg[1]);
        appendArg(out, "edges", e.arg[2]);
        break;
    case EventKind::MutationResplit:
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "repaired", e.arg[1]);
        appendArg(out, "resplit", e.arg[2]);
        appendArg(out, "shifted", e.arg[3]);
        appendArg(out, "entries", e.arg[4]);
        appendArg(out, "reverse_repaired", e.arg[5]);
        appendArg(out, "reverse_resplit", e.arg[6]);
        break;
    case EventKind::ArenaServe:
        appendLabel(out, "direction", e.label[0]);
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "forward", e.arg[1]);
        appendArg(out, "reverse", e.arg[2]);
        break;
    case EventKind::JournalAppend:
        appendLabel(out, "policy", e.label[0]);
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "seq", e.arg[1]);
        appendArg(out, "bytes", e.arg[2]);
        appendArg(out, "synced", e.arg[3]);
        break;
    case EventKind::JournalCheckpoint:
        appendArg(out, "epoch", e.arg[0]);
        appendArg(out, "retired", e.arg[1]);
        appendArg(out, "bytes", e.arg[2]);
        break;
    case EventKind::RecoverGraph:
        appendArg(out, "snapshot_epoch", e.arg[0]);
        appendArg(out, "epoch", e.arg[1]);
        appendArg(out, "replayed", e.arg[2]);
        appendArg(out, "retired", e.arg[3]);
        appendArg(out, "truncated", e.arg[4]);
        appendArg(out, "torn", e.arg[5]);
        break;
    }
    return out.str();
}

std::string
formatTrace(const TraceSink &sink)
{
    std::string out;
    for (const TraceEvent &e : sink.events()) {
        out += formatEvent(e);
        out += '\n';
    }
    return out;
}

std::string
TraceDiff::describe() const
{
    if (identical)
        return "traces identical";
    std::ostringstream out;
    out << "first divergence at line " << line;
    if (!iteration.empty())
        out << " (iteration " << iteration << ')';
    out << ", field " << field << ":\n  expected: "
        << (expectedLine.empty() ? "<missing line>" : expectedLine)
        << "\n  actual:   "
        << (actualLine.empty() ? "<missing line>" : actualLine);
    return out.str();
}

TraceDiff
diffTraces(std::string_view expected, std::string_view actual)
{
    TraceDiff diff;
    const auto exp_lines = splitLines(expected);
    const auto act_lines = splitLines(actual);

    // Track the most recent iteration index seen in the expected trace
    // so the report can say *which BSP step* went wrong.
    std::string iteration_context;
    const auto note_iteration = [&](std::string_view line) {
        for (std::string_view f : splitFields(line))
            if (f.size() > 2 && f.substr(0, 2) == "i=")
                iteration_context = std::string(f.substr(2));
    };

    const std::size_t common =
        exp_lines.size() < act_lines.size() ? exp_lines.size()
                                            : act_lines.size();
    for (std::size_t i = 0; i < common; ++i) {
        note_iteration(exp_lines[i]);
        if (exp_lines[i] == act_lines[i])
            continue;
        diff.identical = false;
        diff.line = i;
        diff.expectedLine = std::string(exp_lines[i]);
        diff.actualLine = std::string(act_lines[i]);
        diff.iteration = iteration_context;
        const auto ef = splitFields(exp_lines[i]);
        const auto af = splitFields(act_lines[i]);
        const std::size_t nf =
            ef.size() < af.size() ? ef.size() : af.size();
        diff.field = nf;
        for (std::size_t f = 0; f < nf; ++f) {
            if (ef[f] != af[f]) {
                diff.field = f;
                break;
            }
        }
        return diff;
    }
    if (exp_lines.size() != act_lines.size()) {
        diff.identical = false;
        diff.line = common;
        diff.field = 0;
        diff.iteration = iteration_context;
        if (common < exp_lines.size())
            diff.expectedLine = std::string(exp_lines[common]);
        if (common < act_lines.size())
            diff.actualLine = std::string(act_lines[common]);
    }
    return diff;
}

void
aggregateTrace(const TraceSink &sink, MetricsRegistry &registry)
{
    if (!registry.enabled())
        return;
    for (const TraceEvent &e : sink.events()) {
        switch (e.kind) {
        case EventKind::RunBegin:
            registry.counter("engine.runs").add();
            break;
        case EventKind::Transform:
            registry
                .counter(e.arg[0] != 0 ? "engine.transform.reused"
                                       : "engine.transform.built")
                .add();
            break;
        case EventKind::Iteration:
            registry.counter("engine.iterations").add();
            if (e.arg[2] != 0)
                registry.counter("engine.iterations.sparse").add();
            registry.histogram("engine.iter.frontier").observe(e.arg[1]);
            registry.histogram("engine.iter.units").observe(e.arg[3]);
            registry.histogram("engine.iter.cycles").observe(e.arg[4]);
            registry.counter("engine.instructions").add(e.arg[5]);
            registry.counter("engine.lane_slots").add(e.arg[6]);
            registry.counter("engine.mem_transactions").add(e.arg[7]);
            break;
        case EventKind::RunEnd:
            registry.counter("engine.cycles").add(e.arg[5]);
            if (e.arg[1] != 0)
                registry.counter("engine.converged").add();
            if (e.arg[2] != 0)
                registry.counter("engine.cancelled").add();
            break;
        case EventKind::CacheLookup:
            registry
                .counter(e.arg[0] != 0 ? "cache.lookup.hits"
                                       : "cache.lookup.misses")
                .add();
            break;
        case EventKind::QueryBegin:
            registry.counter("scheduler.query.begins").add();
            break;
        case EventKind::QueryEnd:
            registry.counter("scheduler.query.ends").add();
            registry.histogram("scheduler.query.attempts")
                .observe(e.arg[0]);
            registry.histogram("scheduler.query.iterations")
                .observe(e.arg[1]);
            break;
        case EventKind::Fault:
            registry.counter("fault.fired").add();
            break;
        case EventKind::Retry:
            registry.counter("scheduler.retries").add();
            break;
        case EventKind::Degrade:
            registry.counter("scheduler.degraded").add();
            break;
        case EventKind::MutationBegin:
            registry.counter("mutation.batches").add();
            registry.counter("mutation.inserts").add(e.arg[2]);
            registry.counter("mutation.deletes").add(e.arg[3]);
            registry.counter("mutation.reweights").add(e.arg[4]);
            break;
        case EventKind::MutationApply:
            registry.histogram("mutation.touched").observe(e.arg[1]);
            break;
        case EventKind::MutationCompact:
            registry.counter("mutation.compactions").add();
            registry.counter("mutation.reclaimed").add(e.arg[1]);
            break;
        case EventKind::MutationResplit:
            registry.counter("mutation.repaired").add(e.arg[1]);
            registry.counter("mutation.resplits").add(e.arg[2]);
            registry.counter("mutation.shifted").add(e.arg[3]);
            registry.counter("mutation.reverse_repaired").add(e.arg[5]);
            registry.counter("mutation.reverse_resplits").add(e.arg[6]);
            break;
        case EventKind::ArenaServe:
            registry.counter("scheduler.arena_served").add();
            break;
        case EventKind::JournalAppend:
            registry.counter("journal.appends").add();
            registry.counter("journal.bytes").add(e.arg[2]);
            break;
        case EventKind::JournalCheckpoint:
            registry.counter("journal.checkpoints").add();
            registry.counter("journal.retired").add(e.arg[1]);
            break;
        case EventKind::RecoverGraph:
            registry.counter("recovery.graphs").add();
            registry.counter("recovery.replayed").add(e.arg[2]);
            registry.counter("recovery.truncated_bytes").add(e.arg[4]);
            if (e.arg[5] != 0)
                registry.counter("recovery.torn_tails").add();
            break;
        }
    }
}

} // namespace tigr::obs
