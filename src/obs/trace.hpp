/**
 * @file
 * TraceSink: the structured, deterministic event stream behind the
 * observability layer (docs/observability.md).
 *
 * Events are fixed-size records — a simulated-time tick, a kind, up to
 * four static-string labels, and up to eight integer arguments. The
 * determinism contract:
 *
 *  - Ticks are *simulated* cycles from the warp simulator, never
 *    wall-clock: the engine's cycle counter is thread-count-invariant,
 *    so a trace is bit-identical at 1, 2, or 8 host threads.
 *  - Every argument is an integer. Nothing float-derived and nothing
 *    host-timing-derived (RunInfo::hostMs / transformMs are explicitly
 *    excluded) may enter an event.
 *  - Labels must point at static storage (strategyName(),
 *    algorithmName(), siteName(), string literals): events never own
 *    or allocate strings.
 *
 * formatTrace() renders the canonical text form the golden-trace tests
 * check in (tests/obs/golden/); diffTraces() reports the *first*
 * diverging line and field instead of a blob comparison.
 *
 * A TraceSink is not internally synchronized: each engine run or
 * scheduler query records into its own sink (the scheduler keeps one
 * sink per QueryResult, so concurrent workers never share one).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tigr::obs {

class MetricsRegistry;

/** What one TraceEvent describes. */
enum class EventKind : std::uint8_t
{
    RunBegin,    ///< An engine analysis starts.
    Transform,   ///< The run's schedule context resolved (built/reused).
    Iteration,   ///< One BSP iteration (or PR round) completed.
    RunEnd,      ///< The analysis finished.
    CacheLookup, ///< Transform-cache warm-up decision for a query.
    QueryBegin,  ///< Scheduler picked up a query.
    QueryEnd,    ///< Scheduler finalized a query outcome.
    Fault,       ///< An injected fault fired.
    Retry,       ///< The scheduler scheduled another attempt.
    Degrade,     ///< A query dropped down the degradation ladder.
    MutationBegin,   ///< A mutation batch entered apply.
    MutationApply,   ///< A batch finished applying to the graph.
    MutationCompact, ///< The slack arena was compacted.
    MutationResplit, ///< One batch's incremental virtual repair.
    ArenaServe,      ///< Scheduler served a query off the live arena
                     ///< (no dense materialization).
    JournalAppend,     ///< One WAL record framed and written.
    JournalCheckpoint, ///< Snapshot written, journal rotated.
    RecoverGraph,      ///< One graph recovered at startup.
};

/** Display name ("run.begin", "iter", "fault", ...). */
std::string_view eventKindName(EventKind kind);

/**
 * One structured event. Field meaning per kind (unused slots stay 0 /
 * empty and are omitted by the formatter):
 *
 *   RunBegin    label: algo, strategy, direction, frontier-mode
 *               arg:   n, worklist, dynamic-mapping
 *   Transform   arg:   cached, units
 *   Iteration   arg:   index (1-based), frontier size, sparse,
 *                      units launched, cycles delta, instructions
 *                      delta, lane-slot delta, mem-transaction delta
 *   RunEnd      arg:   iterations, converged, cancelled, peak
 *                      frontier, sparse iterations, total cycles
 *   CacheLookup arg:   hit, retained
 *   QueryBegin  label: algo, strategy;  arg: batch index
 *   QueryEnd    label: outcome
 *               arg:   attempts, iterations, total cycles, value
 *                      digest, backoff (simulated microseconds),
 *                      degraded, cache hit
 *   Fault       label: site;  arg: scope key, attempt, hit counter
 *   Retry       label: error kind
 *               arg:   next attempt, total backoff (simulated us)
 *   Degrade     label: error kind
 *   MutationBegin   label: graph
 *                   arg: target epoch, mutations, inserts, deletes,
 *                        reweights
 *   MutationApply   arg: epoch, touched vertices, live edges, slack
 *                        slots
 *   MutationCompact arg: epoch, reclaimed slots, live edges
 *   MutationResplit arg: epoch, repaired vertices, resplit families,
 *                        shifted entries, entries after, reverse
 *                        repaired vertices, reverse resplit families
 *   ArenaServe      label: direction
 *                   arg: arena epoch, maintained forward array,
 *                        maintained reverse array
 *   JournalAppend   label: sync policy
 *                   arg: epoch, record seq, frame bytes, synced inline
 *   JournalCheckpoint arg: epoch, retired records, journal bytes after
 *   RecoverGraph    arg: snapshot epoch, recovered epoch, records
 *                        replayed, records retired, bytes truncated,
 *                        torn tail
 */
struct TraceEvent
{
    /** Simulated cycles at the event (0 for scheduler-phase events,
     *  which happen outside simulated kernel time). */
    std::uint64_t tick = 0;
    EventKind kind = EventKind::Iteration;
    /** Static-storage names only; never owned. */
    std::array<std::string_view, 4> label{};
    std::array<std::uint64_t, 8> arg{};
};

/** An append-only event buffer. */
class TraceSink
{
  public:
    void record(const TraceEvent &event) { events_.push_back(event); }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

    /** Append every event of @p other (trace merging). */
    void append(const TraceSink &other);

  private:
    std::vector<TraceEvent> events_;
};

/** Canonical one-line text form of @p event (no trailing newline). */
std::string formatEvent(const TraceEvent &event);

/** formatEvent() per event, one per line, each newline-terminated —
 *  the byte-identity witness the golden tests compare. */
std::string formatTrace(const TraceSink &sink);

/** Result of comparing two formatted traces line by line. */
struct TraceDiff
{
    bool identical = true;
    /** First diverging line (0-based); lines beyond the shorter trace
     *  count as divergences. */
    std::size_t line = 0;
    /** First diverging whitespace-separated field on that line. */
    std::size_t field = 0;
    std::string expectedLine;
    std::string actualLine;
    /** BSP iteration context: value of the nearest preceding (or
     *  containing) `i=` field in the expected trace, empty if none. */
    std::string iteration;

    /** Human-readable "first divergence at ..." message. */
    std::string describe() const;
};

/** First-divergence comparison of two formatted traces. */
TraceDiff diffTraces(std::string_view expected, std::string_view actual);

/**
 * Fold a trace into aggregate metrics: iteration counts, per-iteration
 * frontier/unit/cycle histograms, run and fault counters. This is how
 * `tigr stats --algo` and `tigr run --metrics` derive a registry from
 * the event stream (the trace is the source of truth; metrics are a
 * projection of it).
 */
void aggregateTrace(const TraceSink &sink, MetricsRegistry &registry);

} // namespace tigr::obs
