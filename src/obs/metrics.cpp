#include "obs/metrics.hpp"

#include <bit>
#include <sstream>

namespace tigr::obs {

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

void
Histogram::observe(std::uint64_t value)
{
    buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    // Count and sum saturate like Counter: a pinned aggregate is
    // visible, a wrapped one lies.
    std::uint64_t cur = count_.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
        next = cur == ~std::uint64_t{0} ? cur : cur + 1;
    } while (!count_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
    cur = sum_.load(std::memory_order_relaxed);
    do {
        next = cur > ~value ? ~std::uint64_t{0} : cur + value;
    } while (!sum_.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed));
}

std::size_t
Histogram::bucketOf(std::uint64_t value)
{
    return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t
Histogram::bucketFloor(std::size_t i)
{
    return i <= 1 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketCeil(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

MetricsRegistry &
MetricsRegistry::disabled()
{
    static MetricsRegistry instance{DisabledTag{}};
    return instance;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    if (!enabled_)
        return scrapCounter_;
    std::lock_guard lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.try_emplace(std::string(name)).first;
    return it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    if (!enabled_)
        return scrapGauge_;
    std::lock_guard lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.try_emplace(std::string(name)).first;
    return it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    if (!enabled_)
        return scrapHistogram_;
    std::lock_guard lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.try_emplace(std::string(name)).first;
    return it->second;
}

std::string
MetricsRegistry::snapshotText() const
{
    std::ostringstream out;
    std::lock_guard lock(mutex_);
    for (const auto &[name, c] : counters_)
        out << "counter " << name << ' ' << c.value() << '\n';
    for (const auto &[name, g] : gauges_)
        out << "gauge " << name << ' ' << g.value() << '\n';
    for (const auto &[name, h] : histograms_) {
        out << "hist " << name << " count=" << h.count()
            << " sum=" << h.sum();
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
            if (h.bucket(i) != 0)
                out << " b" << i << '=' << h.bucket(i);
        out << '\n';
    }
    return out.str();
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::ostringstream out;
    std::lock_guard lock(mutex_);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        out << (first ? "" : ",") << '"' << name
            << "\":" << c.value();
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        out << (first ? "" : ",") << '"' << name
            << "\":" << g.value();
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        out << (first ? "" : ",") << '"' << name
            << "\":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
            << ",\"buckets\":{";
        bool first_bucket = true;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            if (h.bucket(i) == 0)
                continue;
            out << (first_bucket ? "" : ",") << '"' << i
                << "\":" << h.bucket(i);
            first_bucket = false;
        }
        out << "}}";
        first = false;
    }
    out << "}}";
    return out.str();
}

std::uint64_t
MetricsRegistry::digest() const
{
    const std::string text = snapshotText();
    return fnv1a64(text.data(), text.size());
}

} // namespace tigr::obs
